//! Meta-crate for the TQP reproduction workspace.
//!
//! Re-exports the public façade so examples and integration tests can use a
//! single import. See [`tqp_core`] for the primary API.

pub use tqp_baseline as baseline;
pub use tqp_core as core;
pub use tqp_data as data;
pub use tqp_exec as exec;
pub use tqp_ir as ir;
pub use tqp_ml as ml;
pub use tqp_net as net;
pub use tqp_obs as obs;
pub use tqp_profile as profile;
pub use tqp_serve as serve;
pub use tqp_sql as sql;
pub use tqp_store as store;
pub use tqp_tensor as tensor;

//! Minimal offline stand-in for `proptest`.
//!
//! Implements the random-generation core of the proptest API that this
//! workspace's property tests use: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `prop_recursive` / `boxed`, range and
//! tuple strategies, `Just`, `any::<T>()`, simple regex-style string
//! strategies (`"[a-z]{0,6}"`), `prop::collection::vec`, and the
//! `proptest!` / `prop_assert*` / `prop_oneof!` macros.
//!
//! There is **no shrinking**: a failing case reports its error and the
//! deterministic per-test seed. Cases are reproducible — the RNG stream
//! is a pure function of the test name (override with `PROPTEST_SEED`).

use std::sync::Arc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-test deterministic RNG: seed = FNV(test name), overridable with
/// the `PROPTEST_SEED` environment variable.
pub fn test_rng(test_name: &str) -> TestRng {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.parse::<u64>() {
            return TestRng::new(seed);
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::new(h)
}

// ---------------------------------------------------------------------
// Errors / config
// ---------------------------------------------------------------------

/// Failure raised by `prop_assert*` or returned from test bodies.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure / explicit fail.
    Fail(String),
    /// Case rejected (filter); the runner retries instead of failing.
    Reject(String),
}

impl TestCaseError {
    /// An assertion-failure error.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (filtered-out) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result alias used by test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

// ---------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Type-erase into a clonable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen: Arc::new(move |rng| inner.generate(rng)),
        }
    }

    /// Map generated values through `f`.
    fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        BoxedStrategy {
            gen: Arc::new(move |rng| f(inner.generate(rng))),
        }
    }

    /// Keep only values passing `f` (rejection sampling; gives up after a
    /// bounded number of attempts and panics, mirroring proptest's
    /// too-many-rejects failure).
    fn prop_filter<F>(self, reason: &str, f: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let inner = self;
        let reason = reason.to_string();
        BoxedStrategy {
            gen: Arc::new(move |rng| {
                for _ in 0..1_000 {
                    let v = inner.generate(rng);
                    if f(&v) {
                        return v;
                    }
                }
                panic!("prop_filter rejected too many values ({reason})");
            }),
        }
    }

    /// Build a recursive strategy: `f` receives the strategy for the
    /// previous depth level and returns the next one. The result mixes
    /// leaves back in at every level so generated depths vary.
    fn prop_recursive<F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> BoxedStrategy<Self::Value>,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth.max(1) {
            let deeper = f(current);
            // 3:1 deeper-vs-leaf mix keeps expected depth close to `depth`
            // while still generating shallow values.
            current = one_of(vec![deeper.clone(), deeper.clone(), deeper, leaf.clone()]);
        }
        current
    }
}

/// Clonable type-erased strategy.
pub struct BoxedStrategy<T> {
    gen: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Arc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Uniformly choose one of several strategies (used by `prop_oneof!`).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "one_of requires at least one strategy");
    BoxedStrategy {
        gen: Arc::new(move |rng| {
            let i = rng.below(options.len() as u64) as usize;
            options[i].generate(rng)
        }),
    }
}

/// Strategy producing a constant (cloned) value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Ranges --------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// Tuples --------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

// Arbitrary / any -----------------------------------------------------

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
    BoxedStrategy {
        gen: Arc::new(|rng| T::arbitrary(rng)),
    }
}

// String patterns -----------------------------------------------------

/// String literals act as simplified regex strategies. Supported syntax:
/// literal characters, `[...]` character classes with `a-z` ranges, and
/// `{m}` / `{m,n}` repetition suffixes.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    let mut out = String::new();
    let mut i = 0;
    while i < bytes.len() {
        // Parse one atom: a character class or a literal character.
        let choices: Vec<char> = if bytes[i] == b'[' {
            let close = pattern[i..]
                .find(']')
                .map(|j| i + j)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let class = &bytes[i + 1..close];
            i = close + 1;
            let mut chars = Vec::new();
            let mut k = 0;
            while k < class.len() {
                if k + 2 < class.len() && class[k + 1] == b'-' {
                    for c in class[k]..=class[k + 2] {
                        chars.push(c as char);
                    }
                    k += 3;
                } else {
                    chars.push(class[k] as char);
                    k += 1;
                }
            }
            chars
        } else {
            let c = bytes[i] as char;
            i += 1;
            vec![c]
        };
        // Optional repetition suffix.
        let (lo, hi) = if i < bytes.len() && bytes[i] == b'{' {
            let close = pattern[i..]
                .find('}')
                .map(|j| i + j)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body = &pattern[i + 1..close];
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<usize>().expect("repeat lower bound"),
                    b.trim().parse::<usize>().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(choices[rng.below(choices.len() as u64) as usize]);
        }
    }
    out
}

// Collections ---------------------------------------------------------

/// `prop::collection` and friends, mirroring proptest's module layout.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{BoxedStrategy, Strategy, TestRng};
        use std::sync::Arc;

        /// Vector of values from `element`, with length drawn from `len`.
        pub fn vec<S>(element: S, len: std::ops::Range<usize>) -> BoxedStrategy<Vec<S::Value>>
        where
            S: Strategy + 'static,
            S::Value: 'static,
        {
            BoxedStrategy {
                gen: Arc::new(move |rng: &mut TestRng| {
                    let n = Strategy::generate(&len.clone(), rng);
                    (0..n).map(|_| element.generate(rng)).collect()
                }),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Assert inside a proptest body; failure aborts the case with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests. Each `#[test] fn name(pat in strategy, ...)`
/// becomes a normal `#[test]` running `cases` random instances.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut case = 0u32;
            let mut rejects = 0u32;
            while case < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => case += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(rejects < 10_000, "too many rejected cases");
                    }
                    ::std::result::Result::Err(e) => panic!(
                        "proptest {} failed at case {}/{}: {}\n(set PROPTEST_SEED to reproduce a specific stream)",
                        stringify!($name), case + 1, config.cases, e
                    ),
                }
            }
        }
    )*};
}

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, one_of, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn patterns_generate_in_language() {
        let mut rng = crate::test_rng("patterns");
        for _ in 0..100 {
            let s = crate::generate_pattern("[a-c]{2,4}", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 4);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let t = crate::generate_pattern("x[0-9]{1}", &mut rng);
            assert!(t.starts_with('x') && t.len() == 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vec(xs in prop::collection::vec((0i64..10, -1.0f64..1.0), 0..20), b in any::<bool>()) {
            prop_assert!(xs.len() < 20);
            for (i, f) in &xs {
                prop_assert!((0..10).contains(i), "i = {}", i);
                prop_assert!((-1.0..1.0).contains(f));
            }
            let _ = b;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1i64), 10i64..20, (100i64..200).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || (10..20).contains(&v) || (200..400).contains(&v));
        }
    }
}

//! Minimal offline stand-in for `criterion`: a plain timing harness with
//! the same call-site API shape (`criterion_group!`, `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`). No statistics machinery — it reports median and mean
//! of `sample_size` timed batches to stdout.

use std::time::{Duration, Instant};

/// Keep a value opaque to the optimizer.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 10, f);
        self
    }
}

/// A named group sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// End the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name + parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Passed to benchmark closures; `iter` times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `sample_size` batches of `f`, auto-sizing batch iteration
    /// counts so each batch takes a measurable amount of time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch size calibration (~5ms per batch target).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let per_batch =
            (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(f());
            }
            self.samples.push(t0.elapsed() / per_batch as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "{label:<40} median {:>12} mean {:>12} ({} samples)",
        format!("{median:.2?}"),
        format!("{mean:.2?}"),
        b.samples.len()
    );
}

/// Define a benchmark group function from target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("inc", |b| b.iter(|| count += 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
        assert!(count > 0);
    }
}

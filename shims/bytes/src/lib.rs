//! Minimal offline stand-in for the `bytes` crate: an immutable,
//! cheaply-clonable byte buffer.

use std::sync::Arc;

/// A reference-counted immutable byte buffer. Cloning is O(1).
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert!(!c.is_empty());
        assert!(Bytes::new().is_empty());
    }
}

//! Minimal offline stand-in for `crossbeam::scope`, implemented over
//! `std::thread::scope`.
//!
//! Differences from real crossbeam: a panicking worker unwinds through
//! `std::thread::scope` itself rather than being captured into the `Err`
//! arm, so the `Result` returned here is always `Ok`. Callers that
//! `.expect()` the result behave identically either way.

/// Scope handle passed to [`scope`] closures; `spawn` launches a scoped
/// worker thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker inside the scope. The closure receives the scope
    /// (crossbeam signature compatibility); the join handle is dropped —
    /// all workers are joined when the scope ends.
    pub fn spawn<F, T>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        });
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned;
/// returns once every spawned thread has finished.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_see_borrows() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn chunked_mutation() {
        let mut v = vec![0usize; 100];
        scope(|s| {
            for (i, chunk) in v.chunks_mut(30).enumerate() {
                s.spawn(move |_| {
                    for x in chunk.iter_mut() {
                        *x = i + 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(v.iter().all(|&x| x > 0));
    }
}

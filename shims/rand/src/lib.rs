//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides a deterministic 64-bit generator (`rngs::StdRng`, a
//! splitmix64/xorshift* hybrid) behind the `Rng`/`SeedableRng` trait
//! surface that this workspace uses: `gen`, `gen_range` over half-open
//! and inclusive integer/float ranges, and `gen_bool`. Streams are stable
//! across runs and platforms (the property the TPC-H generator and the
//! differential tests rely on) but are *not* bit-compatible with upstream
//! `rand`.

pub mod rngs {
    /// Deterministic 64-bit PRNG (splitmix64 state advance + xorshift*
    /// output mix). Small, fast, and statistically fine for data
    /// generation and tests.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(seed: u64) -> StdRng {
            // Avoid the all-zero fixed point and decorrelate tiny seeds.
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub(crate) fn next_raw(&mut self) -> u64 {
            // splitmix64.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng::from_state(seed)
        }
    }
}

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        rng.next_u64() as u8
    }
}

impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types uniform-samplable from a range. The blanket
/// [`SampleRange`] impls below are what let integer-literal ranges infer
/// their type from the call site (mirroring real `rand`).
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform integer in `[0, width)` by multiply-shift (avoids modulo bias
/// well enough for data generation).
fn below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "gen_range on empty range");
                let width = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below(rng, width) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "gen_range on empty range");
                let width = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng, width) as i128) as $t
            }
        }
    )*};
}

int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "gen_range on empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "gen_range on empty range");
        lo + f64::from_rng(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "gen_range on empty range");
        lo + f32::from_rng(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi, "gen_range on empty range");
        lo + f32::from_rng(rng) * (hi - lo)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing generator API (blanket over any [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a [`Standard`]-distributed value.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "{hits}");
    }
}

//! Minimal offline stand-in for `rayon`: scoped fork-join parallelism
//! over `std::thread::scope`. No work-stealing pool — each `spawn` is a
//! scoped OS thread — so callers should spawn roughly one task per core
//! (which is how the morsel executor in `tqp-exec` uses it).

/// Number of worker threads a parallel section should target.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Scope handle for [`scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a task; all tasks are joined when the scope returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || {
            let scope = Scope { inner };
            f(&scope)
        });
    }
}

/// Run `f` with a scope; returns after every spawned task completed.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all() {
        let n = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn thread_count_positive() {
        assert!(current_num_threads() >= 1);
    }
}

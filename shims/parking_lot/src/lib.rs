//! Minimal offline stand-in for `parking_lot`: a `Mutex` whose `lock`
//! never returns a poison error (a poisoned std mutex is recovered).

/// A mutual-exclusion lock with `parking_lot`'s no-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}

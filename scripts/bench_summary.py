#!/usr/bin/env python3
"""Consolidated bench-gate summary: one table of per-site ratios.

Each bench binary (expr/join/store/simd) is its own hard regression gate
— it exits non-zero when its optimized path regresses past the 1.25x
noise margin — so by the time this runs, every gate has already passed.
serve_bench is gated on correctness rather than speed: it asserts
bitwise digest parity and zero failed front-end queries internally, and
its real-socket records surface here as achieved/offered throughput
ratios. This step folds the five BENCH_*.json files into one table so a
human scanning the CI log sees every per-site ratio in one place, and
fails only if a bench file is missing or unreadable (i.e. a gate was
skipped).

Usage: python3 scripts/bench_summary.py [dir]
"""

import json
import os
import sys


def rows(doc):
    """Yield (site, ratio, gated) per result record, format-aware."""
    fmt = doc.get("format", "?")
    if fmt == "tqp-bench-tpch":
        # Observability-overhead gate (v2): registry-on / registry-off
        # wall-time ratio per query plus the summed gate total. The gate
        # itself ran inside tpch_bench (exits non-zero past 3% + slack).
        oh = doc.get("obs_overhead")
        if oh:
            for r in oh.get("queries", []):
                yield f"q{r.get('query', '?')}/obs-overhead", r.get("ratio", 0.0), False
            yield "total/obs-overhead", oh.get("ratio", 0.0), oh.get("pass", False)
        return
    for r in doc.get("results", []):
        big = r.get("rows", 0) > 10_000
        if fmt == "tqp-bench-expr":
            if "speedup_fused" in r:
                site = f"q{r.get('query', '?')}/{r.get('site', '?')}"
                yield site, r["speedup_fused"], big
        elif fmt == "tqp-bench-join":
            site = f"{r.get('site', '?')}/w{r.get('workers', '?')}"
            yield site, r.get("speedup_flat", 0.0), big
        elif fmt == "tqp-bench-store":
            if r.get("kind") == "prune":
                site = f"{r.get('query', '?')}/w{r.get('workers', '?')}"
                yield site, r.get("speedup", 0.0), False
        elif fmt == "tqp-bench-simd":
            site = f"{r.get('family', '?')}/{r.get('site', '?')}"
            yield site, r.get("speedup_simd", 0.0), r.get("gated", False)
        elif fmt == "tqp-bench-serve":
            # Real-socket records: ratio = achieved/offered throughput
            # (1.0 = the front-end kept up with the open-loop schedule);
            # the gate mark is the bitwise parity check against
            # in-process execution.
            if r.get("kind") == "net" and r.get("offered_qps"):
                site = f"{r.get('stmt', '?')}/c{r.get('clients', '?')}"
                ratio = r.get("achieved_qps", 0.0) / r["offered_qps"]
                yield site, ratio, r.get("bitwise_identical", False)


def main():
    base = sys.argv[1] if len(sys.argv) > 1 else "."
    files = {
        "tpch": "BENCH_tpch.json",
        "expr": "BENCH_expr.json",
        "join": "BENCH_join.json",
        "store": "BENCH_store.json",
        "simd": "BENCH_simd.json",
        "serve": "BENCH_serve.json",
    }
    missing = []
    print(f"{'bench':<6} {'site':<28} {'ratio':>8}  gate")
    print("-" * 52)
    for name, fname in files.items():
        path = os.path.join(base, fname)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as e:
            missing.append(f"{fname}: {e}")
            continue
        level = doc.get("level")
        suffix = f" (level {level})" if level else ""
        for site, ratio, gated in rows(doc):
            mark = "gated" if gated else "-"
            print(f"{name:<6} {site:<28} {ratio:>7.2f}x  {mark}{suffix}")
            suffix = ""
    if missing:
        print("\nmissing or unreadable bench files:", file=sys.stderr)
        for m in missing:
            print(f"  {m}", file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()

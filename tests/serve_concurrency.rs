//! Concurrent serving stress: many client threads × repeated prepared
//! executions against one [`Server`], all riding the shared worker pool.
//!
//! Asserts (1) results under genuine concurrency are bitwise identical to
//! single-threaded runs — the determinism contract survives the shared
//! scheduler at any interleaving; (2) prepared-statement cache hits are
//! pointer-equal (no recompilation); (3) a `register_table` replacement
//! invalidates the cache so no stale compiled plan ever serves.

use std::sync::Arc;

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::frame::df;
use tqp_repro::data::{Column, DataFrame};
use tqp_repro::exec::Backend;
use tqp_repro::serve::Server;
use tqp_tensor::Scalar;

/// Rows big enough to cross the parallel-segment and partitioned-agg
/// thresholds once `TQP_AGG_MORSEL_ROWS` isn't shrunk (it isn't here), so
/// the shared pool actually gets work.
const N_ROWS: i64 = 160_000;

fn data() -> DataFrame {
    df(vec![
        ("id", Column::from_i64((0..N_ROWS).collect())),
        (
            "grp",
            Column::from_i64((0..N_ROWS).map(|i| i % 7).collect()),
        ),
        (
            "v",
            Column::from_f64(
                (0..N_ROWS)
                    .map(|i| ((i % 9973) as f64) * 1.5 - 250.0)
                    .collect(),
            ),
        ),
        (
            "tag",
            Column::from_str(
                (0..N_ROWS)
                    .map(|i| ["red", "green", "blue"][(i % 3) as usize].to_string())
                    .collect(),
            ),
        ),
    ])
}

fn server() -> Arc<Server> {
    let mut s = Session::new();
    s.register_table("t", data());
    Arc::new(Server::new(s))
}

/// Canonical row digest for bitwise comparison (exact formatting — no
/// tolerance: identical inputs through identical programs must produce
/// identical bits regardless of concurrency).
fn digest(frame: &DataFrame) -> Vec<String> {
    (0..frame.nrows())
        .map(|i| format!("{:?}", frame.row(i)))
        .collect()
}

const STATEMENTS: &[(&str, usize)] = &[
    (
        "select grp, sum(v) as s, count(*) as c from t where id % 3 = 0 group by grp order by grp",
        0,
    ),
    (
        "select id, v * 2.0 as vv from t where v > $1 and id < 5000 order by id",
        1,
    ),
    (
        "select tag, min(v) as mn, max(v) as mx from t group by tag order by tag",
        0,
    ),
];

const PARAMS: &[f64] = &[-100.0, 0.0, 333.25, 5000.0];

#[test]
fn concurrent_prepared_executions_are_bitwise_identical() {
    let srv = server();
    let cfg = QueryConfig::default().workers(4);

    // Single-threaded reference digests, one per (statement, param).
    let mut reference: Vec<Vec<Vec<String>>> = Vec::new();
    for &(sql, n_params) in STATEMENTS {
        let prepared = srv.prepare(sql, cfg).unwrap();
        let mut per_param = Vec::new();
        let values: &[f64] = if n_params == 0 { &[0.0] } else { PARAMS };
        for &p in values {
            let args: Vec<Scalar> = if n_params == 0 {
                vec![]
            } else {
                vec![Scalar::F64(p)]
            };
            let (frame, _) = srv.execute(&prepared, &args).unwrap();
            per_param.push(digest(&frame));
        }
        reference.push(per_param);
    }
    let reference = Arc::new(reference);

    // 8 client threads × 12 rounds, each executing every statement with
    // every parameter, all against the one server (cache hits share the
    // compiled statements; the pool schedules everyone's morsels).
    let threads: Vec<_> = (0..8)
        .map(|tid| {
            let srv = srv.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                for round in 0..12 {
                    for (si, &(sql, n_params)) in STATEMENTS.iter().enumerate() {
                        let prepared = srv.prepare(sql, cfg).unwrap();
                        let values: &[f64] = if n_params == 0 { &[0.0] } else { PARAMS };
                        for (pi, &p) in values.iter().enumerate() {
                            let args: Vec<Scalar> = if n_params == 0 {
                                vec![]
                            } else {
                                vec![Scalar::F64(p)]
                            };
                            let (frame, _) = srv.execute(&prepared, &args).unwrap();
                            assert_eq!(
                                digest(&frame),
                                reference[si][pi],
                                "thread {tid} round {round} stmt {si} param {pi} diverged"
                            );
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // Every thread after the first hit the cache: 3 statements compiled
    // once each, everything else pointer-shared.
    let stats = srv.cache_stats();
    assert_eq!(stats.misses, STATEMENTS.len() as u64, "{stats:?}");
    assert!(
        stats.hits >= 8 * 12 * STATEMENTS.len() as u64 - 3,
        "{stats:?}"
    );
}

#[test]
fn cache_hits_are_pointer_equal_across_threads() {
    let srv = server();
    let cfg = QueryConfig::default();
    let first = srv.prepare(STATEMENTS[0].0, cfg).unwrap();
    let threads: Vec<_> = (0..6)
        .map(|_| {
            let srv = srv.clone();
            let first = first.clone();
            std::thread::spawn(move || {
                let again = srv.prepare(STATEMENTS[0].0, cfg).unwrap();
                assert!(
                    again.ptr_eq(&first),
                    "cache hit handed out a different compiled statement"
                );
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn register_table_invalidates_under_concurrent_load() {
    let srv = server();
    let cfg = QueryConfig::default().workers(2);
    let sql = "select count(*) as c, sum(v) as s from t where v > 0.0";

    let before = srv.prepare(sql, cfg).unwrap();
    let (frame, _) = srv.execute(&before, &[]).unwrap();
    let before_digest = digest(&frame);

    // Readers hammer the server while the table is replaced. Every
    // observed result must be *exactly* the old table's or the new
    // table's output — never a mix, never a stale compiled plan against
    // the new data's schema.
    let replaced = df(vec![
        ("id", Column::from_i64((0..100).collect())),
        ("grp", Column::from_i64(vec![0; 100])),
        (
            "v",
            Column::from_f64((0..100).map(|i| i as f64 + 1.0).collect()),
        ),
        (
            "tag",
            Column::from_str((0..100).map(|_| "x".to_string()).collect()),
        ),
    ]);
    let mut expect_after = Session::new();
    expect_after.register_table("t", replaced.clone());
    let after_digest = digest(&expect_after.sql(sql).unwrap());

    let writer = {
        let srv = srv.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            srv.register_table("t", replaced);
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let srv = srv.clone();
            let before_digest = before_digest.clone();
            let after_digest = after_digest.clone();
            std::thread::spawn(move || {
                for _ in 0..25 {
                    let (frame, _) = srv.query(sql, cfg, &[]).unwrap();
                    let d = digest(&frame);
                    assert!(
                        d == before_digest || d == after_digest,
                        "observed a result matching neither table version"
                    );
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    // Post-replacement prepares serve the new data, via a fresh entry.
    let after = srv.prepare(sql, cfg).unwrap();
    assert!(
        !after.ptr_eq(&before),
        "stale cache entry after replacement"
    );
    let (frame, _) = srv.execute(&after, &[]).unwrap();
    assert_eq!(digest(&frame), after_digest);
    assert!(srv.cache_stats().partial_invalidations >= 1);
}

#[test]
fn concurrency_is_backend_agnostic() {
    // The Wasm scalar backend serves concurrently too (its executions are
    // single-threaded internally, but the server must interleave them
    // safely with vectorized clients).
    let srv = server();
    let eager = QueryConfig::default().workers(2);
    let wasm = QueryConfig::default().backend(Backend::Wasm);
    let sql = "select grp, count(*) as c from t where id < 3000 group by grp order by grp";
    let ref_eager = digest(&srv.query(sql, eager, &[]).unwrap().0);
    let ref_wasm = digest(&srv.query(sql, wasm, &[]).unwrap().0);
    assert_eq!(ref_eager, ref_wasm);
    let threads: Vec<_> = (0..4)
        .map(|tid| {
            let srv = srv.clone();
            let expect = ref_eager.clone();
            std::thread::spawn(move || {
                let cfg = if tid % 2 == 0 { eager } else { wasm };
                for _ in 0..8 {
                    let (frame, _) = srv.query(sql, cfg, &[]).unwrap();
                    assert_eq!(digest(&frame), expect);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

//! All 22 TPC-H queries must compile and execute on the row-Volcano oracle.
//! This exercises the full front half of the stack: parser → binder →
//! optimizer (decorrelation, join extraction, pushdown, pruning) →
//! physical planning → row execution.

use std::collections::HashMap;

use tqp_repro::baseline::RowEngine;
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};
use tqp_repro::data::DataFrame;
use tqp_repro::ir::{compile_sql, Catalog, PhysicalOptions};
use tqp_repro::ml::ModelRegistry;

fn setup() -> (HashMap<String, DataFrame>, Catalog) {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 1,
    });
    let mut tables = HashMap::new();
    let mut catalog = Catalog::new();
    for (name, frame) in data.tables() {
        catalog.register(name, frame.schema().clone(), frame.nrows());
        tables.insert(name.to_string(), frame.clone());
    }
    (tables, catalog)
}

#[test]
fn all_22_queries_run_on_row_engine() {
    let (tables, catalog) = setup();
    let models = ModelRegistry::new();
    let engine = RowEngine::new(&tables, &models);
    for (n, sql) in queries::all() {
        let plan = compile_sql(sql, &catalog, &PhysicalOptions::default())
            .unwrap_or_else(|e| panic!("Q{n} failed to compile: {e}"));
        let result = engine.execute(&plan);
        // Sanity: the well-known result shapes.
        match n {
            1 => {
                assert_eq!(
                    result.nrows(),
                    4,
                    "Q1 has 4 (returnflag, linestatus) groups"
                );
                assert_eq!(result.ncols(), 10);
            }
            3 => assert!(result.nrows() <= 10, "Q3 is LIMIT 10"),
            4 => assert!(result.nrows() <= 5, "Q4 groups by 5 priorities"),
            6 => {
                assert_eq!(result.nrows(), 1);
                let rev = result.column(0).get(0).as_f64();
                assert!(rev > 0.0, "Q6 revenue must be positive, got {rev}");
            }
            13 => assert!(result.nrows() >= 2, "Q13 has a 0-orders bucket"),
            14 => {
                let promo = result.column(0).get(0).as_f64();
                assert!(
                    promo > 0.0 && promo < 100.0,
                    "Q14 promo share out of range: {promo}"
                );
            }
            18 => assert!(result.nrows() <= 100),
            22 => assert!(result.nrows() >= 1, "Q22 must produce country codes"),
            _ => {}
        }
        eprintln!("Q{n:2}: {} rows x {} cols", result.nrows(), result.ncols());
    }
}

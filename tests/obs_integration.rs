//! Observability over the wire: the socket front-end must expose the same
//! telemetry as in-process execution —
//!
//! 1. a slow query is logged **exactly once** (the core choke point fires
//!    regardless of which surface issued the query) with a live trace id;
//! 2. `PROFILE` returns the previous traced query's [`QueryTrace`], with
//!    per-op row attribution identical to an in-process traced run;
//! 3. untraced queries never allocate a trace — `PROFILE` stays empty;
//! 4. `STATS` carries a metrics-registry snapshot that decodes and parses
//!    as Prometheus exposition text.

use std::sync::{Arc, Mutex, OnceLock};

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::frame::df;
use tqp_repro::data::Column;
use tqp_repro::net::{NetClient, NetConfig, NetServer};
use tqp_repro::obs;
use tqp_repro::serve::Server;

/// Tests here mutate process-global observability state (the slow-query
/// ring, the enabled flag). Serialize them.
fn obs_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn session() -> Session {
    let mut s = Session::new();
    s.register_table(
        "t",
        df(vec![
            ("id", Column::from_i64((0..4000).collect())),
            ("grp", Column::from_i64((0..4000).map(|i| i % 11).collect())),
            (
                "v",
                Column::from_f64((0..4000).map(|i| i as f64 * 0.5).collect()),
            ),
        ]),
    );
    s
}

fn serving() -> (Arc<Server>, NetServer) {
    let server = Arc::new(Server::new(session()));
    let net = NetServer::bind(server.clone(), "127.0.0.1:0", NetConfig::default()).unwrap();
    (server, net)
}

#[test]
fn slow_query_logged_exactly_once_over_socket() {
    let _g = obs_lock().lock().unwrap();
    obs::clear_slow_queries();
    let (_server, mut net) = serving();
    let mut c = NetClient::connect(net.local_addr()).unwrap();

    // Unique marker so concurrent logging from other tests (which hold the
    // lock, but belt and braces) can't be confused with ours.
    let sql = "select grp, sum(v) as s_slowmark_1 from t group by grp order by grp";
    let cfg = QueryConfig::default().trace(true).slow_query_ms(0);
    let result = c.query(sql, &cfg, &[]).unwrap();
    assert_eq!(result.frame.nrows(), 11);

    let hits: Vec<_> = obs::slow_queries()
        .into_iter()
        .filter(|q| q.sql.contains("s_slowmark_1"))
        .collect();
    assert_eq!(hits.len(), 1, "slow query must be logged exactly once");
    assert_eq!(hits[0].threshold_ms, 0);
    assert!(hits[0].trace_id > 0);
    assert_eq!(hits[0].rows, 11);

    // The PROFILE frame hands back the same trace the slow log recorded.
    let trace = c.profile().unwrap().expect("traced query should profile");
    assert_eq!(trace.trace_id, hits[0].trace_id);
    assert_eq!(trace.sql, sql);

    net.shutdown();
}

#[test]
fn profile_over_socket_matches_in_process_trace() {
    let _g = obs_lock().lock().unwrap();
    let (server, mut net) = serving();
    let mut c = NetClient::connect(net.local_addr()).unwrap();

    let sql = "select grp, count(*) as c, sum(v) as s from t where id % 2 = 0 \
               group by grp order by grp";
    let cfg = QueryConfig::default().workers(4).trace(true);

    let result = c.query(sql, &cfg, &[]).unwrap();
    let wire = c.profile().unwrap().expect("trace over the wire");

    let (frame, _stats, local) = server.query_traced(sql, cfg, &[]).unwrap();
    let local = local.expect("in-process trace");

    // Same query, same config: identical shape and per-op attribution.
    assert_eq!(result.frame.nrows(), frame.nrows());
    assert_eq!(wire.backend, local.backend);
    assert_eq!(wire.workers, local.workers);
    assert_eq!(wire.rows, local.rows);
    assert_eq!(wire.chunks_scanned, local.chunks_scanned);
    assert_eq!(wire.simd_dispatch, local.simd_dispatch);
    assert!(!wire.ops.is_empty());
    let key = |t: &obs::QueryTrace| -> Vec<(u64, String, u64, u64)> {
        t.ops
            .iter()
            .map(|o| (o.op_index, o.name.clone(), o.calls, o.rows))
            .collect()
    };
    assert_eq!(key(&wire), key(&local), "per-op span totals must match");

    net.shutdown();
}

#[test]
fn untraced_queries_never_allocate_a_trace() {
    let _g = obs_lock().lock().unwrap();
    let (server, mut net) = serving();
    let mut c = NetClient::connect(net.local_addr()).unwrap();

    let sql = "select count(*) as c from t";
    c.query(sql, &QueryConfig::default(), &[]).unwrap();
    assert!(
        c.profile().unwrap().is_none(),
        "untraced query must not produce a PROFILE trace"
    );
    let (_, _, trace) = server
        .query_traced(sql, QueryConfig::default(), &[])
        .unwrap();
    assert!(trace.is_none(), "in-process untraced run allocated a trace");

    // A traced query then sets the connection's last trace; a following
    // untraced query leaves it in place rather than clearing it.
    c.query(sql, &QueryConfig::default().trace(true), &[])
        .unwrap();
    c.query(sql, &QueryConfig::default(), &[]).unwrap();
    let t = c.profile().unwrap().expect("last traced query retained");
    assert_eq!(t.sql, sql);

    net.shutdown();
}

#[test]
fn prepared_statements_carry_trace_knobs_over_socket() {
    let _g = obs_lock().lock().unwrap();
    obs::clear_slow_queries();
    let (_server, mut net) = serving();
    let mut c = NetClient::connect(net.local_addr()).unwrap();

    let sql = "select count(*) as c_slowmark_2 from t where id < $1";
    let cfg = QueryConfig::default().trace(true).slow_query_ms(0);
    let stmt = c.prepare(sql, &cfg).unwrap();
    let r = c
        .execute(&stmt, &[tqp_tensor::Scalar::I64(100)], None)
        .unwrap();
    assert_eq!(r.frame.nrows(), 1);

    let trace = c
        .profile()
        .unwrap()
        .expect("EXECUTE honors prepare-time trace");
    assert_eq!(trace.sql, sql);
    let hits: Vec<_> = obs::slow_queries()
        .into_iter()
        .filter(|q| q.sql.contains("c_slowmark_2"))
        .collect();
    assert_eq!(hits.len(), 1, "prepared slow query logged exactly once");
    assert_eq!(hits[0].trace_id, trace.trace_id);

    net.shutdown();
}

#[test]
fn stats_reply_carries_decodable_registry_snapshot() {
    let _g = obs_lock().lock().unwrap();
    let (_server, mut net) = serving();
    let mut c = NetClient::connect(net.local_addr()).unwrap();

    for _ in 0..3 {
        c.query("select count(*) as c from t", &QueryConfig::default(), &[])
            .unwrap();
    }
    let (stats, snapshot) = c.stats_full().unwrap();
    assert!(stats.queries_ok >= 3);
    assert!(
        snapshot.counter("net.queries_ok") >= 3,
        "registry snapshot should mirror the front-end counters"
    );
    // The snapshot renders as Prometheus exposition text.
    let text = snapshot.prometheus_text();
    assert!(text.contains("net_queries_ok"));

    net.shutdown();
}

#[test]
fn explain_analyze_works_over_the_socket() {
    let _g = obs_lock().lock().unwrap();
    let (_server, mut net) = serving();
    let mut c = NetClient::connect(net.local_addr()).unwrap();

    let r = c
        .query(
            "explain analyze select grp, sum(v) as s from t group by grp",
            &QueryConfig::default(),
            &[],
        )
        .unwrap();
    assert_eq!(r.frame.schema().fields[0].name, "plan");
    let lines: Vec<String> = (0..r.frame.nrows())
        .map(|i| format!("{}", r.frame.row(i)[0]))
        .collect();
    assert!(lines.iter().any(|l| l.contains("Scan(t)")));
    assert!(
        lines.iter().any(|l| l.contains("actual=4000 rows")),
        "scan actuals must ride the wire: {lines:?}"
    );

    net.shutdown();
}

//! Artifact round-trip differential suite: for every TPC-H query,
//! `serialize → deserialize → run` of the lowered [`TensorProgram`] must
//! be **byte-identical** to running the in-memory program directly — on
//! all four backends (vectorized eager/fused for Eager+Graph, scalar for
//! Wasm). This is the deployment guarantee behind the paper's portable
//! artifact story (§3.2): shipping the compiled program loses nothing.

use tqp_repro::core::Session;
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};
use tqp_repro::data::DataFrame;
use tqp_repro::exec::program::{deserialize_program, lower, serialize_program};
use tqp_repro::exec::{scalar, vm, ExecConfig};
use tqp_repro::ir::{compile_sql, AggStrategy, JoinStrategy, PhysicalOptions};
use tqp_repro::ml::ModelRegistry;
use tqp_repro::profile::Profiler;

fn session() -> Session {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 20_220_901,
    });
    let mut s = Session::new();
    s.register_tpch(&data);
    s
}

/// Exact equality — no float tolerance: identical code paths must give
/// identical bytes.
fn assert_identical(n: usize, label: &str, a: &DataFrame, b: &DataFrame) {
    assert_eq!(a.nrows(), b.nrows(), "Q{n} [{label}]: row count");
    assert_eq!(a.ncols(), b.ncols(), "Q{n} [{label}]: col count");
    for i in 0..a.nrows() {
        assert_eq!(a.row(i), b.row(i), "Q{n} [{label}]: row {i} differs");
    }
}

#[test]
fn roundtripped_artifact_is_byte_identical_on_all_backends() {
    let s = session();
    let models = ModelRegistry::new();
    let profiler = Profiler::disabled();
    for opts in [
        PhysicalOptions::default(),
        PhysicalOptions {
            join: JoinStrategy::Hash,
            agg: AggStrategy::Hash,
        },
    ] {
        for (n, sql) in queries::all() {
            let plan = compile_sql(sql, s.catalog(), &opts)
                .unwrap_or_else(|e| panic!("Q{n} compile: {e}"));
            let prog = lower(&plan);
            let artifact = serialize_program(&prog);
            let shipped =
                deserialize_program(&artifact).unwrap_or_else(|e| panic!("Q{n} artifact: {e}"));
            // The program itself survives structurally...
            assert_eq!(prog, shipped, "Q{n}: program changed through the artifact");

            // ...and behaviorally, on the vectorized VM in both modes
            // (Eager + Fused backends and the Graph backend's executor all
            // route through this path)...
            for fused in [false, true] {
                let cfg = ExecConfig::default();
                let (direct, _, _) =
                    vm::run_program(&prog, s.storage(), &models, &profiler, cfg, fused);
                let (via_artifact, _, _) =
                    vm::run_program(&shipped, s.storage(), &models, &profiler, cfg, fused);
                let label = if fused { "fused" } else { "eager" };
                assert_identical(n, label, &direct, &via_artifact);
            }

            // ...and on the scalar row VM (the Wasm backend's interpreter).
            let direct = scalar::run_program_scalar(&prog, s.frames(), &models);
            let via_artifact = scalar::run_program_scalar(&shipped, s.frames(), &models);
            assert_identical(n, "wasm-scalar", &direct, &via_artifact);
        }
    }
}

/// The v2 loader must reject a v1 (expression-tree) artifact with an
/// error that names both versions and says what to do — not misparse it,
/// and not fail with a generic decode error.
#[test]
fn v1_artifact_rejected_with_error_naming_both_versions() {
    use tqp_repro::data::{Field, LogicalType, Schema};
    use tqp_repro::exec::program::{ARTIFACT_FORMAT, ARTIFACT_VERSION};
    use tqp_repro::ir::{compile_sql, Catalog, PhysicalOptions};

    assert_eq!(ARTIFACT_VERSION, 2, "bump this test alongside the format");
    let mut catalog = Catalog::new();
    catalog.register(
        "t",
        Schema::new(vec![Field::new("a", LogicalType::Int64)]),
        10,
    );
    let plan = compile_sql(
        "select a from t where a > 1",
        &catalog,
        &PhysicalOptions::default(),
    )
    .unwrap();
    let artifact = serialize_program(&lower(&plan));
    let v1 = String::from_utf8(artifact.to_vec())
        .unwrap()
        .replace("\"version\":2", "\"version\":1");
    let err = deserialize_program(&bytes::Bytes::from(v1.into_bytes()))
        .expect_err("a v1 artifact must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains(ARTIFACT_FORMAT) || msg.contains("artifact"),
        "{msg}"
    );
    assert!(msg.contains("version 1"), "error must name v1: {msg}");
    assert!(msg.contains("version 2"), "error must name v2: {msg}");
    assert!(msg.to_lowercase().contains("recompile"), "{msg}");
}

#[test]
fn graph_backend_equals_eager_exactly() {
    // Graph = deserialize(artifact) + the same vectorized VM, so its
    // output must match Eager byte-for-byte, not just within tolerance.
    use tqp_repro::core::QueryConfig;
    use tqp_repro::exec::Backend;
    let s = session();
    for (n, sql) in queries::all() {
        let eager = s
            .compile(sql, QueryConfig::default())
            .unwrap()
            .run(&s)
            .unwrap()
            .0;
        let graph = s
            .compile(sql, QueryConfig::default().backend(Backend::Graph))
            .unwrap()
            .run(&s)
            .unwrap()
            .0;
        assert_identical(n, "graph-vs-eager", &eager, &graph);
    }
}

//! Cross-crate edge-case integration tests: empty inputs, degenerate
//! queries, type corners, and the external-plan (JSON) frontend.

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::frame::df;
use tqp_repro::data::{Column, DataFrame};
use tqp_repro::exec::Backend;
use tqp_repro::ir::physical::PhysicalPlan;
use tqp_tensor::Scalar;

fn session_with(rows: usize) -> Session {
    let mut s = Session::new();
    s.register_table(
        "t",
        df(vec![
            ("id", Column::from_i64((0..rows as i64).collect())),
            (
                "v",
                Column::from_f64((0..rows).map(|i| i as f64 / 2.0).collect()),
            ),
            (
                "s",
                Column::from_str((0..rows).map(|i| format!("name{i:03}")).collect()),
            ),
            (
                "d",
                Column::from_date_ns(
                    (0..rows)
                        .map(|i| {
                            tqp_repro::data::dates::parse_to_ns("1995-01-01").unwrap()
                                + i as i64 * tqp_repro::data::dates::NS_PER_DAY
                        })
                        .collect(),
                ),
            ),
        ]),
    );
    s
}

fn both(s: &Session, sql: &str) -> (DataFrame, DataFrame) {
    let tensor = s.sql(sql).unwrap();
    let row = s.sql_baseline(sql).unwrap();
    (tensor, row)
}

#[test]
fn empty_table_full_pipeline() {
    let s = session_with(0);
    let (t, r) = both(
        &s,
        "select id, v * 2 as vv from t where v > 1.0 order by id limit 5",
    );
    assert_eq!(t.nrows(), 0);
    assert_eq!(r.nrows(), 0);
    // Global aggregate over nothing yields exactly one zero row.
    let (t, r) = both(&s, "select count(*), sum(v), min(v), max(v), avg(v) from t");
    assert_eq!(t.nrows(), 1);
    assert_eq!(r.nrows(), 1);
    assert_eq!(t.column(0).get(0).as_i64(), 0);
    assert_eq!(t.column(1).get(0).as_f64(), 0.0);
    // Grouped aggregate over nothing yields zero rows.
    let (t, _) = both(&s, "select s, count(*) from t group by s");
    assert_eq!(t.nrows(), 0);
}

#[test]
fn single_row_table() {
    let s = session_with(1);
    let (t, r) = both(&s, "select s, v from t where id = 0");
    assert_eq!(t.nrows(), 1);
    assert_eq!(t.row(0), r.row(0));
}

#[test]
fn filter_matching_nothing_then_join() {
    let mut s = session_with(10);
    s.register_table(
        "u",
        df(vec![
            ("id", Column::from_i64(vec![1, 2])),
            ("w", Column::from_f64(vec![1.0, 2.0])),
        ]),
    );
    let (t, r) = both(
        &s,
        "select t.id, u.w from t, u where t.id = u.id and t.v > 999.0 order by t.id",
    );
    assert_eq!(t.nrows(), 0);
    assert_eq!(r.nrows(), 0);
}

#[test]
fn date_arithmetic_and_extract() {
    let s = session_with(400);
    let (t, r) = both(
        &s,
        "select extract(year from d) as y, count(*) as c from t \
         where d >= date '1995-06-01' and d < date '1995-06-01' + interval '6' month \
         group by extract(year from d) order by y",
    );
    assert_eq!(t.nrows(), r.nrows());
    assert_eq!(t.column(0).get(0).as_i64(), 1995);
    assert_eq!(t.column(1).get(0), r.column(1).get(0));
}

#[test]
fn string_functions_and_ordering() {
    let s = session_with(25);
    let (t, r) = both(
        &s,
        "select substring(s from 5 for 3) as tail, count(*) as c from t \
         where s like 'name0%' group by substring(s from 5 for 3) \
         order by tail desc limit 4",
    );
    assert_eq!(t.nrows(), r.nrows());
    for i in 0..t.nrows() {
        assert_eq!(t.row(i), r.row(i));
    }
}

#[test]
fn limit_zero_and_overlimit() {
    let s = session_with(5);
    let (t, _) = both(&s, "select id from t limit 0");
    assert_eq!(t.nrows(), 0);
    let (t, _) = both(&s, "select id from t order by id limit 100");
    assert_eq!(t.nrows(), 5);
}

#[test]
fn duplicate_output_names_are_deduped() {
    let s = session_with(3);
    let out = s.sql("select v, v from t").unwrap();
    assert_eq!(out.schema().fields[0].name, "v");
    assert_eq!(out.schema().fields[1].name, "v_2");
}

#[test]
fn json_plan_frontend_roundtrip_executes() {
    let s = session_with(20);
    let q = s
        .compile(
            "select s, sum(v) as total from t where id % 2 = 0 group by s order by total desc limit 3",
            QueryConfig::default(),
        )
        .unwrap();
    let json = q.plan().to_json();
    let plan = PhysicalPlan::from_json(&json).unwrap();
    let q2 = s.compile_plan(&plan, QueryConfig::default().backend(Backend::Graph));
    let (a, _) = q.run(&s).unwrap();
    let (b, _) = q2.run(&s).unwrap();
    assert_eq!(a.nrows(), b.nrows());
    for i in 0..a.nrows() {
        assert_eq!(a.row(i), b.row(i));
    }
}

#[test]
fn self_join_with_aliases() {
    let s = session_with(6);
    let (t, r) = both(
        &s,
        "select a.id, b.id from t a, t b where a.id = b.id and a.v > 0.4 order by a.id",
    );
    assert_eq!(t.nrows(), r.nrows());
    for i in 0..t.nrows() {
        assert_eq!(t.row(i), r.row(i));
    }
}

#[test]
fn having_without_group_output() {
    let s = session_with(30);
    let (t, r) = both(
        &s,
        "select s from t group by s having count(*) >= 1 order by s limit 5",
    );
    assert_eq!(t.nrows(), r.nrows());
}

#[test]
fn cte_used_twice() {
    let s = session_with(12);
    let (t, r) = both(
        &s,
        "with big as (select id, v from t where v > 2.0) \
         select a.id from big a, big b where a.id = b.id order by a.id",
    );
    assert_eq!(t.nrows(), r.nrows());
    for i in 0..t.nrows() {
        assert_eq!(t.row(i), r.row(i));
    }
}

#[test]
fn in_list_of_strings_and_numbers() {
    let s = session_with(10);
    let (t, r) = both(
        &s,
        "select id from t where s in ('name003', 'name007', 'missing') \
         and id in (3, 7, 9) order by id",
    );
    assert_eq!(t.nrows(), 2);
    assert_eq!(r.nrows(), 2);
    assert_eq!(t.column(0).get(0), Scalar::I64(3));
}

#[test]
fn wasm_backend_on_edge_inputs() {
    let s = session_with(0);
    let q = s
        .compile(
            "select count(*) from t",
            QueryConfig::default().backend(Backend::Wasm),
        )
        .unwrap();
    let (out, _) = q.run(&s).unwrap();
    assert_eq!(out.column(0).get(0).as_i64(), 0);
}

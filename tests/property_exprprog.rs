//! Proptest parity suite for the compiled **ExprProgram** micro-IR:
//! random well-typed expression trees over every dtype (Int64, Float64,
//! Str, Bool, Date) with NULL-bearing (validity-masked) columns, asserted
//! **bitwise** equivalent between the compiled flat program and the legacy
//! tree interpreter — on both execution shapes:
//!
//! * vectorized: `exprprog::eval_all` vs `expr::eval` (value tensors
//!   compared bit-for-bit, validity masks exactly);
//! * scalar rows: `exprprog::eval_row_outputs` vs
//!   `tqp_baseline::eval::eval_expr` (exact `Scalar` equality, including
//!   NULL propagation).
//!
//! Worker-count invariance is covered two ways: expression evaluation is
//! asserted morsel-invariant (evaluating two slices and concatenating
//! equals evaluating the whole batch — morsels are exactly how worker
//! threads see batches), and the fused filter's register-compacting
//! stepper is asserted equivalent to the eager one-pass mask fold on
//! random conjunct sets. (Whole-query bitwise parity at workers 1 vs 4 is
//! locked in by `tests/parallel_parity.rs` on all 22 TPC-H queries.)

use proptest::prelude::*;
use proptest::TestRng;
use tqp_repro::data::LogicalType;
use tqp_repro::exec::batch::Batch;
use tqp_repro::exec::expr as tree;
use tqp_repro::exec::exprfuse;
use tqp_repro::exec::exprprog;
use tqp_repro::ir::expr::{BinOp, BoundExpr as E, ScalarFunc};
use tqp_repro::ml::ModelRegistry;
use tqp_tensor::{DType, Scalar, Tensor};

const N_ROWS: usize = 48;

/// Column layout of the test batch:
/// 0 id:Int64, 1 v:Float64, 2 s:Str, 3 flag:Bool,
/// 4 nv:Int64 (nullable), 5 d:Date, 6 nf:Float64 (nullable).
fn test_batch() -> Batch {
    let ids: Vec<i64> = (0..N_ROWS as i64).map(|i| (i * 7) % 23 - 5).collect();
    let vs: Vec<f64> = (0..N_ROWS)
        .map(|i| ((i * 13) % 97) as f64 * 1.5 - 40.0)
        .collect();
    let words = ["alpha", "ab", "abc", "beta", "bab", "", "cabal", "azc"];
    let ss: Vec<&str> = (0..N_ROWS).map(|i| words[i % words.len()]).collect();
    let flags: Vec<bool> = (0..N_ROWS).map(|i| i % 3 != 1).collect();
    let nvs: Vec<i64> = (0..N_ROWS as i64).map(|i| (i * 11) % 17).collect();
    let nv_valid: Vec<bool> = (0..N_ROWS).map(|i| i % 4 != 2).collect();
    let base = tqp_repro::data::dates::parse_to_ns("1994-03-15").unwrap();
    let ds: Vec<i64> = (0..N_ROWS as i64)
        .map(|i| base + i * 97 * 86_400_000_000_000)
        .collect();
    let nfs: Vec<f64> = (0..N_ROWS).map(|i| (i % 29) as f64 - 14.0).collect();
    let nf_valid: Vec<bool> = (0..N_ROWS).map(|i| i % 5 != 3).collect();
    Batch::with_validity(
        vec![
            Tensor::from_i64(ids),
            Tensor::from_f64(vs),
            Tensor::from_strings(&ss, 0),
            Tensor::from_bool(flags),
            Tensor::from_i64(nvs),
            Tensor::from_i64(ds),
            Tensor::from_f64(nfs),
        ],
        vec![
            None,
            None,
            None,
            None,
            Some(Tensor::from_bool(nv_valid)),
            None,
            Some(Tensor::from_bool(nf_valid)),
        ],
    )
}

/// The row-format mirror of the batch: invalid cells become `Scalar::Null`
/// (the row engine's NULL representation).
fn test_rows(batch: &Batch) -> Vec<Vec<Scalar>> {
    (0..batch.nrows())
        .map(|i| {
            (0..batch.ncols())
                .map(|c| {
                    let valid = batch.validity[c]
                        .as_ref()
                        .map(|m| m.as_bool()[i])
                        .unwrap_or(true);
                    if !valid {
                        return Scalar::Null;
                    }
                    let t = &batch.columns[c];
                    match t.dtype() {
                        DType::I64 => Scalar::I64(t.as_i64()[i]),
                        DType::F64 => Scalar::F64(t.as_f64()[i]),
                        DType::Bool => Scalar::Bool(t.as_bool()[i]),
                        DType::U8 => Scalar::Str(t.str_at(i)),
                        other => panic!("unexpected dtype {other:?}"),
                    }
                })
                .collect()
        })
        .collect()
}

// ---------------------------------------------------------------------
// Random well-typed expression generation
// ---------------------------------------------------------------------

struct Gen {
    rng: TestRng,
}

impl Gen {
    fn pick(&mut self, n: u64) -> u64 {
        self.rng.below(n)
    }

    fn int_expr(&mut self, depth: usize) -> E {
        if depth == 0 {
            return match self.pick(4) {
                0 => E::col(0, LogicalType::Int64),
                1 => E::col(4, LogicalType::Int64), // nullable
                2 => E::lit_i64(self.pick(41) as i64 - 20),
                _ => E::col(0, LogicalType::Int64),
            };
        }
        match self.pick(7) {
            0..=2 => {
                let op = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Mod]
                    [self.pick(5) as usize];
                E::Binary {
                    op,
                    left: Box::new(self.int_expr(depth - 1)),
                    right: Box::new(self.int_expr(depth - 1)),
                    ty: LogicalType::Int64,
                }
            }
            3 => E::Neg(Box::new(self.int_expr(depth - 1))),
            4 => E::Func {
                func: ScalarFunc::Abs,
                args: vec![self.int_expr(depth - 1)],
                ty: LogicalType::Int64,
            },
            5 => E::Func {
                func: if self.pick(2) == 0 {
                    ScalarFunc::ExtractYear
                } else {
                    ScalarFunc::ExtractMonth
                },
                args: vec![E::col(5, LogicalType::Date)],
                ty: LogicalType::Int64,
            },
            _ => E::Case {
                branches: vec![(self.bool_expr(depth - 1), self.int_expr(depth - 1))],
                else_expr: Box::new(self.int_expr(depth - 1)),
                ty: LogicalType::Int64,
            },
        }
    }

    fn float_expr(&mut self, depth: usize) -> E {
        if depth == 0 {
            return match self.pick(3) {
                0 => E::col(1, LogicalType::Float64),
                1 => E::col(6, LogicalType::Float64), // nullable
                _ => E::lit_f64(self.pick(2000) as f64 / 16.0 - 60.0),
            };
        }
        match self.pick(6) {
            0..=2 => {
                let op = [BinOp::Add, BinOp::Sub, BinOp::Mul][self.pick(3) as usize];
                E::Binary {
                    op,
                    left: Box::new(self.float_expr(depth - 1)),
                    right: Box::new(self.float_expr(depth - 1)),
                    ty: LogicalType::Float64,
                }
            }
            3 => E::Neg(Box::new(self.float_expr(depth - 1))),
            4 => E::Func {
                func: ScalarFunc::Abs,
                args: vec![self.float_expr(depth - 1)],
                ty: LogicalType::Float64,
            },
            // Mixed-type CASE exercises the Coerce op (Int64 arm in a
            // Float64 CASE, like Q14's promo numerator).
            _ => E::Case {
                branches: vec![(
                    self.bool_expr(depth - 1),
                    if self.pick(2) == 0 {
                        self.float_expr(depth - 1)
                    } else {
                        self.int_expr(depth - 1)
                    },
                )],
                else_expr: Box::new(if self.pick(2) == 0 {
                    self.float_expr(depth - 1)
                } else {
                    self.int_expr(depth - 1)
                }),
                ty: LogicalType::Float64,
            },
        }
    }

    fn str_expr(&mut self, depth: usize) -> E {
        if depth == 0 || self.pick(3) == 0 {
            return match self.pick(3) {
                0 | 1 => E::col(2, LogicalType::Str),
                _ => E::lit_str(["ab", "beta", "z", ""][self.pick(4) as usize]),
            };
        }
        E::Func {
            func: ScalarFunc::Substring {
                start: 1 + self.pick(4) as i64,
                len: self.pick(6) as i64,
            },
            args: vec![self.str_expr(depth - 1)],
            ty: LogicalType::Str,
        }
    }

    fn bool_expr(&mut self, depth: usize) -> E {
        if depth == 0 {
            return match self.pick(3) {
                0 => E::col(3, LogicalType::Bool),
                1 => E::lit_bool(self.pick(2) == 0),
                _ => E::col(3, LogicalType::Bool),
            };
        }
        let cmp = [
            BinOp::Eq,
            BinOp::NotEq,
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
        ][self.pick(6) as usize];
        match self.pick(8) {
            // Numeric comparisons — literal operands on either side
            // exercise the CompareConst fast path and its flip.
            0 | 1 => E::Binary {
                op: cmp,
                left: Box::new(self.numeric_expr(depth - 1)),
                right: Box::new(self.numeric_expr(depth - 1)),
                ty: LogicalType::Bool,
            },
            2 => E::Binary {
                op: cmp,
                left: Box::new(self.str_expr(depth - 1)),
                right: Box::new(self.str_expr(depth - 1)),
                ty: LogicalType::Bool,
            },
            3 => E::Binary {
                op: if self.pick(2) == 0 {
                    BinOp::And
                } else {
                    BinOp::Or
                },
                left: Box::new(self.bool_expr(depth - 1)),
                right: Box::new(self.bool_expr(depth - 1)),
                ty: LogicalType::Bool,
            },
            4 => E::Not(Box::new(self.bool_expr(depth - 1))),
            5 => E::Like {
                expr: Box::new(self.str_expr(depth - 1)),
                pattern: ["a%", "%b", "%ab%", "a_c%", "abc", "%", "b%a"][self.pick(7) as usize]
                    .to_string(),
                negated: self.pick(2) == 0,
            },
            6 => E::InList {
                expr: Box::new(self.int_expr(depth - 1)),
                list: (0..1 + self.pick(4))
                    .map(|_| Scalar::I64(self.pick(31) as i64 - 15))
                    .collect(),
                negated: self.pick(2) == 0,
            },
            _ => E::IsNull {
                expr: Box::new(match self.pick(3) {
                    0 => self.int_expr(depth - 1),
                    1 => self.float_expr(depth - 1),
                    _ => E::col(4, LogicalType::Int64),
                }),
                negated: self.pick(2) == 0,
            },
        }
    }

    fn numeric_expr(&mut self, depth: usize) -> E {
        if self.pick(2) == 0 {
            self.int_expr(depth)
        } else {
            self.float_expr(depth)
        }
    }

    fn any_expr(&mut self, depth: usize) -> E {
        match self.pick(4) {
            0 => self.int_expr(depth),
            1 => self.float_expr(depth),
            2 => self.str_expr(depth),
            _ => self.bool_expr(depth),
        }
    }
}

fn tensors_bit_equal(a: &Tensor, b: &Tensor) -> bool {
    if a.dtype() != b.dtype() || a.nrows() != b.nrows() {
        return false;
    }
    match a.dtype() {
        DType::I64 => a.as_i64() == b.as_i64(),
        DType::I32 => a.as_i32() == b.as_i32(),
        DType::Bool => a.as_bool() == b.as_bool(),
        DType::F64 => a
            .as_f64()
            .iter()
            .zip(b.as_f64())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        DType::F32 => a
            .as_f32()
            .iter()
            .zip(b.as_f32())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        DType::U8 => (0..a.nrows()).all(|i| a.str_row(i) == b.str_row(i)),
    }
}

fn validity_equal(a: &Option<Tensor>, b: &Option<Tensor>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => x.as_bool() == y.as_bool(),
        // A validity of all-true and no validity are semantically equal,
        // but the compiled form must reproduce the tree's representation
        // *exactly* — so this counts as a mismatch.
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Compiled vectorized evaluation is bitwise identical to the legacy
    // tree interpreter — values, dtypes, and validity masks — and
    // morsel-invariant (slice + concat == whole batch).
    #[test]
    fn compiled_matches_tree_interpreter_bitwise(seed in any::<u64>()) {
        let mut g = Gen { rng: TestRng::new(seed) };
        let exprs: Vec<E> = (0..3).map(|_| g.any_expr(3)).collect();
        let batch = test_batch();
        let models = ModelRegistry::new();
        let prog = exprprog::compile_exprs(&exprs);
        let compiled = exprprog::eval_all(&prog, &batch, &models);
        for (k, e) in exprs.iter().enumerate() {
            let (tv, tval) = tree::eval(e, &batch, &models);
            let (cv, cval) = &compiled[k];
            prop_assert!(
                tensors_bit_equal(&tv, cv),
                "value mismatch for {e:?}\nprogram:\n{}", prog.display()
            );
            prop_assert!(
                validity_equal(&tval, cval),
                "validity mismatch for {e:?}\nprogram:\n{}", prog.display()
            );
        }
        // Morsel invariance: evaluating two halves and concatenating is
        // bitwise the evaluation of the whole batch (this is exactly how
        // morsel-parallel workers see the data, so compiled expressions
        // cannot introduce worker-count-dependent results).
        let half = batch.nrows() / 2;
        let lo = batch.slice_rows(0, half);
        let hi = batch.slice_rows(half, batch.nrows());
        let out_lo = exprprog::eval_all(&prog, &lo, &models);
        let out_hi = exprprog::eval_all(&prog, &hi, &models);
        for k in 0..exprs.len() {
            let merged = tqp_tensor::index::concat(&[&out_lo[k].0, &out_hi[k].0]);
            prop_assert!(
                tensors_bit_equal(&compiled[k].0, &merged),
                "morsel variance for {:?}", exprs[k]
            );
        }
    }

    // The scalar row walk over the same flat ops matches the row-engine
    // tree interpreter exactly (three-valued logic, NULL propagation).
    #[test]
    fn compiled_row_walk_matches_row_interpreter(seed in any::<u64>()) {
        let mut g = Gen { rng: TestRng::new(seed) };
        let exprs: Vec<E> = (0..3).map(|_| g.any_expr(3)).collect();
        let batch = test_batch();
        let rows = test_rows(&batch);
        let prog = exprprog::compile_exprs(&exprs);
        let mut scratch = Vec::new();
        for row in &rows {
            let outs = exprprog::eval_row_outputs(&prog, row, &mut scratch);
            for (k, e) in exprs.iter().enumerate() {
                let oracle = tqp_baseline::eval::eval_expr(e, row);
                prop_assert_eq!(
                    &outs[k], &oracle,
                    "row mismatch for {:?}\nrow: {:?}\nprogram:\n{}",
                    e, row, prog.display()
                );
            }
        }
    }

    // The fused filter's register-compacting stepper selects exactly the
    // rows the eager one-pass mask fold selects, for every compaction
    // schedule (compact after conjunct k, for every k).
    #[test]
    fn fused_stepper_matches_eager_mask_fold(seed in any::<u64>()) {
        let mut g = Gen { rng: TestRng::new(seed) };
        let conjuncts: Vec<E> = (0..3).map(|_| g.bool_expr(2)).collect();
        let batch = test_batch();
        let models = ModelRegistry::new();
        let prog = exprprog::compile_exprs(&conjuncts);
        let eager_mask = exprprog::eval_conjuncts_eager(&prog, &batch, &models);
        // The fused-kernel mask (or its generic fallback for shapes the
        // specializer rejects) must be bitwise the eager fold.
        let fused_mask = exprfuse::conjunct_mask(&prog, &batch, &models, true);
        prop_assert_eq!(
            fused_mask.as_bool(), eager_mask.as_bool(),
            "fused kernel/eager divergence for {:?}\nprogram:\n{}",
            conjuncts, prog.display()
        );
        let eager_idx = tqp_tensor::index::mask_to_indices(&eager_mask);
        for compact_at in 0..conjuncts.len() {
            let mut ev = exprprog::FusedEval::new(&prog);
            let mut current = batch.slice_rows(0, batch.nrows());
            // Survivor row ids relative to the original batch.
            let mut live: Vec<i64> = (0..batch.nrows() as i64).collect();
            let mut acc: Option<Tensor> = None;
            for k in 0..conjuncts.len() {
                let mask = ev.step(&current, &models);
                let mask = match acc.take() {
                    Some(prev) => tqp_tensor::ops::and(&prev, &mask),
                    None => mask,
                };
                if k >= compact_at {
                    let idx = tqp_tensor::index::mask_to_indices(&mask);
                    live = idx.as_i64().iter().map(|&i| live[i as usize]).collect();
                    current = current.take(&idx);
                    ev.compact(&idx);
                } else {
                    acc = Some(mask);
                }
            }
            if let Some(mask) = acc {
                let idx = tqp_tensor::index::mask_to_indices(&mask);
                live = idx.as_i64().iter().map(|&i| live[i as usize]).collect();
            }
            prop_assert_eq!(
                &live, &eager_idx.as_i64().to_vec(),
                "fused/eager divergence (compact_at={}) for {:?}\nprogram:\n{}",
                compact_at, conjuncts, prog.display()
            );
        }
    }
}

/// Adversarial-float batch for the fused dense-mask path: columns
/// 0 i:Int64 (with `MIN`/`MAX` extremes), 1 f:Float64 (NaN, ±0.0, ±inf,
/// mixed exponents), 2 nf:Float64 nullable (same values, NULL-masked),
/// 3 b:Bool.
fn adversarial_batch() -> Batch {
    let n = N_ROWS;
    let iv: Vec<i64> = (0..n)
        .map(|k| match k % 9 {
            0 => i64::MIN,
            1 => i64::MAX,
            2 => i64::MIN + 1,
            3 => i64::MAX - 1,
            4 => 0,
            _ => (k as i64 * 37) % 200 - 100,
        })
        .collect();
    let fv: Vec<f64> = (0..n)
        .map(|k| match k % 11 {
            0 => f64::NAN,
            1 => 0.0,
            2 => -0.0,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => 1e-300,
            6 => -1e300,
            7 => 5e-2,
            _ => (k as f64 - 20.0) * 1.75,
        })
        .collect();
    let bv: Vec<bool> = (0..n).map(|k| k % 3 != 1).collect();
    let nf_valid: Vec<bool> = (0..n).map(|k| k % 4 != 2).collect();
    Batch::with_validity(
        vec![
            Tensor::from_i64(iv),
            Tensor::from_f64(fv.clone()),
            Tensor::from_f64(fv),
            Tensor::from_bool(bv),
        ],
        vec![None, None, Some(Tensor::from_bool(nf_valid)), None],
    )
}

/// One random compare-against-constant conjunct over the adversarial
/// batch — the exact shape the fused kernel canonicalizes into merged
/// interval predicates. Constants include every interval-edge value the
/// canonicalizer special-cases.
fn adversarial_conjunct(g: &mut Gen) -> E {
    let cmp = [
        BinOp::Eq,
        BinOp::NotEq,
        BinOp::Lt,
        BinOp::LtEq,
        BinOp::Gt,
        BinOp::GtEq,
    ][g.pick(6) as usize];
    match g.pick(8) {
        0..=2 => {
            let c = [
                i64::MIN,
                i64::MIN + 1,
                -50,
                0,
                3,
                77,
                i64::MAX - 1,
                i64::MAX,
            ][g.pick(8) as usize];
            E::Binary {
                op: cmp,
                left: Box::new(E::col(0, LogicalType::Int64)),
                right: Box::new(E::lit_i64(c)),
                ty: LogicalType::Bool,
            }
        }
        3..=6 => {
            let c = [
                f64::NAN,
                0.0,
                -0.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                1e-300,
                -1e300,
                5e-2,
                -7.25,
            ][g.pick(9) as usize];
            E::Binary {
                op: cmp,
                left: Box::new(E::col(
                    if g.pick(2) == 0 { 1 } else { 2 },
                    LogicalType::Float64,
                )),
                right: Box::new(E::lit_f64(c)),
                ty: LogicalType::Bool,
            }
        }
        _ => E::col(3, LogicalType::Bool),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // The fused kernel's canonicalized dense mask path — interval merging,
    // i64 MIN/MAX edges, NaN constants, ±0.0 bound ties, runtime validity
    // folds — is bitwise the eager unfused fold AND the tree
    // interpreter's mask, for random compare chains that repeatedly hit
    // the same columns (forcing interval merges and empty intervals).
    #[test]
    fn fused_dense_mask_matches_eager_and_tree(seed in any::<u64>()) {
        let mut g = Gen { rng: TestRng::new(seed) };
        let batch = adversarial_batch();
        let models = ModelRegistry::new();
        let n_conj = 1 + g.pick(5) as usize;
        let conjuncts: Vec<E> = (0..n_conj).map(|_| adversarial_conjunct(&mut g)).collect();
        let prog = exprprog::compile_exprs(&conjuncts);
        let fused = exprfuse::conjunct_mask(&prog, &batch, &models, true);
        let eager = exprprog::eval_conjuncts_eager(&prog, &batch, &models);
        prop_assert_eq!(
            fused.as_bool(), eager.as_bool(),
            "fused/eager divergence for {:?}\nprogram:\n{}", conjuncts, prog.display()
        );
        let mut tree_mask: Option<Tensor> = None;
        for c in &conjuncts {
            let m = tree::eval_mask(c, &batch, &models);
            tree_mask = Some(match tree_mask.take() {
                Some(prev) => tqp_tensor::ops::and(&prev, &m),
                None => m,
            });
        }
        let tree_mask = tree_mask.unwrap();
        prop_assert_eq!(
            eager.as_bool(), tree_mask.as_bool(),
            "eager/tree divergence for {:?}", conjuncts
        );
    }

    // Fused all-outputs evaluation (projections / aggregate inputs / sort
    // keys) is bitwise the generic per-op evaluation across every dtype
    // and validity layout the expression generator can produce.
    #[test]
    fn fused_outputs_match_generic_eval_all(seed in any::<u64>()) {
        let mut g = Gen { rng: TestRng::new(seed) };
        let exprs: Vec<E> = (0..3).map(|_| g.any_expr(3)).collect();
        let batch = test_batch();
        let models = ModelRegistry::new();
        let prog = exprprog::compile_exprs(&exprs);
        let generic = exprprog::eval_all(&prog, &batch, &models);
        let fused = exprfuse::eval_all(&prog, &batch, &models, true);
        for (k, e) in exprs.iter().enumerate() {
            prop_assert!(
                tensors_bit_equal(&generic[k].0, &fused[k].0),
                "fused output value mismatch for {e:?}\nprogram:\n{}", prog.display()
            );
            prop_assert!(
                validity_equal(&generic[k].1, &fused[k].1),
                "fused output validity mismatch for {e:?}\nprogram:\n{}", prog.display()
            );
        }
    }
}

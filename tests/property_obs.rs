//! Metrics-registry properties: merge-order invariance and exposition
//! format.
//!
//! The registry is the always-on layer under `exec.*`/`net.*`/`cache.*`,
//! fed concurrently by worker threads. Its correctness contract is that
//! **aggregation is order-free**: per-worker deltas applied in any
//! interleaving produce the same snapshot as a single-threaded replay.
//! The exposition contract is that `prometheus_text` always emits valid
//! line format, whatever metric names and values are registered.

use proptest::prelude::*;
use tqp_repro::obs::{Registry, Snapshot};

/// Deterministic Fisher–Yates from a seed (the shim has no shuffle).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        // SplitMix64 step — cheap, well distributed.
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        items.swap(i, (z as usize) % (i + 1));
    }
}

const METRICS: &[&str] = &["exec.rows", "exec.chunks", "net.queries_ok", "cache.hits"];
const HISTS: &[&str] = &["exec.query_us", "net.query_us"];

/// Apply one worker's delta batch: counter bumps and histogram
/// observations, selected by index.
fn apply(reg: &Registry, deltas: &[(u8, u64)]) {
    for &(which, v) in deltas {
        let w = which as usize;
        if w < METRICS.len() {
            reg.counter(METRICS[w]).add(v);
        } else {
            reg.histogram(HISTS[w - METRICS.len()]).observe(v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Per-worker deltas merged in any interleaving == sequential replay.
    #[test]
    fn registry_merge_is_order_free(
        workers in prop::collection::vec(
            prop::collection::vec((0u8..6, 0u64..1_000_000), 0..20),
            1..5,
        ),
        seed in 0u64..u64::MAX,
    ) {
        // Sequential, worker-by-worker replay.
        let seq = Registry::new();
        for w in &workers {
            apply(&seq, w);
        }

        // The same deltas, globally shuffled across workers.
        let mut flat: Vec<(u8, u64)> = workers.iter().flatten().copied().collect();
        shuffle(&mut flat, seed);
        let merged = Registry::new();
        apply(&merged, &flat);

        prop_assert_eq!(seq.snapshot(), merged.snapshot());
    }

    // Snapshots survive the JSON wire encoding (what STATS ships).
    #[test]
    fn snapshot_json_roundtrip(
        deltas in prop::collection::vec((0u8..6, 0u64..1_000_000), 0..40),
    ) {
        let reg = Registry::new();
        apply(&reg, &deltas);
        let snap = reg.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        prop_assert_eq!(snap, back);
    }

    // Every non-comment exposition line is `name value` with a numeric
    // value and a legal metric name — the Prometheus text line format.
    #[test]
    fn prometheus_text_is_line_format_clean(
        deltas in prop::collection::vec((0u8..6, 0u64..1_000_000), 0..40),
    ) {
        let reg = Registry::new();
        apply(&reg, &deltas);
        let text = reg.snapshot().prometheus_text();
        for line in text.lines() {
            if line.is_empty() || line.starts_with("# ") {
                continue;
            }
            let (name, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| TestCaseError::fail(format!("no value: {line:?}")))?;
            // Metric name (with optional {labels} suffix, e.g. quantiles).
            let bare = name.split('{').next().unwrap();
            prop_assert!(
                !bare.is_empty()
                    && bare.chars().next().unwrap().is_ascii_alphabetic()
                    && bare
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name in {line:?}"
            );
            if name.contains('{') {
                prop_assert!(name.ends_with('}'), "unclosed labels in {line:?}");
            }
            prop_assert!(
                value.parse::<f64>().is_ok(),
                "non-numeric value in {line:?}"
            );
        }
    }
}

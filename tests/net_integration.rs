//! Network front-end integration: real sockets against a shared
//! [`Server`], checking the three serving contracts end to end —
//!
//! 1. results over the wire are **bitwise identical** to in-process
//!    execution, under genuine client concurrency;
//! 2. deadlines, CANCEL frames, and client disconnects abort cleanly
//!    with retryable errors and **free their pool slots** (the server
//!    keeps answering at full capacity afterwards);
//! 3. admission control sheds load with typed `Overloaded` rejections
//!    instead of queueing without bound.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::frame::df;
use tqp_repro::data::{Column, DataFrame};
use tqp_repro::net::{wire, ErrorCode, NetClient, NetConfig, NetError, NetServer};
use tqp_repro::serve::Server;
use tqp_tensor::Scalar;

const N_ROWS: i64 = 120_000;

/// `t`: the comparison workload. `slow`: a group-by over ~60k distinct
/// strings — enough work (hashing + sorting the group keys) that a query
/// against it reliably spans many morsel-boundary cancellation checks.
fn session() -> Session {
    let mut s = Session::new();
    s.register_table(
        "t",
        df(vec![
            ("id", Column::from_i64((0..N_ROWS).collect())),
            (
                "grp",
                Column::from_i64((0..N_ROWS).map(|i| i % 7).collect()),
            ),
            (
                "v",
                Column::from_f64(
                    (0..N_ROWS)
                        .map(|i| ((i % 9973) as f64) * 1.5 - 250.0)
                        .collect(),
                ),
            ),
        ]),
    );
    s.register_table(
        "slow",
        df(vec![
            (
                "tag",
                Column::from_str(
                    (0..N_ROWS)
                        .map(|i| format!("key{:06}", i % 60_000))
                        .collect(),
                ),
            ),
            (
                "v",
                Column::from_f64((0..N_ROWS).map(|i| i as f64 * 0.25).collect()),
            ),
        ]),
    );
    s
}

const SLOW_SQL: &str =
    "select tag, count(*) as c, sum(v) as s from slow group by tag order by tag desc";

fn serving(cfg: NetConfig) -> (Arc<Server>, NetServer) {
    let server = Arc::new(Server::new(session()));
    let net = NetServer::bind(server.clone(), "127.0.0.1:0", cfg).unwrap();
    (server, net)
}

/// Canonical row digest — exact formatting, no tolerance.
fn digest(frame: &DataFrame) -> Vec<String> {
    (0..frame.nrows())
        .map(|i| format!("{:?}", frame.row(i)))
        .collect()
}

#[test]
fn concurrent_socket_clients_match_in_process_execution() {
    let (server, mut net) = serving(NetConfig::default());
    let addr = net.local_addr();
    let cfg = QueryConfig::default().workers(4);

    let statements: &[(&str, Option<f64>)] = &[
        (
            "select grp, sum(v) as s, count(*) as c from t where id % 3 = 0 group by grp order by grp",
            None,
        ),
        (
            "select id, v * 2.0 as vv from t where v > $1 and id < 5000 order by id",
            Some(333.25),
        ),
        (
            "select count(*) as c, min(v) as mn, max(v) as mx from t where grp = 2",
            None,
        ),
    ];

    // In-process reference digests.
    let reference: Vec<Vec<String>> = statements
        .iter()
        .map(|&(sql, p)| {
            let params: Vec<Scalar> = p.map(Scalar::F64).into_iter().collect();
            digest(&server.query(sql, cfg, &params).unwrap().0)
        })
        .collect();
    let reference = Arc::new(reference);

    // 6 socket clients × 8 rounds × all statements, half through the
    // one-shot QUERY path and half through PREPARE + EXECUTE handles.
    let threads: Vec<_> = (0..6)
        .map(|tid| {
            let reference = reference.clone();
            std::thread::spawn(move || {
                let mut c = NetClient::connect(addr).unwrap();
                let handles: Vec<_> = statements
                    .iter()
                    .map(|&(sql, _)| c.prepare(sql, &cfg).unwrap())
                    .collect();
                for round in 0..8 {
                    for (si, &(sql, p)) in statements.iter().enumerate() {
                        let params: Vec<Scalar> = p.map(Scalar::F64).into_iter().collect();
                        let result = if (tid + round + si) % 2 == 0 {
                            c.query(sql, &cfg, &params).unwrap()
                        } else {
                            c.execute(&handles[si], &params, None).unwrap()
                        };
                        assert_eq!(result.rows as usize, result.frame.nrows());
                        assert_eq!(
                            digest(&result.frame),
                            reference[si],
                            "client {tid} round {round} stmt {si} diverged from in-process"
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let stats = net.stats();
    assert_eq!(stats.accepted, 6);
    assert_eq!(stats.queries_ok, 6 * 8 * 3);
    assert_eq!(stats.queries_failed, 0);
    assert_eq!(stats.inflight, 0);
    // Socket clients share the serve cache with in-process callers: only
    // the reference prepares compiled.
    assert_eq!(server.cache_stats().misses, 3);
    net.shutdown();
}

#[test]
fn deadlines_cancels_and_disconnects_free_their_pool_slots() {
    let (server, mut net) = serving(NetConfig {
        max_inflight: 4,
        ..NetConfig::default()
    });
    let addr = net.local_addr();
    let run_cfg = QueryConfig::default().workers(2);

    // --- Mass deadline expiry: a wave of queries that can never finish
    // in time, across several connections at once.
    let waves: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = NetClient::connect(addr).unwrap();
                let mut aborted = 0;
                for _ in 0..3 {
                    let cfg = run_cfg.deadline(Duration::from_millis(1));
                    match c.query(SLOW_SQL, &cfg, &[]) {
                        Err(NetError::Remote {
                            code: ErrorCode::Execution,
                            retryable: true,
                            ..
                        }) => aborted += 1,
                        Ok(_) => {} // finished inside 1ms — machine's fast, fine
                        other => panic!("expected deadline abort, got {other:?}"),
                    }
                }
                aborted
            })
        })
        .collect();
    let aborted: i32 = waves.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(aborted >= 1, "no deadline ever expired on the slow query");

    // --- Explicit CANCEL frames against an in-flight query.
    {
        let mut c = NetClient::connect(addr).unwrap();
        let mut canceller = c.canceller().unwrap();
        let mut cancelled_seen = false;
        for _ in 0..5 {
            let killer = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(3));
                canceller.cancel().unwrap();
                canceller
            });
            match c.query(SLOW_SQL, &run_cfg, &[]) {
                Err(NetError::Remote {
                    code: ErrorCode::Execution,
                    retryable: true,
                    message,
                }) => {
                    assert!(message.contains("cancel"), "{message}");
                    cancelled_seen = true;
                }
                Ok(_) => {} // the race went to the query — retry
                other => panic!("expected cancellation, got {other:?}"),
            }
            canceller = killer.join().unwrap();
            if cancelled_seen {
                break;
            }
        }
        assert!(cancelled_seen, "CANCEL never landed in 5 attempts");
        // The connection survives its own cancellations.
        let r = c
            .query("select count(*) as c from t", &run_cfg, &[])
            .unwrap();
        assert_eq!(r.frame.column(0).get(0).as_i64(), N_ROWS);
    }

    // --- Mid-query disconnects: write a QUERY frame, slam the socket
    // shut without reading the answer. The reader thread's EOF must trip
    // the connection token and reap the in-flight execution.
    for _ in 0..3 {
        let mut raw = TcpStream::connect(addr).unwrap();
        let mut w = wire::PayloadWriter::new(wire::Op::Query);
        wire::write_config(&mut w, &run_cfg);
        w.str(SLOW_SQL);
        w.u16(0);
        raw.write_all(&w.frame()).unwrap();
        raw.flush().unwrap();
        // Give the server a beat to start executing, then vanish.
        std::thread::sleep(Duration::from_millis(5));
        drop(raw);
    }
    // The aborts are asynchronous. Every client above has disconnected,
    // so drain = all connections reaped (readers saw EOF, in-flight work
    // aborted, workers exited) and no slot still held.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = net.stats();
        if s.active == 0 && s.inflight == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnected queries never drained: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // --- The acceptance bar: after all that violence, the pool still
    // runs a full query to completion, and nothing leaked.
    let stats = net.stats();
    assert_eq!(stats.inflight, 0, "slot leak: {stats:?}");
    assert!(stats.cancelled >= 1, "{stats:?}");
    let mut c = NetClient::connect(addr).unwrap();
    let r = c.query(SLOW_SQL, &run_cfg, &[]).unwrap();
    assert_eq!(r.frame.nrows(), 60_000);
    let (in_proc, _) = server.query(SLOW_SQL, run_cfg, &[]).unwrap();
    assert_eq!(digest(&r.frame), digest(&in_proc));
    net.shutdown();
}

#[test]
fn admission_control_sheds_load_with_typed_rejections() {
    let (_server, mut net) = serving(NetConfig {
        max_inflight: 1,
        ..NetConfig::default()
    });
    let addr = net.local_addr();
    let slow_cfg = QueryConfig::default().workers(1);

    // One connection keeps the single slot busy with back-to-back slow
    // queries; a prober fires cheap queries until one bounces off the
    // admission cap. Retry the whole arrangement if a sweep somehow
    // never overlaps.
    let mut saw_overload = false;
    'attempts: for _ in 0..5 {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let hog = {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut c = NetClient::connect(addr).unwrap();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    // The prober can win the single slot — then the hog is
                    // the one shed. Either way the slot stays contended.
                    match c.query(SLOW_SQL, &slow_cfg, &[]) {
                        Ok(_) => {}
                        Err(NetError::Remote {
                            code: ErrorCode::Overloaded,
                            ..
                        }) => {}
                        other => panic!("hog query failed: {other:?}"),
                    }
                }
            })
        };
        let mut prober = NetClient::connect(addr).unwrap();
        let until = Instant::now() + Duration::from_secs(5);
        while Instant::now() < until {
            match prober.query("select id from t where id < 3", &slow_cfg, &[]) {
                Err(NetError::Remote {
                    code: ErrorCode::Overloaded,
                    retryable: true,
                    message,
                }) => {
                    assert!(message.contains("saturated"), "{message}");
                    saw_overload = true;
                }
                Ok(_) => {}
                other => panic!("expected Ok or Overloaded, got {other:?}"),
            }
            if saw_overload {
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                hog.join().unwrap();
                break 'attempts;
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        hog.join().unwrap();
    }
    assert!(saw_overload, "admission cap of 1 never rejected a prober");
    assert!(net.stats().overload_rejected >= 1);

    // Rejection is shedding, not failure: once the hog is gone the same
    // prober connection executes normally.
    let mut c = NetClient::connect(addr).unwrap();
    assert_eq!(
        c.query("select id from t where id = 7", &slow_cfg, &[])
            .unwrap()
            .rows,
        1
    );
    assert_eq!(net.stats().inflight, 0);
    net.shutdown();
}

//! Differential fuzzing: random micro-tables + randomized query parameters,
//! tensor engine (both join/agg strategies) vs the row oracle. This covers
//! the operator space beyond what the 22 fixed TPC-H queries exercise.

use proptest::prelude::*;
use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::frame::df;
use tqp_repro::data::{Column, DataFrame};
use tqp_repro::exec::Backend;
use tqp_repro::ir::{AggStrategy, JoinStrategy, PhysicalOptions};
use tqp_tensor::Scalar;

fn canon(frame: &DataFrame) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..frame.nrows())
        .map(|i| {
            frame
                .row(i)
                .into_iter()
                .map(|s| match s {
                    Scalar::F64(v) => format!("{:.6}", v),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn check_all_configs(session: &Session, sql: &str) -> Result<(), TestCaseError> {
    let oracle = session
        .sql_baseline(sql)
        .map_err(|e| TestCaseError::fail(format!("oracle failed on {sql}: {e}")))?;
    let expect = canon(&oracle);
    for (join, agg) in [
        (JoinStrategy::SortMerge, AggStrategy::Sort),
        (JoinStrategy::Hash, AggStrategy::Hash),
    ] {
        for backend in [Backend::Eager, Backend::Fused] {
            let cfg = QueryConfig::default()
                .backend(backend)
                .physical(PhysicalOptions { join, agg });
            let q = session
                .compile(sql, cfg)
                .map_err(|e| TestCaseError::fail(format!("compile {sql}: {e}")))?;
            let (out, _) = q
                .run(session)
                .map_err(|e| TestCaseError::fail(format!("run {sql}: {e}")))?;
            prop_assert_eq!(
                canon(&out),
                expect.clone(),
                "{:?}/{:?}/{:?} disagrees on {}",
                backend,
                join,
                agg,
                sql
            );
        }
    }
    Ok(())
}

fn table_t(rows: &[(i64, i64, f64, u8)]) -> DataFrame {
    df(vec![
        ("id", Column::from_i64(rows.iter().map(|r| r.0).collect())),
        ("k", Column::from_i64(rows.iter().map(|r| r.1).collect())),
        ("v", Column::from_f64(rows.iter().map(|r| r.2).collect())),
        (
            "tag",
            Column::from_str(
                rows.iter()
                    .map(|r| ["aa", "ab", "bb", "cc"][(r.3 % 4) as usize].to_string())
                    .collect(),
            ),
        ),
    ])
}

fn table_u(rows: &[(i64, f64)]) -> DataFrame {
    df(vec![
        ("k", Column::from_i64(rows.iter().map(|r| r.0).collect())),
        ("w", Column::from_f64(rows.iter().map(|r| r.1).collect())),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn filters_and_aggregates_agree(
        rows in prop::collection::vec((0i64..50, 0i64..6, -100f64..100.0, any::<u8>()), 0..120),
        thr in -50f64..50.0,
        kcut in 0i64..6,
    ) {
        let mut session = Session::new();
        session.register_table("t", table_t(&rows));
        // Plain filter + projection.
        let sql = format!(
            "select id, v * 2 + 1 as vv, tag from t where v < {thr:.3} and k >= {kcut} order by id, vv, tag"
        );
        check_all_configs(&session, &sql)?;
        // Grouped aggregates over a filtered input.
        let sql = format!(
            "select k, count(*) as c, sum(v) as s, min(v) as mn, max(v) as mx, \
             avg(v) as a, count(distinct tag) as dt \
             from t where v > {thr:.3} group by k order by k"
        );
        check_all_configs(&session, &sql)?;
        // Global aggregate with CASE + LIKE.
        let sql = "select sum(case when tag like 'a%' then 1 else 0 end), count(*) from t";
        check_all_configs(&session, sql)?;
    }

    #[test]
    fn joins_agree(
        t_rows in prop::collection::vec((0i64..30, 0i64..8, -50f64..50.0, any::<u8>()), 0..60),
        u_rows in prop::collection::vec((0i64..8, -50f64..50.0), 0..40),
    ) {
        let mut session = Session::new();
        session.register_table("t", table_t(&t_rows));
        session.register_table("u", table_u(&u_rows));
        // Inner join with post-join filter and aggregation.
        let sql = "select t.k, count(*) as c, sum(u.w) as sw from t, u \
                   where t.k = u.k and u.w > -20.0 group by t.k order by t.k";
        check_all_configs(&session, sql)?;
        // Semi / anti via IN and NOT EXISTS.
        let sql = "select id from t where k in (select k from u where w > 0.0) order by id";
        check_all_configs(&session, sql)?;
        let sql = "select id from t where not exists \
                   (select * from u where u.k = t.k) order by id";
        check_all_configs(&session, sql)?;
        // Left outer join feeding COUNT (the Q13 pattern).
        let sql = "select t.id, count(u.k) as c from t left outer join u on t.k = u.k \
                   group by t.id order by t.id";
        check_all_configs(&session, sql)?;
    }

    #[test]
    fn correlated_subqueries_agree(
        t_rows in prop::collection::vec((0i64..20, 0i64..5, -50f64..50.0, any::<u8>()), 1..50),
        u_rows in prop::collection::vec((0i64..5, -50f64..50.0), 1..30),
    ) {
        let mut session = Session::new();
        session.register_table("t", table_t(&t_rows));
        session.register_table("u", table_u(&u_rows));
        // Correlated scalar aggregate (the Q17 pattern).
        let sql = "select id from t where v > \
                   (select avg(w) from u where u.k = t.k) order by id";
        check_all_configs(&session, sql)?;
        // Uncorrelated scalar (the Q22 pattern).
        let sql = "select id from t where v > (select avg(w) from u) order by id";
        check_all_configs(&session, sql)?;
    }

    #[test]
    fn order_limit_distinct_agree(
        rows in prop::collection::vec((0i64..40, 0i64..6, -100f64..100.0, any::<u8>()), 0..100),
        lim in 1usize..20,
    ) {
        let mut session = Session::new();
        session.register_table("t", table_t(&rows));
        // LIMIT needs a total order to be deterministic across engines:
        // order by unique id.
        let sql = format!("select id, v from t order by id limit {lim}");
        check_all_configs(&session, &sql)?;
        let sql = "select distinct tag, k from t order by tag, k";
        check_all_configs(&session, sql)?;
    }
}

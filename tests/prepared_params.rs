//! ExprProgram parameter-binding edge cases: NULL parameters, dtype
//! coercion of bound constants, a parameter reused across CSE-shared
//! registers, and rebinding one prepared statement with different values
//! — across the vectorized and artifact backends.

use tqp_repro::core::{QueryConfig, Session, TqpError};
use tqp_repro::data::frame::df;
use tqp_repro::data::Column;
use tqp_repro::exec::exprprog::ExprOp;
use tqp_repro::exec::program::ProgOp;
use tqp_repro::exec::Backend;
use tqp_tensor::Scalar;

fn session() -> Session {
    let mut s = Session::new();
    s.register_table(
        "t",
        df(vec![
            ("id", Column::from_i64(vec![1, 2, 3, 4, 5])),
            ("v", Column::from_f64(vec![10.0, 20.0, 30.0, 40.0, 50.0])),
            (
                "name",
                Column::from_str(vec![
                    "alpha".into(),
                    "beta".into(),
                    "gamma".into(),
                    "delta".into(),
                    "epsilon".into(),
                ]),
            ),
            (
                "d",
                Column::from_date_ns(
                    (0..5)
                        .map(|i| (8035 + i * 100) * 86_400_000_000_000)
                        .collect(),
                ),
            ),
        ]),
    );
    s
}

const ALL_BACKENDS: &[Backend] = &[
    Backend::Eager,
    Backend::Fused,
    Backend::Graph,
    Backend::Wasm,
];

#[test]
fn null_parameters_drop_rows_in_comparisons() {
    // SQL three-valued logic: `v > NULL` is NULL, and a NULL conjunct
    // never passes a filter — so a NULL-bound parameter selects nothing.
    let s = session();
    for &backend in ALL_BACKENDS {
        let p = s
            .prepare(
                "select count(*) as c from t where v > $1",
                QueryConfig::default().backend(backend),
            )
            .unwrap();
        let (out, _) = p.execute(&s, &[Scalar::Null]).unwrap();
        assert_eq!(out.column(0).get(0).as_i64(), 0, "{backend:?}");
        // A real value on the same handle still works afterwards.
        let (out, _) = p.execute(&s, &[Scalar::F64(25.0)]).unwrap();
        assert_eq!(out.column(0).get(0).as_i64(), 3, "{backend:?}");
    }
}

#[test]
fn null_parameter_in_projection_arithmetic_is_null_row() {
    // NULL propagates through arithmetic; the aggregate consumes it
    // (COUNT skips NULLs), matching the row oracle's Kleene semantics.
    let s = session();
    let p = s
        .prepare("select count(v + $1) as c from t", QueryConfig::default())
        .unwrap();
    let (out, _) = p.execute(&s, &[Scalar::Null]).unwrap();
    assert_eq!(out.column(0).get(0).as_i64(), 0);
    let (out, _) = p.execute(&s, &[Scalar::F64(1.0)]).unwrap();
    assert_eq!(out.column(0).get(0).as_i64(), 5);
}

#[test]
fn bound_constants_coerce_onto_the_compiled_dtype() {
    let s = session();
    for &backend in ALL_BACKENDS {
        let cfg = QueryConfig::default().backend(backend);
        // $1 compiles against Float64 `v`; binding an integer widens it.
        let p = s
            .prepare("select id from t where v <= $1 order by id", cfg)
            .unwrap();
        let (out, _) = p.execute(&s, &[Scalar::I64(30)]).unwrap();
        assert_eq!(out.nrows(), 3, "{backend:?}");
        // I32 widens too.
        let (out, _) = p.execute(&s, &[Scalar::I32(20)]).unwrap();
        assert_eq!(out.nrows(), 2, "{backend:?}");
        // A float cannot narrow onto an Int64 slot — that's an execution
        // error, not silent truncation.
        let pi = s.prepare("select id from t where id = $1", cfg).unwrap();
        match pi.execute(&s, &[Scalar::F64(2.5)]) {
            Err(TqpError::Execution(msg)) => {
                assert!(msg.contains("cannot bind"), "{msg}")
            }
            other => panic!(
                "{backend:?}: expected coercion error, got {:?}",
                other.map(|_| ())
            ),
        }
        // Date slots accept `YYYY-MM-DD` strings.
        let pd = s
            .prepare("select count(*) as c from t where d < $1", cfg)
            .unwrap();
        let (out, _) = pd.execute(&s, &[Scalar::Str("1994-01-01".into())]).unwrap();
        assert!(out.column(0).get(0).as_i64() >= 1, "{backend:?}");
    }
}

#[test]
fn a_parameter_reused_across_cse_shared_registers_patches_once() {
    let s = session();
    // $1 used twice in general (non-comparison) positions: CSE must give
    // both uses the same LoadConst register → exactly ONE param slot.
    let p = s
        .prepare(
            "select v + $1 as a, v - $1 as b from t order by a",
            QueryConfig::default(),
        )
        .unwrap();
    assert_eq!(p.n_params(), 1);
    let mut slots = Vec::new();
    for op in &p.program().ops {
        if let ProgOp::Project { exprs, .. } = op {
            slots.extend(exprs.params.iter().copied());
        }
    }
    assert_eq!(slots.len(), 1, "one shared slot for a reused parameter");
    let (out, _) = p.execute(&s, &[Scalar::F64(5.0)]).unwrap();
    assert_eq!(out.column(0).get(0).as_f64(), 15.0);
    assert_eq!(out.column(1).get(0).as_f64(), 5.0);

    // Mixed shapes: `v > $1` compiles to the CompareConst fast path while
    // `$1 + 25.0` needs a LoadConst — two slots, one parameter, one value
    // patched into both.
    let p = s
        .prepare(
            "select id from t where v > $1 and v < $1 + 25.0 order by id",
            QueryConfig::default(),
        )
        .unwrap();
    assert_eq!(p.n_params(), 1);
    let mut cmp_slots = 0;
    let mut load_slots = 0;
    for op in &p.program().ops {
        if let ProgOp::Filter { conjuncts, .. } = op {
            for ps in &conjuncts.params {
                match conjuncts.ops[ps.reg] {
                    ExprOp::CompareConst { .. } => cmp_slots += 1,
                    ExprOp::LoadConst { .. } => load_slots += 1,
                    _ => panic!("slot must be a patchable constant"),
                }
            }
        }
    }
    assert_eq!((cmp_slots, load_slots), (1, 1));
    // One bound value reaches both uses: (v > 15 and v < 40) → {20, 30}.
    let (out, _) = p.execute(&s, &[Scalar::F64(15.0)]).unwrap();
    assert_eq!(out.nrows(), 2);
    assert_eq!(out.column(0).get(0).as_i64(), 2);

    // Distinct parameters do NOT merge even with equal placeholder types.
    let p2 = s
        .prepare(
            "select id from t where v > $1 and v < $2",
            QueryConfig::default(),
        )
        .unwrap();
    assert_eq!(p2.n_params(), 2);
    let (out, _) = p2
        .execute(&s, &[Scalar::F64(15.0), Scalar::F64(45.0)])
        .unwrap();
    assert_eq!(out.nrows(), 3);
}

#[test]
fn rebinding_the_same_prepared_statement_never_recompiles() {
    let s = session();
    for &backend in ALL_BACKENDS {
        let p = s
            .prepare(
                "select id, v from t where v between $1 and $2 order by id",
                QueryConfig::default().backend(backend),
            )
            .unwrap();
        assert_eq!(p.n_params(), 2);
        // The pristine program keeps its placeholder slots across
        // executions — binding patches a clone.
        let pristine_before = format!("{:?}", p.program().ops.len());
        let expect = [
            (&[10.0, 30.0][..], 3usize),
            (&[45.0, 60.0][..], 1),
            (&[0.0, 5.0][..], 0),
            (&[10.0, 30.0][..], 3), // re-binding earlier values again
        ];
        for (vals, nrows) in expect {
            let args: Vec<Scalar> = vals.iter().map(|&v| Scalar::F64(v)).collect();
            let (out, _) = p.execute(&s, &args).unwrap();
            assert_eq!(out.nrows(), nrows, "{backend:?} {vals:?}");
        }
        assert_eq!(format!("{:?}", p.program().ops.len()), pristine_before);
        assert_eq!(p.n_params(), 2, "pristine program must stay re-bindable");
    }
}

#[test]
fn string_and_like_adjacent_parameters() {
    let s = session();
    let p = s
        .prepare(
            "select id from t where name = $1 or name = $2 order by id",
            QueryConfig::default(),
        )
        .unwrap();
    let (out, _) = p
        .execute(
            &s,
            &[Scalar::Str("beta".into()), Scalar::Str("delta".into())],
        )
        .unwrap();
    assert_eq!(out.nrows(), 2);
    // IN lists with placeholders (desugared to OR chains at bind time).
    let pin = s
        .prepare(
            "select count(*) as c from t where name in ($1, 'alpha')",
            QueryConfig::default(),
        )
        .unwrap();
    let (out, _) = pin.execute(&s, &[Scalar::Str("gamma".into())]).unwrap();
    assert_eq!(out.column(0).get(0).as_i64(), 2);
}

#[test]
fn parameterized_results_match_literal_equivalents_on_all_backends() {
    // Binding $1=K must give byte-identical results to compiling the SQL
    // with the literal K spliced in — on every backend.
    let s = session();
    for &backend in ALL_BACKENDS {
        let cfg = QueryConfig::default().backend(backend);
        let p = s
            .prepare(
                "select id, v * $1 as scaled from t where v >= $2 order by id",
                cfg,
            )
            .unwrap();
        for (k, lo) in [(2.0, 20.0), (0.5, 45.0)] {
            let (bound, _) = p.execute(&s, &[Scalar::F64(k), Scalar::F64(lo)]).unwrap();
            let literal_sql =
                format!("select id, v * {k:?} as scaled from t where v >= {lo:?} order by id");
            let (lit, _) = s.compile(&literal_sql, cfg).unwrap().run(&s).unwrap();
            assert_eq!(bound.nrows(), lit.nrows(), "{backend:?}");
            for i in 0..bound.nrows() {
                assert_eq!(
                    format!("{:?}", bound.row(i)),
                    format!("{:?}", lit.row(i)),
                    "{backend:?} row {i}"
                );
            }
        }
    }
}

//! Worker-count parity: every differential configuration must produce
//! **byte-identical** output at `workers = 1` and `workers = 4`.
//!
//! This locks in the determinism contracts of the parallel barrier ops
//! (see `ARCHITECTURE.md` "Parallel chunked execution"):
//!
//! * partitioned aggregation — fixed morsel geometry, partials merged in
//!   morsel order, so float SUM/AVG associate identically at any worker
//!   count;
//! * radix-partitioned join build — partition buckets replicate the
//!   sequential per-key row order;
//! * parallel sort — a stable permutation is unique.
//!
//! Floats compare by **bit pattern**, not tolerance: the whole point is
//! that parallelism must not perturb a single rounding decision.
//!
//! The scalar Wasm backend is single-threaded by design (`workers` has no
//! effect there), so the suite covers the three vectorized-VM backends.

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};
use tqp_repro::data::DataFrame;
use tqp_repro::exec::Backend;
use tqp_repro::ir::{AggStrategy, JoinStrategy, PhysicalOptions};
use tqp_tensor::Scalar;

fn session() -> Session {
    // SF 0.01 puts lineitem (~60K rows) above the default partitioned-
    // aggregation threshold (2 × 16 Ki-row morsels), so the fused and
    // standalone parallel aggregation routes genuinely engage here with
    // production geometry. (Many-morsel merges with shrunken geometry are
    // covered by the tqp-exec unit suites — mutating TQP_AGG_MORSEL_ROWS
    // from inside this multi-threaded test binary would race getenv.)
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 20_220_901,
    });
    let mut s = Session::new();
    s.register_tpch(&data);
    s
}

/// Render a frame with full bit fidelity: floats as their raw bit pattern.
fn exact_rows(frame: &DataFrame) -> Vec<Vec<String>> {
    (0..frame.nrows())
        .map(|i| {
            frame
                .row(i)
                .into_iter()
                .map(|s| match s {
                    Scalar::F64(v) => format!("f64:{:016x}", v.to_bits()),
                    Scalar::F32(v) => format!("f32:{:08x}", v.to_bits()),
                    other => format!("{other:?}"),
                })
                .collect()
        })
        .collect()
}

/// Run every TPC-H query over the {workers} × {flat_hash} grid and demand
/// byte-identical output across the whole grid. The flat axis locks in
/// the flat-vs-`HashMap` independence contract of the vectorized hash
/// engine (sort-merge/sort-agg configs pass `&[true]` — no hash tables).
fn run_parity(backend: Backend, physical: PhysicalOptions, flats: &[bool], label: &str) {
    let s = session();
    for (n, sql) in queries::all() {
        let mut outs = Vec::new();
        for &flat in flats {
            for workers in [1usize, 4] {
                let q = s
                    .compile(
                        sql,
                        QueryConfig::default()
                            .backend(backend)
                            .physical(physical)
                            .workers(workers)
                            .flat_hash(flat),
                    )
                    .unwrap_or_else(|e| panic!("Q{n} [{label}] compile: {e}"));
                let (out, _) = q
                    .run(&s)
                    .unwrap_or_else(|e| panic!("Q{n} [{label}] run: {e}"));
                outs.push(exact_rows(&out));
            }
        }
        for (k, out) in outs.iter().enumerate().skip(1) {
            assert_eq!(
                &outs[0], out,
                "Q{n} [{label}]: grid point {k} not byte-identical to baseline"
            );
        }
    }
}

#[test]
fn eager_sortmerge_sortagg_worker_parity() {
    run_parity(
        Backend::Eager,
        PhysicalOptions {
            join: JoinStrategy::SortMerge,
            agg: AggStrategy::Sort,
        },
        &[true],
        "eager/smj/sort",
    );
}

#[test]
fn eager_hash_strategies_worker_parity() {
    run_parity(
        Backend::Eager,
        PhysicalOptions {
            join: JoinStrategy::Hash,
            agg: AggStrategy::Hash,
        },
        &[true, false],
        "eager/hash/hash",
    );
}

#[test]
fn fused_sortmerge_sortagg_worker_parity() {
    run_parity(
        Backend::Fused,
        PhysicalOptions {
            join: JoinStrategy::SortMerge,
            agg: AggStrategy::Sort,
        },
        &[true],
        "fused/smj/sort",
    );
}

#[test]
fn fused_hash_strategies_worker_parity() {
    run_parity(
        Backend::Fused,
        PhysicalOptions {
            join: JoinStrategy::Hash,
            agg: AggStrategy::Hash,
        },
        &[true, false],
        "fused/hash/hash",
    );
}

#[test]
fn graph_sortmerge_sortagg_worker_parity() {
    run_parity(
        Backend::Graph,
        PhysicalOptions {
            join: JoinStrategy::SortMerge,
            agg: AggStrategy::Sort,
        },
        &[true],
        "graph/smj/sort",
    );
}

#[test]
fn graph_hash_strategies_worker_parity() {
    run_parity(
        Backend::Graph,
        PhysicalOptions {
            join: JoinStrategy::Hash,
            agg: AggStrategy::Hash,
        },
        &[true, false],
        "graph/hash/hash",
    );
}

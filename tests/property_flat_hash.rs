//! Property tests for the vectorized hash engine
//! (`tqp_tensor::hash`): the flat arena table must agree with a plain
//! `HashMap<i64, Vec<u32>>` oracle — same key set, same per-key row
//! list, and rows in **ascending input order** within every bucket (the
//! determinism contract the join build relies on) — on adversarial key
//! distributions: extremes (`i64::MIN`/`MAX`), all-equal, dense
//! sequential, and synthetic same-bucket collisions built by *inverting*
//! the `mix64` finalizer.

use std::collections::HashMap;

use proptest::prelude::*;
use tqp_tensor::hash::{self, FlatRowTable};

/// Oracle: per-key ascending row ids, in first-appearance key order.
fn oracle(keys: &[i64]) -> HashMap<i64, Vec<u32>> {
    let mut m: HashMap<i64, Vec<u32>> = HashMap::new();
    for (i, &k) in keys.iter().enumerate() {
        m.entry(k).or_default().push(i as u32);
    }
    m
}

/// Assert the flat table holds exactly the oracle's contents, with every
/// bucket's rows for a key in ascending order.
fn assert_matches_oracle(keys: &[i64]) {
    let hashes = hash::hash_i64(keys);
    let want = oracle(keys);
    for hint in [None, Some(1u64), Some(keys.len() as u64 * 4 + 1)] {
        let t = FlatRowTable::build(keys, &hashes, hint);
        assert_eq!(t.len(), want.len(), "distinct count (hint {hint:?})");
        assert_eq!(t.n_entries(), keys.len(), "entry count (hint {hint:?})");
        for (&k, rows) in &want {
            let h = hash::hash_i64(&[k])[0];
            assert_eq!(
                t.count_matches(k, h),
                rows.len(),
                "count for key {k} (hint {hint:?})"
            );
            let (bkeys, brows) = t.bucket(h);
            let got: Vec<u32> = bkeys
                .iter()
                .zip(brows)
                .filter(|&(bk, _)| *bk == k)
                .map(|(_, &r)| r)
                .collect();
            assert_eq!(got, *rows, "rows for key {k} in ascending input order");
        }
    }
}

/// Multiplicative inverse of an odd u64 (Newton's iteration).
fn odd_inverse(m: u64) -> u64 {
    let mut inv = m; // correct mod 2^3
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(inv)));
    }
    inv
}

/// Invert `mix64`: `x ^ (x >> 32)` is self-inverse, the Fibonacci
/// multiply inverts via the odd inverse — so we can manufacture keys
/// whose hashes share any chosen top/bottom bit pattern.
fn mix64_invert(h: u64) -> u64 {
    const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
    let x = h ^ (h >> 32);
    x.wrapping_mul(odd_inverse(FIB))
}

#[test]
fn mix64_inversion_is_exact() {
    for h in [
        0u64,
        1,
        0xdead_beef,
        u64::MAX,
        1 << 63,
        0x1234_5678_9abc_def0,
    ] {
        assert_eq!(hash::mix64(mix64_invert(h)), h);
    }
}

#[test]
fn extreme_keys_match_oracle() {
    let keys = [
        i64::MIN,
        i64::MAX,
        0,
        -1,
        1,
        i64::MIN,
        i64::MAX,
        i64::MIN + 1,
        i64::MAX - 1,
        0,
    ];
    assert_matches_oracle(&keys);
}

#[test]
fn all_equal_keys_match_oracle() {
    assert_matches_oracle(&vec![42i64; 4097]);
}

#[test]
fn dense_sequential_keys_match_oracle() {
    let keys: Vec<i64> = (0..10_000).collect();
    assert_matches_oracle(&keys);
}

/// Keys engineered (via mix64 inversion) so every hash lands in the same
/// directory slot of a 1024-bucket table *and* shares identical low 32
/// bits: the bucket scan must still separate them by key equality while
/// keeping each key's rows in input order.
#[test]
fn synthetic_same_bucket_collisions_match_oracle() {
    let mut keys = Vec::new();
    for i in 0..64u64 {
        // Same low bits (directory index), distinct high bits.
        let h = 0x0000_0000_dead_0000u64 | (i << 40);
        let k = mix64_invert(h) as i64;
        // Three duplicate rows per engineered key, interleaved.
        keys.push(k);
    }
    let base = keys.clone();
    keys.extend(&base);
    keys.extend(&base);
    assert_matches_oracle(&keys);
}

/// Group-by lookup: first-appearance group ids must match a HashMap scan.
fn assert_groups_match(keys: &[i64]) {
    let hashes = hash::hash_i64(keys);
    let (gids, firsts) = hash::group_rows_by_hash(&hashes, |i, j| keys[i] == keys[j]);
    let mut seen: HashMap<i64, i64> = HashMap::new();
    let mut want_firsts = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        let next = seen.len() as i64;
        let gid = *seen.entry(k).or_insert_with(|| {
            want_firsts.push(i as i64);
            next
        });
        assert_eq!(gids[i], gid, "gid for row {i}");
    }
    assert_eq!(firsts, want_firsts, "first-appearance rows");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_keys_match_oracle(keys in prop::collection::vec(any::<i64>(), 0..500)) {
        assert_matches_oracle(&keys);
    }

    #[test]
    fn high_collision_keys_match_oracle(keys in prop::collection::vec(-8i64..8, 0..800)) {
        assert_matches_oracle(&keys);
    }

    #[test]
    fn random_groups_match_oracle(keys in prop::collection::vec(-50i64..50, 0..600)) {
        assert_groups_match(&keys);
    }

    #[test]
    fn group_ids_are_hash_independent(keys in prop::collection::vec(any::<i64>(), 0..300)) {
        // Shifting every hash by a constant must not change group ids —
        // they are first-appearance ordered, not hash ordered.
        let hashes = hash::hash_i64(&keys);
        let (gids, firsts) = hash::group_rows_by_hash(&hashes, |i, j| keys[i] == keys[j]);
        let shifted: Vec<u64> = hashes.iter().map(|h| h.wrapping_mul(0x10001).wrapping_add(7)).collect();
        let (gids2, firsts2) = hash::group_rows_by_hash(&shifted, |i, j| keys[i] == keys[j]);
        prop_assert_eq!(gids, gids2);
        prop_assert_eq!(firsts, firsts2);
    }
}

//! SIMD-vs-scalar bitwise parity on adversarial inputs.
//!
//! The explicit SIMD layer's contract (`tqp_tensor::simd` module docs) is
//! that every vector tier produces *bitwise identical* output to the
//! public scalar reference. These properties feed the dispatchers the
//! values most likely to break that contract — NaN (both payload signs),
//! ±0.0, ±inf, subnormals, `i64::MIN`/`MAX`-adjacent values, ragged tails
//! shorter than one vector width, all-NULL and alternating validity
//! bitmaps — and demand equality with the `simd::scalar` oracle.
//!
//! The whole file runs at whatever tier the host dispatches (AVX-512 on
//! CI's main leg); the `TQP_SIMD=off` CI leg re-runs it with the
//! dispatchers pinned to scalar, where parity is trivially the identity —
//! that leg instead guards the oracle itself against rot.

use proptest::prelude::*;
use tqp_tensor::simd::{self, scalar, CmpF64, CmpI64};

/// Adversarial f64s: every IEEE special plus ordinary magnitudes.
fn evil_f64() -> BoxedStrategy<f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(-f64::NAN),
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::MIN_POSITIVE),                      // smallest normal
        Just(f64::from_bits(1)),                      // smallest subnormal
        Just(-f64::from_bits(0x000f_ffff_ffff_ffff)), // largest -subnormal
        Just(f64::MAX),
        Just(f64::MIN),
        -1.0e6f64..1.0e6,
    ]
}

/// Adversarial i64s: MIN/MAX-adjacent plus small values (the wrapping
/// interval compare and the FOR decode both bias around extremes).
fn evil_i64() -> BoxedStrategy<i64> {
    prop_oneof![
        Just(i64::MIN),
        Just(i64::MIN + 1),
        Just(i64::MAX),
        Just(i64::MAX - 1),
        Just(0i64),
        Just(-1i64),
        -1000i64..1000,
    ]
}

/// Validity-bitmap shapes: random, all-NULL, all-valid, alternating.
fn validity(len: std::ops::Range<usize>) -> BoxedStrategy<Vec<bool>> {
    let rand = prop::collection::vec(any::<bool>(), len.clone());
    let all_null = (len.start.max(1)..len.end).prop_map(|n| vec![false; n]);
    let all_valid = (len.start.max(1)..len.end).prop_map(|n| vec![true; n]);
    let alternating =
        (len.start.max(1)..len.end).prop_map(|n| (0..n).map(|i| i % 2 == 0).collect());
    prop_oneof![rand, all_null, all_valid, alternating]
}

fn i64_op() -> BoxedStrategy<CmpI64> {
    prop_oneof![
        evil_i64().prop_map(CmpI64::Eq),
        evil_i64().prop_map(CmpI64::Ne),
        evil_i64().prop_map(CmpI64::Lt),
        evil_i64().prop_map(CmpI64::Le),
        evil_i64().prop_map(CmpI64::Gt),
        evil_i64().prop_map(CmpI64::Ge),
        (evil_i64(), any::<u64>()).prop_map(|(lo, r)| CmpI64::In(lo, r)),
    ]
}

fn f64_op() -> BoxedStrategy<CmpF64> {
    prop_oneof![
        evil_f64().prop_map(CmpF64::Eq),
        evil_f64().prop_map(CmpF64::Ne),
        evil_f64().prop_map(CmpF64::Lt),
        evil_f64().prop_map(CmpF64::Le),
        evil_f64().prop_map(CmpF64::Gt),
        evil_f64().prop_map(CmpF64::Ge),
        (evil_f64(), any::<bool>(), evil_f64(), any::<bool>()).prop_map(
            |(lo, lo_strict, hi, hi_strict)| CmpF64::In {
                lo,
                lo_strict,
                hi,
                hi_strict,
            }
        ),
    ]
}

// Lengths straddle the 16-element short-slice cutoff and both vector
// widths (4 and 8 lanes), so ragged tails of every residue are hit.
const LEN: std::ops::Range<usize> = 0..70;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mask_i64_parity(
        op in i64_op(),
        xs in prop::collection::vec(evil_i64(), LEN),
        init in validity(LEN),
        and in any::<bool>(),
    ) {
        let mut want = vec![false; xs.len()];
        let mut got = vec![false; xs.len()];
        for (d, &s) in want.iter_mut().zip(&init) {
            *d = s;
        }
        got.copy_from_slice(&want);
        scalar::mask_i64(op, &xs, &mut want, and);
        simd::mask_i64(op, &xs, &mut got, and);
        prop_assert_eq!(&want, &got, "op {:?}", op);
    }

    #[test]
    fn mask_f64_parity(
        op in f64_op(),
        xs in prop::collection::vec(evil_f64(), LEN),
        init in validity(LEN),
        and in any::<bool>(),
    ) {
        let mut want = vec![false; xs.len()];
        let mut got = vec![false; xs.len()];
        for (d, &s) in want.iter_mut().zip(&init) {
            *d = s;
        }
        got.copy_from_slice(&want);
        scalar::mask_f64(op, &xs, &mut want, and);
        simd::mask_f64(op, &xs, &mut got, and);
        prop_assert_eq!(&want, &got, "op {:?}", op);
    }

    #[test]
    fn mask_bool_parity(src in validity(LEN), init in validity(LEN), and in any::<bool>()) {
        let n = src.len().min(init.len());
        let mut want = init[..n].to_vec();
        let mut got = want.clone();
        scalar::mask_bool(&src[..n], &mut want, and);
        simd::mask_bool(&src[..n], &mut got, and);
        prop_assert_eq!(want, got);
    }

    #[test]
    fn float_reductions_bitwise_parity(xs in prop::collection::vec(evil_f64(), LEN)) {
        // A NaN *sum result* is the one carve-out from bitwise identity:
        // IEEE leaves NaN propagation implementation-defined, and LLVM may
        // commute scalar `fadd` operands, so when a sum both generates a
        // NaN (`inf + -inf`) and propagates an input NaN, which payload
        // survives is unspecified — NaN-ness itself still must agree.
        let (want, got) = (scalar::sum_f64(&xs), simd::sum_f64(&xs));
        if want.is_nan() {
            prop_assert!(got.is_nan());
        } else {
            prop_assert_eq!(want.to_bits(), got.to_bits());
        }
        // min/max *select* an element (or the ±inf identity), so they are
        // bitwise deterministic even across NaN payloads.
        prop_assert_eq!(scalar::min_f64(&xs).to_bits(), simd::min_f64(&xs).to_bits());
        prop_assert_eq!(scalar::max_f64(&xs).to_bits(), simd::max_f64(&xs).to_bits());
    }

    #[test]
    fn int_reductions_parity(xs in prop::collection::vec(evil_i64(), LEN), k in evil_i64()) {
        prop_assert_eq!(scalar::sum_i64(&xs), simd::sum_i64(&xs));
        prop_assert_eq!(scalar::count_eq_i64(&xs, k), simd::count_eq_i64(&xs, k));
    }

    #[test]
    fn hash_parity(
        is in prop::collection::vec(evil_i64(), LEN),
        fs in prop::collection::vec(evil_f64(), LEN),
    ) {
        let mut want = vec![0u64; is.len()];
        let mut got = vec![0u64; is.len()];
        scalar::hash_i64(&is, &mut want);
        simd::hash_i64(&is, &mut got);
        prop_assert_eq!(&want, &got);
        let n = is.len().min(fs.len());
        scalar::hash_combine_i64(&mut want[..n], &is[..n]);
        simd::hash_combine_i64(&mut got[..n], &is[..n]);
        prop_assert_eq!(&want, &got);
        // Float keys combine by bit pattern: -0.0 != 0.0, NaN payloads kept.
        scalar::hash_combine_f64(&mut want[..n], &fs[..n]);
        simd::hash_combine_f64(&mut got[..n], &fs[..n]);
        prop_assert_eq!(&want, &got);
    }

    #[test]
    fn compaction_and_count_parity(m in validity(LEN), base in -100i64..100) {
        prop_assert_eq!(scalar::count_true(&m), simd::count_true(&m));
        let mut want = Vec::new();
        let mut got = Vec::new();
        scalar::compact_indices_into(&m, base, &mut want);
        simd::compact_indices_into(&m, base, &mut got);
        prop_assert_eq!(want, got);
    }

    #[test]
    fn gather_parity(
        src in prop::collection::vec((evil_i64(), evil_f64()), 1..80),
        picks in prop::collection::vec(0usize..80, LEN),
    ) {
        let si: Vec<i64> = src.iter().map(|p| p.0).collect();
        let sf: Vec<f64> = src.iter().map(|p| p.1).collect();
        let idx: Vec<i64> = picks.iter().map(|&p| (p % src.len()) as i64).collect();
        let mut want = vec![0i64; idx.len()];
        let mut got = vec![0i64; idx.len()];
        scalar::gather_i64(&si, &idx, &mut want);
        simd::gather_i64(&si, &idx, &mut got);
        prop_assert_eq!(want, got);
        let mut want = vec![0f64; idx.len()];
        let mut got = vec![0f64; idx.len()];
        scalar::gather_f64(&sf, &idx, &mut want);
        simd::gather_f64(&sf, &idx, &mut got);
        // Bit-compare: NaN payloads must survive the gather unchanged.
        let wb: Vec<u64> = want.iter().map(|x| x.to_bits()).collect();
        let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(wb, gb);
        let su: Vec<u32> = si.iter().map(|&x| x as u32).collect();
        let iu: Vec<u32> = idx.iter().map(|&x| x as u32).collect();
        let mut want = vec![0u32; iu.len()];
        let mut got = vec![0u32; iu.len()];
        scalar::gather_u32(&su, &iu, &mut want);
        simd::gather_u32(&su, &iu, &mut got);
        prop_assert_eq!(want, got);
    }

    #[test]
    fn decode_parity(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
        width in 1usize..9,
        min in evil_i64(),
        rows in 0usize..70,
    ) {
        // Frame-of-reference at every width 1..=8 around extreme minima.
        let rows_for = (bytes.len() / width).min(rows);
        let mut want = vec![0i64; rows_for];
        let mut got = vec![0i64; rows_for];
        scalar::decode_for(&bytes[..width * rows_for], width, min, &mut want);
        simd::decode_for(&bytes[..width * rows_for], width, min, &mut got);
        prop_assert_eq!(&want, &got, "width {}", width);

        // Validity bitmap unpack (LSB-first).
        let rows_bits = (bytes.len() * 8).min(rows);
        let mut want = vec![false; rows_bits];
        let mut got = vec![false; rows_bits];
        scalar::unpack_bits_into(&bytes, &mut want);
        simd::unpack_bits_into(&bytes, &mut got);
        prop_assert_eq!(want, got);

        // Plain little-endian sections (i64 and f64 share the byte walk).
        let rows_plain = (bytes.len() / 8).min(rows);
        let mut want = vec![0i64; rows_plain];
        let mut got = vec![0i64; rows_plain];
        scalar::decode_i64_le(&bytes[..8 * rows_plain], &mut want);
        simd::decode_i64_le(&bytes[..8 * rows_plain], &mut got);
        prop_assert_eq!(want, got);
        let mut want = vec![0f64; rows_plain];
        let mut got = vec![0f64; rows_plain];
        scalar::decode_f64_le(&bytes[..8 * rows_plain], &mut want);
        simd::decode_f64_le(&bytes[..8 * rows_plain], &mut got);
        let wb: Vec<u64> = want.iter().map(|x| x.to_bits()).collect();
        let gb: Vec<u64> = got.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(wb, gb);

        // RLE run fill.
        let mut want = Vec::new();
        let mut got = Vec::new();
        scalar::splat_i64(&mut want, min, rows);
        simd::splat_i64(&mut got, min, rows);
        prop_assert_eq!(want, got);
    }
}

/// Out-of-range indices must panic in every tier (the vector paths bail
/// to the scalar loop, which panics at the offending index like `[]`).
#[test]
fn gather_oob_panics_at_any_tier() {
    let src: Vec<i64> = (0..64).collect();
    let mut idx: Vec<i64> = (0..64).collect();
    idx[37] = -1; // negative looks huge unsigned
    let mut out = vec![0i64; idx.len()];
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        simd::gather_i64(&src, &idx, &mut out)
    }));
    assert!(r.is_err(), "negative index must panic");
    idx[37] = 64; // one past the end
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        simd::gather_i64(&src, &idx, &mut out)
    }));
    assert!(r.is_err(), "past-the-end index must panic");
}

//! Exhaustive configuration matrix: every backend × device × join strategy
//! × aggregation strategy must agree on representative queries. This is the
//! full cross-product behind the paper's "all of them generate the same
//! correct result" (§3.2) — 32 configurations per query.

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};
use tqp_repro::data::DataFrame;
use tqp_repro::exec::{Backend, Device, GpuStrategy};
use tqp_repro::ir::{AggStrategy, JoinStrategy, PhysicalOptions};
use tqp_tensor::Scalar;

fn canon(frame: &DataFrame) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..frame.nrows())
        .map(|i| {
            frame
                .row(i)
                .into_iter()
                .map(|s| match s {
                    Scalar::F64(v) => format!("{:.4}", v),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn all_32_configurations_agree() {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.005,
        seed: 77,
    });
    let mut session = Session::new();
    session.register_tpch(&data);

    // Q6 (filter+agg), Q3 (join+group+limit), Q13 (left join + double agg).
    for qn in [6usize, 3, 13] {
        let sql = queries::query(qn);
        let reference = session.sql_baseline(sql).unwrap();
        let expect = canon(&reference);
        let mut configs = 0;
        for backend in [
            Backend::Eager,
            Backend::Fused,
            Backend::Graph,
            Backend::Wasm,
        ] {
            for device in [Device::Cpu, Device::GpuSim] {
                for join in [JoinStrategy::SortMerge, JoinStrategy::Hash] {
                    for agg in [AggStrategy::Sort, AggStrategy::Hash] {
                        let cfg = QueryConfig::default()
                            .backend(backend)
                            .device(device)
                            .gpu_strategy(GpuStrategy::Resident)
                            .physical(PhysicalOptions { join, agg });
                        let q = session.compile(sql, cfg).unwrap();
                        let (out, stats) = q.run(&session).unwrap();
                        assert_eq!(
                            canon(&out),
                            expect,
                            "Q{qn} mismatch under {backend:?}/{device:?}/{join:?}/{agg:?}"
                        );
                        if device == Device::GpuSim && backend != Backend::Wasm {
                            assert!(
                                stats.gpu_modeled_us.unwrap_or(0) > 0,
                                "GPU runs must report modeled time"
                            );
                        }
                        configs += 1;
                    }
                }
            }
        }
        assert_eq!(configs, 32);
    }
}

//! Proptest round-trip suite for every `tqp-store` chunk encoding:
//! random columns across all dtypes and NULL patterns must survive
//! write → footer → chunked decode **bit-exactly** — values at valid
//! positions, validity masks exactly, zone maps consistent with the data
//! (min/max bound every valid value, NULL counts exact), and table stats
//! equal to a whole-frame single-pass computation of the same rows.

use proptest::prelude::*;
use proptest::TestRng;
use tqp_repro::data::stats::scalar_cmp;
use tqp_repro::data::{Column, Field, LogicalType, Schema};
use tqp_repro::store::{StoreWriter, StoredTable};
use tqp_tensor::Scalar;

/// A generated column: values + optional validity.
struct GenCol {
    field: Field,
    column: Column,
    validity: Option<Vec<bool>>,
}

struct Gen {
    rng: TestRng,
}

impl Gen {
    fn usize_below(&mut self, n: usize) -> usize {
        self.rng.below(n as u64) as usize
    }

    /// Random validity: None, sparse NULLs, dense NULLs, or all-NULL.
    fn validity(&mut self, n: usize) -> Option<Vec<bool>> {
        match self.usize_below(4) {
            0 => None,
            1 => Some((0..n).map(|_| self.rng.below(10) != 0).collect()),
            2 => Some((0..n).map(|_| self.rng.below(2) == 0).collect()),
            _ => Some(vec![false; n]),
        }
    }

    /// Random i64 distribution chosen to exercise Plain/FoR/RLE.
    fn ints(&mut self, n: usize) -> Vec<i64> {
        match self.usize_below(4) {
            // Tight range → FoR.
            0 => {
                let base = self.rng.next_u64() as i64;
                (0..n)
                    .map(|_| base.wrapping_add(self.rng.below(200) as i64))
                    .collect()
            }
            // Long runs → RLE.
            1 => {
                let mut v = Vec::with_capacity(n);
                let mut cur = self.rng.below(5) as i64;
                while v.len() < n {
                    let run = 1 + self.usize_below(40);
                    for _ in 0..run.min(n - v.len()) {
                        v.push(cur);
                    }
                    cur = self.rng.below(5) as i64;
                }
                v
            }
            // Full-range chaos (+ extremes) → Plain.
            2 => (0..n)
                .map(|i| match i {
                    0 => i64::MIN,
                    1 => i64::MAX,
                    _ => self.rng.next_u64() as i64,
                })
                .collect(),
            // All-equal → FoR width 0.
            _ => vec![self.rng.next_u64() as i64; n],
        }
    }

    fn floats(&mut self, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| match self.usize_below(8) {
                0 => 0.0,
                1 => -0.0,
                2 => f64::INFINITY,
                3 => f64::NEG_INFINITY,
                4 => f64::NAN,
                5 => f64::MIN_POSITIVE,
                _ => (self.rng.next_u64() as i64 as f64) * 1e-3 + i as f64,
            })
            .collect()
    }

    fn strings(&mut self, n: usize) -> Vec<String> {
        let card = 1 + self.usize_below(12);
        let wide = self.usize_below(2) == 0;
        (0..n)
            .map(|_| {
                let k = self.usize_below(card * 3);
                if wide {
                    // High-cardinality free text → Plain.
                    format!("free-text value {} #{k}", self.rng.next_u64())
                } else {
                    // Low-cardinality (incl. empty + non-ASCII) → Dict.
                    match k % card {
                        0 => String::new(),
                        1 => "naïve-ütf8-√".to_string(),
                        k => format!("cat-{k}"),
                    }
                }
            })
            .collect()
    }

    fn column(&mut self, ty: LogicalType, n: usize) -> Column {
        match ty {
            LogicalType::Bool => {
                Column::from_bool((0..n).map(|_| self.rng.below(3) == 0).collect())
            }
            LogicalType::Int64 => Column::from_i64(self.ints(n)),
            LogicalType::Float64 => Column::from_f64(self.floats(n)),
            LogicalType::Date => {
                Column::from_date_ns(self.ints(n).iter().map(|v| v % (1 << 48)).collect())
            }
            LogicalType::Str => Column::from_str(self.strings(n)),
        }
    }

    fn gen_table(&mut self, n: usize) -> Vec<GenCol> {
        let all = [
            LogicalType::Bool,
            LogicalType::Int64,
            LogicalType::Float64,
            LogicalType::Date,
            LogicalType::Str,
        ];
        // Every dtype present, in random multiplicity 1-2.
        let mut cols = Vec::new();
        for (i, &ty) in all.iter().enumerate() {
            for rep in 0..1 + self.usize_below(2) {
                cols.push(GenCol {
                    field: Field::new(format!("c{i}_{rep}"), ty),
                    column: self.column(ty, n),
                    validity: self.validity(n),
                });
            }
        }
        cols
    }
}

fn tmp_path(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tqp_property_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}_{seed}.tqps"))
}

fn scalar_bits(s: &Scalar) -> String {
    match s {
        // NaN payloads and ±0.0 must survive exactly.
        Scalar::F64(v) => format!("f64:{:016x}", v.to_bits()),
        other => format!("{other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Write random columns chunked, reopen from disk, decode every
    // chunk: values at valid positions bit-exact, validity exact, zone
    // maps sound, streamed table stats equal the one-pass computation.
    #[test]
    fn chunked_roundtrip_all_encodings(seed in any::<u64>()) {
        let mut g = Gen { rng: TestRng::new(seed) };
        let n = 1 + g.usize_below(700);
        let chunk_rows = 1 + g.usize_below(250);
        let cols = g.gen_table(n);
        let schema = Schema::new(cols.iter().map(|c| c.field.clone()).collect());
        let path = tmp_path("rt", seed);

        let mut w = StoreWriter::create(&path, &schema, chunk_rows).unwrap();
        let columns: Vec<Column> = cols.iter().map(|c| c.column.clone()).collect();
        let validity: Vec<Option<Vec<bool>>> = cols.iter().map(|c| c.validity.clone()).collect();
        w.append_columns(&columns, &validity).unwrap();
        let written = w.finish().unwrap();

        // Reopen from disk — metadata must round-trip through the footer.
        let table = StoredTable::open(&path).unwrap();
        prop_assert_eq!(table.nrows(), n);
        prop_assert_eq!(table.n_chunks(), n.div_ceil(chunk_rows));
        // Structural equality via Debug: Scalar's PartialEq is IEEE, so
        // a NaN max would compare unequal to its identical round-trip.
        prop_assert_eq!(format!("{:?}", table.stats()), format!("{:?}", written.stats()));

        let all: Vec<usize> = (0..schema.len()).collect();
        let mut row0 = 0usize;
        for ci in 0..table.n_chunks() {
            let rows = table.chunk_len(ci);
            let decoded = table.decode_chunk(ci, &all).unwrap();
            for (c, col) in cols.iter().enumerate() {
                let (tensor, dec_validity) = &decoded[c];
                prop_assert_eq!(tensor.nrows(), rows);
                let mut nulls = 0u64;
                for r in 0..rows {
                    let orig_valid = col.validity.as_ref().is_none_or(|v| v[row0 + r]);
                    let dec_valid = dec_validity.as_ref().is_none_or(|v| v.as_bool()[r]);
                    prop_assert_eq!(orig_valid, dec_valid, "validity col {} row {}", c, row0 + r);
                    if orig_valid {
                        prop_assert_eq!(
                            scalar_bits(&tensor.get(r)),
                            scalar_bits(&col.column.get(row0 + r)),
                            "value col {} row {}", c, row0 + r
                        );
                    } else {
                        nulls += 1;
                    }
                }
                // Zone-map soundness: every valid value within [min, max]
                // (floats skipped when NaN present — bounds are
                // conservative there), NULL count exact.
                let zone = table.zone(ci, c);
                prop_assert_eq!(zone.null_count, nulls, "null count col {c}");
                if let (Some(min), Some(max)) = (&zone.min, &zone.max) {
                    let nan_bounds = matches!(min, Scalar::F64(v) if v.is_nan())
                        || matches!(max, Scalar::F64(v) if v.is_nan());
                    if !nan_bounds {
                        for r in 0..rows {
                            let valid = col.validity.as_ref().is_none_or(|v| v[row0 + r]);
                            let val = col.column.get(row0 + r);
                            if !valid || matches!(val, Scalar::F64(v) if v.is_nan()) {
                                continue;
                            }
                            prop_assert!(
                                scalar_cmp(&val, min).is_ge() && scalar_cmp(&val, max).is_le(),
                                "zone bounds col {} chunk {}: {:?} outside [{:?}, {:?}]",
                                c, ci, val, min, max
                            );
                        }
                    }
                } else {
                    prop_assert_eq!(zone.null_count, rows as u64, "empty zone only when all NULL");
                }
            }
            row0 += rows;
        }
        std::fs::remove_file(&path).ok();
    }

    // Appending the same rows in randomly-sized slices produces the
    // same chunks, zone maps, and stats as one big append (the streaming
    // CSV path appends chunk-reader-sized frames).
    #[test]
    fn append_granularity_is_invisible(seed in any::<u64>()) {
        let mut g = Gen { rng: TestRng::new(seed) };
        let n = 50 + g.usize_below(400);
        let chunk_rows = 1 + g.usize_below(97);
        let cols = g.gen_table(n);
        let schema = Schema::new(cols.iter().map(|c| c.field.clone()).collect());
        let columns: Vec<Column> = cols.iter().map(|c| c.column.clone()).collect();
        let validity: Vec<Option<Vec<bool>>> = cols.iter().map(|c| c.validity.clone()).collect();

        let whole_path = tmp_path("whole", seed);
        let mut w = StoreWriter::create(&whole_path, &schema, chunk_rows).unwrap();
        w.append_columns(&columns, &validity).unwrap();
        let whole = w.finish().unwrap();

        let sliced_path = tmp_path("sliced", seed);
        let mut w = StoreWriter::create(&sliced_path, &schema, chunk_rows).unwrap();
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + 1 + g.usize_below(120)).min(n);
            let idx: Vec<usize> = (lo..hi).collect();
            let part_cols: Vec<Column> = columns.iter().map(|c| c.take(&idx)).collect();
            let part_val: Vec<Option<Vec<bool>>> = validity
                .iter()
                .map(|v| v.as_ref().map(|v| v[lo..hi].to_vec()))
                .collect();
            w.append_columns(&part_cols, &part_val).unwrap();
            lo = hi;
        }
        let sliced = w.finish().unwrap();

        prop_assert_eq!(whole.n_chunks(), sliced.n_chunks());
        prop_assert_eq!(format!("{:?}", whole.stats()), format!("{:?}", sliced.stats()));
        let all: Vec<usize> = (0..schema.len()).collect();
        for ci in 0..whole.n_chunks() {
            prop_assert_eq!(whole.chunk_len(ci), sliced.chunk_len(ci));
            for c in 0..schema.len() {
                prop_assert_eq!(
                    format!("{:?}", whole.zone(ci, c)),
                    format!("{:?}", sliced.zone(ci, c)),
                    "zone chunk {} col {}", ci, c
                );
            }
            let a = whole.decode_chunk(ci, &all).unwrap();
            let b = sliced.decode_chunk(ci, &all).unwrap();
            for c in 0..schema.len() {
                for r in 0..whole.chunk_len(ci) {
                    prop_assert_eq!(scalar_bits(&a[c].0.get(r)), scalar_bits(&b[c].0.get(r)));
                }
            }
        }
        std::fs::remove_file(&whole_path).ok();
        std::fs::remove_file(&sliced_path).ok();
    }
}

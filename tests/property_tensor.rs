//! Property-based tests for the tensor runtime's core invariants — the
//! kernels every relational operator is built from.

use proptest::prelude::*;
use tqp_repro::tensor as tt;
use tt::index::{filter, mask_to_indices, searchsorted, take, Side};
use tt::ops::{compare_scalar, CmpOp};
use tt::reduce::{segmented_reduce, sum_f64, AggFn};
use tt::sort::{argsort, argsort_multi, Order, SortKey};
use tt::strings::LikePattern;
use tt::unique::{group_ids, run_lengths};
use tt::{Scalar, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn argsort_is_a_stable_permutation(xs in prop::collection::vec(-1000i64..1000, 0..200)) {
        let t = Tensor::from_i64(xs.clone());
        let perm = argsort(&t, Order::Asc);
        // A permutation: sorted indices are 0..n.
        let mut idx = perm.to_i64_vec();
        idx.sort_unstable();
        prop_assert_eq!(idx, (0..xs.len() as i64).collect::<Vec<_>>());
        // Output is ordered and matches std's stable sort.
        let sorted = take(&t, &perm);
        let mut expect = xs.clone();
        expect.sort();
        prop_assert_eq!(sorted.as_i64(), expect.as_slice());
        // Stability: equal keys keep original order.
        let pv = perm.to_i64_vec();
        for w in pv.windows(2) {
            if xs[w[0] as usize] == xs[w[1] as usize] {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn multi_key_sort_matches_std(pairs in prop::collection::vec((-20i64..20, -5i64..5), 0..150)) {
        let a = Tensor::from_i64(pairs.iter().map(|p| p.0).collect());
        let b = Tensor::from_i64(pairs.iter().map(|p| p.1).collect());
        let perm = argsort_multi(&[SortKey::asc(a), SortKey::desc(b)]);
        let got: Vec<(i64, i64)> =
            perm.to_i64_vec().iter().map(|&i| pairs[i as usize]).collect();
        let mut expect = pairs.clone();
        expect.sort_by(|x, y| x.0.cmp(&y.0).then(y.1.cmp(&x.1)));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn filter_equals_scan(xs in prop::collection::vec(-100f64..100.0, 0..300), thr in -50f64..50.0) {
        let t = Tensor::from_f64(xs.clone());
        let mask = compare_scalar(CmpOp::Lt, &t, &Scalar::F64(thr));
        let got = filter(&t, &mask);
        let expect: Vec<f64> = xs.into_iter().filter(|&x| x < thr).collect();
        prop_assert_eq!(got.as_f64(), expect.as_slice());
    }

    #[test]
    fn mask_to_indices_roundtrip(mask in prop::collection::vec(any::<bool>(), 0..300)) {
        let m = Tensor::from_bool(mask.clone());
        let idx = mask_to_indices(&m);
        let expect: Vec<i64> =
            mask.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i as i64).collect();
        prop_assert_eq!(idx.as_i64(), expect.as_slice());
    }

    #[test]
    fn searchsorted_matches_linear_scan(
        mut hay in prop::collection::vec(-100i64..100, 0..100),
        needles in prop::collection::vec(-120i64..120, 0..50),
    ) {
        hay.sort_unstable();
        let h = Tensor::from_i64(hay.clone());
        let n = Tensor::from_i64(needles.clone());
        let left = searchsorted(&h, &n, Side::Left);
        let right = searchsorted(&h, &n, Side::Right);
        for (k, &v) in needles.iter().enumerate() {
            let l = hay.iter().filter(|&&x| x < v).count() as i64;
            let r = hay.iter().filter(|&&x| x <= v).count() as i64;
            prop_assert_eq!(left.as_i64()[k], l);
            prop_assert_eq!(right.as_i64()[k], r);
        }
    }

    #[test]
    fn group_ids_reconstruct_counts(mut keys in prop::collection::vec(0i64..10, 1..300)) {
        keys.sort_unstable();
        let t = Tensor::from_i64(keys.clone());
        let g = group_ids(&[&t]);
        let lens = run_lengths(&g, keys.len());
        prop_assert_eq!(lens.as_i64().iter().sum::<i64>(), keys.len() as i64);
        // Each run length equals the multiplicity of its key.
        let firsts = g.firsts.to_i64_vec();
        for (gi, &f) in firsts.iter().enumerate() {
            let key = keys[f as usize];
            let mult = keys.iter().filter(|&&k| k == key).count() as i64;
            prop_assert_eq!(lens.as_i64()[gi], mult);
        }
    }

    #[test]
    fn segmented_sum_equals_naive(
        rows in prop::collection::vec((0usize..8, -100f64..100.0), 0..300),
    ) {
        let mut sorted = rows.clone();
        sorted.sort_by_key(|r| r.0);
        let keys = Tensor::from_i64(sorted.iter().map(|r| r.0 as i64).collect());
        let vals = Tensor::from_f64(sorted.iter().map(|r| r.1).collect());
        let g = group_ids(&[&keys]);
        let sums = segmented_reduce(&vals, &g.ids, g.num_groups, AggFn::Sum);
        // Naive per-key sums in first-seen (sorted) order.
        let firsts = g.firsts.to_i64_vec();
        for (gi, &f) in firsts.iter().enumerate() {
            let key = sorted[f as usize].0;
            let expect: f64 = sorted.iter().filter(|r| r.0 == key).map(|r| r.1).sum();
            prop_assert!((sums.as_f64()[gi] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_matches_iterator(xs in prop::collection::vec(-1e6f64..1e6, 0..1000)) {
        let t = Tensor::from_f64(xs.clone());
        let expect: f64 = xs.iter().sum();
        prop_assert!((sum_f64(&t) - expect).abs() <= 1e-6 * expect.abs().max(1.0));
    }

    #[test]
    fn like_matches_naive_matcher(
        s in "[a-c]{0,12}",
        pat in "[a-c%_]{0,8}",
    ) {
        let compiled = LikePattern::compile(&pat);
        let got = compiled.matches(s.as_bytes());
        prop_assert_eq!(got, naive_like(pat.as_bytes(), s.as_bytes()),
            "pattern {:?} on {:?}", pat, s);
    }

    #[test]
    fn take_concat_roundtrip(xs in prop::collection::vec(-100i64..100, 1..100), split in 0usize..100) {
        let t = Tensor::from_i64(xs.clone());
        let k = split.min(xs.len());
        let head = tt::index::head(&t, k);
        let tail = tt::index::slice_rows(&t, k, xs.len());
        let back = tt::index::concat(&[&head, &tail]);
        prop_assert_eq!(back.as_i64(), xs.as_slice());
    }

    #[test]
    fn matmul_matches_naive(
        n in 1usize..6, k in 1usize..6, m in 1usize..6,
        seed in 0u64..1000,
    ) {
        let av: Vec<f64> = (0..n * k).map(|i| ((i as u64 * 37 + seed) % 19) as f64 - 9.0).collect();
        let bv: Vec<f64> = (0..k * m).map(|i| ((i as u64 * 53 + seed) % 17) as f64 - 8.0).collect();
        let c = tt::gemm::matmul_f64(
            &Tensor::from_f64_matrix(av.clone(), n, k),
            &Tensor::from_f64_matrix(bv.clone(), k, m),
        );
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += av[i * k + kk] * bv[kk * m + j];
                }
                prop_assert!((c.as_f64()[i * m + j] - acc).abs() < 1e-9);
            }
        }
    }
}

/// Exponential-time reference LIKE matcher (correct by construction).
fn naive_like(pat: &[u8], s: &[u8]) -> bool {
    match (pat.first(), s.first()) {
        (None, None) => true,
        (None, Some(_)) => false,
        (Some(b'%'), _) => naive_like(&pat[1..], s) || (!s.is_empty() && naive_like(pat, &s[1..])),
        (Some(b'_'), Some(_)) => naive_like(&pat[1..], &s[1..]),
        (Some(&p), Some(&c)) if p == c => naive_like(&pat[1..], &s[1..]),
        _ => false,
    }
}

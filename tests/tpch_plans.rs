//! Plan-shape regression tests: the optimizer must produce the *expected
//! operator structure* for representative TPC-H queries — no Cartesian
//! products where joins exist, subqueries fully decorrelated, filters pushed
//! to scans, and scans pruned to the referenced columns.

use tqp_repro::data::tpch::queries;
use tqp_repro::ir::physical::PhysicalPlan;
use tqp_repro::ir::plan::JoinType;
use tqp_repro::ir::{compile_sql, Catalog, PhysicalOptions};

fn plan(n: usize) -> PhysicalPlan {
    let catalog = Catalog::tpch(1.0);
    compile_sql(queries::query(n), &catalog, &PhysicalOptions::default())
        .unwrap_or_else(|e| panic!("Q{n}: {e}"))
}

fn count(p: &PhysicalPlan, pred: &dyn Fn(&PhysicalPlan) -> bool) -> usize {
    let mut n = usize::from(pred(p));
    for c in p.children() {
        n += count(c, pred);
    }
    n
}

fn joins_of(p: &PhysicalPlan) -> Vec<JoinType> {
    let mut out = Vec::new();
    fn go(p: &PhysicalPlan, out: &mut Vec<JoinType>) {
        if let PhysicalPlan::Join { join_type, .. } = p {
            out.push(*join_type);
        }
        for c in p.children() {
            go(c, out);
        }
    }
    go(p, &mut out);
    out
}

fn cross_joins(p: &PhysicalPlan) -> usize {
    count(p, &|n| matches!(n, PhysicalPlan::CrossJoin { .. }))
}

#[test]
fn q1_is_scan_filter_agg_sort() {
    let p = plan(1);
    assert_eq!(count(&p, &|n| matches!(n, PhysicalPlan::Join { .. })), 0);
    assert_eq!(
        count(&p, &|n| matches!(n, PhysicalPlan::Aggregate { .. })),
        1
    );
    assert_eq!(count(&p, &|n| matches!(n, PhysicalPlan::Sort { .. })), 1);
    // Column pruning: Q1 touches 7 of lineitem's 16 columns.
    fn scan_width(p: &PhysicalPlan) -> Option<usize> {
        match p {
            PhysicalPlan::Scan {
                projection, schema, ..
            } => Some(projection.as_ref().map_or(schema.len(), |x| x.len())),
            _ => p.children().into_iter().find_map(scan_width),
        }
    }
    assert_eq!(scan_width(&p), Some(7));
}

#[test]
fn q2_decorrelates_min_subquery_into_grouped_join() {
    let p = plan(2);
    // The correlated MIN becomes an Inner join against a grouped aggregate;
    // the 5-way and 4-way comma joins become equi-join trees.
    assert_eq!(cross_joins(&p), 0, "Q2 must not contain Cartesian products");
    let grouped_aggs = count(&p, &|n| {
        matches!(
            n,
            PhysicalPlan::Aggregate { group_by, .. } if !group_by.is_empty()
        )
    });
    assert_eq!(
        grouped_aggs, 1,
        "the decorrelated MIN is grouped by ps_partkey"
    );
    assert!(joins_of(&p).len() >= 8, "both join pyramids survive");
}

#[test]
fn q4_exists_becomes_semi_join() {
    let p = plan(4);
    assert_eq!(joins_of(&p), vec![JoinType::Semi]);
    assert_eq!(cross_joins(&p), 0);
}

#[test]
fn q5_builds_full_join_tree() {
    let p = plan(5);
    assert_eq!(cross_joins(&p), 0, "6-table comma join fully extracted");
    assert_eq!(joins_of(&p).len(), 5);
}

#[test]
fn q13_left_join_with_pushed_right_filter() {
    let p = plan(13);
    let jts = joins_of(&p);
    assert!(jts.contains(&JoinType::Left));
    // The NOT LIKE on o_comment must sit on the right side *below* the join.
    fn left_join_right_has_filter(p: &PhysicalPlan) -> bool {
        match p {
            PhysicalPlan::Join {
                join_type: JoinType::Left,
                right,
                ..
            } => {
                fn has_filter(p: &PhysicalPlan) -> bool {
                    matches!(p, PhysicalPlan::Filter { .. })
                        || p.children().into_iter().any(has_filter)
                }
                has_filter(right)
            }
            _ => p.children().into_iter().any(left_join_right_has_filter),
        }
    }
    assert!(left_join_right_has_filter(&p));
}

#[test]
fn q16_not_in_becomes_anti_join() {
    let p = plan(16);
    assert!(joins_of(&p).contains(&JoinType::Anti));
    assert_eq!(cross_joins(&p), 0);
}

#[test]
fn q17_correlated_avg_decorrelated() {
    let p = plan(17);
    assert_eq!(cross_joins(&p), 0);
    let grouped_aggs = count(&p, &|n| {
        matches!(
            n,
            PhysicalPlan::Aggregate { group_by, .. } if !group_by.is_empty()
        )
    });
    assert!(grouped_aggs >= 1, "avg-per-partkey aggregate exists");
}

#[test]
fn q19_or_hoisting_extracts_the_join() {
    let p = plan(19);
    assert_eq!(
        cross_joins(&p),
        0,
        "common p_partkey = l_partkey must be hoisted from the OR"
    );
    assert_eq!(joins_of(&p).len(), 1);
    // The residual OR survives as a filter above the join.
    fn join_has_filter_above(p: &PhysicalPlan) -> bool {
        match p {
            PhysicalPlan::Filter { input, .. } => {
                matches!(**input, PhysicalPlan::Join { .. }) || join_has_filter_above(input)
            }
            _ => p.children().into_iter().any(join_has_filter_above),
        }
    }
    assert!(join_has_filter_above(&p));
}

#[test]
fn q21_has_semi_and_anti_with_residuals() {
    let p = plan(21);
    let jts = joins_of(&p);
    assert!(jts.contains(&JoinType::Semi), "EXISTS → semi");
    assert!(jts.contains(&JoinType::Anti), "NOT EXISTS → anti");
    // The `l2.l_suppkey <> l1.l_suppkey` correlation rides as a residual.
    fn any_semi_anti_residual(p: &PhysicalPlan) -> bool {
        match p {
            PhysicalPlan::Join {
                join_type: JoinType::Semi | JoinType::Anti,
                residual: Some(_),
                ..
            } => true,
            _ => p.children().into_iter().any(any_semi_anti_residual),
        }
    }
    assert!(any_semi_anti_residual(&p));
}

#[test]
fn q22_anti_join_and_scalar_cross() {
    let p = plan(22);
    let jts = joins_of(&p);
    assert!(
        jts.contains(&JoinType::Anti),
        "NOT EXISTS orders → anti join"
    );
    // The uncorrelated AVG subquery becomes a single-row cross join.
    assert!(cross_joins(&p) >= 1);
}

/// Join-order regression for the stats-fed selectivity estimates: with a
/// catalog carrying **real column statistics** (the state every
/// `Session`-registered table now has), all 22 queries must still plan
/// with the same structural invariants the schema-only catalog produces —
/// no Cartesian products appearing, no joins lost, decorrelation intact.
#[test]
fn stats_fed_catalog_does_not_regress_join_orders() {
    use tqp_repro::data::tpch::{TpchConfig, TpchData};
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 7,
    });
    let mut stats_catalog = Catalog::new();
    for (name, frame) in data.tables() {
        stats_catalog.register_with_stats(
            name,
            frame.schema().clone(),
            tqp_repro::data::stats::frame_stats(frame),
        );
    }
    let plain_catalog = Catalog::tpch(0.01);
    for n in 1..=22 {
        let with_stats = compile_sql(
            queries::query(n),
            &stats_catalog,
            &PhysicalOptions::default(),
        )
        .unwrap_or_else(|e| panic!("Q{n} (stats): {e}"));
        let without = compile_sql(
            queries::query(n),
            &plain_catalog,
            &PhysicalOptions::default(),
        )
        .unwrap_or_else(|e| panic!("Q{n}: {e}"));
        // Same operator census: stats may reorder joins but must not
        // introduce Cartesian products or drop/add join edges.
        assert_eq!(
            cross_joins(&with_stats),
            cross_joins(&without),
            "Q{n}: cross-join count changed with statistics"
        );
        let mut a = joins_of(&with_stats);
        let mut b = joins_of(&without);
        a.sort_by_key(|j| format!("{j:?}"));
        b.sort_by_key(|j| format!("{j:?}"));
        assert_eq!(a, b, "Q{n}: join multiset changed with statistics");
    }
}

#[test]
fn no_query_retains_subqueries_or_outer_refs() {
    for n in 1..=22 {
        let p = plan(n);
        fn exprs_clean(p: &PhysicalPlan) -> bool {
            use tqp_repro::ir::BoundExpr;
            let check = |e: &BoundExpr| -> bool {
                let mut ok = true;
                e.visit(&mut |x| {
                    if x.has_subquery() || matches!(x, BoundExpr::OuterRef { .. }) {
                        ok = false;
                    }
                });
                ok
            };
            let own = match p {
                PhysicalPlan::Filter { predicate, .. } => check(predicate),
                PhysicalPlan::Project { exprs, .. } => exprs.iter().all(check),
                PhysicalPlan::Join { residual, .. } => residual.as_ref().is_none_or(check),
                PhysicalPlan::Aggregate { group_by, aggs, .. } => {
                    group_by.iter().all(check)
                        && aggs.iter().all(|a| a.arg.as_ref().is_none_or(check))
                }
                PhysicalPlan::Sort { keys, .. } => keys.iter().all(|k| check(&k.expr)),
                _ => true,
            };
            own && p.children().into_iter().all(exprs_clean)
        }
        assert!(exprs_clean(&p), "Q{n} has undecorrelated expressions");
    }
}

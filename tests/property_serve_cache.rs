//! Prepared-cache key soundness: **equal keys ⇒ equal token streams.**
//!
//! The serving layer keys its prepared-statement cache on
//! `normalize_sql(sql)` (plus the config). If two statements that lex
//! differently ever share a normalized form, the cache serves the wrong
//! compiled statement — exactly what happened when `-- comment` text was
//! kept in the key and the whitespace collapse folded the terminating
//! newline. These properties render random token sequences through random
//! formatting (whitespace runs, keyword case, `-- ...` line comments) and
//! pin the normalized key to the token stream.

use proptest::prelude::*;
use tqp_repro::serve::normalize_sql;
use tqp_repro::sql::lexer::{lex, Token};

/// Lex to a comparison stream with identifiers lowercased: normalization
/// lowercases text outside string literals, and the lexer itself treats
/// keywords case-insensitively, so case is not part of a statement's
/// identity.
fn canon_tokens(sql: &str) -> Result<Vec<Token>, String> {
    let spanned = lex(sql).map_err(|e| e.to_string())?;
    Ok(spanned
        .into_iter()
        .map(|s| match s.tok {
            Token::Ident(w) => Token::Ident(w.to_ascii_lowercase()),
            t => t,
        })
        .collect())
}

/// One renderable atom: canonical text plus whether it is case-flippable.
#[derive(Clone, Debug)]
enum Atom {
    Word(String),
    Fixed(String),
}

fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,5}".prop_map(Atom::Word),
        (0i64..1000).prop_map(|n| Atom::Fixed(n.to_string())),
        (0i64..50, 0i64..100).prop_map(|(a, b)| Atom::Fixed(format!("{a}.{b:02}"))),
        // String literals may contain `--`, runs of spaces, and `''`
        // escapes — all must survive normalization byte-for-byte.
        "[a-z -]{0,8}".prop_map(|s| Atom::Fixed(format!("'{}--  it''s'", s))),
        prop_oneof![
            Just("+"),
            Just("-"),
            Just("*"),
            Just("/"),
            Just("%"),
            Just("="),
            Just("<"),
            Just("<="),
            Just(">"),
            Just(">="),
            Just("<>"),
            Just("("),
            Just(")"),
            Just(","),
            Just("."),
            Just(";"),
            Just("$1"),
            Just("$2"),
        ]
        .prop_map(|s| Atom::Fixed(s.to_string())),
    ]
}

/// A separator between atoms. Comment separators carry a terminating
/// newline so the following atoms survive, and a *leading* space so a
/// preceding `-` atom cannot fuse with the comment opener into `---`;
/// the comment body is free to contain SQL-looking words — that is the
/// collision hazard under test.
fn separator() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(" ".to_string()),
        Just("  ".to_string()),
        Just("\t".to_string()),
        Just("\n".to_string()),
        Just(" \n ".to_string()),
        "[a-z0-9 ]{0,10}".prop_map(|c| format!(" --{c}\n")),
        "[a-z0-9 ]{0,10}".prop_map(|c| format!(" --{c}\n ")),
    ]
}

/// A statement suffix: possibly a trailing comment with NO newline, which
/// silently swallows everything after it — the other half of the original
/// collision pair.
fn suffix() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just(" ".to_string()),
        "[a-z0-9 ]{0,12}".prop_map(|c| format!(" --{c}")),
    ]
}

/// Random per-character case flips for word atoms.
fn apply_case(word: &str, flips: u64) -> String {
    word.chars()
        .enumerate()
        .map(|(i, c)| {
            if (flips >> (i % 64)) & 1 == 1 {
                c.to_ascii_uppercase()
            } else {
                c
            }
        })
        .collect()
}

/// Render a token sequence through one random formatting.
fn render(atoms: &[Atom], seps: &[String], case_flips: u64, suffix: &str) -> String {
    let mut out = String::new();
    for (i, a) in atoms.iter().enumerate() {
        if i > 0 {
            out.push_str(&seps[(i - 1) % seps.len().max(1)]);
        }
        match a {
            Atom::Word(w) => out.push_str(&apply_case(w, case_flips.rotate_left(i as u32))),
            Atom::Fixed(s) => out.push_str(s),
        }
    }
    out.push_str(suffix);
    out
}

fn rendered_statement() -> impl Strategy<Value = (Vec<Atom>, String)> {
    (
        prop::collection::vec(atom(), 1..12),
        prop::collection::vec(separator(), 1..12),
        any::<u64>(),
        suffix(),
    )
        .prop_map(|(atoms, seps, flips, sfx)| {
            let text = render(&atoms, &seps, flips, &sfx);
            (atoms, text)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // The load-bearing invariant: normalization never changes what the
    // statement lexes to. (With comment text kept in the key this fails
    // on the very first comment-bearing input: the collapsed newline
    // turns trailing clauses into comment text.)
    #[test]
    fn normalization_preserves_the_token_stream((_atoms, sql) in rendered_statement()) {
        let before = canon_tokens(&sql)
            .map_err(|e| TestCaseError::fail(format!("{sql:?}: {e}")))?;
        let normalized = normalize_sql(&sql);
        let after = canon_tokens(&normalized)
            .map_err(|e| TestCaseError::fail(format!("normalized {normalized:?}: {e}")))?;
        prop_assert_eq!(before, after, "sql: {:?} normalized: {:?}", sql, normalized);
    }

    // The cache-soundness corollary stated directly: two statements that
    // share a key must lex identically. Pairs are drawn half from the
    // same token sequence (differently formatted — keys collide by
    // design) and half independently.
    #[test]
    fn equal_keys_imply_equal_token_streams(
        (atoms, sql_a) in rendered_statement(),
        (other, sql_b) in rendered_statement(),
        reuse in any::<bool>(),
        seps in prop::collection::vec(separator(), 1..12),
        flips in any::<u64>(),
        sfx in suffix(),
    ) {
        let _ = other;
        let sql_b = if reuse { render(&atoms, &seps, flips, &sfx) } else { sql_b };
        if normalize_sql(&sql_a) == normalize_sql(&sql_b) {
            let ta = canon_tokens(&sql_a)
                .map_err(|e| TestCaseError::fail(format!("{sql_a:?}: {e}")))?;
            let tb = canon_tokens(&sql_b)
                .map_err(|e| TestCaseError::fail(format!("{sql_b:?}: {e}")))?;
            prop_assert_eq!(ta, tb, "colliding keys: {:?} vs {:?}", sql_a, sql_b);
        }
    }

    // Completeness: formatting never fragments the cache — any two
    // renderings of one token sequence share a single key.
    #[test]
    fn formatting_variants_share_one_key(
        (atoms, sql_a) in rendered_statement(),
        seps in prop::collection::vec(separator(), 1..12),
        flips in any::<u64>(),
        sfx in suffix(),
    ) {
        let sql_b = render(&atoms, &seps, flips, &sfx);
        prop_assert_eq!(
            normalize_sql(&sql_a),
            normalize_sql(&sql_b),
            "one statement, two keys: {:?} vs {:?}", sql_a, sql_b
        );
    }
}

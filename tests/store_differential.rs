//! Store-backed scan differential: a TPC-H table round-trips
//! CSV → `tqp-store` → scan with results **bitwise identical** to the
//! in-memory frame path — on all four backends, at workers 1 and 4, with
//! zone-map pruning on and off — and the pruning pre-pass actually skips
//! chunks on selective predicates (with counters to prove it).
//!
//! Two sessions are built over byte-identical data (the frame side reads
//! back the same CSV the store ingests, so CSV float formatting affects
//! both equally): one registers in-memory frames, the other registers the
//! lineitem store file. Statistics flow through the same builder on both
//! paths, so the sessions compile identical plans — which is what makes
//! bitwise (not just value-tolerant) comparison legitimate.

use std::sync::Arc;

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{TpchConfig, TpchData};
use tqp_repro::data::{csv, DataFrame};
use tqp_repro::exec::Backend;
use tqp_repro::store::{store_csv, StoredTable};

const CHUNK_ROWS: usize = 512;

fn tmpdir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("tqp_store_diff_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Build the two sessions: (in-memory, store-backed). Lineitem rides the
/// store in the second session; the smaller dimension tables stay
/// in-memory in both (the differential axis is the scan path).
fn sessions() -> (Session, Session, Arc<StoredTable>) {
    let dir = tmpdir();
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 42,
    });

    // lineitem through a CSV round-trip for BOTH sessions.
    let tables = data.tables();
    let lineitem_frame = &tables.iter().find(|(n, _)| *n == "lineitem").unwrap().1;
    let csv_path = dir.join("lineitem.csv");
    csv::write_csv(lineitem_frame, &csv_path).unwrap();
    let frame_side = csv::read_csv(lineitem_frame.schema(), &csv_path).unwrap();
    let store_path = dir.join("lineitem.tqps");
    let stored =
        Arc::new(store_csv(&csv_path, lineitem_frame.schema(), &store_path, CHUNK_ROWS).unwrap());
    assert!(
        stored.n_chunks() > 4,
        "need a multi-chunk table for a meaningful test (got {})",
        stored.n_chunks()
    );

    let mut mem = Session::new();
    let mut st = Session::new();
    for (name, frame) in data.tables() {
        if name == "lineitem" {
            continue;
        }
        mem.register_table(name, frame.clone());
        st.register_table(name, frame.clone());
    }
    mem.register_table("lineitem", frame_side);
    st.register_stored_table("lineitem", Arc::clone(&stored));
    (mem, st, stored)
}

/// Bitwise frame comparison (Debug formatting preserves every row's
/// scalar values; both sides run identical plans, so row ORDER must
/// match too).
fn assert_bitwise(a: &DataFrame, b: &DataFrame, ctx: &str) {
    assert_eq!(a.nrows(), b.nrows(), "{ctx}: row count");
    assert_eq!(a.ncols(), b.ncols(), "{ctx}: col count");
    for i in 0..a.nrows() {
        assert_eq!(
            format!("{:?}", a.row(i)),
            format!("{:?}", b.row(i)),
            "{ctx}: row {i}"
        );
    }
}

const QUERIES: &[&str] = &[
    // Q6 shape: selective date range + float predicates into a global agg.
    "select sum(l_extendedprice * l_discount) as revenue from lineitem \
     where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' \
     and l_discount between 0.05 and 0.07 and l_quantity < 24",
    // Q1 shape: group-by over nearly everything.
    "select l_returnflag, l_linestatus, sum(l_quantity) as sq, avg(l_extendedprice) as ae, \
     count(*) as c from lineitem where l_shipdate <= date '1998-09-02' \
     group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus",
    // Plain scan → filter → project → sort (no aggregation).
    "select l_orderkey, l_extendedprice * (1.0 - l_discount) as net from lineitem \
     where l_quantity > 45.0 order by l_orderkey, net",
    // Equality + IN + LIKE mix (only the comparisons are zone-testable).
    "select count(*) as c from lineitem where l_returnflag = 'R' \
     and l_linestatus in ('F', 'O') and l_comment like '%the%'",
    // Join against an in-memory table: stored scan feeds a hash build/probe.
    "select o_orderpriority, count(*) as c from lineitem, orders \
     where l_orderkey = o_orderkey and l_shipdate < date '1993-06-01' \
     group by o_orderpriority order by o_orderpriority",
    // Fully-pruned scan: the date is outside every chunk's range.
    "select count(*) as c, sum(l_quantity) as s from lineitem \
     where l_shipdate < date '1901-01-01'",
];

#[test]
fn stored_scans_match_memory_bitwise_all_backends() {
    let (mem, st, _) = sessions();
    for sql in QUERIES {
        for backend in [
            Backend::Eager,
            Backend::Fused,
            Backend::Graph,
            Backend::Wasm,
        ] {
            for workers in [1usize, 4] {
                for prune in [true, false] {
                    let cfg = QueryConfig::default()
                        .backend(backend)
                        .workers(workers)
                        .prune_scans(prune);
                    let ctx = format!("{backend:?} workers={workers} prune={prune}: {sql}");
                    let (want, _) = mem.compile(sql, cfg).unwrap().run(&mem).unwrap();
                    let (got, stats) = st.compile(sql, cfg).unwrap().run(&st).unwrap();
                    assert_bitwise(&want, &got, &ctx);
                    if !prune && backend != Backend::Wasm {
                        assert_eq!(stats.chunks_pruned, 0, "{ctx}: pruned while disabled");
                    }
                }
            }
        }
    }
}

#[test]
fn oracle_agrees_with_stored_sessions() {
    // The row-Volcano baseline materializes stored tables on demand; its
    // results must match the tensor path over the store.
    let (_, st, _) = sessions();
    let sql = QUERIES[1];
    let base = st.sql_baseline(sql).unwrap();
    let (got, _) = st
        .compile(sql, QueryConfig::default())
        .unwrap()
        .run(&st)
        .unwrap();
    assert_eq!(base.nrows(), got.nrows());
    for i in 0..base.nrows() {
        let b = base.row(i);
        let g = got.row(i);
        for (bv, gv) in b.iter().zip(&g) {
            match (bv, gv) {
                (tqp_tensor::Scalar::F64(x), tqp_tensor::Scalar::F64(y)) => {
                    assert!(
                        (x - y).abs() <= 1e-6 * x.abs().max(1.0),
                        "row {i}: {x} vs {y}"
                    )
                }
                _ => assert_eq!(format!("{bv:?}"), format!("{gv:?}"), "row {i}"),
            }
        }
    }
}

#[test]
fn selective_predicates_prune_chunks() {
    let (_, st, stored) = sessions();
    // l_orderkey is emitted in ascending order by the generator, so the
    // chunk zone maps have real locality on it; a small key band should
    // prune almost everything.
    let sql = "select count(*) as c from lineitem where l_orderkey < 100";
    let cfg = QueryConfig::default();
    let (out, stats) = st.compile(sql, cfg).unwrap().run(&st).unwrap();
    assert!(out.column(0).get(0).as_i64() > 0);
    assert!(
        stats.chunks_pruned > 0,
        "selective key predicate pruned nothing: {stats:?}"
    );
    assert_eq!(
        stats.chunks_scanned + stats.chunks_pruned,
        stored.n_chunks() as u64
    );

    // Pruning off decodes everything.
    let (out2, stats2) = st
        .compile(sql, cfg.prune_scans(false))
        .unwrap()
        .run(&st)
        .unwrap();
    assert_eq!(stats2.chunks_pruned, 0);
    assert_eq!(stats2.chunks_scanned, stored.n_chunks() as u64);
    assert_bitwise(&out, &out2, "pruned vs unpruned");

    // Impossible predicate prunes every chunk and still answers correctly.
    let (out3, stats3) = st
        .compile(
            "select count(*) as c from lineitem where l_orderkey < -5",
            cfg,
        )
        .unwrap()
        .run(&st)
        .unwrap();
    assert_eq!(out3.column(0).get(0).as_i64(), 0);
    assert_eq!(stats3.chunks_scanned, 0);
    assert_eq!(stats3.chunks_pruned, stored.n_chunks() as u64);
}

/// Strings with trailing NUL bytes are indistinguishable from their
/// trimmed forms in the padded-byte tensor representation (comparison
/// kernels trim before comparing), so zone maps must use trimmed bounds:
/// pruning on `s = 'x'` must keep chunks whose rows are `"x\0"`.
#[test]
fn trailing_nul_strings_do_not_misprune() {
    let dir = tmpdir();
    let n = 5000usize;
    let frame = tqp_repro::data::frame::df(vec![
        (
            "k",
            tqp_repro::data::Column::from_i64((0..n as i64).collect()),
        ),
        (
            "s",
            tqp_repro::data::Column::from_str(vec!["x\0".to_string(); n]),
        ),
    ]);
    let path = dir.join("nulpad.tqps");
    let stored = Arc::new(tqp_repro::store::store_frame(&frame, &path, 500).unwrap());
    let mut st = Session::new();
    st.register_stored_table("t", Arc::clone(&stored));
    let mut mem = Session::new();
    mem.register_table("t", frame);

    let sql = "select count(*) as c from t where s = 'x'";
    for prune in [true, false] {
        let cfg = QueryConfig::default().prune_scans(prune);
        let (want, _) = mem.compile(sql, cfg).unwrap().run(&mem).unwrap();
        let (got, stats) = st.compile(sql, cfg).unwrap().run(&st).unwrap();
        assert_eq!(want.column(0).get(0).as_i64(), n as i64);
        assert_bitwise(&want, &got, &format!("prune={prune}"));
        if prune {
            assert_eq!(stats.chunks_scanned, stored.n_chunks() as u64);
            assert_eq!(stats.chunks_pruned, 0, "NUL-padded rows match 'x'");
        }
    }
    // The mirror case still prunes: no row can equal 'y'.
    let (got, stats) = st
        .compile(
            "select count(*) as c from t where s = 'y'",
            QueryConfig::default(),
        )
        .unwrap()
        .run(&st)
        .unwrap();
    assert_eq!(got.column(0).get(0).as_i64(), 0);
    assert_eq!(stats.chunks_pruned, stored.n_chunks() as u64);
}

/// Adversarial float magnitudes + a clustered key: the pruned scan must
/// reproduce the in-memory fused-aggregation result bitwise at several
/// worker counts — the original-coordinate morsel geometry contract.
#[test]
fn pruned_aggregation_is_bitwise_stable_on_adversarial_floats() {
    let dir = tmpdir();
    let n = 100_000i64;
    let frame = tqp_repro::data::frame::df(vec![
        ("k", tqp_repro::data::Column::from_i64((0..n).collect())),
        (
            "grp",
            tqp_repro::data::Column::from_i64((0..n).map(|i| i % 7).collect()),
        ),
        (
            "v",
            tqp_repro::data::Column::from_f64(
                (0..n).map(|i| ((i % 9973) as f64) * 1e12 - 5e15).collect(),
            ),
        ),
    ]);
    let path = dir.join("adversarial.tqps");
    let stored = Arc::new(tqp_repro::store::store_frame(&frame, &path, 1000).unwrap());

    let mut mem = Session::new();
    mem.register_table("t", frame);
    let mut st = Session::new();
    st.register_stored_table("t", stored);

    // The filter keeps a key band → ~2/3 of chunks prune away; morsel
    // boundaries (16 Ki default) do not align with the 1000-row chunks.
    let sql = "select grp, sum(v) as s, avg(v) as a, count(*) as c from t \
               where k >= 30000 and k < 61000 and grp <> 3 \
               group by grp order by grp";
    for workers in [1usize, 2, 4, 7] {
        let cfg = QueryConfig::default().workers(workers);
        let (want, _) = mem.compile(sql, cfg).unwrap().run(&mem).unwrap();
        let (got, stats) = st.compile(sql, cfg).unwrap().run(&st).unwrap();
        assert!(
            stats.chunks_pruned > 30,
            "expected heavy pruning: {stats:?}"
        );
        assert_bitwise(&want, &got, &format!("workers={workers}"));
    }
}

//! Differential testing: every TPC-H query, tensor engine vs row oracle.
//!
//! The tensor engine runs under multiple backend × strategy combinations;
//! all must produce cell-identical results (1e-6 relative tolerance on
//! floats) to the row-Volcano oracle after canonical sorting. This is the
//! paper's central correctness claim — "all of them generate the same
//! correct result" (§3.2) — checked across the whole benchmark.

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};
use tqp_repro::data::DataFrame;
use tqp_repro::exec::Backend;
use tqp_repro::ir::{AggStrategy, JoinStrategy, PhysicalOptions};
use tqp_tensor::Scalar;

fn session() -> Session {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 20_220_901,
    });
    let mut s = Session::new();
    s.register_tpch(&data);
    s
}

/// Canonicalize a frame into sorted rows of strings for comparison.
fn canon(frame: &DataFrame) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..frame.nrows())
        .map(|i| {
            frame
                .row(i)
                .into_iter()
                .map(|s| match s {
                    Scalar::F64(v) => format!("{:.4}", v),
                    Scalar::F32(v) => format!("{:.4}", v),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn assert_frames_match(n: usize, label: &str, got: &DataFrame, expect: &DataFrame) {
    assert_eq!(got.nrows(), expect.nrows(), "Q{n} [{label}]: row count");
    assert_eq!(got.ncols(), expect.ncols(), "Q{n} [{label}]: col count");
    let g = canon(got);
    let e = canon(expect);
    for (i, (gr, er)) in g.iter().zip(&e).enumerate() {
        for (c, (gv, ev)) in gr.iter().zip(er).enumerate() {
            if gv == ev {
                continue;
            }
            // Numeric wiggle room: 1e-6 relative.
            if let (Ok(a), Ok(b)) = (gv.parse::<f64>(), ev.parse::<f64>()) {
                let tol = 1e-6 * b.abs().max(1.0);
                assert!(
                    (a - b).abs() <= tol,
                    "Q{n} [{label}] row {i} col {c}: {gv} vs {ev}"
                );
            } else {
                panic!("Q{n} [{label}] row {i} col {c}: {gv:?} vs {ev:?}");
            }
        }
    }
}

fn run_suite(backend: Backend, physical: PhysicalOptions, label: &str) {
    let s = session();
    for (n, sql) in queries::all() {
        let expect = s
            .sql_baseline(sql)
            .unwrap_or_else(|e| panic!("Q{n} oracle: {e}"));
        let q = s
            .compile(
                sql,
                QueryConfig::default().backend(backend).physical(physical),
            )
            .unwrap_or_else(|e| panic!("Q{n} compile: {e}"));
        let (got, _) = q.run(&s).unwrap_or_else(|e| panic!("Q{n} run: {e}"));
        assert_frames_match(n, label, &got, &expect);
    }
}

#[test]
fn eager_sortmerge_sortagg_matches_oracle() {
    run_suite(
        Backend::Eager,
        PhysicalOptions {
            join: JoinStrategy::SortMerge,
            agg: AggStrategy::Sort,
        },
        "eager/smj/sort",
    );
}

#[test]
fn eager_hash_strategies_match_oracle() {
    run_suite(
        Backend::Eager,
        PhysicalOptions {
            join: JoinStrategy::Hash,
            agg: AggStrategy::Hash,
        },
        "eager/hash/hash",
    );
}

#[test]
fn fused_backend_matches_oracle() {
    run_suite(
        Backend::Fused,
        PhysicalOptions {
            join: JoinStrategy::SortMerge,
            agg: AggStrategy::Sort,
        },
        "fused/smj/sort",
    );
}

#[test]
fn graph_backend_matches_oracle() {
    run_suite(
        Backend::Graph,
        PhysicalOptions {
            join: JoinStrategy::SortMerge,
            agg: AggStrategy::Sort,
        },
        "graph/smj/sort",
    );
}

#[test]
fn wasm_backend_matches_oracle() {
    run_suite(
        Backend::Wasm,
        PhysicalOptions {
            join: JoinStrategy::SortMerge,
            agg: AggStrategy::Sort,
        },
        "wasm/smj/sort",
    );
}

#[test]
fn mixed_strategies_match_oracle() {
    run_suite(
        Backend::Eager,
        PhysicalOptions {
            join: JoinStrategy::Hash,
            agg: AggStrategy::Sort,
        },
        "eager/hash/sort",
    );
}

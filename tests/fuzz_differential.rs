//! Randomized differential fuzzing: seeded SQL generation over the TPC-H
//! schema, every generated query executed on all four tensor backends
//! (plus the hash-strategy plans) and checked cell-for-cell against the
//! `tqp-baseline` row-Volcano oracle.
//!
//! The generator covers projections (arithmetic, CASE), filters
//! (comparisons, BETWEEN, LIKE, IN), comma-joins on the TPC-H foreign
//! keys, GROUP BY with the full aggregate set, DISTINCT, and ORDER BY.
//! On a mismatch the failing query is **shrunk** — filters, projections,
//! and clauses are removed while the failure reproduces — and the minimal
//! SQL plus the seed is printed so the case can be replayed with
//! `TQP_FUZZ_SEED`.
//!
//! **Stored-table mode**: every query additionally runs against a second
//! session whose TPC-H tables live in `tqp-store` files (chunked,
//! compressed, zone-map-pruned scans). Both sessions hold identical data
//! and identical catalog statistics, so they compile identical plans —
//! the stored run is asserted **bitwise** equal to the in-memory run,
//! not just value-tolerant.
//!
//! Budget knobs (CI pins them): `TQP_FUZZ_QUERIES` (default 40),
//! `TQP_FUZZ_SEED` (default 0xC0FFEE), `TQP_FUZZ_SF` (default 0.01).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{TpchConfig, TpchData};
use tqp_repro::data::DataFrame;
use tqp_repro::exec::Backend;
use tqp_repro::ir::{AggStrategy, JoinStrategy, PhysicalOptions};
use tqp_tensor::Scalar;

// ---------------------------------------------------------------------
// Schema metadata for generation
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq)]
enum Kind {
    Int,
    Float,
    /// String with a known low-cardinality value set.
    Enum(&'static [&'static str]),
    /// Free-form string (LIKE-only predicates).
    Text,
    Date,
}

struct Col {
    name: &'static str,
    kind: Kind,
}

const fn col(name: &'static str, kind: Kind) -> Col {
    Col { name, kind }
}

struct Source {
    /// FROM clause text.
    from: &'static str,
    /// Equi-join condition riding as the first WHERE conjunct (None for
    /// single tables).
    join: Option<&'static str>,
    cols: &'static [Col],
}

const LINEITEM_COLS: &[Col] = &[
    col("l_orderkey", Kind::Int),
    col("l_partkey", Kind::Int),
    col("l_suppkey", Kind::Int),
    col("l_linenumber", Kind::Int),
    col("l_quantity", Kind::Float),
    col("l_extendedprice", Kind::Float),
    col("l_discount", Kind::Float),
    col("l_returnflag", Kind::Enum(&["A", "N", "R"])),
    col("l_linestatus", Kind::Enum(&["O", "F"])),
    col("l_shipdate", Kind::Date),
    col("l_comment", Kind::Text),
];

const ORDERS_COLS: &[Col] = &[
    col("o_orderkey", Kind::Int),
    col("o_custkey", Kind::Int),
    col("o_totalprice", Kind::Float),
    col("o_orderdate", Kind::Date),
    col("o_orderstatus", Kind::Enum(&["O", "F", "P"])),
    col("o_shippriority", Kind::Int),
    col("o_comment", Kind::Text),
];

const PART_COLS: &[Col] = &[
    col("p_partkey", Kind::Int),
    col("p_size", Kind::Int),
    col("p_retailprice", Kind::Float),
    col("p_brand", Kind::Text),
    col("p_type", Kind::Text),
];

const CUSTOMER_COLS: &[Col] = &[
    col("c_custkey", Kind::Int),
    col("c_nationkey", Kind::Int),
    col("c_acctbal", Kind::Float),
    col("c_mktsegment", Kind::Text),
    col("c_phone", Kind::Text),
];

const JOIN_LO: &[Col] = &[
    col("l_quantity", Kind::Float),
    col("l_extendedprice", Kind::Float),
    col("l_discount", Kind::Float),
    col("l_returnflag", Kind::Enum(&["A", "N", "R"])),
    col("l_shipdate", Kind::Date),
    col("o_totalprice", Kind::Float),
    col("o_orderstatus", Kind::Enum(&["O", "F", "P"])),
    col("o_orderdate", Kind::Date),
    col("o_shippriority", Kind::Int),
];

const JOIN_OC: &[Col] = &[
    col("o_totalprice", Kind::Float),
    col("o_orderdate", Kind::Date),
    col("o_orderstatus", Kind::Enum(&["O", "F", "P"])),
    col("c_acctbal", Kind::Float),
    col("c_nationkey", Kind::Int),
    col("c_mktsegment", Kind::Text),
];

const JOIN_LP: &[Col] = &[
    col("l_quantity", Kind::Float),
    col("l_extendedprice", Kind::Float),
    col("l_shipdate", Kind::Date),
    col("p_size", Kind::Int),
    col("p_retailprice", Kind::Float),
    col("p_brand", Kind::Text),
];

const SOURCES: &[Source] = &[
    Source {
        from: "lineitem",
        join: None,
        cols: LINEITEM_COLS,
    },
    Source {
        from: "orders",
        join: None,
        cols: ORDERS_COLS,
    },
    Source {
        from: "part",
        join: None,
        cols: PART_COLS,
    },
    Source {
        from: "customer",
        join: None,
        cols: CUSTOMER_COLS,
    },
    Source {
        from: "lineitem, orders",
        join: Some("l_orderkey = o_orderkey"),
        cols: JOIN_LO,
    },
    Source {
        from: "orders, customer",
        join: Some("o_custkey = c_custkey"),
        cols: JOIN_OC,
    },
    Source {
        from: "lineitem, part",
        join: Some("l_partkey = p_partkey"),
        cols: JOIN_LP,
    },
];

const LIKE_PATTERNS: &[&str] = &["%a%", "%the%", "s%", "%5", "%r%e%", "B%"];

// ---------------------------------------------------------------------
// Query specs (structured so shrinking can remove pieces)
// ---------------------------------------------------------------------

#[derive(Clone)]
struct Spec {
    from: String,
    join: Option<String>,
    filters: Vec<String>,
    /// `(item_sql, alias)` select items; group keys first when grouped.
    select: Vec<(String, String)>,
    /// Number of leading select items that are group keys (0 = ungrouped).
    n_group_keys: usize,
    distinct: bool,
    order_by: Vec<String>,
}

impl Spec {
    fn to_sql(&self) -> String {
        let mut s = String::from("select ");
        if self.distinct {
            s.push_str("distinct ");
        }
        let items: Vec<String> = self
            .select
            .iter()
            .map(|(e, a)| format!("{e} as {a}"))
            .collect();
        s.push_str(&items.join(", "));
        s.push_str(&format!(" from {}", self.from));
        let conj: Vec<&String> = self.join.iter().chain(self.filters.iter()).collect();
        if !conj.is_empty() {
            s.push_str(" where ");
            let parts: Vec<&str> = conj.iter().map(|c| c.as_str()).collect();
            s.push_str(&parts.join(" and "));
        }
        if self.n_group_keys > 0 {
            let keys: Vec<&str> = self.select[..self.n_group_keys]
                .iter()
                .map(|(e, _)| e.as_str())
                .collect();
            s.push_str(&format!(" group by {}", keys.join(", ")));
        }
        if !self.order_by.is_empty() {
            s.push_str(&format!(" order by {}", self.order_by.join(", ")));
        }
        s
    }
}

fn rand_date(rng: &mut StdRng) -> String {
    format!(
        "date '{:04}-{:02}-{:02}'",
        rng.gen_range(1992i64..=1998),
        rng.gen_range(1i64..=12),
        rng.gen_range(1i64..=28)
    )
}

fn predicate(rng: &mut StdRng, c: &Col) -> String {
    let name = c.name;
    match c.kind {
        Kind::Int => match rng.gen_range(0u32..3) {
            0 => format!("{name} < {}", rng.gen_range(1i64..2000)),
            1 => format!("{name} >= {}", rng.gen_range(1i64..2000)),
            _ => format!(
                "{name} % {} = {}",
                rng.gen_range(2i64..9),
                rng.gen_range(0i64..2)
            ),
        },
        Kind::Float => match rng.gen_range(0u32..3) {
            0 => format!("{name} < {:.2}", rng.gen_range(0.0f64..2000.0)),
            1 => format!("{name} > {:.2}", rng.gen_range(0.0f64..100.0)),
            _ => {
                let lo = rng.gen_range(0.0f64..500.0);
                format!(
                    "{name} between {:.2} and {:.2}",
                    lo,
                    lo + rng.gen_range(1.0f64..500.0)
                )
            }
        },
        Kind::Enum(vals) => {
            if rng.gen_bool(0.5) || vals.len() < 2 {
                let v = vals[rng.gen_range(0usize..vals.len())];
                format!("{name} = '{v}'")
            } else {
                let a = vals[rng.gen_range(0usize..vals.len())];
                let b = vals[rng.gen_range(0usize..vals.len())];
                let not = if rng.gen_bool(0.2) { "not " } else { "" };
                format!("{name} {not}in ('{a}', '{b}')")
            }
        }
        Kind::Text => {
            let p = LIKE_PATTERNS[rng.gen_range(0usize..LIKE_PATTERNS.len())];
            let not = if rng.gen_bool(0.2) { "not " } else { "" };
            format!("{name} {not}like '{p}'")
        }
        Kind::Date => {
            let op = if rng.gen_bool(0.5) { "<" } else { ">=" };
            format!("{name} {op} {}", rand_date(rng))
        }
    }
}

/// A numeric-valued select expression over the source's columns.
fn numeric_expr(rng: &mut StdRng, src: &Source) -> Option<String> {
    let numerics: Vec<&Col> = src
        .cols
        .iter()
        .filter(|c| matches!(c.kind, Kind::Float | Kind::Int))
        .collect();
    if numerics.is_empty() {
        return None;
    }
    let a = numerics[rng.gen_range(0usize..numerics.len())];
    Some(match rng.gen_range(0u32..4) {
        0 => a.name.to_string(),
        1 => format!("{} * {:.2}", a.name, rng.gen_range(0.5f64..3.0)),
        2 => {
            let b = numerics[rng.gen_range(0usize..numerics.len())];
            format!("{} + {}", a.name, b.name)
        }
        _ => {
            // CASE projection (Q14 shape): predicate over any column.
            let pc = &src.cols[rng.gen_range(0usize..src.cols.len())];
            let mut r2 = StdRng::seed_from_u64(rng.gen_range(0u64..u64::MAX / 2));
            format!(
                "case when {} then {} else 0 end",
                predicate(&mut r2, pc),
                a.name
            )
        }
    })
}

fn generate(rng: &mut StdRng) -> Spec {
    let src = &SOURCES[rng.gen_range(0usize..SOURCES.len())];
    let mut filters = Vec::new();
    for _ in 0..rng.gen_range(0usize..=3) {
        let c = &src.cols[rng.gen_range(0usize..src.cols.len())];
        filters.push(predicate(rng, c));
    }

    let grouped = rng.gen_bool(0.45);
    let mut select: Vec<(String, String)> = Vec::new();
    let mut n_group_keys = 0;
    let mut distinct = false;
    if grouped {
        // 1-2 group keys over enum/int columns (NULL-free, low-ish
        // cardinality), then 1-3 aggregates.
        let keyable: Vec<&Col> = src
            .cols
            .iter()
            .filter(|c| matches!(c.kind, Kind::Enum(_) | Kind::Int))
            .collect();
        let n_keys = rng.gen_range(1usize..=2.min(keyable.len()));
        for k in 0..n_keys {
            let c = keyable[rng.gen_range(0usize..keyable.len())];
            select.push((c.name.to_string(), format!("k{k}")));
        }
        n_group_keys = n_keys;
        let n_aggs = rng.gen_range(1usize..=3);
        for a in 0..n_aggs {
            let agg = match rng.gen_range(0u32..6) {
                0 => "count(*)".to_string(),
                f => {
                    let arg = numeric_expr(rng, src).unwrap_or_else(|| "1".into());
                    let func = ["sum", "avg", "min", "max", "count"][(f as usize - 1) % 5];
                    format!("{func}({arg})")
                }
            };
            select.push((agg, format!("a{a}")));
        }
    } else {
        distinct = rng.gen_bool(0.15);
        let n_items = rng.gen_range(1usize..=4);
        for i in 0..n_items {
            let item = if rng.gen_bool(0.3) {
                numeric_expr(rng, src)
                    .unwrap_or_else(|| src.cols[rng.gen_range(0usize..src.cols.len())].name.into())
            } else {
                src.cols[rng.gen_range(0usize..src.cols.len())]
                    .name
                    .to_string()
            };
            select.push((item, format!("c{i}")));
        }
        if distinct {
            // DISTINCT over wide free-text rows explodes Wasm sandbox
            // copies for no coverage gain; keep it narrow.
            select.truncate(2);
        }
    }

    // ORDER BY a random subset of output aliases (multiset comparison
    // makes this cosmetically optional, but it exercises Sort lowering).
    let mut order_by = Vec::new();
    if rng.gen_bool(0.5) {
        let n = rng.gen_range(1usize..=select.len());
        for (_, alias) in select.iter().take(n) {
            let dir = if rng.gen_bool(0.3) { " desc" } else { "" };
            order_by.push(format!("{alias}{dir}"));
        }
    }

    Spec {
        from: src.from.to_string(),
        join: src.join.map(|j| j.to_string()),
        filters,
        select,
        n_group_keys,
        distinct,
        order_by,
    }
}

// ---------------------------------------------------------------------
// Differential check + shrinking
// ---------------------------------------------------------------------

/// Canonicalize a frame into sorted rows of strings (floats rounded) —
/// same comparison the TPC-H differential suite uses.
fn canon(frame: &DataFrame) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..frame.nrows())
        .map(|i| {
            frame
                .row(i)
                .into_iter()
                .map(|s| match s {
                    Scalar::F64(v) => format!("{:.4}", v),
                    Scalar::F32(v) => format!("{:.4}", v),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn frames_match(got: &DataFrame, expect: &DataFrame) -> Result<(), String> {
    if got.nrows() != expect.nrows() {
        return Err(format!("row count {} vs {}", got.nrows(), expect.nrows()));
    }
    if got.ncols() != expect.ncols() {
        return Err(format!("col count {} vs {}", got.ncols(), expect.ncols()));
    }
    let g = canon(got);
    let e = canon(expect);
    for (i, (gr, er)) in g.iter().zip(&e).enumerate() {
        for (c, (gv, ev)) in gr.iter().zip(er).enumerate() {
            if gv == ev {
                continue;
            }
            if let (Ok(a), Ok(b)) = (gv.parse::<f64>(), ev.parse::<f64>()) {
                let tol = 1e-6 * b.abs().max(1.0);
                if (a - b).abs() <= tol {
                    continue;
                }
            }
            return Err(format!("row {i} col {c}: {gv:?} vs {ev:?}"));
        }
    }
    Ok(())
}

const BACKENDS: &[(Backend, JoinStrategy, AggStrategy, &str)] = &[
    (
        Backend::Eager,
        JoinStrategy::SortMerge,
        AggStrategy::Sort,
        "eager/smj/sort",
    ),
    (
        Backend::Eager,
        JoinStrategy::Hash,
        AggStrategy::Hash,
        "eager/hash/hash",
    ),
    (
        Backend::Fused,
        JoinStrategy::SortMerge,
        AggStrategy::Sort,
        "fused/smj/sort",
    ),
    (
        Backend::Graph,
        JoinStrategy::Hash,
        AggStrategy::Sort,
        "graph/hash/sort",
    ),
    (
        Backend::Wasm,
        JoinStrategy::SortMerge,
        AggStrategy::Sort,
        "wasm/smj/sort",
    ),
];

/// The differential pair: the classic in-memory session plus a session
/// whose tables are `tqp-store` files over the same data.
struct Sessions {
    mem: Session,
    stored: Session,
}

/// Bitwise row equality (both sessions run the same plan, so order and
/// float bits must match exactly).
fn frames_bitwise(got: &DataFrame, expect: &DataFrame) -> Result<(), String> {
    if got.nrows() != expect.nrows() {
        return Err(format!("row count {} vs {}", got.nrows(), expect.nrows()));
    }
    for i in 0..got.nrows() {
        let (g, e) = (format!("{:?}", got.row(i)), format!("{:?}", expect.row(i)));
        if g != e {
            return Err(format!("row {i}: {g} vs {e}"));
        }
    }
    Ok(())
}

/// Run one query through the oracle and every backend — on both the
/// in-memory and the store-backed session; Err holds the first
/// divergence (or compile/run failure).
fn check(sessions: &Sessions, sql: &str) -> Result<(), String> {
    let expect = sessions
        .mem
        .sql_baseline(sql)
        .map_err(|e| format!("oracle failed: {e}"))?;
    for &(backend, join, agg, label) in BACKENDS {
        let cfg = QueryConfig::default()
            .backend(backend)
            .physical(PhysicalOptions { join, agg });
        let q = sessions
            .mem
            .compile(sql, cfg)
            .map_err(|e| format!("[{label}] compile failed: {e}"))?;
        let (got, _) = q
            .run(&sessions.mem)
            .map_err(|e| format!("[{label}] run failed: {e}"))?;
        frames_match(&got, &expect).map_err(|e| format!("[{label}] {e}"))?;
        // Fusion off: the generic per-op expression path must be bitwise
        // the fused-kernel path on every backend (the fused dense masks
        // and output evaluation may reorder nothing, drop nothing).
        let uq = sessions
            .mem
            .compile(sql, cfg.fuse_exprs(false))
            .map_err(|e| format!("[{label}/nofuse] compile failed: {e}"))?;
        let (ugot, _) = uq
            .run(&sessions.mem)
            .map_err(|e| format!("[{label}/nofuse] run failed: {e}"))?;
        frames_bitwise(&ugot, &got).map_err(|e| format!("[{label}/nofuse] {e}"))?;
        // Flat hash engine off: the legacy HashMap build/probe/group-by
        // must be bitwise the flat-arena path (hash-strategy plans only —
        // sort-merge/sort-agg configs build no hash tables).
        if join == JoinStrategy::Hash || agg == AggStrategy::Hash {
            let fq = sessions
                .mem
                .compile(sql, cfg.flat_hash(false))
                .map_err(|e| format!("[{label}/noflat] compile failed: {e}"))?;
            let (fgot, _) = fq
                .run(&sessions.mem)
                .map_err(|e| format!("[{label}/noflat] run failed: {e}"))?;
            frames_bitwise(&fgot, &got).map_err(|e| format!("[{label}/noflat] {e}"))?;
        }
        // SIMD off: the scalar fallback tier must be bitwise the
        // vectorized tier (they share the canonical lane-split fold, so
        // even float aggregates cannot disagree).
        let nq = sessions
            .mem
            .compile(sql, cfg.simd(false))
            .map_err(|e| format!("[{label}/nosimd] compile failed: {e}"))?;
        let (ngot, _) = nq
            .run(&sessions.mem)
            .map_err(|e| format!("[{label}/nosimd] run failed: {e}"))?;
        frames_bitwise(&ngot, &got).map_err(|e| format!("[{label}/nosimd] {e}"))?;
        // Stored-table mode: same query over the tqp-store scan path,
        // bitwise against the in-memory tensor result.
        let sq = sessions
            .stored
            .compile(sql, cfg)
            .map_err(|e| format!("[{label}/store] compile failed: {e}"))?;
        let (sgot, _) = sq
            .run(&sessions.stored)
            .map_err(|e| format!("[{label}/store] run failed: {e}"))?;
        frames_bitwise(&sgot, &got).map_err(|e| format!("[{label}/store] {e}"))?;
    }
    Ok(())
}

/// Candidate one-step reductions of a failing spec.
fn candidates(s: &Spec) -> Vec<Spec> {
    let mut out = Vec::new();
    for i in 0..s.filters.len() {
        let mut c = s.clone();
        c.filters.remove(i);
        out.push(c);
    }
    if !s.order_by.is_empty() {
        let mut c = s.clone();
        c.order_by.clear();
        out.push(c);
    }
    if s.distinct {
        let mut c = s.clone();
        c.distinct = false;
        out.push(c);
    }
    // Drop trailing aggregates (keep ≥ 1 select item past the group keys
    // when grouped, ≥ 1 item overall otherwise).
    let min_items = if s.n_group_keys > 0 {
        s.n_group_keys + 1
    } else {
        1
    };
    if s.select.len() > min_items {
        let mut c = s.clone();
        c.select.pop();
        c.order_by.clear();
        out.push(c);
    }
    out
}

fn shrink(sessions: &Sessions, spec: Spec) -> Spec {
    let mut cur = spec;
    loop {
        let mut reduced = None;
        for cand in candidates(&cur) {
            if check(sessions, &cand.to_sql()).is_err() {
                reduced = Some(cand);
                break;
            }
        }
        match reduced {
            Some(c) => cur = c,
            None => return cur,
        }
    }
}

/// Build the in-memory/store-backed session pair over identical data.
fn build_sessions(data: &TpchData) -> Sessions {
    let mut mem = Session::new();
    mem.register_tpch(data);
    let dir = std::env::temp_dir().join(format!("tqp_fuzz_store_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut stored = Session::new();
    for (name, frame) in data.tables() {
        let path = dir.join(format!("{name}.tqps"));
        let table = tqp_repro::store::store_frame(frame, &path, 2048)
            .unwrap_or_else(|e| panic!("storing {name}: {e}"));
        stored.register_stored_table(name, std::sync::Arc::new(table));
    }
    Sessions { mem, stored }
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn randomized_queries_match_the_oracle_on_all_backends() {
    let seed = env_u64("TQP_FUZZ_SEED", 0xC0FFEE);
    let n_queries = env_u64("TQP_FUZZ_QUERIES", 40) as usize;
    let sf = env_f64("TQP_FUZZ_SF", 0.01);

    let data = TpchData::generate(&TpchConfig {
        scale_factor: sf,
        seed: 20_220_901,
    });
    let sessions = build_sessions(&data);

    let mut rng = StdRng::seed_from_u64(seed);
    for qi in 0..n_queries {
        let spec = generate(&mut rng);
        let sql = spec.to_sql();
        if let Err(err) = check(&sessions, &sql) {
            let minimal = shrink(&sessions, spec);
            let minimal_sql = minimal.to_sql();
            let minimal_err = check(&sessions, &minimal_sql).unwrap_err();
            panic!(
                "fuzz query {qi} diverged (seed {seed:#x}):\n  original: {sql}\n  \
                 error:    {err}\n  shrunk:   {minimal_sql}\n  shrunk error: {minimal_err}\n\
                 replay with TQP_FUZZ_SEED={seed}"
            );
        }
    }
}

/// The fuzzer's own harness must keep flagging genuine divergences: an
/// intentionally wrong "oracle" comparison fails, and shrinking reaches a
/// smaller failing spec.
#[test]
fn fuzz_harness_detects_and_shrinks_divergence() {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.002,
        seed: 1,
    });
    let mut session = Session::new();
    session.register_tpch(&data);
    let a = session.sql("select o_orderkey from orders").unwrap();
    let b = session
        .sql("select o_orderkey from orders where o_orderkey % 2 = 0")
        .unwrap();
    assert!(frames_match(&a, &a).is_ok());
    assert!(frames_match(&a, &b).is_err());
}

//! Parser round-trip property: pretty-printing any generated expression and
//! re-parsing it yields the same AST (print ∘ parse = id on the AST image).

use proptest::prelude::*;
use tqp_repro::sql::{parse_expr, BinaryOp, Expr, Literal};

fn literal() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (-1000i64..1000).prop_map(|v| Expr::Literal(Literal::Int(v))),
        (-100f64..100.0).prop_map(|v| Expr::Literal(Literal::Float((v * 16.0).round() / 16.0))),
        "[a-z]{0,6}".prop_map(|s| Expr::Literal(Literal::Str(s))),
    ]
}

fn column() -> impl Strategy<Value = Expr> {
    prop_oneof![
        "[a-z][a-z0-9_]{0,6}"
            .prop_filter("not reserved", |s| !is_reserved(s))
            .prop_map(|name| { Expr::Column { table: None, name } }),
        (
            "[a-z]{1,3}".prop_filter("not reserved", |s| !is_reserved(s)),
            "[a-z][a-z0-9_]{0,6}".prop_filter("not reserved", |s| !is_reserved(s))
        )
            .prop_map(|(t, name)| Expr::Column {
                table: Some(t),
                name
            }),
    ]
}

fn is_reserved(s: &str) -> bool {
    [
        "select",
        "from",
        "where",
        "group",
        "order",
        "having",
        "limit",
        "on",
        "join",
        "inner",
        "left",
        "right",
        "outer",
        "cross",
        "as",
        "and",
        "or",
        "not",
        "asc",
        "desc",
        "union",
        "when",
        "then",
        "else",
        "end",
        "case",
        "between",
        "in",
        "like",
        "is",
        "exists",
        "with",
        "distinct",
        "by",
        "null",
        "date",
        "interval",
        "extract",
        "substring",
        "substr",
        "predict",
        "true",
        "false",
        "count",
        "sum",
        "avg",
        "min",
        "max",
        "abs",
    ]
    .contains(&s)
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal(), column()];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // Arithmetic / comparison / boolean binaries.
            (
                prop_oneof![
                    Just(BinaryOp::Add),
                    Just(BinaryOp::Sub),
                    Just(BinaryOp::Mul),
                    Just(BinaryOp::Div),
                    Just(BinaryOp::Eq),
                    Just(BinaryOp::Lt),
                    Just(BinaryOp::GtEq),
                    Just(BinaryOp::And),
                    Just(BinaryOp::Or),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::bin(op, l, r)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            // The parser canonicalizes negated literals into the literal
            // itself; generate the canonical form directly.
            inner.clone().prop_map(|e| match e {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Neg(Box::new(other)),
            }),
            // CASE WHEN.
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, v, e)| Expr::Case {
                branches: vec![(c, v)],
                else_expr: Some(Box::new(e)),
            }),
            // LIKE / IN list / BETWEEN / IS NULL.
            (inner.clone(), "[a-z%_]{0,6}", any::<bool>()).prop_map(|(e, p, n)| Expr::Like {
                expr: Box::new(e),
                pattern: p,
                negated: n,
            }),
            (
                inner.clone(),
                prop::collection::vec(literal(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, negated)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated,
                }
            ),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated,
            }),
            // Aggregate-ish function calls.
            (prop_oneof![Just("sum"), Just("min"), Just("count")], inner).prop_map(|(name, a)| {
                Expr::Func {
                    name: name.to_string(),
                    args: vec![a],
                    distinct: false,
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_roundtrip(e in arb_expr()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .map_err(|err| TestCaseError::fail(format!("{printed:?}: {err}")))?;
        prop_assert_eq!(reparsed, e, "printed: {}", printed);
    }

    #[test]
    fn query_roundtrip_with_random_predicates(e in arb_expr()) {
        // Any expression must survive embedding as a WHERE predicate.
        let sql = format!("select a from t where ({}) is null order by a limit 7", e);
        let q1 = tqp_repro::sql::parse(&sql)
            .map_err(|err| TestCaseError::fail(format!("{sql}: {err}")))?;
        let printed = q1.to_string();
        let q2 = tqp_repro::sql::parse(&printed)
            .map_err(|err| TestCaseError::fail(format!("reparse {printed}: {err}")))?;
        prop_assert_eq!(q1, q2);
    }
}

//! `EXPLAIN ANALYZE` determinism: per-operator **actual rows are an
//! execution-invariant** — the same for 1 or 4 workers and for every
//! backend, because span sites charge operator *output* rows rather than
//! whatever morsel routing happened to deliver.
//!
//! Runs TPC-H Q1/Q6/Q19 (scan-heavy, filter-heavy, and join-heavy
//! respectively) through [`CompiledQuery::explain_analyze_rows`] under
//! every backend × worker-count combination and asserts the structured
//! rows — minus wall time — are identical.

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};
use tqp_repro::exec::Backend;

fn session() -> Session {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.01,
        seed: 20_220_901,
    });
    let mut s = Session::new();
    s.register_tpch(&data);
    s
}

/// The invariant part of an explain row: everything except wall time.
fn shape(s: &Session, sql: &str, cfg: QueryConfig) -> Vec<(usize, String, String, Option<u64>)> {
    let q = s.compile(sql, cfg).unwrap();
    q.explain_analyze_rows(s)
        .unwrap()
        .into_iter()
        .map(|r| (r.depth, r.op, format!("{}", r.est_rows), r.actual_rows))
        .collect()
}

#[test]
fn actual_rows_invariant_across_workers_and_backends() {
    let s = session();
    let backends = [
        Backend::Eager,
        Backend::Fused,
        Backend::Graph,
        Backend::Wasm,
    ];
    for qn in [1usize, 6, 19] {
        let sql = queries::query(qn);
        let reference = shape(&s, sql, QueryConfig::default().workers(1));
        assert!(
            reference.iter().any(|(_, _, _, a)| a.is_some()),
            "Q{qn}: no actuals attributed at all"
        );
        // Every plan leaf is a table scan whose actual row count must be
        // present (scans always map to a program op).
        for (depth, op, _, actual) in &reference {
            if op.starts_with("Scan(") {
                assert!(
                    actual.is_some(),
                    "Q{qn}: scan without actuals at depth {depth}"
                );
            }
        }
        for backend in backends {
            for workers in [1usize, 4] {
                let cfg = QueryConfig::default().backend(backend).workers(workers);
                let got = shape(&s, sql, cfg);
                assert_eq!(
                    got, reference,
                    "Q{qn}: explain rows diverged ({backend:?}, {workers} workers)"
                );
            }
        }
    }
}

#[test]
fn explain_text_renders_est_and_actuals() {
    let s = session();
    let sql = queries::query(6);

    // Plain EXPLAIN never executes: estimates only.
    let q = s
        .compile(&format!("explain {sql}"), QueryConfig::default())
        .unwrap();
    let (frame, _) = q.run(&s).unwrap();
    let text: Vec<String> = (0..frame.nrows())
        .map(|i| format!("{}", frame.row(i)[0]))
        .collect();
    assert!(text.iter().any(|l| l.contains("Scan(lineitem)")));
    assert!(text.iter().all(|l| !l.contains("actual=")));

    // EXPLAIN ANALYZE executes and joins actuals onto the same tree.
    let q = s
        .compile(&format!("explain analyze {sql}"), QueryConfig::default())
        .unwrap();
    let (frame, _) = q.run(&s).unwrap();
    let text: Vec<String> = (0..frame.nrows())
        .map(|i| format!("{}", frame.row(i)[0]))
        .collect();
    assert!(
        text.iter()
            .any(|l| l.contains("Scan(lineitem)") && l.contains("actual=")),
        "analyze output missing actuals: {text:?}"
    );
}

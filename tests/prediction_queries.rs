//! Integration tests for the `PREDICT` path (paper §3.3): the unified
//! tensor execution and the split-runtime row engine must produce identical
//! predictions for every model family, inside arbitrary relational context.

use std::sync::Arc;

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::frame::df;
use tqp_repro::data::{datasets, Column, DataFrame};
use tqp_repro::exec::Backend;
use tqp_repro::ml::compile::{CompiledTrees, TreeStrategy};
use tqp_repro::ml::linear::{LinearRegression, LogisticRegression};
use tqp_repro::ml::mlp::Mlp;
use tqp_repro::ml::text::TextClassifier;
use tqp_repro::ml::tree::{DecisionTree, RandomForest, TreeParams};
use tqp_repro::tensor::Tensor;
use tqp_tensor::Scalar;

fn canon(frame: &DataFrame) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..frame.nrows())
        .map(|i| {
            frame
                .row(i)
                .into_iter()
                .map(|s| match s {
                    Scalar::F64(v) => format!("{:.6}", v),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

fn check(session: &Session, sql: &str) {
    let oracle = session.sql_baseline(sql).expect("oracle");
    for backend in [Backend::Eager, Backend::Fused, Backend::Graph] {
        let q = session
            .compile(sql, QueryConfig::default().backend(backend))
            .unwrap();
        let (out, _) = q.run(session).unwrap();
        assert_eq!(
            canon(&out),
            canon(&oracle),
            "{backend:?} vs oracle on {sql}"
        );
    }
}

fn training_xy() -> (Tensor, Tensor) {
    let n = 200;
    let mut xs = Vec::with_capacity(n * 2);
    let mut ys = Vec::with_capacity(n);
    for i in 0..n {
        let a = (i % 13) as f64;
        let b = ((i * 7) % 11) as f64;
        xs.push(a);
        xs.push(b);
        ys.push(a * 0.5 - b * 0.25 + 1.0);
    }
    (Tensor::from_f64_matrix(xs, n, 2), Tensor::from_f64(ys))
}

fn numeric_session() -> Session {
    let mut s = Session::new();
    s.register_table(
        "points",
        df(vec![
            ("id", Column::from_i64((0..50).collect())),
            (
                "a",
                Column::from_f64((0..50).map(|i| (i % 13) as f64).collect()),
            ),
            (
                "b",
                Column::from_f64((0..50).map(|i| ((i * 7) % 11) as f64).collect()),
            ),
            (
                "grp",
                Column::from_str(
                    (0..50)
                        .map(|i| ["x", "y"][(i % 2) as usize].to_string())
                        .collect(),
                ),
            ),
        ]),
    );
    s
}

#[test]
fn linear_regression_predict_in_sql() {
    let (x, y) = training_xy();
    let mut s = numeric_session();
    s.register_model("lin", Arc::new(LinearRegression::fit(&x, &y, 800, 0.3)));
    check(
        &s,
        "select id, predict('lin', a, b) as p from points order by id",
    );
    check(
        &s,
        "select grp, sum(predict('lin', a, b)) as total from points group by grp order by grp",
    );
    check(
        &s,
        "select id from points where predict('lin', a, b) > 2.0 order by id",
    );
}

#[test]
fn logistic_and_mlp_predict_in_sql() {
    let (x, y) = training_xy();
    let labels = Tensor::from_f64(y.as_f64().iter().map(|&v| f64::from(v > 2.0)).collect());
    let mut s = numeric_session();
    s.register_model(
        "logit",
        Arc::new(LogisticRegression::fit(&x, &labels, 400, 0.5)),
    );
    s.register_model("net", Arc::new(Mlp::fit(&x, &y, 8, 150, 0.01, 9)));
    check(
        &s,
        "select grp, sum(predict('logit', a, b)) as positives from points group by grp order by grp",
    );
    check(
        &s,
        "select id, predict('net', a, b) as p from points order by id",
    );
}

#[test]
fn tree_models_both_strategies_in_sql() {
    let (x, y) = training_xy();
    let tree = DecisionTree::fit(
        &x,
        &y,
        TreeParams {
            max_depth: 5,
            min_samples_split: 2,
        },
    );
    let forest = RandomForest::fit(&x, &y, 5, TreeParams::default(), 3);
    let mut s = numeric_session();
    s.register_model(
        "tree_gemm",
        Arc::new(CompiledTrees::from_tree(&tree, TreeStrategy::Gemm)),
    );
    s.register_model(
        "tree_trav",
        Arc::new(CompiledTrees::from_tree(&tree, TreeStrategy::Traversal)),
    );
    s.register_model(
        "forest",
        Arc::new(CompiledTrees::from_forest(&forest, TreeStrategy::Gemm)),
    );
    check(
        &s,
        "select id, predict('tree_gemm', a, b) as p from points order by id",
    );
    check(
        &s,
        "select id, predict('tree_trav', a, b) as p from points order by id",
    );
    check(&s, "select sum(predict('forest', a, b)) from points");
    // Both compilation strategies are bit-identical through SQL.
    let g = s
        .sql("select sum(predict('tree_gemm', a, b)) from points")
        .unwrap();
    let t = s
        .sql("select sum(predict('tree_trav', a, b)) from points")
        .unwrap();
    assert_eq!(canon(&g), canon(&t));
}

#[test]
fn figure4_query_end_to_end() {
    let train = datasets::amazon_reviews(3_000, 7);
    let text_col = train.column_by_name("text").unwrap();
    let texts: Vec<String> = (0..train.nrows())
        .map(|i| text_col.get(i).as_str().to_string())
        .collect();
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    let labels: Vec<f64> = (0..train.nrows())
        .map(|i| f64::from(train.column_by_name("rating").unwrap().get(i).as_i64() >= 3))
        .collect();
    let clf = TextClassifier::fit(
        &Tensor::from_strings(&refs, 1),
        &Tensor::from_f64(labels),
        12,
        2,
        0.5,
    );
    let mut s = Session::new();
    s.register_table("reviews", datasets::amazon_reviews(4_000, 11));
    s.register_model("sentiment_classifier", Arc::new(clf));
    let sql = "select brand, \
                      sum(case when rating >= 3 then 1 else 0 end) as actual_positive, \
                      sum(predict('sentiment_classifier', text)) as predicted_positive \
               from reviews group by brand order by brand";
    check(&s, sql);
    // Predictions must correlate with ratings brand-by-brand.
    let out = s.sql(sql).unwrap();
    assert!(out.nrows() >= 3);
    for i in 0..out.nrows() {
        let actual = out.column(1).get(i).as_i64() as f64;
        let predicted = out.column(2).get(i).as_f64();
        assert!(
            (predicted - actual).abs() / actual.max(1.0) < 0.35,
            "brand {} actual {actual} predicted {predicted}",
            out.column(0).get(i).as_str()
        );
    }
}

#[test]
fn predict_missing_model_is_a_clean_execution_error() {
    // Formerly a panic; the serve-layer error split pre-flights missing
    // models into a retryable TqpError::Execution instead.
    let s = numeric_session();
    match s.sql("select predict('nope', a) from points") {
        Err(tqp_repro::core::TqpError::Execution(msg)) => {
            assert!(msg.contains("nope"), "{msg}");
        }
        other => panic!("expected an execution error, got {:?}", other.map(|_| ())),
    }
}

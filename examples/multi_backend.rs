//! Scenario 2 (paper §3.2): compile TPC-H Q6 once per backend/hardware
//! target — CPU, simulated GPU, the portable Graph artifact, and the
//! browser-style Wasm VM — "switching between different backends and
//! hardware devices in TQP only needs one line of code change" (Figure 3).
//!
//! ```bash
//! cargo run --release --example multi_backend
//! ```

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};
use tqp_repro::exec::{Backend, Device};

fn main() {
    let mut session = Session::new();
    session.register_tpch(&TpchData::generate(&TpchConfig {
        scale_factor: 0.05,
        seed: 42,
    }));
    let sql = queries::query(6);
    println!("TPC-H Q6:\n{sql}\n");

    // Every backend below executes this one lowered tensor program.
    let compiled = session
        .compile(sql, QueryConfig::default())
        .expect("compiles");
    println!("lowered tensor program:\n{}", compiled.explain_program());

    // The paper's Figure 3: each target is one line of configuration.
    let targets = [
        ("CPU / eager", QueryConfig::default()),
        (
            "CPU / fused (torch.jit)",
            QueryConfig::default().backend(Backend::Fused),
        ),
        (
            "GPU (simulated)",
            QueryConfig::default().device(Device::GpuSim),
        ),
        (
            "Graph artifact (ONNX)",
            QueryConfig::default().backend(Backend::Graph),
        ),
        (
            "Browser (Wasm-sim VM)",
            QueryConfig::default().backend(Backend::Wasm),
        ),
    ];

    let mut reference: Option<String> = None;
    for (label, cfg) in targets {
        let q = session.compile(sql, cfg).expect("compiles");
        let (out, stats) = q.run(&session).expect("runs");
        let revenue = out.column(0).display(0);
        // "...show how all of them generate the same correct result."
        match &reference {
            None => reference = Some(revenue.clone()),
            Some(r) => assert_eq!(*r, revenue, "{label} disagrees"),
        }
        let time = match stats.gpu_modeled_us {
            Some(us) => format!("{us:>8} us (modeled)"),
            None => format!("{:>8} us", stats.wall_us),
        };
        let artifact = q
            .artifact_size()
            .map(|b| format!("  [artifact {b} bytes]"))
            .unwrap_or_default();
        println!("{label:<26} revenue={revenue:<14} {time}{artifact}");
    }
    println!("\nall backends agree ✓");
}

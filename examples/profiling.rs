//! Scenario 1 (paper §3.1): DS-tool integration — run a TPC-H query with
//! the profiler active, inspect the operator runtime breakdown (Figure 2),
//! and export a Chrome/Perfetto trace plus the executor graph.
//!
//! ```bash
//! cargo run --release --example profiling
//! ```

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};

fn main() {
    // Steps (1)-(2) of the scenario: import the library, ingest lineitem
    // (the whole TPC-H instance here) as DataFrames.
    let mut session = Session::new();
    session.register_tpch(&TpchData::generate(&TpchConfig {
        scale_factor: 0.05,
        seed: 42,
    }));

    // Step (3): compile and execute the selected query.
    let sql = queries::query(6);
    let q = session
        .compile(sql, QueryConfig::default())
        .expect("compiles");
    let (out, _) = q.run(&session).expect("runs");
    println!("Q6 revenue = {}\n", out.column(0).display(0));

    // Step (4): re-execute with the profiler activated and investigate the
    // runtime breakdown (the Figure 2 view).
    session.enable_profiling();
    let (_, stats) = q.run(&session).expect("runs");
    println!(
        "operator runtime breakdown (total {} us):\n\n{}",
        stats.wall_us,
        session.profiler().breakdown(10)
    );

    std::fs::create_dir_all("target").ok();
    let trace = session.profiler().chrome_trace();
    std::fs::write("target/profiling_trace.json", &trace).expect("write trace");
    println!("trace:          target/profiling_trace.json (open in chrome://tracing)");
    let dot = q.to_dot("TPC-H Q6 executor");
    std::fs::write("target/profiling_executor.dot", &dot).expect("write dot");
    println!("executor graph: target/profiling_executor.dot");
}

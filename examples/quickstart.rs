//! Quickstart: the README's five-minute tour.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Mirrors the demo's notebook flow (paper §3.1 steps 1-3): create a
//! session, ingest a DataFrame, compile a query, run it.

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::frame::df;
use tqp_repro::data::Column;

fn main() {
    // 1. A session is the pip-installed `tqp` package's context.
    let mut session = Session::new();

    // 2. Ingest a Pandas-style DataFrame; numeric columns become tensors
    //    zero-copy (paper §2.1).
    session.register_table(
        "orders",
        df(vec![
            ("order_id", Column::from_i64((1..=8).collect())),
            (
                "status",
                Column::from_str(
                    [
                        "open", "open", "shipped", "open", "shipped", "open", "returned", "open",
                    ]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                ),
            ),
            (
                "amount",
                Column::from_f64(vec![10.0, 35.5, 20.0, 9.99, 150.0, 75.25, 60.0, 12.5]),
            ),
        ]),
    );

    // 3. Compile SQL into a tensor program and execute it.
    let query = session
        .compile(
            "select status, count(*) as n, sum(amount) as total \
             from orders \
             where amount > 10.0 \
             group by status \
             order by total desc",
            QueryConfig::default(),
        )
        .expect("compiles");

    println!("physical plan:\n{}", query.explain());
    let (result, stats) = query.run(&session).expect("runs");
    println!("{}", result.to_table_string(10));
    println!("executed in {} us over tensors", stats.wall_us);
}

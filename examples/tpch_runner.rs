//! Run any TPC-H query on both engines and compare.
//!
//! ```bash
//! cargo run --release --example tpch_runner -- 3        # query number
//! TQP_SF=0.1 cargo run --release --example tpch_runner -- 17
//! ```

use std::time::Instant;

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};
use tqp_repro::exec::Backend;

fn main() {
    let qn: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(6);
    let sf: f64 = std::env::var("TQP_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let sql = queries::query(qn);
    println!("TPC-H Q{qn} @ SF {sf}:\n{sql}\n");

    let mut session = Session::new();
    session.register_tpch(&TpchData::generate(&TpchConfig {
        scale_factor: sf,
        seed: 42,
    }));

    let q = session
        .compile(sql, QueryConfig::default().backend(Backend::Fused))
        .expect("compiles");
    println!("plan:\n{}", q.explain());

    let t0 = Instant::now();
    let (tensor_result, _) = q.run(&session).expect("runs");
    let tensor_us = t0.elapsed().as_micros();

    let t0 = Instant::now();
    let row_result = session.sql_baseline(sql).expect("oracle runs");
    let row_us = t0.elapsed().as_micros();

    println!("{}", tensor_result.to_table_string(15));
    println!(
        "tensor engine: {} rows in {} us | row engine: {} rows in {} us ({:.1}x)",
        tensor_result.nrows(),
        tensor_us,
        row_result.nrows(),
        row_us,
        row_us as f64 / tensor_us.max(1) as f64
    );
    assert_eq!(
        tensor_result.nrows(),
        row_result.nrows(),
        "engines disagree!"
    );
}

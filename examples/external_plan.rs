//! The external-plan frontend: TQP "accepts input as a Spark SQL physical
//! plan" (paper §1) — its architecture "decouples the physical plan
//! specification from the other layers" (§2.2). This example plays the role
//! of an external system: it serializes a physical plan to JSON, ships it
//! across a process boundary (a file), and executes it in a fresh session
//! that never saw the SQL.
//!
//! ```bash
//! cargo run --release --example external_plan
//! ```

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::tpch::{queries, TpchConfig, TpchData};
use tqp_repro::exec::Backend;
use tqp_repro::ir::physical::PhysicalPlan;

fn main() {
    let data = TpchData::generate(&TpchConfig {
        scale_factor: 0.02,
        seed: 42,
    });

    // --- The "frontend database system" process -------------------------
    let plan_json = {
        let mut frontend = Session::new();
        frontend.register_tpch(&data);
        let q = frontend
            .compile(queries::query(3), QueryConfig::default())
            .unwrap();
        q.plan().to_json()
    };
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/q3_physical_plan.json", &plan_json).unwrap();
    println!(
        "frontend exported the Q3 physical plan ({} bytes) to target/q3_physical_plan.json",
        plan_json.len()
    );

    // --- The TQP executor process ----------------------------------------
    let shipped = std::fs::read_to_string("target/q3_physical_plan.json").unwrap();
    let plan = PhysicalPlan::from_json(&shipped).expect("plan deserializes");
    println!("\nimported plan:\n{}", plan.display_tree());

    let mut executor_session = Session::new();
    executor_session.register_tpch(&data);
    let q = executor_session.compile_plan(&plan, QueryConfig::default().backend(Backend::Graph));
    let (result, stats) = q.run(&executor_session).unwrap();
    println!("{}", result.to_table_string(10));
    println!("executed the shipped plan in {} us", stats.wall_us);
}

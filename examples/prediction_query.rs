//! Scenario 3 (paper §3.3): prediction queries — the `PREDICT` keyword
//! embeds ML inference inside SQL, and TQP compiles relational operators
//! and the model into one tensor program.
//!
//! ```bash
//! cargo run --release --example prediction_query
//! ```

use std::sync::Arc;

use tqp_repro::core::{QueryConfig, Session};
use tqp_repro::data::datasets;
use tqp_repro::ml::text::TextClassifier;
use tqp_repro::tensor::Tensor;

fn main() {
    // Train the sentiment classifier (the paper's HuggingFace stand-in) on
    // a held-out batch of synthetic reviews.
    let train = datasets::amazon_reviews(6_000, 7);
    let text_col = train.column_by_name("text").unwrap();
    let texts: Vec<String> = (0..train.nrows())
        .map(|i| text_col.get(i).as_str().to_string())
        .collect();
    let refs: Vec<&str> = texts.iter().map(|s| s.as_str()).collect();
    let labels: Vec<f64> = (0..train.nrows())
        .map(|i| f64::from(train.column_by_name("rating").unwrap().get(i).as_i64() >= 3))
        .collect();
    let clf = TextClassifier::fit(
        &Tensor::from_strings(&refs, 1),
        &Tensor::from_f64(labels),
        14,
        3,
        0.5,
    );

    let mut session = Session::new();
    session.register_table("amazon_reviews", datasets::amazon_reviews(25_000, 2024));
    session.register_model("sentiment_classifier", Arc::new(clf));

    // The exact query of the paper's Figure 4.
    let sql = "select brand, \
                      sum(case when rating >= 3 then 1 else 0 end) as actual_positive, \
                      sum(predict('sentiment_classifier', text)) as predicted_positive \
               from amazon_reviews \
               group by brand \
               order by brand";
    let q = session
        .compile(sql, QueryConfig::default())
        .expect("compiles");

    println!("Figure 4 prediction query:\n{sql}\n");
    let (out, stats) = q.run(&session).expect("runs");
    println!("{}", out.to_table_string(10));
    println!(
        "\nexecuted end-to-end as one tensor program in {} us",
        stats.wall_us
    );

    // The executor graph (Figure 4's interactive view) as Graphviz DOT.
    let dot = q.to_dot("prediction query executor");
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/prediction_query.dot", &dot).expect("write dot");
    println!("executor graph: target/prediction_query.dot (render with `dot -Tsvg`)");
}

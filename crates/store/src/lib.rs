//! # tqp-store — persistent chunked columnar table storage
//!
//! The storage leg of the TQP reproduction: tables live on disk in a
//! versioned columnar format written in fixed-row-count **chunks**, each
//! column chunk independently compressed with a lightweight encoding and
//! decodable straight into the tensor batches the execution layer runs on
//! (paper §2.1's "relational data in tensor-friendly columnar form",
//! extended end-to-end to disk). Design cues from TensorBase's Rust
//! columnar engine: append-only chunk blocks, a self-describing footer,
//! per-chunk zone maps.
//!
//! ## File layout (format version 1)
//!
//! ```text
//! ┌────────────────────────────────────────────────────────┐
//! │ magic "TQPS" · version u32                             │
//! ├────────────────────────────────────────────────────────┤
//! │ chunk 0: col 0 block · col 1 block · …                 │
//! │ chunk 1: …                                             │  appended
//! │ …                                                      │  streaming
//! ├────────────────────────────────────────────────────────┤
//! │ footer: schema · nominal chunk rows · string widths ·  │
//! │   per chunk {rows, per column {offset, len, zone map}} │
//! │   · table stats                                        │
//! ├────────────────────────────────────────────────────────┤
//! │ footer offset u64 · magic "TQPS"                       │
//! └────────────────────────────────────────────────────────┘
//! ```
//!
//! A **column block** is a validity section (absent, or a bit-packed
//! bitmap) followed by one encoded value section:
//!
//! | encoding  | types      | payload                                     |
//! |-----------|------------|---------------------------------------------|
//! | plain     | all        | raw LE values / `len`-prefixed UTF-8        |
//! | FoR       | int, date  | min + byte-width + packed deltas            |
//! | RLE       | int, date, bool | `(run length, value)` pairs            |
//! | dict      | string     | distinct values + narrow indices            |
//! | bit-pack  | bool, validity | 1 bit per row                           |
//!
//! The writer picks the cheapest encoding per column chunk by exact byte
//! cost, so incompressible data degrades to plain, never worse.
//!
//! ## Zone maps and statistics
//!
//! Every column chunk records a [`ZoneMap`] (min/max over non-NULL
//! values, NULL count, distinct estimate); the footer also carries a
//! whole-table [`tqp_data::TableStats`] produced by the same
//! [`tqp_data::StatsBuilder`] the in-memory registration path uses — the
//! chunk-merged result is **identical** to a one-pass computation, which
//! keeps store-backed and frame-backed sessions compiling identical plans.
//! Scans consult zone maps to skip whole chunks before decoding
//! (`tqp-exec`'s pruning pre-pass); the decision rule is
//! [`ZoneMap::may_match_compare`] / [`ZoneMap::may_match_is_null`] —
//! "could any row of this chunk satisfy the conjunct?" — which is
//! conservative by construction, so pruning never changes results.
//!
//! ## Determinism contract
//!
//! Chunk decode is bit-exact: string chunks re-pad to the **table-wide**
//! maximum byte width recorded in the footer, so concatenating decoded
//! chunks reproduces the exact tensors whole-table ingestion builds, and
//! the executor's morsel/chunk fan-out (in chunk order) stays
//! byte-identical to the in-memory scan path at any worker count.

mod encode;
mod meta;
mod reader;
mod writer;
mod zone;

pub use encode::Encoding;
pub use reader::{DecodedColumn, StoredTable};
pub use writer::{store_csv, store_frame, StoreWriter};
pub use zone::ZoneMap;

/// Current file-format version. Readers reject any other version with an
/// error naming both (same policy as the program artifact).
pub const FORMAT_VERSION: u32 = 1;

/// File magic, leading and trailing.
pub const MAGIC: &[u8; 4] = b"TQPS";

/// Default rows per chunk: small enough that a 16-column chunk of wide
/// strings stays a few MB (bounded ingest memory), large enough that the
/// per-chunk decode/zone-map overhead is noise on a scan.
pub const DEFAULT_CHUNK_ROWS: usize = 65_536;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StoreError {
    Io(std::io::Error),
    /// Structural problem in a store file (bad magic, version mismatch,
    /// truncated footer, corrupt block).
    Format(String),
    /// CSV ingestion failure.
    Csv(tqp_data::csv::CsvError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store io error: {e}"),
            StoreError::Format(msg) => write!(f, "store format error: {msg}"),
            StoreError::Csv(e) => write!(f, "store csv ingest error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<tqp_data::csv::CsvError> for StoreError {
    fn from(e: tqp_data::csv::CsvError) -> Self {
        StoreError::Csv(e)
    }
}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, StoreError>;

//! Per-chunk zone maps and the conservative "may this chunk match?"
//! decision rules the scan pruning pre-pass evaluates.

use tqp_data::stats::scalar_cmp;
use tqp_tensor::ops::CmpOp;
use tqp_tensor::Scalar;

/// Min/max + NULL count + distinct estimate for one column of one chunk.
///
/// `min`/`max` cover **non-NULL** values only; both are `None` when the
/// chunk column is entirely NULL (or the chunk is empty).
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    pub min: Option<Scalar>,
    pub max: Option<Scalar>,
    pub null_count: u64,
    /// Estimated distinct non-NULL values in the chunk.
    pub distinct: u32,
}

/// Ordering used for prune decisions. Unlike [`scalar_cmp`] (`total_cmp`,
/// which puts `-0.0 < 0.0`), floats compare with **IEEE semantics** here —
/// the same ordering the filter kernels apply — so zone boundaries at
/// `±0.0` never prune a chunk the filter would keep. NaN operands are
/// screened out by the caller before this runs.
fn prune_cmp(a: &Scalar, b: &Scalar) -> std::cmp::Ordering {
    match (a, b) {
        (Scalar::F64(x), Scalar::F64(y)) => {
            x.partial_cmp(y).expect("NaN screened before prune_cmp")
        }
        _ => scalar_cmp(a, b),
    }
}

/// Comparable scalars: same variant (dates ride as `I64`). Pruning must
/// never guess across types — a mismatch means "cannot prune".
fn comparable(a: &Scalar, b: &Scalar) -> bool {
    matches!(
        (a, b),
        (Scalar::Bool(_), Scalar::Bool(_))
            | (Scalar::I64(_), Scalar::I64(_))
            | (Scalar::F64(_), Scalar::F64(_))
            | (Scalar::Str(_), Scalar::Str(_))
    )
}

impl ZoneMap {
    /// Could any row of this chunk satisfy `column <op> value`?
    ///
    /// Returns `false` only when the conjunct is **provably false for
    /// every row**: all non-NULL values fall outside the satisfying
    /// range, and NULL rows never satisfy a comparison (three-valued
    /// logic: `NULL <op> v` is NULL, which a filter drops). Any
    /// uncertainty — type mismatch, NaN bounds, missing min/max with
    /// valid rows — answers `true` (decode the chunk; the filter decides).
    pub fn may_match_compare(&self, op: CmpOp, value: &Scalar) -> bool {
        let (Some(min), Some(max)) = (&self.min, &self.max) else {
            // No non-NULL values: every row is NULL, comparisons all fail.
            return false;
        };
        if value.is_null() {
            // NULL constant: comparison is NULL for every row.
            return false;
        }
        if !comparable(min, value) || !comparable(max, value) {
            return true;
        }
        // NaN bounds poison range reasoning (total_cmp sorts NaN above
        // +inf, which does not model `>` semantics); stay conservative.
        if let (Scalar::F64(lo), Scalar::F64(hi)) = (min, max) {
            if lo.is_nan() || hi.is_nan() {
                return true;
            }
            if let Scalar::F64(v) = value {
                if v.is_nan() {
                    // x <op> NaN is false for every ordered comparison and
                    // for equality; Ne is true wherever x is valid.
                    return matches!(op, CmpOp::Ne);
                }
            }
        }
        match op {
            CmpOp::Eq => prune_cmp(value, min).is_ge() && prune_cmp(value, max).is_le(),
            CmpOp::Ne => {
                // Only prunable when every valid row equals `value`.
                !(prune_cmp(min, max).is_eq() && prune_cmp(min, value).is_eq())
            }
            CmpOp::Lt => prune_cmp(min, value).is_lt(),
            CmpOp::Le => prune_cmp(min, value).is_le(),
            CmpOp::Gt => prune_cmp(max, value).is_gt(),
            CmpOp::Ge => prune_cmp(max, value).is_ge(),
        }
    }

    /// Could any row satisfy `IS NULL` (`negated = false`) or
    /// `IS NOT NULL` (`negated = true`)?
    pub fn may_match_is_null(&self, negated: bool, rows: u64) -> bool {
        if negated {
            self.null_count < rows
        } else {
            self.null_count > 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone_i64(min: i64, max: i64, nulls: u64) -> ZoneMap {
        ZoneMap {
            min: Some(Scalar::I64(min)),
            max: Some(Scalar::I64(max)),
            null_count: nulls,
            distinct: 0,
        }
    }

    #[test]
    fn range_pruning() {
        let z = zone_i64(10, 20, 0);
        assert!(!z.may_match_compare(CmpOp::Eq, &Scalar::I64(9)));
        assert!(z.may_match_compare(CmpOp::Eq, &Scalar::I64(10)));
        assert!(!z.may_match_compare(CmpOp::Lt, &Scalar::I64(10)));
        assert!(z.may_match_compare(CmpOp::Le, &Scalar::I64(10)));
        assert!(!z.may_match_compare(CmpOp::Gt, &Scalar::I64(20)));
        assert!(z.may_match_compare(CmpOp::Ge, &Scalar::I64(20)));
        assert!(z.may_match_compare(CmpOp::Ne, &Scalar::I64(15)));
        assert!(!zone_i64(5, 5, 0).may_match_compare(CmpOp::Ne, &Scalar::I64(5)));
    }

    #[test]
    fn all_null_chunk_prunes_every_comparison() {
        let z = ZoneMap {
            min: None,
            max: None,
            null_count: 100,
            distinct: 0,
        };
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            assert!(!z.may_match_compare(op, &Scalar::I64(0)));
        }
        assert!(z.may_match_is_null(false, 100));
        assert!(!z.may_match_is_null(true, 100));
    }

    #[test]
    fn type_mismatch_never_prunes() {
        let z = zone_i64(0, 1, 0);
        assert!(z.may_match_compare(CmpOp::Eq, &Scalar::F64(99.0)));
        assert!(z.may_match_compare(CmpOp::Eq, &Scalar::Str("x".into())));
    }

    #[test]
    fn string_ranges() {
        let z = ZoneMap {
            min: Some(Scalar::Str("BRAND#11".into())),
            max: Some(Scalar::Str("BRAND#35".into())),
            null_count: 0,
            distinct: 10,
        };
        assert!(!z.may_match_compare(CmpOp::Eq, &Scalar::Str("BRAND#55".into())));
        assert!(z.may_match_compare(CmpOp::Eq, &Scalar::Str("BRAND#22".into())));
        assert!(!z.may_match_compare(CmpOp::Gt, &Scalar::Str("BRAND#35".into())));
    }

    #[test]
    fn nan_stays_conservative() {
        let z = ZoneMap {
            min: Some(Scalar::F64(f64::NAN)),
            max: Some(Scalar::F64(f64::NAN)),
            null_count: 0,
            distinct: 1,
        };
        assert!(z.may_match_compare(CmpOp::Gt, &Scalar::F64(0.0)));
        let z = ZoneMap {
            min: Some(Scalar::F64(0.0)),
            max: Some(Scalar::F64(1.0)),
            null_count: 0,
            distinct: 2,
        };
        assert!(!z.may_match_compare(CmpOp::Eq, &Scalar::F64(f64::NAN)));
        assert!(z.may_match_compare(CmpOp::Ne, &Scalar::F64(f64::NAN)));
    }

    #[test]
    fn signed_zero_boundaries_use_ieee_equality() {
        // A chunk of 0.0 values must not be pruned for `x = -0.0` (IEEE
        // equality holds) even though total_cmp orders -0.0 below 0.0.
        let z = ZoneMap {
            min: Some(Scalar::F64(0.0)),
            max: Some(Scalar::F64(0.0)),
            null_count: 0,
            distinct: 1,
        };
        assert!(z.may_match_compare(CmpOp::Eq, &Scalar::F64(-0.0)));
        assert!(z.may_match_compare(CmpOp::Ge, &Scalar::F64(-0.0)));
        assert!(!z.may_match_compare(CmpOp::Gt, &Scalar::F64(-0.0)));
    }

    #[test]
    fn null_tests() {
        let z = zone_i64(0, 9, 3);
        assert!(z.may_match_is_null(false, 10));
        assert!(z.may_match_is_null(true, 10));
        let z = zone_i64(0, 9, 0);
        assert!(!z.may_match_is_null(false, 10));
        assert!(z.may_match_is_null(true, 10));
    }
}

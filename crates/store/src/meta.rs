//! Footer metadata: schema, per-chunk layout + zone maps, table stats —
//! serialization shared by the writer and reader.

use tqp_data::stats::{ColumnStats, TableStats};
use tqp_data::{Field, LogicalType, Schema};
use tqp_tensor::Scalar;

use crate::encode::{put_bytes, put_f64, put_i64, put_u32, put_u64, Cursor};
use crate::zone::ZoneMap;
use crate::{Result, StoreError};

/// Footer entry for one column of one chunk.
#[derive(Debug, Clone)]
pub struct ColChunkMeta {
    /// Absolute file offset of the column block.
    pub offset: u64,
    /// Block length in bytes.
    pub len: u64,
    pub zone: ZoneMap,
}

/// Footer entry for one chunk.
#[derive(Debug, Clone)]
pub struct ChunkMeta {
    pub rows: u64,
    pub cols: Vec<ColChunkMeta>,
}

fn ty_tag(ty: LogicalType) -> u8 {
    match ty {
        LogicalType::Bool => 0,
        LogicalType::Int64 => 1,
        LogicalType::Float64 => 2,
        LogicalType::Date => 3,
        LogicalType::Str => 4,
    }
}

fn ty_from_tag(tag: u8) -> Result<LogicalType> {
    Ok(match tag {
        0 => LogicalType::Bool,
        1 => LogicalType::Int64,
        2 => LogicalType::Float64,
        3 => LogicalType::Date,
        4 => LogicalType::Str,
        other => return Err(StoreError::Format(format!("unknown type tag {other}"))),
    })
}

/// Scalar payload typed by the column's logical type (dates as i64 ns).
fn put_scalar(out: &mut Vec<u8>, ty: LogicalType, v: &Scalar) {
    match (ty, v) {
        (LogicalType::Bool, Scalar::Bool(b)) => out.push(*b as u8),
        (LogicalType::Int64 | LogicalType::Date, Scalar::I64(x)) => put_i64(out, *x),
        (LogicalType::Float64, Scalar::F64(x)) => put_f64(out, *x),
        (LogicalType::Str, Scalar::Str(s)) => put_bytes(out, s.as_bytes()),
        (ty, v) => panic!("stat scalar {v:?} does not match column type {ty:?}"),
    }
}

fn read_scalar(cur: &mut Cursor<'_>, ty: LogicalType) -> Result<Scalar> {
    Ok(match ty {
        LogicalType::Bool => Scalar::Bool(cur.u8()? != 0),
        LogicalType::Int64 | LogicalType::Date => Scalar::I64(cur.i64()?),
        LogicalType::Float64 => Scalar::F64(cur.f64()?),
        LogicalType::Str => Scalar::Str(cur.string()?),
    })
}

fn put_minmax(out: &mut Vec<u8>, ty: LogicalType, min: &Option<Scalar>, max: &Option<Scalar>) {
    match (min, max) {
        (Some(lo), Some(hi)) => {
            out.push(1);
            put_scalar(out, ty, lo);
            put_scalar(out, ty, hi);
        }
        _ => out.push(0),
    }
}

fn read_minmax(cur: &mut Cursor<'_>, ty: LogicalType) -> Result<(Option<Scalar>, Option<Scalar>)> {
    if cur.u8()? == 0 {
        return Ok((None, None));
    }
    Ok((Some(read_scalar(cur, ty)?), Some(read_scalar(cur, ty)?)))
}

/// The parsed footer.
pub struct Footer {
    pub schema: Schema,
    pub chunk_rows: u64,
    pub str_widths: Vec<u32>,
    pub rows: u64,
    pub chunks: Vec<ChunkMeta>,
    pub stats: TableStats,
}

/// Serialize the footer.
pub fn encode_footer(f: &Footer) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, f.schema.len() as u32);
    for field in &f.schema.fields {
        put_bytes(&mut out, field.name.as_bytes());
        out.push(ty_tag(field.ty));
    }
    put_u64(&mut out, f.chunk_rows);
    for &w in &f.str_widths {
        put_u32(&mut out, w);
    }
    put_u64(&mut out, f.rows);
    put_u64(&mut out, f.chunks.len() as u64);
    for chunk in &f.chunks {
        put_u64(&mut out, chunk.rows);
        for (col, field) in chunk.cols.iter().zip(&f.schema.fields) {
            put_u64(&mut out, col.offset);
            put_u64(&mut out, col.len);
            put_minmax(&mut out, field.ty, &col.zone.min, &col.zone.max);
            put_u64(&mut out, col.zone.null_count);
            put_u32(&mut out, col.zone.distinct);
        }
    }
    for (cs, field) in f.stats.columns.iter().zip(&f.schema.fields) {
        put_minmax(&mut out, field.ty, &cs.min, &cs.max);
        put_u64(&mut out, cs.null_count as u64);
        put_u64(&mut out, cs.distinct as u64);
    }
    out
}

/// Parse a footer buffer.
pub fn decode_footer(buf: &[u8]) -> Result<Footer> {
    let mut cur = Cursor::new(buf);
    let ncols = cur.u32()? as usize;
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name = cur.string()?;
        let ty = ty_from_tag(cur.u8()?)?;
        fields.push(Field::new(name, ty));
    }
    let schema = Schema::new(fields);
    let chunk_rows = cur.u64()?;
    let mut str_widths = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        str_widths.push(cur.u32()?);
    }
    let rows = cur.u64()?;
    let n_chunks = cur.u64()? as usize;
    let mut chunks = Vec::with_capacity(n_chunks);
    for _ in 0..n_chunks {
        let rows = cur.u64()?;
        let mut cols = Vec::with_capacity(ncols);
        for field in &schema.fields {
            let offset = cur.u64()?;
            let len = cur.u64()?;
            let (min, max) = read_minmax(&mut cur, field.ty)?;
            let null_count = cur.u64()?;
            let distinct = cur.u32()?;
            cols.push(ColChunkMeta {
                offset,
                len,
                zone: ZoneMap {
                    min,
                    max,
                    null_count,
                    distinct,
                },
            });
        }
        chunks.push(ChunkMeta { rows, cols });
    }
    let mut columns = Vec::with_capacity(ncols);
    for field in &schema.fields {
        let (min, max) = read_minmax(&mut cur, field.ty)?;
        let null_count = cur.u64()? as usize;
        let distinct = cur.u64()? as usize;
        columns.push(ColumnStats {
            min,
            max,
            null_count,
            distinct,
        });
    }
    if cur.remaining() != 0 {
        return Err(StoreError::Format(format!(
            "{} trailing bytes after footer",
            cur.remaining()
        )));
    }
    Ok(Footer {
        schema,
        chunk_rows,
        str_widths,
        rows,
        chunks,
        stats: TableStats {
            rows: rows as usize,
            columns,
        },
    })
}

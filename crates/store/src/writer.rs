//! The streaming store writer: buffers rows to the chunk boundary, picks
//! a per-column encoding, tracks zone maps and table statistics, and
//! finalizes the footer. Memory high-water is one chunk — ingesting a CSV
//! never materializes the table.

use std::io::{Seek, Write};
use std::path::{Path, PathBuf};

use tqp_data::stats::{ColumnStatsBuilder, StatsBuilder};
use tqp_data::{Column, DataFrame, LogicalType, Schema};
use tqp_tensor::Scalar;

use crate::encode::{encode_validity, encode_values, ChunkValues};
use crate::meta::{encode_footer, ChunkMeta, ColChunkMeta, Footer};
use crate::reader::StoredTable;
use crate::zone::ZoneMap;
use crate::{Result, DEFAULT_CHUNK_ROWS, FORMAT_VERSION, MAGIC};

/// Typed pending buffer for one column.
enum ColBuf {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
}

impl ColBuf {
    fn new(ty: LogicalType) -> ColBuf {
        match ty {
            LogicalType::Bool => ColBuf::Bool(Vec::new()),
            LogicalType::Int64 | LogicalType::Date => ColBuf::I64(Vec::new()),
            LogicalType::Float64 => ColBuf::F64(Vec::new()),
            LogicalType::Str => ColBuf::Str(Vec::new()),
        }
    }

    fn len(&self) -> usize {
        match self {
            ColBuf::I64(v) => v.len(),
            ColBuf::F64(v) => v.len(),
            ColBuf::Bool(v) => v.len(),
            ColBuf::Str(v) => v.len(),
        }
    }

    fn push_column(&mut self, col: &Column) {
        match (self, col) {
            (ColBuf::Bool(b), Column::Bool(v)) => b.extend_from_slice(v),
            (ColBuf::I64(b), Column::Int64(v) | Column::Date(v)) => b.extend_from_slice(v),
            (ColBuf::F64(b), Column::Float64(v)) => b.extend_from_slice(v),
            (ColBuf::Str(b), Column::Str(v)) => b.extend(v.iter().cloned()),
            _ => panic!("column type does not match the schema"),
        }
    }

    /// Take the first `n` buffered values as chunk values.
    fn drain_chunk(&mut self, n: usize) -> ChunkValues {
        match self {
            ColBuf::I64(v) => ChunkValues::I64(v.drain(..n).collect()),
            ColBuf::F64(v) => ChunkValues::F64(v.drain(..n).collect()),
            ColBuf::Bool(v) => ChunkValues::Bool(v.drain(..n).collect()),
            ColBuf::Str(v) => ChunkValues::Str(v.drain(..n).collect()),
        }
    }
}

/// A streaming writer for one table file.
pub struct StoreWriter {
    file: std::io::BufWriter<std::fs::File>,
    path: PathBuf,
    schema: Schema,
    chunk_rows: usize,
    /// Next write offset (header already written).
    offset: u64,
    bufs: Vec<ColBuf>,
    /// Pending validity per column: `None` = all rows so far valid.
    validity: Vec<Option<Vec<bool>>>,
    buffered: usize,
    chunks: Vec<ChunkMeta>,
    stats: StatsBuilder,
    str_widths: Vec<u32>,
}

impl StoreWriter {
    /// Create (truncating) a store file for `schema`, flushing every
    /// `chunk_rows` buffered rows.
    pub fn create(path: &Path, schema: &Schema, chunk_rows: usize) -> Result<StoreWriter> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        file.write_all(MAGIC)?;
        file.write_all(&FORMAT_VERSION.to_le_bytes())?;
        let ncols = schema.len();
        Ok(StoreWriter {
            file,
            path: path.to_path_buf(),
            schema: schema.clone(),
            chunk_rows: chunk_rows.max(1),
            offset: 8,
            bufs: schema.fields.iter().map(|f| ColBuf::new(f.ty)).collect(),
            validity: vec![None; ncols],
            buffered: 0,
            chunks: Vec::new(),
            stats: StatsBuilder::new(ncols),
            str_widths: vec![0; ncols],
        })
    }

    /// The default chunk size.
    pub fn create_default(path: &Path, schema: &Schema) -> Result<StoreWriter> {
        StoreWriter::create(path, schema, DEFAULT_CHUNK_ROWS)
    }

    /// Append a frame (all rows valid). Flushes complete chunks as the
    /// buffer fills.
    pub fn append_frame(&mut self, frame: &DataFrame) -> Result<()> {
        assert_eq!(
            frame.schema(),
            &self.schema,
            "appended frame schema mismatch"
        );
        let cols: Vec<Column> = frame.columns().to_vec();
        self.append_columns(&cols, &vec![None; cols.len()])
    }

    /// Append columns with optional per-column validity (for NULL-bearing
    /// producers and tests; `Column` itself cannot carry NULLs, so values
    /// at invalid positions are placeholders and decode as written).
    pub fn append_columns(
        &mut self,
        columns: &[Column],
        validity: &[Option<Vec<bool>>],
    ) -> Result<()> {
        assert_eq!(columns.len(), self.schema.len(), "column arity mismatch");
        assert_eq!(columns.len(), validity.len(), "validity arity mismatch");
        let n = columns.first().map_or(0, |c| c.len());
        for (i, (col, val)) in columns.iter().zip(validity).enumerate() {
            assert_eq!(col.len(), n, "ragged append");
            assert_eq!(
                col.logical_type(),
                self.schema.fields[i].ty,
                "column {i} type mismatch"
            );
            if let Some(v) = val {
                assert_eq!(v.len(), n, "validity length mismatch");
            }
            // Extend the pending validity, materializing it lazily.
            let had = self.bufs[i].len();
            match val {
                None => {
                    if let Some(p) = &mut self.validity[i] {
                        p.extend(std::iter::repeat_n(true, n));
                    }
                }
                Some(v) => {
                    if self.validity[i].is_some() || v.iter().any(|&b| !b) {
                        let p = self.validity[i].get_or_insert_with(|| vec![true; had]);
                        p.extend_from_slice(v);
                    }
                }
            }
            self.bufs[i].push_column(col);
        }
        self.buffered += n;
        while self.buffered >= self.chunk_rows {
            self.flush_chunk(self.chunk_rows)?;
        }
        Ok(())
    }

    /// Encode and write one chunk of `n` rows from the buffer front.
    fn flush_chunk(&mut self, n: usize) -> Result<()> {
        let ncols = self.schema.len();
        let mut cols = Vec::with_capacity(ncols);
        for c in 0..ncols {
            let values = self.bufs[c].drain_chunk(n);
            debug_assert_eq!(values.len(), n);
            let chunk_validity: Option<Vec<bool>> = match &mut self.validity[c] {
                None => None,
                Some(pending) => {
                    let head: Vec<bool> = pending.drain(..n).collect();
                    if head.iter().all(|&b| b) {
                        None
                    } else {
                        Some(head)
                    }
                }
            };

            // Zone map + table stats from the valid values only.
            let mut zb = ColumnStatsBuilder::new();
            let valid_at = |i: usize| chunk_validity.as_ref().is_none_or(|v| v[i]);
            let mut nulls = 0usize;
            match &values {
                ChunkValues::I64(v) => {
                    for (i, &x) in v.iter().enumerate() {
                        if valid_at(i) {
                            zb.update_i64(x);
                        } else {
                            nulls += 1;
                        }
                    }
                }
                ChunkValues::F64(v) => {
                    for (i, &x) in v.iter().enumerate() {
                        if valid_at(i) {
                            zb.update_f64(x);
                        } else {
                            nulls += 1;
                        }
                    }
                }
                ChunkValues::Bool(v) => {
                    for (i, &x) in v.iter().enumerate() {
                        if valid_at(i) {
                            zb.update(&Scalar::Bool(x));
                        } else {
                            nulls += 1;
                        }
                    }
                }
                ChunkValues::Str(v) => {
                    for (i, s) in v.iter().enumerate() {
                        if valid_at(i) {
                            zb.update_str(s);
                        } else {
                            nulls += 1;
                        }
                        // Placeholder bytes still occupy tensor width.
                        self.str_widths[c] = self.str_widths[c].max(s.len() as u32);
                    }
                }
            }
            zb.add_nulls(nulls);
            self.stats.columns[c].merge(&zb);
            let chunk_stats = zb.finish();
            let zone = ZoneMap {
                min: chunk_stats.min,
                max: chunk_stats.max,
                null_count: chunk_stats.null_count as u64,
                distinct: chunk_stats.distinct.min(u32::MAX as usize) as u32,
            };

            // Encode the block: validity section then value section.
            let mut block = Vec::new();
            encode_validity(&mut block, chunk_validity.as_deref());
            encode_values(&mut block, &values);
            self.file.write_all(&block)?;
            cols.push(ColChunkMeta {
                offset: self.offset,
                len: block.len() as u64,
                zone,
            });
            self.offset += block.len() as u64;
        }
        self.stats.rows += n;
        self.buffered -= n;
        self.chunks.push(ChunkMeta {
            rows: n as u64,
            cols,
        });
        Ok(())
    }

    /// Flush the tail chunk, write the footer, and return the opened
    /// table (metadata from memory — no re-read).
    pub fn finish(mut self) -> Result<StoredTable> {
        if self.buffered > 0 {
            self.flush_chunk(self.buffered)?;
        }
        let footer = Footer {
            schema: self.schema,
            chunk_rows: self.chunk_rows as u64,
            str_widths: self.str_widths,
            rows: self.stats.rows as u64,
            chunks: self.chunks,
            stats: self.stats.finish(),
        };
        let bytes = encode_footer(&footer);
        self.file.write_all(&bytes)?;
        self.file.write_all(&self.offset.to_le_bytes())?;
        self.file.write_all(MAGIC)?;
        self.file.flush()?;
        let file_bytes = self.file.get_mut().stream_position()?;
        StoredTable::from_footer(self.path, footer, file_bytes)
    }
}

/// Stream a CSV file into a store file chunk-by-chunk (the no-whole-table
/// ingestion path). Returns the opened table.
pub fn store_csv(
    csv_path: &Path,
    schema: &Schema,
    out_path: &Path,
    chunk_rows: usize,
) -> Result<StoredTable> {
    let mut w = StoreWriter::create(out_path, schema, chunk_rows)?;
    for chunk in tqp_data::csv::CsvChunks::open(schema, csv_path, chunk_rows)? {
        let frame = chunk?;
        w.append_frame(&frame)?;
    }
    w.finish()
}

/// Store an in-memory frame (test/bench convenience; the chunk layout is
/// identical to streaming the same rows).
pub fn store_frame(frame: &DataFrame, out_path: &Path, chunk_rows: usize) -> Result<StoredTable> {
    let mut w = StoreWriter::create(out_path, frame.schema(), chunk_rows)?;
    w.append_frame(frame)?;
    w.finish()
}

impl std::fmt::Debug for StoreWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreWriter")
            .field("path", &self.path)
            .field("chunk_rows", &self.chunk_rows)
            .field("buffered", &self.buffered)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

//! Column-chunk encodings: byte-exact encode/decode of one column's
//! values for one chunk, plus the bit-packed validity bitmap.
//!
//! Every encoder is paired with a decoder that reproduces the input
//! exactly (NULL positions decode to the type's default value — their
//! content is masked by validity downstream). The writer picks the
//! cheapest encoding by exact encoded size, so compression is never worse
//! than plain.

use tqp_data::LogicalType;

use crate::{Result, StoreError};

/// Encoding tags persisted in column blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Raw values (LE numerics; `u32` length-prefixed UTF-8 strings).
    Plain = 0,
    /// Frame-of-reference: `min` + fixed byte width deltas (ints/dates).
    For = 1,
    /// Run-length `(len, value)` pairs (ints/dates/bools).
    Rle = 2,
    /// Dictionary: distinct strings in first-appearance order + narrow
    /// indices.
    Dict = 3,
    /// One bit per row (bools).
    BitPack = 4,
}

impl Encoding {
    fn from_tag(tag: u8) -> Result<Encoding> {
        Ok(match tag {
            0 => Encoding::Plain,
            1 => Encoding::For,
            2 => Encoding::Rle,
            3 => Encoding::Dict,
            4 => Encoding::BitPack,
            other => return Err(StoreError::Format(format!("unknown encoding tag {other}"))),
        })
    }
}

/// Decoded values of one column chunk (typed; dates ride as i64).
#[derive(Debug, Clone, PartialEq)]
pub enum ChunkValues {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
}

#[allow(clippy::len_without_is_empty)]
impl ChunkValues {
    /// Row count.
    pub fn len(&self) -> usize {
        match self {
            ChunkValues::I64(v) => v.len(),
            ChunkValues::F64(v) => v.len(),
            ChunkValues::Bool(v) => v.len(),
            ChunkValues::Str(v) => v.len(),
        }
    }
}

// ---------------------------------------------------------------------
// Byte-buffer primitives
// ---------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// A forward reader over a byte slice with truncation checks.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Format(format!(
                "truncated block: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8)?.try_into().unwrap(),
        )))
    }

    pub(crate) fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    pub(crate) fn string(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| StoreError::Format("invalid UTF-8 in string payload".into()))
    }
}

// ---------------------------------------------------------------------
// Validity bitmaps
// ---------------------------------------------------------------------

/// Append the validity section: `0` (all valid) or `1` + bit-packed map.
pub(crate) fn encode_validity(out: &mut Vec<u8>, validity: Option<&[bool]>) {
    match validity {
        None => out.push(0),
        Some(bits) if bits.iter().all(|&b| b) => out.push(0),
        Some(bits) => {
            out.push(1);
            out.extend_from_slice(&pack_bits(bits));
        }
    }
}

/// Read the validity section back (row count known from the chunk meta).
pub(crate) fn decode_validity(cur: &mut Cursor<'_>, rows: usize) -> Result<Option<Vec<bool>>> {
    match cur.u8()? {
        0 => Ok(None),
        1 => {
            let packed = cur.take(rows.div_ceil(8))?;
            Ok(Some(unpack_bits(packed, rows)))
        }
        other => Err(StoreError::Format(format!("bad validity tag {other}"))),
    }
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bits(packed: &[u8], rows: usize) -> Vec<bool> {
    let mut out = vec![false; rows];
    tqp_tensor::simd::unpack_bits_into(packed, &mut out);
    out
}

// ---------------------------------------------------------------------
// Value encodings
// ---------------------------------------------------------------------

/// Byte width needed to carry `range` (0 means all values equal).
fn for_width(range: u64) -> usize {
    if range == 0 {
        0
    } else if range <= u8::MAX as u64 {
        1
    } else if range <= u16::MAX as u64 {
        2
    } else if range <= u32::MAX as u64 {
        4
    } else {
        8
    }
}

fn rle_runs_i64(v: &[i64]) -> usize {
    let mut runs = 0;
    let mut prev: Option<i64> = None;
    for &x in v {
        if prev != Some(x) {
            runs += 1;
            prev = Some(x);
        }
    }
    runs
}

/// Encode one column chunk's values, choosing the cheapest encoding.
/// Returns the chosen encoding (the tag is also written into the block).
pub(crate) fn encode_values(out: &mut Vec<u8>, values: &ChunkValues) -> Encoding {
    match values {
        ChunkValues::I64(v) => encode_i64(out, v),
        ChunkValues::F64(v) => {
            out.push(Encoding::Plain as u8);
            for &x in v {
                put_f64(out, x);
            }
            Encoding::Plain
        }
        ChunkValues::Bool(v) => encode_bool(out, v),
        ChunkValues::Str(v) => encode_str(out, v),
    }
}

fn encode_i64(out: &mut Vec<u8>, v: &[i64]) -> Encoding {
    let n = v.len();
    let plain_cost = 8 * n;
    let (min, max) = v
        .iter()
        .fold((i64::MAX, i64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
    let (for_cost, width) = if n == 0 {
        (usize::MAX, 0)
    } else {
        let range = (max as i128 - min as i128) as u64;
        let w = for_width(range);
        (8 + 1 + w * n, w)
    };
    let runs = rle_runs_i64(v);
    let rle_cost = 4 + runs * 12;

    if n > 0 && rle_cost < plain_cost && rle_cost <= for_cost {
        out.push(Encoding::Rle as u8);
        put_u32(out, runs as u32);
        let mut i = 0;
        while i < n {
            let val = v[i];
            let mut j = i + 1;
            while j < n && v[j] == val {
                j += 1;
            }
            put_u32(out, (j - i) as u32);
            put_i64(out, val);
            i = j;
        }
        Encoding::Rle
    } else if n > 0 && for_cost < plain_cost {
        out.push(Encoding::For as u8);
        put_i64(out, min);
        out.push(width as u8);
        for &x in v {
            let delta = (x as i128 - min as i128) as u64;
            out.extend_from_slice(&delta.to_le_bytes()[..width]);
        }
        Encoding::For
    } else {
        out.push(Encoding::Plain as u8);
        for &x in v {
            put_i64(out, x);
        }
        Encoding::Plain
    }
}

fn encode_bool(out: &mut Vec<u8>, v: &[bool]) -> Encoding {
    // Runs of identical bools are common (sorted/clustered data); compare
    // against the 1-bit packing.
    let runs = {
        let mut runs = 0;
        let mut prev: Option<bool> = None;
        for &x in v {
            if prev != Some(x) {
                runs += 1;
                prev = Some(x);
            }
        }
        runs
    };
    let rle_cost = 4 + runs * 5;
    let pack_cost = v.len().div_ceil(8);
    if !v.is_empty() && rle_cost < pack_cost {
        out.push(Encoding::Rle as u8);
        put_u32(out, runs as u32);
        let mut i = 0;
        while i < v.len() {
            let val = v[i];
            let mut j = i + 1;
            while j < v.len() && v[j] == val {
                j += 1;
            }
            put_u32(out, (j - i) as u32);
            out.push(val as u8);
            i = j;
        }
        Encoding::Rle
    } else {
        out.push(Encoding::BitPack as u8);
        out.extend_from_slice(&pack_bits(v));
        Encoding::BitPack
    }
}

fn encode_str(out: &mut Vec<u8>, v: &[String]) -> Encoding {
    // Build the dictionary in first-appearance order so encoding is
    // deterministic regardless of platform hash order.
    let mut dict: Vec<&str> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    let mut indices = Vec::with_capacity(v.len());
    for s in v {
        let idx = *index_of.entry(s.as_str()).or_insert_with(|| {
            dict.push(s.as_str());
            dict.len() - 1
        });
        indices.push(idx);
    }
    let idx_width: usize = if dict.len() <= u8::MAX as usize + 1 {
        1
    } else if dict.len() <= u16::MAX as usize + 1 {
        2
    } else {
        4
    };
    let plain_cost: usize = v.iter().map(|s| 4 + s.len()).sum();
    let dict_cost: usize =
        4 + dict.iter().map(|s| 4 + s.len()).sum::<usize>() + 1 + idx_width * v.len();
    if !v.is_empty() && dict_cost < plain_cost {
        out.push(Encoding::Dict as u8);
        put_u32(out, dict.len() as u32);
        for s in &dict {
            put_bytes(out, s.as_bytes());
        }
        out.push(idx_width as u8);
        for &i in &indices {
            out.extend_from_slice(&(i as u64).to_le_bytes()[..idx_width]);
        }
        Encoding::Dict
    } else {
        out.push(Encoding::Plain as u8);
        for s in v {
            put_bytes(out, s.as_bytes());
        }
        Encoding::Plain
    }
}

/// Decode one column chunk's value section.
pub(crate) fn decode_values(
    cur: &mut Cursor<'_>,
    ty: LogicalType,
    rows: usize,
) -> Result<ChunkValues> {
    let enc = Encoding::from_tag(cur.u8()?)?;
    match (ty, enc) {
        (LogicalType::Int64 | LogicalType::Date, Encoding::Plain) => {
            let raw = cur.take(8 * rows)?;
            let mut v = vec![0i64; rows];
            tqp_tensor::simd::decode_i64_le(raw, &mut v);
            Ok(ChunkValues::I64(v))
        }
        (LogicalType::Int64 | LogicalType::Date, Encoding::For) => {
            let min = cur.i64()?;
            let width = cur.u8()? as usize;
            let mut v = Vec::with_capacity(rows);
            if width == 0 {
                v.resize(rows, min);
            } else if width > 8 {
                return Err(StoreError::Format(format!("bad FOR width {width}")));
            } else {
                let raw = cur.take(width * rows)?;
                v.resize(rows, 0);
                tqp_tensor::simd::decode_for(raw, width, min, &mut v);
            }
            Ok(ChunkValues::I64(v))
        }
        (LogicalType::Int64 | LogicalType::Date, Encoding::Rle) => {
            let runs = cur.u32()? as usize;
            let mut v = Vec::with_capacity(rows);
            for _ in 0..runs {
                let len = cur.u32()? as usize;
                let val = cur.i64()?;
                tqp_tensor::simd::splat_i64(&mut v, val, len);
            }
            if v.len() != rows {
                return Err(StoreError::Format(format!(
                    "rle decoded {} rows, expected {rows}",
                    v.len()
                )));
            }
            Ok(ChunkValues::I64(v))
        }
        (LogicalType::Float64, Encoding::Plain) => {
            let raw = cur.take(8 * rows)?;
            let mut v = vec![0.0f64; rows];
            tqp_tensor::simd::decode_f64_le(raw, &mut v);
            Ok(ChunkValues::F64(v))
        }
        (LogicalType::Bool, Encoding::BitPack) => {
            let packed = cur.take(rows.div_ceil(8))?;
            Ok(ChunkValues::Bool(unpack_bits(packed, rows)))
        }
        (LogicalType::Bool, Encoding::Rle) => {
            let runs = cur.u32()? as usize;
            let mut v = Vec::with_capacity(rows);
            for _ in 0..runs {
                let len = cur.u32()? as usize;
                let val = cur.u8()? != 0;
                v.extend(std::iter::repeat_n(val, len));
            }
            if v.len() != rows {
                return Err(StoreError::Format(format!(
                    "rle decoded {} rows, expected {rows}",
                    v.len()
                )));
            }
            Ok(ChunkValues::Bool(v))
        }
        (LogicalType::Str, Encoding::Plain) => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(cur.string()?);
            }
            Ok(ChunkValues::Str(v))
        }
        (LogicalType::Str, Encoding::Dict) => {
            let n_dict = cur.u32()? as usize;
            let mut dict = Vec::with_capacity(n_dict);
            for _ in 0..n_dict {
                dict.push(cur.string()?);
            }
            let idx_width = cur.u8()? as usize;
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                let raw = cur.take(idx_width)?;
                let mut b = [0u8; 8];
                b[..idx_width].copy_from_slice(raw);
                let idx = u64::from_le_bytes(b) as usize;
                let s = dict.get(idx).ok_or_else(|| {
                    StoreError::Format(format!("dict index {idx} out of range {n_dict}"))
                })?;
                v.push(s.clone());
            }
            Ok(ChunkValues::Str(v))
        }
        (ty, enc) => Err(StoreError::Format(format!(
            "encoding {enc:?} invalid for column type {ty:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: ChunkValues, ty: LogicalType, expect: Encoding) {
        let mut buf = Vec::new();
        let enc = encode_values(&mut buf, &values);
        assert_eq!(enc, expect, "encoding choice for {values:?}");
        let mut cur = Cursor::new(&buf);
        let back = decode_values(&mut cur, ty, values.len()).unwrap();
        assert_eq!(back, values);
        assert_eq!(cur.remaining(), 0, "trailing bytes");
    }

    #[test]
    fn int_for_roundtrip() {
        roundtrip(
            ChunkValues::I64((1000..2000).collect()),
            LogicalType::Int64,
            Encoding::For,
        );
    }

    #[test]
    fn int_rle_roundtrip() {
        let mut v = vec![7i64; 500];
        v.extend(vec![-3i64; 500]);
        roundtrip(ChunkValues::I64(v), LogicalType::Int64, Encoding::Rle);
    }

    #[test]
    fn int_plain_on_incompressible() {
        let v: Vec<i64> = (0..100)
            .map(|i| i64::MIN / 2 + i * (i64::MAX / 200))
            .collect();
        roundtrip(ChunkValues::I64(v), LogicalType::Int64, Encoding::Plain);
    }

    #[test]
    fn int_extremes() {
        let v = vec![i64::MIN, i64::MAX, 0, -1, 1];
        let mut buf = Vec::new();
        encode_values(&mut buf, &ChunkValues::I64(v.clone()));
        let back = decode_values(&mut Cursor::new(&buf), LogicalType::Int64, 5).unwrap();
        assert_eq!(back, ChunkValues::I64(v));
    }

    #[test]
    fn float_roundtrip_bit_exact() {
        let v = vec![
            0.0,
            -0.0,
            f64::INFINITY,
            f64::MIN_POSITIVE,
            1.5e300,
            f64::NAN,
        ];
        let mut buf = Vec::new();
        encode_values(&mut buf, &ChunkValues::F64(v.clone()));
        let ChunkValues::F64(back) =
            decode_values(&mut Cursor::new(&buf), LogicalType::Float64, v.len()).unwrap()
        else {
            panic!("wrong variant");
        };
        for (a, b) in back.iter().zip(&v) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn bool_bitpack_and_rle() {
        roundtrip(
            ChunkValues::Bool((0..100).map(|i| i % 3 == 0).collect()),
            LogicalType::Bool,
            Encoding::BitPack,
        );
        roundtrip(
            ChunkValues::Bool(vec![true; 1000]),
            LogicalType::Bool,
            Encoding::Rle,
        );
    }

    #[test]
    fn string_dict_and_plain() {
        roundtrip(
            ChunkValues::Str((0..300).map(|i| format!("cat{}", i % 4)).collect()),
            LogicalType::Str,
            Encoding::Dict,
        );
        roundtrip(
            ChunkValues::Str((0..50).map(|i| format!("unique value {i}")).collect()),
            LogicalType::Str,
            Encoding::Plain,
        );
    }

    #[test]
    fn validity_roundtrip() {
        let bits: Vec<bool> = (0..37).map(|i| i % 5 != 0).collect();
        let mut buf = Vec::new();
        encode_validity(&mut buf, Some(&bits));
        let back = decode_validity(&mut Cursor::new(&buf), 37).unwrap();
        assert_eq!(back, Some(bits));
        // All-valid collapses to the absent marker.
        let mut buf = Vec::new();
        encode_validity(&mut buf, Some(&[true, true]));
        assert_eq!(buf, vec![0]);
        assert_eq!(decode_validity(&mut Cursor::new(&buf), 2).unwrap(), None);
    }

    #[test]
    fn corrupt_blocks_error_not_panic() {
        let mut buf = Vec::new();
        encode_values(&mut buf, &ChunkValues::I64(vec![1, 2, 3]));
        // Truncation.
        let mut cur = Cursor::new(&buf[..buf.len() - 1]);
        assert!(decode_values(&mut cur, LogicalType::Int64, 3).is_err());
        // Wrong type for the tag.
        let mut cur = Cursor::new(&buf);
        assert!(decode_values(&mut cur, LogicalType::Str, 3).is_err());
        // Unknown tag.
        let mut cur = Cursor::new(&[99u8]);
        assert!(decode_values(&mut cur, LogicalType::Int64, 0).is_err());
    }
}

//! The store reader: opens a table file, parses the footer, and decodes
//! chunks on demand — **chunk-at-a-time** into the tensors the execution
//! layer consumes, never materializing the file whole unless a caller
//! explicitly concatenates every chunk.

use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use tqp_data::stats::TableStats;
use tqp_data::{LogicalType, Schema};
use tqp_tensor::Tensor;

use crate::encode::{decode_validity, decode_values, ChunkValues, Cursor};
use crate::meta::{decode_footer, ChunkMeta, Footer};
use crate::zone::ZoneMap;
use crate::{Result, StoreError, FORMAT_VERSION, MAGIC};

/// One decoded column chunk: a value tensor plus optional validity.
pub type DecodedColumn = (Tensor, Option<Tensor>);

/// An opened stored table: footer metadata in memory, chunk payloads on
/// disk. `Send + Sync`; chunk decodes open their own file handle, so the
/// executor fans decodes out across worker threads freely.
pub struct StoredTable {
    path: PathBuf,
    schema: Schema,
    chunk_rows: usize,
    rows: usize,
    str_widths: Vec<u32>,
    chunks: Vec<ChunkMeta>,
    stats: TableStats,
    file_bytes: u64,
}

impl std::fmt::Debug for StoredTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredTable")
            .field("path", &self.path)
            .field("rows", &self.rows)
            .field("chunks", &self.chunks.len())
            .field("chunk_rows", &self.chunk_rows)
            .finish()
    }
}

impl StoredTable {
    /// Open an existing store file (reads header + footer only).
    pub fn open(path: &Path) -> Result<StoredTable> {
        let mut file = std::fs::File::open(path)?;
        let file_bytes = file.seek(SeekFrom::End(0))?;
        let mut head = [0u8; 8];
        if file_bytes < 20 {
            return Err(StoreError::Format(format!(
                "{} is too small to be a store file",
                path.display()
            )));
        }
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut head)?;
        if &head[..4] != MAGIC {
            return Err(StoreError::Format(format!(
                "{} has bad magic (not a tqp-store file)",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(StoreError::Format(format!(
                "store format version {version} unsupported (this build reads version {FORMAT_VERSION})"
            )));
        }
        let mut tail = [0u8; 12];
        file.seek(SeekFrom::End(-12))?;
        file.read_exact(&mut tail)?;
        if &tail[8..] != MAGIC {
            return Err(StoreError::Format(format!(
                "{} is truncated (missing trailing magic)",
                path.display()
            )));
        }
        let footer_off = u64::from_le_bytes(tail[..8].try_into().unwrap());
        if footer_off < 8 || footer_off > file_bytes - 12 {
            return Err(StoreError::Format(format!(
                "footer offset {footer_off} out of range"
            )));
        }
        let mut buf = vec![0u8; (file_bytes - 12 - footer_off) as usize];
        file.seek(SeekFrom::Start(footer_off))?;
        file.read_exact(&mut buf)?;
        let footer = decode_footer(&buf)?;
        StoredTable::from_footer(path.to_path_buf(), footer, file_bytes)
    }

    /// Build from an in-memory footer (the writer's `finish` path).
    pub(crate) fn from_footer(
        path: PathBuf,
        footer: Footer,
        file_bytes: u64,
    ) -> Result<StoredTable> {
        Ok(StoredTable {
            path,
            schema: footer.schema,
            chunk_rows: footer.chunk_rows as usize,
            rows: footer.rows as usize,
            str_widths: footer.str_widths,
            chunks: footer.chunks,
            stats: footer.stats,
            file_bytes,
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Nominal rows per chunk (the last chunk may be shorter).
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Rows in chunk `i`.
    pub fn chunk_len(&self, i: usize) -> usize {
        self.chunks[i].rows as usize
    }

    /// Zone map of column `col` in chunk `i`.
    pub fn zone(&self, i: usize, col: usize) -> &ZoneMap {
        &self.chunks[i].cols[col].zone
    }

    /// Whole-table statistics from the footer.
    pub fn stats(&self) -> &TableStats {
        &self.stats
    }

    /// On-disk size in bytes (compression accounting).
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// The backing file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Table-wide maximum string byte width of column `col` (0 for
    /// non-string columns) — the width every decoded chunk pads to, so
    /// chunk concatenation is bit-identical to whole-table ingestion.
    pub fn str_width(&self, col: usize) -> usize {
        self.str_widths[col] as usize
    }

    /// Decode the given columns of chunk `i` (schema order preserved
    /// within the projection).
    pub fn decode_chunk(&self, i: usize, cols: &[usize]) -> Result<Vec<DecodedColumn>> {
        let chunk = &self.chunks[i];
        let rows = chunk.rows as usize;
        let mut file = std::fs::File::open(&self.path)?;
        let mut out = Vec::with_capacity(cols.len());
        for &c in cols {
            let meta = &chunk.cols[c];
            let mut buf = vec![0u8; meta.len as usize];
            file.seek(SeekFrom::Start(meta.offset))?;
            file.read_exact(&mut buf)?;
            let mut cur = Cursor::new(&buf);
            let validity = decode_validity(&mut cur, rows)?;
            let values = decode_values(&mut cur, self.schema.fields[c].ty, rows)?;
            if cur.remaining() != 0 {
                return Err(StoreError::Format(format!(
                    "chunk {i} column {c}: {} trailing bytes",
                    cur.remaining()
                )));
            }
            let tensor = self.values_to_tensor(c, values);
            let validity = validity.map(Tensor::from_bool);
            out.push((tensor, validity));
        }
        Ok(out)
    }

    /// Zero-row tensors of the right dtype/width for the given columns
    /// (the shape of a fully-pruned or empty-table scan).
    pub fn empty_columns(&self, cols: &[usize]) -> Vec<DecodedColumn> {
        cols.iter()
            .map(|&c| {
                let t = match self.schema.fields[c].ty {
                    LogicalType::Bool => Tensor::from_bool(vec![]),
                    LogicalType::Int64 | LogicalType::Date => Tensor::from_i64(vec![]),
                    LogicalType::Float64 => Tensor::from_f64(vec![]),
                    LogicalType::Str => Tensor::from_strings(&[], self.str_width(c)),
                };
                (t, None)
            })
            .collect()
    }

    fn values_to_tensor(&self, col: usize, values: ChunkValues) -> Tensor {
        match values {
            ChunkValues::I64(v) => Tensor::from_i64(v),
            ChunkValues::F64(v) => Tensor::from_f64(v),
            ChunkValues::Bool(v) => Tensor::from_bool(v),
            ChunkValues::Str(v) => {
                let refs: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
                Tensor::from_strings(&refs, self.str_width(col))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{store_csv, store_frame, StoreWriter};
    use tqp_data::frame::df;
    use tqp_data::ingest::frame_to_tensors;
    use tqp_data::Column;
    use tqp_tensor::Scalar;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!("tqp_store_test_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_frame(n: i64) -> tqp_data::DataFrame {
        df(vec![
            ("id", Column::from_i64((0..n).collect())),
            (
                "flag",
                Column::from_bool((0..n).map(|i| i % 3 == 0).collect()),
            ),
            (
                "price",
                Column::from_f64((0..n).map(|i| (i as f64) * 0.25 - 10.0).collect()),
            ),
            (
                "day",
                Column::from_date_ns((0..n).map(|i| (i % 30) * 86_400_000_000_000).collect()),
            ),
            (
                "name",
                Column::from_str((0..n).map(|i| format!("name-{}", i % 7)).collect()),
            ),
        ])
    }

    /// Decode every chunk and compare against whole-table ingestion —
    /// the bit-exactness contract the executor relies on.
    fn assert_bit_exact(table: &StoredTable, frame: &tqp_data::DataFrame) {
        let reference = frame_to_tensors(frame);
        let ncols = frame.ncols();
        let all: Vec<usize> = (0..ncols).collect();
        let mut row = 0usize;
        for i in 0..table.n_chunks() {
            let decoded = table.decode_chunk(i, &all).unwrap();
            for (c, (t, validity)) in decoded.iter().enumerate() {
                assert!(validity.is_none(), "frame data has no NULLs");
                let r = &reference.tensors[c];
                assert_eq!(t.dtype(), r.dtype(), "col {c}");
                assert_eq!(t.row_width(), r.row_width(), "col {c} width");
                for k in 0..t.nrows() {
                    assert_eq!(t.get(k), r.get(row + k), "col {c} row {}", row + k);
                }
            }
            row += table.chunk_len(i);
        }
        assert_eq!(row, frame.nrows());
    }

    #[test]
    fn frame_roundtrip_multi_chunk() {
        let dir = tmpdir();
        let frame = sample_frame(2500);
        let path = dir.join("roundtrip.tqps");
        let table = store_frame(&frame, &path, 700).unwrap();
        assert_eq!(table.nrows(), 2500);
        assert_eq!(table.n_chunks(), 4);
        assert_eq!(table.chunk_len(3), 400);
        assert_bit_exact(&table, &frame);
        // Re-open from disk: identical metadata, identical decode.
        let reopened = StoredTable::open(&path).unwrap();
        assert_eq!(reopened.nrows(), table.nrows());
        assert_eq!(reopened.stats(), table.stats());
        assert_bit_exact(&reopened, &frame);
    }

    #[test]
    fn csv_streaming_ingest_matches_frame_path() {
        let dir = tmpdir();
        let frame = sample_frame(1203);
        let csv_path = dir.join("ingest.csv");
        tqp_data::csv::write_csv(&frame, &csv_path).unwrap();
        let table = store_csv(&csv_path, frame.schema(), &dir.join("ingest.tqps"), 256).unwrap();
        assert_eq!(table.nrows(), 1203);
        assert_eq!(table.n_chunks(), 5);
        // CSV float formatting is %.4 — rebuild the frame through the
        // same round-trip for value comparison.
        let reread = tqp_data::csv::read_csv(frame.schema(), &csv_path).unwrap();
        assert_bit_exact(&table, &reread);
        // Streamed stats equal whole-frame stats on the same data.
        assert_eq!(table.stats(), &tqp_data::stats::frame_stats(&reread));
    }

    #[test]
    fn zone_maps_reflect_chunk_ranges() {
        let dir = tmpdir();
        let frame = df(vec![("v", Column::from_i64((0..1000).collect()))]);
        let table = store_frame(&frame, &dir.join("zones.tqps"), 100).unwrap();
        assert_eq!(table.n_chunks(), 10);
        for i in 0..10 {
            let z = table.zone(i, 0);
            assert_eq!(z.min, Some(Scalar::I64(i as i64 * 100)));
            assert_eq!(z.max, Some(Scalar::I64(i as i64 * 100 + 99)));
            assert_eq!(z.null_count, 0);
            assert_eq!(z.distinct, 100);
        }
    }

    #[test]
    fn validity_roundtrip_through_file() {
        let dir = tmpdir();
        let schema = Schema::new(vec![
            tqp_data::Field::new("x", LogicalType::Int64),
            tqp_data::Field::new("s", LogicalType::Str),
        ]);
        let path = dir.join("nulls.tqps");
        let mut w = StoreWriter::create(&path, &schema, 4).unwrap();
        let xs = Column::from_i64(vec![1, 0, 3, 0, 5, 6]);
        let ss = Column::from_str(vec![
            "a".into(),
            "".into(),
            "c".into(),
            "".into(),
            "e".into(),
            "f".into(),
        ]);
        let vx = vec![true, false, true, false, true, true];
        w.append_columns(&[xs, ss], &[Some(vx.clone()), Some(vx.clone())])
            .unwrap();
        let table = w.finish().unwrap();
        assert_eq!(table.n_chunks(), 2);
        // Chunk 0 has the NULLs; chunk 1 is all-valid.
        assert_eq!(table.zone(0, 0).null_count, 2);
        assert_eq!(table.zone(0, 0).min, Some(Scalar::I64(1)));
        assert_eq!(table.zone(1, 0).null_count, 0);
        let d0 = table.decode_chunk(0, &[0, 1]).unwrap();
        let v0 = d0[0].1.as_ref().unwrap();
        assert_eq!(v0.as_bool(), &[true, false, true, false]);
        assert!(d0[1].1.is_some());
        let d1 = table.decode_chunk(1, &[0]).unwrap();
        assert!(d1[0].1.is_none());
        assert_eq!(table.stats().columns[0].null_count, 2);
    }

    #[test]
    fn empty_table() {
        let dir = tmpdir();
        let frame = sample_frame(0);
        let table = store_frame(&frame, &dir.join("empty.tqps"), 16).unwrap();
        assert_eq!(table.nrows(), 0);
        assert_eq!(table.n_chunks(), 0);
        let empty = table.empty_columns(&[0, 4]);
        assert_eq!(empty[0].0.nrows(), 0);
        assert_eq!(empty[0].0.dtype(), tqp_tensor::DType::I64);
        assert_eq!(empty[1].0.dtype(), tqp_tensor::DType::U8);
    }

    #[test]
    fn version_and_corruption_checks() {
        let dir = tmpdir();
        let frame = sample_frame(10);
        let path = dir.join("vers.tqps");
        store_frame(&frame, &path, 8).unwrap();
        // Not a store file.
        let junk = dir.join("junk.tqps");
        std::fs::write(&junk, b"definitely not a store file, but long enough").unwrap();
        assert!(matches!(
            StoredTable::open(&junk),
            Err(StoreError::Format(_))
        ));
        // Future version is rejected with a message naming both versions.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let bumped = dir.join("v99.tqps");
        std::fs::write(&bumped, &bytes).unwrap();
        match StoredTable::open(&bumped) {
            Err(StoreError::Format(msg)) => {
                assert!(msg.contains("99") && msg.contains('1'), "{msg}");
            }
            other => panic!("expected format error, got {other:?}"),
        }
        // Truncation loses the trailing magic.
        let cut = dir.join("cut.tqps");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&cut, &bytes[..bytes.len() - 4]).unwrap();
        assert!(StoredTable::open(&cut).is_err());
    }

    #[test]
    fn projection_decodes_only_requested_columns() {
        let dir = tmpdir();
        let frame = sample_frame(300);
        let table = store_frame(&frame, &dir.join("proj.tqps"), 128).unwrap();
        let cols = table.decode_chunk(0, &[2, 4]).unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].0.dtype(), tqp_tensor::DType::F64);
        assert_eq!(cols[0].0.get(0), Scalar::F64(-10.0));
        assert_eq!(cols[1].0.str_at(0), "name-0");
    }

    #[test]
    fn compression_beats_plain_on_typical_data() {
        let dir = tmpdir();
        // Clustered ints + low-cardinality strings: both should compress.
        let n = 20_000i64;
        let frame = df(vec![
            (
                "k",
                Column::from_i64((0..n).map(|i| 1000 + i % 251).collect()),
            ),
            (
                "cat",
                Column::from_str((0..n).map(|i| format!("category-{}", i % 5)).collect()),
            ),
        ]);
        let table = store_frame(&frame, &dir.join("comp.tqps"), 4096).unwrap();
        let plain_bytes = (n as u64) * 8 + (n as u64) * (4 + "category-0".len() as u64);
        assert!(
            table.file_bytes() < plain_bytes / 2,
            "file {} vs plain {plain_bytes}",
            table.file_bytes()
        );
        assert_bit_exact(&table, &frame);
    }
}

//! # tqp-profile — profiler, traces, and executor-graph export
//!
//! The stand-in for the paper's TensorBoard/PyTorch-Profiler integration
//! (Scenario 1, Figures 2 and 4):
//!
//! * [`Profiler`] records per-operator spans (wall time, rows, bytes);
//! * [`Profiler::breakdown`] renders the Figure-2 "runtime breakdown of the
//!   top operators" table with text bar charts;
//! * [`Profiler::chrome_trace`] exports a `chrome://tracing` /
//!   Perfetto-compatible JSON trace (the artifact TensorBoard renders);
//! * [`graph::DotGraph`] emits Graphviz DOT for executor graphs (Figure 4's
//!   interactive query-graph view).

pub mod graph;

use std::time::Instant;

use parking_lot::Mutex;

/// Canonical span key for a program operator: `{name}@op{idx}` — spans are
/// keyed by the op's **program index**, so the same logical operator
/// appearing twice in a program aggregates separately. Every VM formats
/// its span names through these helpers so trace consumers can rely on
/// one scheme.
pub fn op_key(name: &str, idx: usize) -> String {
    format!("{name}@op{idx}")
}

/// Span key for a morsel-parallel operator execution. Identical to
/// [`op_key`]: the key deliberately does **not** embed the morsel count,
/// so the same operator aggregates under one stable key across worker
/// counts and batch sizes — the chunk count rides in [`Span::chunks`]
/// metadata instead (see [`Profiler::record_chunks`]).
pub fn op_key_par(name: &str, idx: usize) -> String {
    op_key(name, idx)
}

/// One recorded operator span.
#[derive(Debug, Clone)]
pub struct Span {
    /// Operator name (e.g. `Filter@op2`, `SortMergeJoin(Inner)@op5`; see
    /// [`op_key`]).
    pub name: String,
    /// Coarse category (`relational`, `ml`, `transfer`, `compile`,
    /// `expr` for compiled-expression kernel loops).
    pub category: String,
    /// Start offset since profiler creation, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Output rows produced (0 when not applicable).
    pub rows: u64,
    /// Bytes moved/produced (feeds the device cost model reports).
    pub bytes: u64,
    /// Morsel/chunk count for parallel segment executions (0 when the
    /// span ran sequentially). Metadata only — never part of the key.
    pub chunks: u64,
}

/// Thread-safe span recorder.
pub struct Profiler {
    epoch: Instant,
    spans: Mutex<Vec<Span>>,
    enabled: bool,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::new()
    }
}

impl Profiler {
    /// A recording profiler.
    pub fn new() -> Profiler {
        Profiler {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            enabled: true,
        }
    }

    /// A no-op profiler (recording disabled; near-zero overhead).
    pub fn disabled() -> Profiler {
        Profiler {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
            enabled: false,
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span measured externally.
    pub fn record(
        &self,
        name: &str,
        category: &str,
        start_us: u64,
        dur_us: u64,
        rows: u64,
        bytes: u64,
    ) {
        self.record_chunks(name, category, start_us, dur_us, rows, bytes, 0);
    }

    /// Record a span with an explicit morsel/chunk count (parallel
    /// segment executions; sequential spans use [`Profiler::record`]).
    #[allow(clippy::too_many_arguments)]
    pub fn record_chunks(
        &self,
        name: &str,
        category: &str,
        start_us: u64,
        dur_us: u64,
        rows: u64,
        bytes: u64,
        chunks: u64,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.lock().push(Span {
            name: name.to_string(),
            category: category.to_string(),
            start_us,
            dur_us,
            rows,
            bytes,
            chunks,
        });
    }

    /// Time a closure and record it; returns the closure result.
    pub fn time<T>(
        &self,
        name: &str,
        category: &str,
        rows_bytes: impl FnOnce(&T) -> (u64, u64),
        f: impl FnOnce() -> T,
    ) -> T {
        if !self.enabled {
            return f();
        }
        let start = self.epoch.elapsed().as_micros() as u64;
        let t0 = Instant::now();
        let out = f();
        let dur = t0.elapsed().as_micros() as u64;
        let (rows, bytes) = rows_bytes(&out);
        self.record(name, category, start, dur, rows, bytes);
        out
    }

    /// Microseconds since this profiler was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Snapshot of all recorded spans.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().clone()
    }

    /// Clear recorded spans.
    pub fn reset(&self) {
        self.spans.lock().clear();
    }

    /// Aggregate spans by operator name: (name, calls, total_us, rows).
    pub fn aggregate(&self) -> Vec<OpStats> {
        use std::collections::HashMap;
        let mut agg: HashMap<String, OpStats> = HashMap::new();
        for s in self.spans.lock().iter() {
            let e = agg.entry(s.name.clone()).or_insert_with(|| OpStats {
                name: s.name.clone(),
                category: s.category.clone(),
                calls: 0,
                total_us: 0,
                rows: 0,
                bytes: 0,
            });
            e.calls += 1;
            e.total_us += s.dur_us;
            e.rows += s.rows;
            e.bytes += s.bytes;
        }
        let mut v: Vec<OpStats> = agg.into_values().collect();
        v.sort_by_key(|s| std::cmp::Reverse(s.total_us));
        v
    }

    /// Figure-2 style text table: top operators by self time with a bar
    /// chart of the share of total runtime.
    pub fn breakdown(&self, top: usize) -> String {
        let stats = self.aggregate();
        let total: u64 = stats.iter().map(|s| s.total_us).sum();
        let total = total.max(1);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>6} {:>12} {:>12} {:>7}  {}\n",
            "operator", "calls", "time (us)", "rows", "%", "share"
        ));
        out.push_str(&"-".repeat(92));
        out.push('\n');
        for s in stats.iter().take(top) {
            let pct = 100.0 * s.total_us as f64 / total as f64;
            let bar = "#".repeat((pct / 4.0).round() as usize);
            out.push_str(&format!(
                "{:<28} {:>6} {:>12} {:>12} {:>6.1}%  {}\n",
                truncate(&s.name, 28),
                s.calls,
                s.total_us,
                s.rows,
                pct,
                bar
            ));
        }
        out
    }

    /// Chrome-trace JSON (open in `chrome://tracing` or Perfetto — the same
    /// artifact the PyTorch profiler feeds to TensorBoard).
    pub fn chrome_trace(&self) -> String {
        use tqp_json::Json;
        let spans = self.spans.lock();
        let events: Vec<Json> = spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::str(s.name.as_str())),
                    ("cat", Json::str(s.category.as_str())),
                    ("ph", Json::str("X")),
                    ("ts", Json::I64(s.start_us as i64)),
                    ("dur", Json::I64(s.dur_us as i64)),
                    ("pid", Json::I64(1)),
                    ("tid", Json::I64(1)),
                    (
                        "args",
                        Json::obj(vec![
                            ("rows", Json::I64(s.rows as i64)),
                            ("bytes", Json::I64(s.bytes as i64)),
                            ("chunks", Json::I64(s.chunks as i64)),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![("traceEvents", Json::Arr(events))]).to_string_pretty()
    }
}

/// Aggregated per-operator statistics.
#[derive(Debug, Clone)]
pub struct OpStats {
    pub name: String,
    pub category: String,
    pub calls: u64,
    pub total_us: u64,
    pub rows: u64,
    pub bytes: u64,
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let p = Profiler::new();
        p.record("Filter", "relational", 0, 100, 10, 80);
        p.record("Filter", "relational", 100, 50, 5, 40);
        p.record("Join", "relational", 150, 300, 7, 56);
        let agg = p.aggregate();
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].name, "Join"); // sorted by time desc
        assert_eq!(agg[1].calls, 2);
        assert_eq!(agg[1].total_us, 150);
        assert_eq!(agg[1].rows, 15);
    }

    #[test]
    fn timed_closure_records() {
        let p = Profiler::new();
        let out = p.time(
            "op",
            "relational",
            |v: &Vec<i32>| (v.len() as u64, 0),
            || vec![1, 2, 3],
        );
        assert_eq!(out.len(), 3);
        let spans = p.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].rows, 3);
    }

    #[test]
    fn disabled_profiler_is_silent() {
        let p = Profiler::disabled();
        p.record("x", "y", 0, 1, 0, 0);
        let _ = p.time("z", "c", |_: &i32| (0, 0), || 1);
        assert!(p.spans().is_empty());
        assert!(!p.is_enabled());
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let p = Profiler::new();
        p.record("Scan(lineitem)", "relational", 5, 42, 1000, 8000);
        let trace = p.chrome_trace();
        let v = tqp_json::Json::parse(&trace).unwrap();
        let event = v.get("traceEvents").and_then(|e| e.at(0)).unwrap();
        assert_eq!(
            event.get("name").and_then(tqp_json::Json::as_str),
            Some("Scan(lineitem)")
        );
        assert_eq!(event.get("dur").and_then(tqp_json::Json::as_i64), Some(42));
    }

    #[test]
    fn chrome_trace_escapes_quotes_and_backslashes() {
        let p = Profiler::new();
        // Operator labels can embed LIKE patterns with quotes and escapes.
        let name = r#"Filter(name LIKE "%a\_b%")"#;
        p.record_chunks(name, r#"cat"\"#, 0, 7, 3, 24, 4);
        let trace = p.chrome_trace();
        let v = tqp_json::Json::parse(&trace).unwrap();
        let event = v.get("traceEvents").and_then(|e| e.at(0)).unwrap();
        assert_eq!(
            event.get("name").and_then(tqp_json::Json::as_str),
            Some(name)
        );
        assert_eq!(
            event.get("cat").and_then(tqp_json::Json::as_str),
            Some(r#"cat"\"#)
        );
        assert_eq!(
            event
                .get("args")
                .and_then(|a| a.get("chunks"))
                .and_then(tqp_json::Json::as_i64),
            Some(4)
        );
    }

    #[test]
    fn op_keys_are_stable_across_chunk_counts() {
        assert_eq!(op_key("HashProbe", 3), "HashProbe@op3");
        assert_eq!(op_key_par("HashProbe", 3), op_key("HashProbe", 3));
    }

    #[test]
    fn breakdown_renders() {
        let p = Profiler::new();
        p.record("BigOp", "relational", 0, 900, 1, 1);
        p.record("SmallOp", "relational", 900, 100, 1, 1);
        let table = p.breakdown(10);
        assert!(table.contains("BigOp"));
        assert!(table.contains("90.0%"));
    }

    #[test]
    fn reset_clears() {
        let p = Profiler::new();
        p.record("a", "b", 0, 1, 0, 0);
        p.reset();
        assert!(p.spans().is_empty());
    }
}

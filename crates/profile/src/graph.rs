//! Graphviz DOT export of executor graphs — the Figure 4 artifact ("the
//! query-graph is interactive and the audience can double-click on the
//! various components").

/// A directed graph rendered to Graphviz DOT.
#[derive(Debug, Default)]
pub struct DotGraph {
    nodes: Vec<(String, String, String)>, // (id, label, attrs)
    edges: Vec<(String, String, String)>, // (from, to, label)
}

impl DotGraph {
    /// Empty graph.
    pub fn new() -> DotGraph {
        DotGraph::default()
    }

    /// Add a node; returns its id. `kind` picks a shape/colour class:
    /// `relational`, `ml`, `data`, or anything else for the default style.
    pub fn add_node(&mut self, label: &str, kind: &str) -> String {
        let id = format!("n{}", self.nodes.len());
        let attrs = match kind {
            "relational" => "shape=box,style=filled,fillcolor=lightblue",
            "ml" => "shape=box,style=filled,fillcolor=lightsalmon",
            "data" => "shape=cylinder,style=filled,fillcolor=lightgrey",
            _ => "shape=ellipse",
        };
        self.nodes
            .push((id.clone(), label.to_string(), attrs.to_string()));
        id
    }

    /// Add a directed edge with an optional label (e.g. row counts).
    pub fn add_edge(&mut self, from: &str, to: &str, label: &str) {
        self.edges
            .push((from.to_string(), to.to_string(), label.to_string()));
    }

    /// Number of nodes so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Render DOT text.
    pub fn to_dot(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str("digraph executor {\n");
        out.push_str(&format!("  label=\"{}\";\n", escape(title)));
        out.push_str("  rankdir=BT;\n  node [fontname=\"Helvetica\"];\n");
        for (id, label, attrs) in &self.nodes {
            out.push_str(&format!("  {id} [label=\"{}\",{attrs}];\n", escape(label)));
        }
        for (from, to, label) in &self.edges {
            if label.is_empty() {
                out.push_str(&format!("  {from} -> {to};\n"));
            } else {
                out.push_str(&format!(
                    "  {from} -> {to} [label=\"{}\"];\n",
                    escape(label)
                ));
            }
        }
        out.push_str("}\n");
        out
    }
}

fn escape(s: &str) -> String {
    // Backslashes first, or the quote escaping's own backslashes would be
    // doubled.
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_dot() {
        let mut g = DotGraph::new();
        let scan = g.add_node("Scan(reviews)", "data");
        let predict = g.add_node("Predict(sentiment_classifier)", "ml");
        let agg = g.add_node("SortAggregate", "relational");
        g.add_edge(&scan, &predict, "5000 rows");
        g.add_edge(&predict, &agg, "");
        let dot = g.to_dot("figure 4");
        assert!(dot.starts_with("digraph executor {"));
        assert!(dot.contains("lightsalmon"));
        assert!(dot.contains("5000 rows"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(g.node_count(), 3);
    }

    #[test]
    fn escapes_quotes() {
        let mut g = DotGraph::new();
        g.add_node("Filter(\"x\")", "relational");
        assert!(g.to_dot("t").contains("\\\"x\\\""));
    }

    #[test]
    fn escapes_backslashes() {
        let mut g = DotGraph::new();
        g.add_node(r#"Filter(LIKE "%a\_b%")"#, "relational");
        let dot = g.to_dot("t");
        assert!(dot.contains(r#"\\_b"#));
        assert!(dot.contains(r#"\"%a"#));
    }
}

//! # tqp-obs — the unified observability layer
//!
//! One process-wide metrics registry plus the per-query trace types that
//! every other crate reports into. Three instrument kinds live behind a
//! dotted namespace (`exec.*`, `simd.*`, `cache.*`, `net.*`, `sched.*`):
//!
//! - [`Counter`] — monotonically increasing `u64`.
//! - [`Gauge`] — signed instantaneous value (queue depths, in-flight).
//! - [`Histogram`] — fixed power-of-two microsecond buckets with
//!   p50/p95/p99 estimation from the bucket bounds.
//!
//! Instrument handles are `Arc`-backed atomics: registration takes a
//! mutex once, after which every update is a single relaxed atomic RMW
//! guarded by one relaxed load of the process [`enabled`] flag. That flag
//! exists purely as the A/B switch for the CI overhead gate — production
//! leaves it on.
//!
//! The crate also owns the cross-layer observability plumbing that must
//! be shared between `tqp-core` and `tqp-net` without a dependency cycle:
//! the [`QueryTrace`] document (JSON round-trippable through `tqp-json`
//! so it can ride the wire), the global [slow-query ring buffer]
//! (`record_slow_query`), and the process trace-id counter.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tqp_json::{Json, JsonError};

// ---------------------------------------------------------------------------
// Process enable flag
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turn metric recording on or off process-wide. The registry stays
/// always-on in production; this switch exists so the bench smoke can
/// measure the overhead delta.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instruments currently record updates.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// Monotonic counter handle. Cheap to clone; clones share the cell.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value handle (queue depth, in-flight requests).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, n: i64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i` holds observations with value
/// `<= 2^i` microseconds (bucket 0 additionally absorbs zero), and the
/// final bucket is the overflow (+Inf) bucket.
pub const HISTOGRAM_BUCKETS: usize = 28;

struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCell {
    fn new() -> HistogramCell {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Fixed-bucket latency histogram handle (microsecond domain).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCell>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramCell::new()))
    }
}

/// Upper bound (inclusive, microseconds) of bucket `i`; the last bucket
/// is unbounded.
pub fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        return 0;
    }
    let idx = 64 - (v - 1).leading_zeros() as usize;
    idx.min(HISTOGRAM_BUCKETS - 1)
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation (microseconds).
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        let cell = &*self.0;
        cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        cell.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let cell = &*self.0;
        let buckets: Vec<u64> = cell
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = cell.count.load(Ordering::Relaxed);
        let sum = cell.sum.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum,
        }
    }
}

/// Point-in-time copy of one histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Quantile estimate: the upper bound of the bucket where the
    /// cumulative count first reaches `q * count`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_bound(i);
            }
        }
        bucket_bound(self.buckets.len().saturating_sub(1))
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The process-wide instrument table. Names are dotted
/// (`exec.queries`, `net.query_us`); the Prometheus exporter rewrites
/// them to `tqp_exec_queries` style.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create a counter. Callers cache the returned handle; the
    /// mutex is only on this registration path.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The global registry every layer reports into.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Point-in-time copy of the whole registry, JSON round-trippable so the
/// extended STATS wire reply can carry it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Gauge value by name (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|(k, v)| {
                            Json::obj(vec![
                                ("name", Json::str(k)),
                                ("value", Json::I64(*v as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Arr(
                    self.gauges
                        .iter()
                        .map(|(k, v)| {
                            Json::obj(vec![("name", Json::str(k)), ("value", Json::I64(*v))])
                        })
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(|(k, h)| {
                            Json::obj(vec![
                                ("name", Json::str(k)),
                                ("count", Json::I64(h.count as i64)),
                                ("sum", Json::I64(h.sum as i64)),
                                (
                                    "buckets",
                                    Json::Arr(
                                        h.buckets.iter().map(|&b| Json::I64(b as i64)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(doc: &Json) -> Result<Snapshot, JsonError> {
        let mut snap = Snapshot::default();
        for item in doc.field("counters")?.as_arr().unwrap_or(&[]) {
            snap.counters.push((
                item.field("name")?.as_str().unwrap_or("").to_string(),
                item.field("value")?.as_i64().unwrap_or(0) as u64,
            ));
        }
        for item in doc.field("gauges")?.as_arr().unwrap_or(&[]) {
            snap.gauges.push((
                item.field("name")?.as_str().unwrap_or("").to_string(),
                item.field("value")?.as_i64().unwrap_or(0),
            ));
        }
        for item in doc.field("histograms")?.as_arr().unwrap_or(&[]) {
            let buckets = item
                .field("buckets")?
                .as_arr()
                .unwrap_or(&[])
                .iter()
                .map(|b| b.as_i64().unwrap_or(0) as u64)
                .collect();
            snap.histograms.push((
                item.field("name")?.as_str().unwrap_or("").to_string(),
                HistogramSnapshot {
                    buckets,
                    count: item.field("count")?.as_i64().unwrap_or(0) as u64,
                    sum: item.field("sum")?.as_i64().unwrap_or(0) as u64,
                },
            ));
        }
        Ok(snap)
    }

    /// Render in Prometheus text exposition format. Dotted names become
    /// `tqp_`-prefixed underscore names; histograms emit cumulative
    /// `_bucket{le=...}` series plus `_sum`/`_count`.
    pub fn prometheus_text(&self) -> String {
        fn metric_name(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 4);
            out.push_str("tqp_");
            for ch in name.chars() {
                if ch.is_ascii_alphanumeric() {
                    out.push(ch);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let m = metric_name(name);
            out.push_str(&format!("# TYPE {m} counter\n{m} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let m = metric_name(name);
            out.push_str(&format!("# TYPE {m} gauge\n{m} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let m = metric_name(name);
            out.push_str(&format!("# TYPE {m} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                cum += c;
                if i + 1 == h.buckets.len() {
                    out.push_str(&format!("{m}_bucket{{le=\"+Inf\"}} {cum}\n"));
                } else {
                    out.push_str(&format!("{m}_bucket{{le=\"{}\"}} {cum}\n", bucket_bound(i)));
                }
            }
            out.push_str(&format!("{m}_sum {}\n{m}_count {}\n", h.sum, h.count));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Per-query traces
// ---------------------------------------------------------------------------

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocate a process-unique trace id (monotonic from 1).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// One profiler span carried inside a [`QueryTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    pub name: String,
    pub category: String,
    pub start_us: u64,
    pub dur_us: u64,
    pub rows: u64,
    pub bytes: u64,
    /// Morsel/chunk count for parallel segment spans (0 = sequential).
    pub chunks: u64,
}

/// Per-program-op attribution row: spans keyed `…@op{idx}` summed by op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTrace {
    pub op_index: u64,
    pub name: String,
    pub calls: u64,
    pub total_us: u64,
    pub rows: u64,
    pub bytes: u64,
}

/// The full per-query observability document: what `EXPLAIN ANALYZE`
/// renders from in-process and what the wire `PROFILE` frame ships.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryTrace {
    pub trace_id: u64,
    pub sql: String,
    pub backend: String,
    pub workers: u64,
    pub wall_us: u64,
    pub rows: u64,
    pub chunks_scanned: u64,
    pub chunks_pruned: u64,
    /// SIMD kernel-family dispatch counts for this query
    /// (`hash`/`filter`/`gather`/`reduce`/`decode`).
    pub simd_dispatch: Vec<(String, u64)>,
    pub spans: Vec<TraceSpan>,
    pub ops: Vec<OpTrace>,
}

/// Parse the program-op index out of a stable span key
/// (`HashProbe@op3` → 3). Returns `None` for non-operator spans.
pub fn op_index_of(span_name: &str) -> Option<u64> {
    let (_, idx) = span_name.rsplit_once("@op")?;
    idx.parse().ok()
}

impl QueryTrace {
    /// Fold the span list into per-op attribution rows, ordered by op
    /// index. Spans without an `@op{idx}` key are left out.
    pub fn build_ops(&mut self) {
        let mut by_op: BTreeMap<u64, OpTrace> = BTreeMap::new();
        for span in &self.spans {
            let Some(idx) = op_index_of(&span.name) else {
                continue;
            };
            let name = span
                .name
                .rsplit_once("@op")
                .map(|(n, _)| n.to_string())
                .unwrap_or_default();
            let entry = by_op.entry(idx).or_insert_with(|| OpTrace {
                op_index: idx,
                name,
                calls: 0,
                total_us: 0,
                rows: 0,
                bytes: 0,
            });
            entry.calls += 1;
            entry.total_us += span.dur_us;
            entry.rows += span.rows;
            entry.bytes += span.bytes;
        }
        self.ops = by_op.into_values().collect();
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("trace_id", Json::I64(self.trace_id as i64)),
            ("sql", Json::str(&self.sql)),
            ("backend", Json::str(&self.backend)),
            ("workers", Json::I64(self.workers as i64)),
            ("wall_us", Json::I64(self.wall_us as i64)),
            ("rows", Json::I64(self.rows as i64)),
            ("chunks_scanned", Json::I64(self.chunks_scanned as i64)),
            ("chunks_pruned", Json::I64(self.chunks_pruned as i64)),
            (
                "simd_dispatch",
                Json::Arr(
                    self.simd_dispatch
                        .iter()
                        .map(|(k, v)| {
                            Json::obj(vec![
                                ("kernel", Json::str(k)),
                                ("count", Json::I64(*v as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "spans",
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::str(&s.name)),
                                ("cat", Json::str(&s.category)),
                                ("start_us", Json::I64(s.start_us as i64)),
                                ("dur_us", Json::I64(s.dur_us as i64)),
                                ("rows", Json::I64(s.rows as i64)),
                                ("bytes", Json::I64(s.bytes as i64)),
                                ("chunks", Json::I64(s.chunks as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ops",
                Json::Arr(
                    self.ops
                        .iter()
                        .map(|o| {
                            Json::obj(vec![
                                ("op_index", Json::I64(o.op_index as i64)),
                                ("name", Json::str(&o.name)),
                                ("calls", Json::I64(o.calls as i64)),
                                ("total_us", Json::I64(o.total_us as i64)),
                                ("rows", Json::I64(o.rows as i64)),
                                ("bytes", Json::I64(o.bytes as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(doc: &Json) -> Result<QueryTrace, JsonError> {
        let mut trace = QueryTrace {
            trace_id: doc.field("trace_id")?.as_i64().unwrap_or(0) as u64,
            sql: doc.field("sql")?.as_str().unwrap_or("").to_string(),
            backend: doc.field("backend")?.as_str().unwrap_or("").to_string(),
            workers: doc.field("workers")?.as_i64().unwrap_or(0) as u64,
            wall_us: doc.field("wall_us")?.as_i64().unwrap_or(0) as u64,
            rows: doc.field("rows")?.as_i64().unwrap_or(0) as u64,
            chunks_scanned: doc.field("chunks_scanned")?.as_i64().unwrap_or(0) as u64,
            chunks_pruned: doc.field("chunks_pruned")?.as_i64().unwrap_or(0) as u64,
            ..QueryTrace::default()
        };
        for item in doc.field("simd_dispatch")?.as_arr().unwrap_or(&[]) {
            trace.simd_dispatch.push((
                item.field("kernel")?.as_str().unwrap_or("").to_string(),
                item.field("count")?.as_i64().unwrap_or(0) as u64,
            ));
        }
        for item in doc.field("spans")?.as_arr().unwrap_or(&[]) {
            trace.spans.push(TraceSpan {
                name: item.field("name")?.as_str().unwrap_or("").to_string(),
                category: item.field("cat")?.as_str().unwrap_or("").to_string(),
                start_us: item.field("start_us")?.as_i64().unwrap_or(0) as u64,
                dur_us: item.field("dur_us")?.as_i64().unwrap_or(0) as u64,
                rows: item.field("rows")?.as_i64().unwrap_or(0) as u64,
                bytes: item.field("bytes")?.as_i64().unwrap_or(0) as u64,
                chunks: item.field("chunks")?.as_i64().unwrap_or(0) as u64,
            });
        }
        for item in doc.field("ops")?.as_arr().unwrap_or(&[]) {
            trace.ops.push(OpTrace {
                op_index: item.field("op_index")?.as_i64().unwrap_or(0) as u64,
                name: item.field("name")?.as_str().unwrap_or("").to_string(),
                calls: item.field("calls")?.as_i64().unwrap_or(0) as u64,
                total_us: item.field("total_us")?.as_i64().unwrap_or(0) as u64,
                rows: item.field("rows")?.as_i64().unwrap_or(0) as u64,
                bytes: item.field("bytes")?.as_i64().unwrap_or(0) as u64,
            });
        }
        Ok(trace)
    }

    /// Chrome-trace (`chrome://tracing`) export of the span list.
    pub fn chrome_trace(&self) -> String {
        let events: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::str(&s.name)),
                    ("cat", Json::str(&s.category)),
                    ("ph", Json::str("X")),
                    ("ts", Json::I64(s.start_us as i64)),
                    ("dur", Json::I64(s.dur_us as i64)),
                    ("pid", Json::I64(1)),
                    ("tid", Json::I64(1)),
                    (
                        "args",
                        Json::obj(vec![
                            ("rows", Json::I64(s.rows as i64)),
                            ("bytes", Json::I64(s.bytes as i64)),
                            ("chunks", Json::I64(s.chunks as i64)),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![("traceEvents", Json::Arr(events))]).to_string_pretty()
    }
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

/// Capacity of the slow-query ring buffer; the oldest entry is evicted
/// once full.
pub const SLOW_LOG_CAPACITY: usize = 128;

/// One slow-query record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    pub trace_id: u64,
    pub sql: String,
    pub wall_us: u64,
    pub rows: u64,
    /// The threshold (milliseconds) that was exceeded.
    pub threshold_ms: u64,
}

static SLOW_LOG: OnceLock<Mutex<VecDeque<SlowQuery>>> = OnceLock::new();

fn slow_log() -> &'static Mutex<VecDeque<SlowQuery>> {
    SLOW_LOG.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Append to the process slow-query ring buffer.
pub fn record_slow_query(entry: SlowQuery) {
    let mut log = slow_log().lock().unwrap();
    if log.len() >= SLOW_LOG_CAPACITY {
        log.pop_front();
    }
    log.push_back(entry);
}

/// Snapshot of the ring buffer, oldest first.
pub fn slow_queries() -> Vec<SlowQuery> {
    slow_log().lock().unwrap().iter().cloned().collect()
}

/// Drop all slow-query entries (test isolation).
pub fn clear_slow_queries() {
    slow_log().lock().unwrap().clear();
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that record metrics serialize here so the enabled-flag test
    /// cannot drop their updates.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let mut prev = 0;
        for v in 0..10_000u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev || bucket_bound(idx) >= v.max(1));
            assert!(v <= bucket_bound(idx) || idx == HISTOGRAM_BUCKETS - 1);
            prev = idx;
        }
    }

    #[test]
    fn histogram_quantiles() {
        let _g = flag_lock();
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 1100);
        assert!(snap.p50() >= 20 && snap.p50() <= 64);
        assert!(snap.p99() >= 1000);
    }

    #[test]
    fn disabled_flag_stops_recording() {
        let _g = flag_lock();
        let c = Counter::new();
        c.inc();
        set_enabled(false);
        c.inc();
        set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn registry_handles_share_state() {
        let _g = flag_lock();
        let a = registry().counter("test.shared");
        let b = registry().counter("test.shared");
        a.add(3);
        b.add(4);
        assert_eq!(registry().counter("test.shared").get(), 7);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let _g = flag_lock();
        let h = registry().histogram("test.snapjson_us");
        h.observe(42);
        registry().gauge("test.snapjson_gauge").set(-5);
        let snap = registry().snapshot();
        let parsed = tqp_json::Json::parse(&snap.to_json().to_string()).unwrap();
        let back = Snapshot::from_json(&parsed).unwrap();
        assert_eq!(back.gauge("test.snapjson_gauge"), -5);
        assert_eq!(back.histogram("test.snapjson_us").unwrap().count, 1);
        assert_eq!(back.histogram("test.snapjson_us").unwrap().sum, 42);
    }

    #[test]
    fn prometheus_text_line_format() {
        let _g = flag_lock();
        let reg = Registry::new();
        reg.counter("exec.queries").add(7);
        reg.gauge("sched.queue_depth").set(2);
        reg.histogram("net.query_us").observe(100);
        let text = reg.snapshot().prometheus_text();
        assert!(text.contains("# TYPE tqp_exec_queries counter"));
        assert!(text.contains("tqp_exec_queries 7"));
        assert!(text.contains("tqp_sched_queue_depth 2"));
        assert!(text.contains("tqp_net_query_us_count 1"));
        assert!(text.contains("tqp_net_query_us_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn trace_json_round_trip() {
        let mut trace = QueryTrace {
            trace_id: 9,
            sql: "select 1".into(),
            backend: "Fused".into(),
            workers: 4,
            wall_us: 1234,
            rows: 10,
            chunks_scanned: 8,
            chunks_pruned: 3,
            simd_dispatch: vec![("filter".into(), 2)],
            spans: vec![TraceSpan {
                name: "Filter@op1".into(),
                category: "op".into(),
                start_us: 5,
                dur_us: 50,
                rows: 10,
                bytes: 80,
                chunks: 4,
            }],
            ops: vec![],
        };
        trace.build_ops();
        assert_eq!(trace.ops.len(), 1);
        assert_eq!(trace.ops[0].op_index, 1);
        assert_eq!(trace.ops[0].name, "Filter");
        let parsed = tqp_json::Json::parse(&trace.to_json().to_string()).unwrap();
        let back = QueryTrace::from_json(&parsed).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn op_index_parsing() {
        assert_eq!(op_index_of("HashProbe@op3"), Some(3));
        assert_eq!(op_index_of("Scan@op0"), Some(0));
        assert_eq!(op_index_of("GraphLoad"), None);
        assert_eq!(op_index_of("weird@opx"), None);
    }

    #[test]
    fn slow_log_ring_evicts() {
        clear_slow_queries();
        for i in 0..(SLOW_LOG_CAPACITY as u64 + 10) {
            record_slow_query(SlowQuery {
                trace_id: i,
                sql: format!("q{i}"),
                wall_us: i,
                rows: 0,
                threshold_ms: 0,
            });
        }
        let log = slow_queries();
        assert_eq!(log.len(), SLOW_LOG_CAPACITY);
        assert_eq!(log[0].trace_id, 10);
        clear_slow_queries();
    }
}

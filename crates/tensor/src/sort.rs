//! Stable sorting kernels.
//!
//! TQP's ORDER BY, sort-based aggregation, and sort-merge join are all built
//! on *stable argsort*: produce a permutation, then [`crate::index::take`]
//! every payload column through it. Multi-key ordering uses the classic
//! LSD trick — repeated stable single-key sorts from the least-significant
//! key to the most-significant — which is exactly how multi-column sorts are
//! expressed on tensor runtimes that only expose per-column stable sorts.

use crate::dtype::DType;
use crate::index::take;
use crate::tensor::Tensor;

/// Sort direction for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    Asc,
    Desc,
}

/// One sort key: the column tensor plus a direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    pub values: Tensor,
    pub order: Order,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(values: Tensor) -> Self {
        SortKey {
            values,
            order: Order::Asc,
        }
    }

    /// Descending key.
    pub fn desc(values: Tensor) -> Self {
        SortKey {
            values,
            order: Order::Desc,
        }
    }
}

/// Stable argsort of a single rank-1 tensor (or rank-2 string matrix, whose
/// rows order byte-lexicographically ≡ UTF-8 order). Returns an `I64`
/// permutation tensor: `perm[k]` = original row index of output row `k`.
///
/// Floats order with a total order (NaN greatest), so the sort never panics.
pub fn argsort(t: &Tensor, order: Order) -> Tensor {
    let perm: Vec<i64> = (0..t.nrows() as i64).collect();
    argsort_perm(t, order, perm)
}

/// Stable re-sort of an existing permutation by a new key: sorts `perm` by
/// `key[perm[i]]`, keeping equal keys in `perm` order. This is the LSD step.
fn argsort_perm(key: &Tensor, order: Order, mut perm: Vec<i64>) -> Tensor {
    macro_rules! sort_by_slice {
        ($as:ident) => {{
            let vals = key.$as();
            match order {
                Order::Asc => perm.sort_by(|&a, &b| vals[a as usize].cmp(&vals[b as usize])),
                Order::Desc => perm.sort_by(|&a, &b| vals[b as usize].cmp(&vals[a as usize])),
            }
        }};
    }
    match key.dtype() {
        DType::Bool => sort_by_slice!(as_bool),
        DType::I32 => sort_by_slice!(as_i32),
        DType::I64 => sort_by_slice!(as_i64),
        DType::F32 => {
            let vals = key.as_f32();
            match order {
                Order::Asc => perm.sort_by(|&a, &b| vals[a as usize].total_cmp(&vals[b as usize])),
                Order::Desc => perm.sort_by(|&a, &b| vals[b as usize].total_cmp(&vals[a as usize])),
            }
        }
        DType::F64 => {
            let vals = key.as_f64();
            match order {
                Order::Asc => perm.sort_by(|&a, &b| vals[a as usize].total_cmp(&vals[b as usize])),
                Order::Desc => perm.sort_by(|&a, &b| vals[b as usize].total_cmp(&vals[a as usize])),
            }
        }
        DType::U8 => {
            // Rank-2 string matrix: rows compare as padded byte slices
            // (trailing NULs sort below every printable byte, preserving
            // prefix ordering).
            let m = key.row_width();
            let bytes = key.as_u8();
            let row = |i: i64| &bytes[i as usize * m..(i as usize + 1) * m];
            match order {
                Order::Asc => perm.sort_by(|&a, &b| row(a).cmp(row(b))),
                Order::Desc => perm.sort_by(|&a, &b| row(b).cmp(row(a))),
            }
        }
    }
    Tensor::from_i64(perm)
}

/// Stable multi-key argsort: `keys[0]` is the most significant. Implemented
/// as LSD repeated stable sorts (sort by last key first).
pub fn argsort_multi(keys: &[SortKey]) -> Tensor {
    assert!(!keys.is_empty(), "argsort_multi needs at least one key");
    let n = keys[0].values.nrows();
    for k in keys {
        assert_eq!(k.values.nrows(), n, "sort keys must have equal length");
    }
    let mut perm: Vec<i64> = (0..n as i64).collect();
    for key in keys.iter().rev() {
        perm = argsort_perm(&key.values, key.order, perm).to_i64_vec();
    }
    Tensor::from_i64(perm)
}

/// Sort a tensor by itself (values, not indices).
pub fn sort(t: &Tensor, order: Order) -> Tensor {
    take(t, &argsort(t, order))
}

/// True iff the rank-1 `I64` tensor is non-decreasing.
pub fn is_sorted_i64(t: &Tensor) -> bool {
    t.as_i64().windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_ints_stable() {
        let t = Tensor::from_i64(vec![3, 1, 2, 1]);
        let p = argsort(&t, Order::Asc);
        assert_eq!(p.as_i64(), &[1, 3, 2, 0]); // ties keep original order
        assert_eq!(sort(&t, Order::Asc).as_i64(), &[1, 1, 2, 3]);
        assert_eq!(sort(&t, Order::Desc).as_i64(), &[3, 2, 1, 1]);
    }

    #[test]
    fn argsort_floats_with_nan() {
        let t = Tensor::from_f64(vec![f64::NAN, 1.0, -1.0]);
        let s = sort(&t, Order::Asc);
        assert_eq!(s.as_f64()[0], -1.0);
        assert_eq!(s.as_f64()[1], 1.0);
        assert!(s.as_f64()[2].is_nan());
    }

    #[test]
    fn argsort_strings() {
        let t = Tensor::from_strings(&["pear", "apple", "ap"], 0);
        let s = take(&t, &argsort(&t, Order::Asc));
        assert_eq!(s.str_at(0), "ap");
        assert_eq!(s.str_at(1), "apple");
        assert_eq!(s.str_at(2), "pear");
    }

    #[test]
    fn multi_key_orders_lexicographically() {
        // (a, b) pairs; sort by a asc, b desc.
        let a = Tensor::from_i64(vec![1, 2, 1, 2]);
        let b = Tensor::from_f64(vec![10.0, 5.0, 20.0, 1.0]);
        let p = argsort_multi(&[SortKey::asc(a.clone()), SortKey::desc(b.clone())]);
        let sa = take(&a, &p);
        let sb = take(&b, &p);
        assert_eq!(sa.as_i64(), &[1, 1, 2, 2]);
        assert_eq!(sb.as_f64(), &[20.0, 10.0, 5.0, 1.0]);
    }

    #[test]
    fn multi_key_with_string_primary() {
        let s = Tensor::from_strings(&["b", "a", "b", "a"], 0);
        let v = Tensor::from_i64(vec![2, 9, 1, 3]);
        let p = argsort_multi(&[SortKey::asc(s.clone()), SortKey::asc(v.clone())]);
        let sv = take(&v, &p);
        assert_eq!(sv.as_i64(), &[3, 9, 1, 2]);
    }

    #[test]
    fn empty_sort() {
        let t = Tensor::from_i64(vec![]);
        assert_eq!(argsort(&t, Order::Asc).nrows(), 0);
        assert!(is_sorted_i64(&t));
    }

    #[test]
    fn is_sorted_checks() {
        assert!(is_sorted_i64(&Tensor::from_i64(vec![1, 1, 2])));
        assert!(!is_sorted_i64(&Tensor::from_i64(vec![2, 1])));
    }
}

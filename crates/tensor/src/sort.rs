//! Stable sorting kernels.
//!
//! TQP's ORDER BY, sort-based aggregation, and sort-merge join are all built
//! on *stable argsort*: produce a permutation, then [`crate::index::take`]
//! every payload column through it. Multi-key ordering uses the classic
//! LSD trick — repeated stable single-key sorts from the least-significant
//! key to the most-significant — which is exactly how multi-column sorts are
//! expressed on tensor runtimes that only expose per-column stable sorts.
//!
//! Large inputs can sort worker-parallel via [`argsort_multi_par`]:
//! contiguous chunks are stably sorted in parallel, then merged pairwise
//! with a stable merge (ties take the earlier chunk, whose indices are all
//! smaller). Because a stable sort permutation is *unique* — fully
//! determined by the key values and original row order — the parallel path
//! is **bit-identical** to the sequential LSD sort at any worker count.

use std::cmp::Ordering;

use crate::dtype::DType;
use crate::index::take;
use crate::tensor::Tensor;

/// Sort direction for one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    Asc,
    Desc,
}

/// One sort key: the column tensor plus a direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    pub values: Tensor,
    pub order: Order,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(values: Tensor) -> Self {
        SortKey {
            values,
            order: Order::Asc,
        }
    }

    /// Descending key.
    pub fn desc(values: Tensor) -> Self {
        SortKey {
            values,
            order: Order::Desc,
        }
    }
}

/// Stable argsort of a single rank-1 tensor (or rank-2 string matrix, whose
/// rows order byte-lexicographically ≡ UTF-8 order). Returns an `I64`
/// permutation tensor: `perm[k]` = original row index of output row `k`.
///
/// Floats order with a total order (NaN greatest), so the sort never panics.
pub fn argsort(t: &Tensor, order: Order) -> Tensor {
    let perm: Vec<i64> = (0..t.nrows() as i64).collect();
    argsort_perm(t, order, perm)
}

/// Stable re-sort of an existing permutation by a new key: sorts `perm` by
/// `key[perm[i]]`, keeping equal keys in `perm` order. This is the LSD step.
fn argsort_perm(key: &Tensor, order: Order, mut perm: Vec<i64>) -> Tensor {
    macro_rules! sort_by_slice {
        ($as:ident) => {{
            let vals = key.$as();
            match order {
                Order::Asc => perm.sort_by(|&a, &b| vals[a as usize].cmp(&vals[b as usize])),
                Order::Desc => perm.sort_by(|&a, &b| vals[b as usize].cmp(&vals[a as usize])),
            }
        }};
    }
    match key.dtype() {
        DType::Bool => sort_by_slice!(as_bool),
        DType::I32 => sort_by_slice!(as_i32),
        DType::I64 => sort_by_slice!(as_i64),
        DType::F32 => {
            let vals = key.as_f32();
            match order {
                Order::Asc => perm.sort_by(|&a, &b| vals[a as usize].total_cmp(&vals[b as usize])),
                Order::Desc => perm.sort_by(|&a, &b| vals[b as usize].total_cmp(&vals[a as usize])),
            }
        }
        DType::F64 => {
            let vals = key.as_f64();
            match order {
                Order::Asc => perm.sort_by(|&a, &b| vals[a as usize].total_cmp(&vals[b as usize])),
                Order::Desc => perm.sort_by(|&a, &b| vals[b as usize].total_cmp(&vals[a as usize])),
            }
        }
        DType::U8 => {
            // Rank-2 string matrix: rows compare as padded byte slices
            // (trailing NULs sort below every printable byte, preserving
            // prefix ordering).
            let m = key.row_width();
            let bytes = key.as_u8();
            let row = |i: i64| &bytes[i as usize * m..(i as usize + 1) * m];
            match order {
                Order::Asc => perm.sort_by(|&a, &b| row(a).cmp(row(b))),
                Order::Desc => perm.sort_by(|&a, &b| row(b).cmp(row(a))),
            }
        }
    }
    Tensor::from_i64(perm)
}

/// Stable multi-key argsort: `keys[0]` is the most significant. Implemented
/// as LSD repeated stable sorts (sort by last key first).
pub fn argsort_multi(keys: &[SortKey]) -> Tensor {
    assert!(!keys.is_empty(), "argsort_multi needs at least one key");
    let n = keys[0].values.nrows();
    for k in keys {
        assert_eq!(k.values.nrows(), n, "sort keys must have equal length");
    }
    let mut perm: Vec<i64> = (0..n as i64).collect();
    for key in keys.iter().rev() {
        perm = argsort_perm(&key.values, key.order, perm).to_i64_vec();
    }
    Tensor::from_i64(perm)
}

/// Minimum rows before parallel chunk-sort + merge amortizes thread spawn
/// and merge passes.
const PAR_SORT_MIN_ROWS: usize = 32 * 1024;

/// A borrowed, dtype-resolved view of one sort key for comparator sorting.
enum KeyCol<'a> {
    Bool(&'a [bool]),
    I32(&'a [i32]),
    I64(&'a [i64]),
    F32(&'a [f32]),
    F64(&'a [f64]),
    /// Rank-2 string matrix: rows compare as padded byte slices.
    Str {
        bytes: &'a [u8],
        width: usize,
    },
}

struct KeyView<'a> {
    col: KeyCol<'a>,
    desc: bool,
}

impl<'a> KeyView<'a> {
    fn new(k: &'a SortKey) -> KeyView<'a> {
        let col = match k.values.dtype() {
            DType::Bool => KeyCol::Bool(k.values.as_bool()),
            DType::I32 => KeyCol::I32(k.values.as_i32()),
            DType::I64 => KeyCol::I64(k.values.as_i64()),
            DType::F32 => KeyCol::F32(k.values.as_f32()),
            DType::F64 => KeyCol::F64(k.values.as_f64()),
            DType::U8 => KeyCol::Str {
                bytes: k.values.as_u8(),
                width: k.values.row_width(),
            },
        };
        KeyView {
            col,
            desc: k.order == Order::Desc,
        }
    }

    fn cmp(&self, a: usize, b: usize) -> Ordering {
        let o = match &self.col {
            KeyCol::Bool(v) => v[a].cmp(&v[b]),
            KeyCol::I32(v) => v[a].cmp(&v[b]),
            KeyCol::I64(v) => v[a].cmp(&v[b]),
            KeyCol::F32(v) => v[a].total_cmp(&v[b]),
            KeyCol::F64(v) => v[a].total_cmp(&v[b]),
            KeyCol::Str { bytes, width } => {
                bytes[a * width..(a + 1) * width].cmp(&bytes[b * width..(b + 1) * width])
            }
        };
        if self.desc {
            o.reverse()
        } else {
            o
        }
    }
}

/// Lexicographic comparison of rows `a` and `b` across all keys (most
/// significant first). Equivalent to the LSD formulation: repeated stable
/// single-key sorts realize exactly this ordering with index ties.
fn cmp_rows(views: &[KeyView], a: usize, b: usize) -> Ordering {
    for v in views {
        match v.cmp(a, b) {
            Ordering::Equal => continue,
            o => return o,
        }
    }
    Ordering::Equal
}

/// Stable merge of two sorted index runs. All indices in `a` come from
/// earlier rows than those in `b`, so taking `a` on ties preserves global
/// stability.
fn merge_runs(a: &[i64], b: &[i64], views: &[KeyView]) -> Vec<i64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp_rows(views, a[i] as usize, b[j] as usize) != Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Worker-parallel stable multi-key argsort. Splits the input into
/// `workers` contiguous chunks, stably sorts each with the lexicographic
/// comparator, then merges pairs of adjacent runs (stable: ties take the
/// left run) until one permutation remains.
///
/// **Determinism contract**: a stable sort permutation is unique, so this
/// returns *bit-identical* output to [`argsort_multi`] for every input and
/// every `workers` value. Callers may freely vary the worker count without
/// perturbing downstream results.
pub fn argsort_multi_par(keys: &[SortKey], workers: usize) -> Tensor {
    assert!(!keys.is_empty(), "argsort_multi needs at least one key");
    let n = keys[0].values.nrows();
    for k in keys {
        assert_eq!(k.values.nrows(), n, "sort keys must have equal length");
    }
    if workers <= 1 || n < PAR_SORT_MIN_ROWS {
        return argsort_multi(keys);
    }
    let views: Vec<KeyView> = keys.iter().map(KeyView::new).collect();
    let n_chunks = workers.min(n / (PAR_SORT_MIN_ROWS / 4)).max(2);
    let chunk_len = n.div_ceil(n_chunks);

    // Phase 1: sort each contiguous chunk in parallel.
    let mut slots: Vec<Option<Vec<i64>>> = (0..n_chunks).map(|_| None).collect();
    crossbeam::scope(|s| {
        for (c, slot) in slots.iter_mut().enumerate() {
            let views = &views;
            s.spawn(move |_| {
                let lo = c * chunk_len;
                let hi = ((c + 1) * chunk_len).min(n);
                let mut idx: Vec<i64> = (lo as i64..hi as i64).collect();
                idx.sort_by(|&a, &b| cmp_rows(views, a as usize, b as usize));
                *slot = Some(idx);
            });
        }
    })
    .expect("sort worker panicked");
    let mut runs: Vec<Vec<i64>> = slots.into_iter().flatten().collect();

    // Phase 2: merge adjacent pairs (parallel per level) until one run.
    // An odd leftover run (always the last — highest chunk indices) moves
    // to the next level untouched, keeping the adjacency that makes
    // take-left-on-ties stable.
    while runs.len() > 1 {
        let leftover = if runs.len() % 2 == 1 {
            runs.pop()
        } else {
            None
        };
        let mut merged: Vec<Option<Vec<i64>>> = (0..runs.len() / 2).map(|_| None).collect();
        crossbeam::scope(|s| {
            for (slot, pair) in merged.iter_mut().zip(runs.chunks(2)) {
                let views = &views;
                s.spawn(move |_| {
                    *slot = Some(merge_runs(&pair[0], &pair[1], views));
                });
            }
        })
        .expect("merge worker panicked");
        runs = merged.into_iter().flatten().collect();
        runs.extend(leftover);
    }
    Tensor::from_i64(runs.pop().expect("non-empty input"))
}

/// Sort a tensor by itself (values, not indices).
pub fn sort(t: &Tensor, order: Order) -> Tensor {
    take(t, &argsort(t, order))
}

/// True iff the rank-1 `I64` tensor is non-decreasing.
pub fn is_sorted_i64(t: &Tensor) -> bool {
    t.as_i64().windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argsort_ints_stable() {
        let t = Tensor::from_i64(vec![3, 1, 2, 1]);
        let p = argsort(&t, Order::Asc);
        assert_eq!(p.as_i64(), &[1, 3, 2, 0]); // ties keep original order
        assert_eq!(sort(&t, Order::Asc).as_i64(), &[1, 1, 2, 3]);
        assert_eq!(sort(&t, Order::Desc).as_i64(), &[3, 2, 1, 1]);
    }

    #[test]
    fn argsort_floats_with_nan() {
        let t = Tensor::from_f64(vec![f64::NAN, 1.0, -1.0]);
        let s = sort(&t, Order::Asc);
        assert_eq!(s.as_f64()[0], -1.0);
        assert_eq!(s.as_f64()[1], 1.0);
        assert!(s.as_f64()[2].is_nan());
    }

    #[test]
    fn argsort_strings() {
        let t = Tensor::from_strings(&["pear", "apple", "ap"], 0);
        let s = take(&t, &argsort(&t, Order::Asc));
        assert_eq!(s.str_at(0), "ap");
        assert_eq!(s.str_at(1), "apple");
        assert_eq!(s.str_at(2), "pear");
    }

    #[test]
    fn multi_key_orders_lexicographically() {
        // (a, b) pairs; sort by a asc, b desc.
        let a = Tensor::from_i64(vec![1, 2, 1, 2]);
        let b = Tensor::from_f64(vec![10.0, 5.0, 20.0, 1.0]);
        let p = argsort_multi(&[SortKey::asc(a.clone()), SortKey::desc(b.clone())]);
        let sa = take(&a, &p);
        let sb = take(&b, &p);
        assert_eq!(sa.as_i64(), &[1, 1, 2, 2]);
        assert_eq!(sb.as_f64(), &[20.0, 10.0, 5.0, 1.0]);
    }

    #[test]
    fn multi_key_with_string_primary() {
        let s = Tensor::from_strings(&["b", "a", "b", "a"], 0);
        let v = Tensor::from_i64(vec![2, 9, 1, 3]);
        let p = argsort_multi(&[SortKey::asc(s.clone()), SortKey::asc(v.clone())]);
        let sv = take(&v, &p);
        assert_eq!(sv.as_i64(), &[3, 9, 1, 2]);
    }

    #[test]
    fn empty_sort() {
        let t = Tensor::from_i64(vec![]);
        assert_eq!(argsort(&t, Order::Asc).nrows(), 0);
        assert!(is_sorted_i64(&t));
    }

    #[test]
    fn is_sorted_checks() {
        assert!(is_sorted_i64(&Tensor::from_i64(vec![1, 1, 2])));
        assert!(!is_sorted_i64(&Tensor::from_i64(vec![2, 1])));
    }

    /// Deterministic LCG for the parity tests (no rand dependency).
    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *seed >> 33
    }

    #[test]
    fn parallel_argsort_bit_identical_to_sequential() {
        let n = PAR_SORT_MIN_ROWS * 2 + 777;
        let mut seed = 42u64;
        // Low-cardinality primary key (many ties → stability matters),
        // floats with NaNs, and a string key.
        let a = Tensor::from_i64((0..n).map(|_| (lcg(&mut seed) % 7) as i64).collect());
        let b = Tensor::from_f64(
            (0..n)
                .map(|_| {
                    let v = lcg(&mut seed);
                    if v.is_multiple_of(97) {
                        f64::NAN
                    } else {
                        (v % 1000) as f64 / 7.0
                    }
                })
                .collect(),
        );
        let words = ["kiwi", "apple", "pear", "zed", "ap"];
        let strs: Vec<&str> = (0..n)
            .map(|_| words[(lcg(&mut seed) % 5) as usize])
            .collect();
        let c = Tensor::from_strings(&strs, 0);
        let keys = [
            SortKey::asc(a.clone()),
            SortKey::desc(b.clone()),
            SortKey::asc(c.clone()),
        ];
        let seq = argsort_multi(&keys);
        for workers in [2, 3, 8] {
            let par = argsort_multi_par(&keys, workers);
            assert_eq!(seq.as_i64(), par.as_i64(), "workers={workers}");
        }
    }

    #[test]
    fn parallel_argsort_small_input_delegates() {
        let t = Tensor::from_i64(vec![3, 1, 2, 1]);
        let p = argsort_multi_par(&[SortKey::asc(t)], 4);
        assert_eq!(p.as_i64(), &[1, 3, 2, 0]);
    }

    #[test]
    fn parallel_argsort_all_equal_keys_keeps_row_order() {
        let n = PAR_SORT_MIN_ROWS + 10;
        let t = Tensor::from_i64(vec![5; n]);
        let p = argsort_multi_par(&[SortKey::asc(t)], 4);
        let expect: Vec<i64> = (0..n as i64).collect();
        assert_eq!(p.as_i64(), &expect[..]);
    }
}

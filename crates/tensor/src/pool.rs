//! Minimal data-parallel helpers built on `crossbeam::scope`.
//!
//! The paper runs TQP-CPU "over all cores" (§2.3); these helpers give the hot
//! kernels the same property without pulling in rayon. Work is split into
//! contiguous chunks, one scoped thread per chunk; small inputs run inline to
//! avoid spawn overhead.

/// Inputs below this many elements are processed on the calling thread.
/// Scoped threads are spawned per kernel call (no persistent pool), so the
/// threshold is high enough that spawn cost amortizes against a full pass.
pub const PAR_THRESHOLD: usize = 1 << 20;

/// Number of worker threads used for parallel kernels.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split `out` into near-equal chunks and invoke `f(start_index, chunk)` for
/// each, in parallel when the input is large enough.
///
/// `f` must be pure with respect to everything but its own chunk.
pub fn par_chunks_mut<T: Send, F>(out: &mut [T], f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    let threads = num_threads();
    if n < PAR_THRESHOLD || threads <= 1 {
        f(0, out);
        return;
    }
    let chunk = n.div_ceil(threads);
    crossbeam::scope(|s| {
        for (i, part) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move |_| f(i * chunk, part));
        }
    })
    .expect("worker thread panicked");
}

/// Parallel map-reduce over index ranges: `map` produces a partial result per
/// chunk, `reduce` folds partials (in chunk order) into the final value.
pub fn par_reduce<R, M, Rd>(n: usize, map: M, reduce: Rd, identity: R) -> R
where
    R: Send,
    M: Fn(std::ops::Range<usize>) -> R + Sync,
    Rd: Fn(R, R) -> R,
{
    if n == 0 {
        return identity;
    }
    let threads = num_threads();
    if n < PAR_THRESHOLD || threads <= 1 {
        return reduce(identity, map(0..n));
    }
    let chunk = n.div_ceil(threads);
    let mut partials: Vec<Option<R>> = (0..threads).map(|_| None).collect();
    crossbeam::scope(|s| {
        for (i, slot) in partials.iter_mut().enumerate() {
            let lo = i * chunk;
            let hi = ((i + 1) * chunk).min(n);
            if lo >= hi {
                break;
            }
            let map = &map;
            s.spawn(move |_| {
                *slot = Some(map(lo..hi));
            });
        }
    })
    .expect("worker thread panicked");
    partials.into_iter().flatten().fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_mut_small_inline() {
        let mut v = vec![0usize; 100];
        par_chunks_mut(&mut v, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn chunks_mut_large_parallel() {
        let n = PAR_THRESHOLD * 4 + 17;
        let mut v = vec![0usize; n];
        par_chunks_mut(&mut v, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = start + i;
            }
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    }

    #[test]
    fn reduce_matches_serial() {
        let n = PAR_THRESHOLD * 3 + 5;
        let total = par_reduce(n, |r| r.map(|i| i as u64).sum::<u64>(), |a, b| a + b, 0u64);
        let expect = (n as u64 - 1) * n as u64 / 2;
        assert_eq!(total, expect);
    }

    #[test]
    fn reduce_empty() {
        let total = par_reduce(0, |_| 1u64, |a, b| a + b, 0u64);
        assert_eq!(total, 0);
    }
}

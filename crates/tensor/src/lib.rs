//! # tqp-tensor — a Tensor Computation Runtime (TCR) substrate
//!
//! This crate is the stand-in for PyTorch in the TQP reproduction: a dense,
//! CPU-resident tensor library exposing exactly the operator vocabulary that
//! the paper's relational-algebra-to-tensor compilation requires:
//!
//! * element-wise arithmetic / comparison / boolean kernels with scalar
//!   broadcasting ([`ops`]),
//! * full and segmented reductions ([`reduce`]),
//! * stable single- and multi-key argsort, gather/take ([`sort`]),
//! * boolean-mask compaction, `searchsorted`, `arange`, `repeat`, `cumsum`
//!   ([`index`]),
//! * run-boundary / unique-consecutive detection ([`unique`]),
//! * dense GEMM for the ML operators ([`gemm`]),
//! * kernels over `(n × m)` right-zero-padded UTF-8 byte matrices — the
//!   paper's string representation (§2.1) — including `LIKE` ([`strings`]).
//!
//! Tensors are immutable, reference-counted, contiguous and row-major
//! ([`Tensor`]); cloning is O(1). Large kernels are parallelised over a
//! crossbeam-based thread pool ([`pool`]), mirroring "TQP-CPU runs over all
//! cores" in the paper's evaluation setup.
//!
//! Device placement (CPU vs the simulated GPU of the reproduction) is decided
//! by the execution layer (`tqp-exec`); kernels here are device-agnostic pure
//! compute, exactly like ATen kernels underneath PyTorch.

pub mod dtype;
pub mod gemm;
pub mod hash;
pub mod index;
pub mod kernels;
pub mod ops;
pub mod pool;
pub mod reduce;
pub mod simd;
pub mod sort;
pub mod strings;
pub mod tensor;
pub mod unique;

pub use dtype::{DType, Scalar};
pub use tensor::Tensor;

/// Errors produced by tensor kernels on semantically invalid input.
///
/// Shape/dtype mismatches that can only arise from planner bugs `panic!` with
/// descriptive messages instead (they are programmer errors, not data errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// An index was out of bounds for the tensor it addresses.
    IndexOutOfBounds { index: i64, len: usize },
    /// A cast between dtypes is not supported.
    BadCast { from: DType, to: DType },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of length {len}")
            }
            TensorError::BadCast { from, to } => {
                write!(f, "unsupported cast from {from:?} to {to:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, TensorError>;

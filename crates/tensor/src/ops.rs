//! Element-wise kernels: arithmetic, comparison, boolean logic, selection.
//!
//! These are the tensor equivalents of the expression nodes TQP's planning
//! layer emits for filters, projections, and `CASE` expressions. All kernels
//! are vectorized columnar loops, parallelised across cores for large inputs,
//! and allocate exactly one output buffer.
//!
//! Numeric inputs of different dtypes are promoted SQL-style (see
//! [`DType::promote`]); comparisons yield `Bool` tensors; `where_select`
//! implements the ternary `CASE WHEN` building block the paper highlights in
//! Figure 4.

use crate::dtype::{DType, Scalar};
use crate::pool::par_chunks_mut;
use crate::tensor::Tensor;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Remainder. Integer remainder by zero yields 0 (documented SQL-NULL
    /// simplification; TPC-H never exercises it).
    Mod,
}

/// Comparison operators producing `Bool` tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with operand sides swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluate on an `Ordering`.
    pub fn eval_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

fn assert_same_rows(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(
        a.nrows(),
        b.nrows(),
        "{what}: row count mismatch {} vs {}",
        a.nrows(),
        b.nrows()
    );
}

macro_rules! arith_loop {
    ($op:expr, $x:expr, $y:expr, $out:expr, int) => {
        match $op {
            BinOp::Add => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a.wrapping_add(b);
                }
            }),
            BinOp::Sub => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a.wrapping_sub(b);
                }
            }),
            BinOp::Mul => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a.wrapping_mul(b);
                }
            }),
            BinOp::Div => par_chunks_mut($out, |s, c| {
                for (i, o) in c.iter_mut().enumerate() {
                    let d = $y[s + i];
                    *o = if d == 0 { 0 } else { $x[s + i].wrapping_div(d) };
                }
            }),
            BinOp::Mod => par_chunks_mut($out, |s, c| {
                for (i, o) in c.iter_mut().enumerate() {
                    let d = $y[s + i];
                    *o = if d == 0 { 0 } else { $x[s + i].wrapping_rem(d) };
                }
            }),
        }
    };
    ($op:expr, $x:expr, $y:expr, $out:expr, float) => {
        match $op {
            BinOp::Add => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a + b;
                }
            }),
            BinOp::Sub => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a - b;
                }
            }),
            BinOp::Mul => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a * b;
                }
            }),
            BinOp::Div => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a / b;
                }
            }),
            BinOp::Mod => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a % b;
                }
            }),
        }
    };
}

/// Element-wise arithmetic over two equal-length rank-1 numeric tensors.
pub fn binary(op: BinOp, a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_rows(a, b, "binary");
    let dt = a.dtype().promote(b.dtype());
    let a = a.cast(dt).expect("promote cast");
    let b = b.cast(dt).expect("promote cast");
    match dt {
        DType::I32 => {
            let (x, y) = (a.as_i32(), b.as_i32());
            let mut out = vec![0i32; x.len()];
            arith_loop!(op, x, y, &mut out, int);
            Tensor::from_i32(out)
        }
        DType::I64 => {
            let (x, y) = (a.as_i64(), b.as_i64());
            let mut out = vec![0i64; x.len()];
            arith_loop!(op, x, y, &mut out, int);
            Tensor::from_i64(out)
        }
        DType::F32 => {
            let (x, y) = (a.as_f32(), b.as_f32());
            let mut out = vec![0f32; x.len()];
            arith_loop!(op, x, y, &mut out, float);
            Tensor::from_f32(out)
        }
        DType::F64 => {
            let (x, y) = (a.as_f64(), b.as_f64());
            let mut out = vec![0f64; x.len()];
            arith_loop!(op, x, y, &mut out, float);
            Tensor::from_f64(out)
        }
        other => panic!("arithmetic on non-numeric dtype {other:?}"),
    }
}

/// `a op scalar` with the scalar broadcast across all rows.
pub fn binary_scalar(op: BinOp, a: &Tensor, s: &Scalar) -> Tensor {
    binary(op, a, &Tensor::full(s, a.nrows()))
}

/// `scalar op a` (non-commutative forms need the scalar on the left).
pub fn scalar_binary(op: BinOp, s: &Scalar, a: &Tensor) -> Tensor {
    binary(op, &Tensor::full(s, a.nrows()), a)
}

/// Arithmetic negation.
pub fn neg(a: &Tensor) -> Tensor {
    match a.dtype() {
        DType::I32 => Tensor::from_i32(a.as_i32().iter().map(|&x| -x).collect()),
        DType::I64 => Tensor::from_i64(a.as_i64().iter().map(|&x| -x).collect()),
        DType::F32 => Tensor::from_f32(a.as_f32().iter().map(|&x| -x).collect()),
        DType::F64 => Tensor::from_f64(a.as_f64().iter().map(|&x| -x).collect()),
        other => panic!("neg on non-numeric dtype {other:?}"),
    }
}

/// Absolute value.
pub fn abs(a: &Tensor) -> Tensor {
    match a.dtype() {
        DType::I32 => Tensor::from_i32(a.as_i32().iter().map(|&x| x.abs()).collect()),
        DType::I64 => Tensor::from_i64(a.as_i64().iter().map(|&x| x.abs()).collect()),
        DType::F32 => Tensor::from_f32(a.as_f32().iter().map(|&x| x.abs()).collect()),
        DType::F64 => Tensor::from_f64(a.as_f64().iter().map(|&x| x.abs()).collect()),
        other => panic!("abs on non-numeric dtype {other:?}"),
    }
}

macro_rules! cmp_loop {
    ($op:expr, $x:expr, $y:expr, $out:expr) => {
        match $op {
            CmpOp::Eq => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a == b;
                }
            }),
            CmpOp::Ne => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a != b;
                }
            }),
            CmpOp::Lt => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a < b;
                }
            }),
            CmpOp::Le => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a <= b;
                }
            }),
            CmpOp::Gt => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a > b;
                }
            }),
            CmpOp::Ge => par_chunks_mut($out, |s, c| {
                let xs = &$x[s..s + c.len()];
                let ys = &$y[s..s + c.len()];
                for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
                    *o = a >= b;
                }
            }),
        }
    };
}

/// Element-wise comparison producing a `Bool` mask. Supports numeric tensors
/// (with promotion), bool tensors, and `(n×m)` string matrices (row-wise
/// trimmed byte-lexicographic comparison, ≡ UTF-8 code-point order).
pub fn compare(op: CmpOp, a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_rows(a, b, "compare");
    let n = a.nrows();
    if a.dtype() == DType::U8 || b.dtype() == DType::U8 {
        assert!(
            a.dtype() == DType::U8 && b.dtype() == DType::U8,
            "cannot compare string with {:?}",
            if a.dtype() == DType::U8 {
                b.dtype()
            } else {
                a.dtype()
            }
        );
        let mut out = vec![false; n];
        par_chunks_mut(&mut out, |s, c| {
            for (i, o) in c.iter_mut().enumerate() {
                let ord = a.str_row_trimmed(s + i).cmp(b.str_row_trimmed(s + i));
                *o = op.eval_ord(ord);
            }
        });
        return Tensor::from_bool(out);
    }
    if a.dtype() == DType::Bool && b.dtype() == DType::Bool {
        let (x, y) = (a.as_bool(), b.as_bool());
        let mut out = vec![false; n];
        cmp_loop!(op, x, y, &mut out);
        return Tensor::from_bool(out);
    }
    let dt = a.dtype().promote(b.dtype());
    let a = a.cast(dt).expect("promote cast");
    let b = b.cast(dt).expect("promote cast");
    let mut out = vec![false; n];
    match dt {
        DType::I32 => cmp_loop!(op, a.as_i32(), b.as_i32(), &mut out),
        DType::I64 => cmp_loop!(op, a.as_i64(), b.as_i64(), &mut out),
        DType::F32 => cmp_loop!(op, a.as_f32(), b.as_f32(), &mut out),
        DType::F64 => cmp_loop!(op, a.as_f64(), b.as_f64(), &mut out),
        other => panic!("compare on dtype {other:?}"),
    }
    Tensor::from_bool(out)
}

/// Compare against a broadcast scalar. String scalars compare against the
/// trimmed rows of a string matrix. Numeric scalars take a fused path that
/// never materializes the broadcast tensor (this is the hottest kernel in
/// TPC-H filters).
pub fn compare_scalar(op: CmpOp, a: &Tensor, s: &Scalar) -> Tensor {
    if let Scalar::Str(needle) = s {
        assert_eq!(
            a.dtype(),
            DType::U8,
            "string comparison against {:?}",
            a.dtype()
        );
        let nb = needle.as_bytes();
        let n = a.nrows();
        let mut out = vec![false; n];
        par_chunks_mut(&mut out, |st, c| {
            for (i, o) in c.iter_mut().enumerate() {
                *o = op.eval_ord(a.str_row_trimmed(st + i).cmp(nb));
            }
        });
        return Tensor::from_bool(out);
    }
    macro_rules! cmp_const {
        ($x:expr, $v:expr) => {{
            let x = $x;
            let v = $v;
            let mut out = vec![false; x.len()];
            match op {
                CmpOp::Eq => par_chunks_mut(&mut out, |s, c| {
                    let xs = &x[s..s + c.len()];
                    for (o, &a) in c.iter_mut().zip(xs) {
                        *o = a == v;
                    }
                }),
                CmpOp::Ne => par_chunks_mut(&mut out, |s, c| {
                    let xs = &x[s..s + c.len()];
                    for (o, &a) in c.iter_mut().zip(xs) {
                        *o = a != v;
                    }
                }),
                CmpOp::Lt => par_chunks_mut(&mut out, |s, c| {
                    let xs = &x[s..s + c.len()];
                    for (o, &a) in c.iter_mut().zip(xs) {
                        *o = a < v;
                    }
                }),
                CmpOp::Le => par_chunks_mut(&mut out, |s, c| {
                    let xs = &x[s..s + c.len()];
                    for (o, &a) in c.iter_mut().zip(xs) {
                        *o = a <= v;
                    }
                }),
                CmpOp::Gt => par_chunks_mut(&mut out, |s, c| {
                    let xs = &x[s..s + c.len()];
                    for (o, &a) in c.iter_mut().zip(xs) {
                        *o = a > v;
                    }
                }),
                CmpOp::Ge => par_chunks_mut(&mut out, |s, c| {
                    let xs = &x[s..s + c.len()];
                    for (o, &a) in c.iter_mut().zip(xs) {
                        *o = a >= v;
                    }
                }),
            }
            Tensor::from_bool(out)
        }};
    }
    match (a.dtype(), s) {
        (DType::I64, _) if s.dtype().map(|d| d.is_int()) == Some(true) => {
            cmp_const!(a.as_i64(), s.as_i64())
        }
        (DType::I32, Scalar::I32(v)) => cmp_const!(a.as_i32(), *v),
        (DType::F64, _) if s.dtype().map(|d| d.is_numeric()) == Some(true) => {
            cmp_const!(a.as_f64(), s.as_f64())
        }
        _ => compare(op, a, &Tensor::full(s, a.nrows())),
    }
}

/// Logical AND of two bool tensors.
pub fn and(a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_rows(a, b, "and");
    let (x, y) = (a.as_bool(), b.as_bool());
    let mut out = vec![false; x.len()];
    par_chunks_mut(&mut out, |s, c| {
        let xs = &x[s..s + c.len()];
        let ys = &y[s..s + c.len()];
        for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
            *o = a && b;
        }
    });
    Tensor::from_bool(out)
}

/// Logical OR of two bool tensors.
pub fn or(a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_rows(a, b, "or");
    let (x, y) = (a.as_bool(), b.as_bool());
    let mut out = vec![false; x.len()];
    par_chunks_mut(&mut out, |s, c| {
        let xs = &x[s..s + c.len()];
        let ys = &y[s..s + c.len()];
        for ((o, &a), &b) in c.iter_mut().zip(xs).zip(ys) {
            *o = a || b;
        }
    });
    Tensor::from_bool(out)
}

/// Logical NOT of a bool tensor.
pub fn not(a: &Tensor) -> Tensor {
    Tensor::from_bool(a.as_bool().iter().map(|&x| !x).collect())
}

/// Ternary select: `out[i] = if cond[i] { a[i] } else { b[i] }`.
///
/// This is the `torch.where` analogue the planning layer uses for `CASE WHEN`
/// (paper Figure 4 ➌). `a` and `b` must share a numeric dtype after
/// promotion, or both be string matrices (output width = max of both).
pub fn where_select(cond: &Tensor, a: &Tensor, b: &Tensor) -> Tensor {
    assert_same_rows(cond, a, "where_select");
    assert_same_rows(cond, b, "where_select");
    let mask = cond.as_bool();
    if a.dtype() == DType::U8 && b.dtype() == DType::U8 {
        let m = a.row_width().max(b.row_width());
        let n = a.nrows();
        let mut out = vec![0u8; n * m];
        for i in 0..n {
            let src = if mask[i] {
                a.str_row_trimmed(i)
            } else {
                b.str_row_trimmed(i)
            };
            out[i * m..i * m + src.len()].copy_from_slice(src);
        }
        return Tensor::from_u8_matrix(out, n, m);
    }
    if a.dtype() == DType::Bool && b.dtype() == DType::Bool {
        let (x, y) = (a.as_bool(), b.as_bool());
        let out = mask
            .iter()
            .zip(x.iter().zip(y))
            .map(|(&c, (&x, &y))| if c { x } else { y });
        return Tensor::from_bool(out.collect());
    }
    let dt = a.dtype().promote(b.dtype());
    let a = a.cast(dt).expect("promote cast");
    let b = b.cast(dt).expect("promote cast");
    macro_rules! sel {
        ($as:ident, $ctor:path) => {{
            let (x, y) = (a.$as(), b.$as());
            let mut out = vec![Default::default(); x.len()];
            par_chunks_mut(&mut out, |s, c| {
                let ms = &mask[s..s + c.len()];
                let xs = &x[s..s + c.len()];
                let ys = &y[s..s + c.len()];
                for (((o, &m), &a), &b) in c.iter_mut().zip(ms).zip(xs).zip(ys) {
                    *o = if m { a } else { b };
                }
            });
            $ctor(out)
        }};
    }
    match dt {
        DType::I32 => sel!(as_i32, Tensor::from_i32),
        DType::I64 => sel!(as_i64, Tensor::from_i64),
        DType::F32 => sel!(as_f32, Tensor::from_f32),
        DType::F64 => sel!(as_f64, Tensor::from_f64),
        other => panic!("where_select on dtype {other:?}"),
    }
}

/// Membership test against a literal list (`expr IN (v1, v2, ...)`),
/// implemented as an OR-fold of equality masks — the tensor formulation of
/// `IN` used by queries like TPC-H Q12/Q19/Q22.
pub fn in_list(a: &Tensor, values: &[Scalar]) -> Tensor {
    let mut acc = Tensor::from_bool(vec![false; a.nrows()]);
    for v in values {
        acc = or(&acc, &compare_scalar(CmpOp::Eq, a, v));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_int() {
        let a = Tensor::from_i64(vec![1, 2, 3]);
        let b = Tensor::from_i64(vec![10, 20, 30]);
        assert_eq!(binary(BinOp::Add, &a, &b).as_i64(), &[11, 22, 33]);
        assert_eq!(binary(BinOp::Sub, &b, &a).as_i64(), &[9, 18, 27]);
        assert_eq!(binary(BinOp::Mul, &a, &b).as_i64(), &[10, 40, 90]);
        assert_eq!(binary(BinOp::Div, &b, &a).as_i64(), &[10, 10, 10]);
        assert_eq!(binary(BinOp::Mod, &b, &a).as_i64(), &[0, 0, 0]);
    }

    #[test]
    fn int_div_by_zero_yields_zero() {
        let a = Tensor::from_i64(vec![5]);
        let z = Tensor::from_i64(vec![0]);
        assert_eq!(binary(BinOp::Div, &a, &z).as_i64(), &[0]);
        assert_eq!(binary(BinOp::Mod, &a, &z).as_i64(), &[0]);
    }

    #[test]
    fn arithmetic_promotes() {
        let a = Tensor::from_i32(vec![1, 2]);
        let b = Tensor::from_f64(vec![0.5, 0.25]);
        let r = binary(BinOp::Mul, &a, &b);
        assert_eq!(r.dtype(), DType::F64);
        assert_eq!(r.as_f64(), &[0.5, 0.5]);
    }

    #[test]
    fn scalar_forms() {
        let a = Tensor::from_f64(vec![1.0, 2.0]);
        assert_eq!(
            binary_scalar(BinOp::Add, &a, &Scalar::F64(1.0)).as_f64(),
            &[2.0, 3.0]
        );
        assert_eq!(
            scalar_binary(BinOp::Sub, &Scalar::F64(10.0), &a).as_f64(),
            &[9.0, 8.0]
        );
    }

    #[test]
    fn neg_abs() {
        let a = Tensor::from_i64(vec![-1, 2]);
        assert_eq!(neg(&a).as_i64(), &[1, -2]);
        assert_eq!(abs(&a).as_i64(), &[1, 2]);
        let f = Tensor::from_f64(vec![-1.5]);
        assert_eq!(abs(&f).as_f64(), &[1.5]);
    }

    #[test]
    fn comparisons() {
        let a = Tensor::from_i64(vec![1, 2, 3]);
        let b = Tensor::from_i64(vec![2, 2, 2]);
        assert_eq!(compare(CmpOp::Lt, &a, &b).as_bool(), &[true, false, false]);
        assert_eq!(compare(CmpOp::Eq, &a, &b).as_bool(), &[false, true, false]);
        assert_eq!(compare(CmpOp::Ge, &a, &b).as_bool(), &[false, true, true]);
        assert_eq!(
            compare_scalar(CmpOp::Ne, &a, &Scalar::I64(2)).as_bool(),
            &[true, false, true]
        );
    }

    #[test]
    fn string_comparisons() {
        let a = Tensor::from_strings(&["apple", "pear", "fig"], 0);
        let b = Tensor::from_strings(&["apple", "plum", "aa"], 0);
        assert_eq!(compare(CmpOp::Eq, &a, &b).as_bool(), &[true, false, false]);
        assert_eq!(compare(CmpOp::Lt, &a, &b).as_bool(), &[false, true, false]);
        assert_eq!(
            compare_scalar(CmpOp::Ge, &a, &Scalar::Str("fig".into())).as_bool(),
            &[false, true, true]
        );
    }

    #[test]
    fn string_prefix_ordering_with_padding() {
        // "ab" < "abc": padding must not break lexicographic order.
        let a = Tensor::from_strings(&["ab"], 3);
        let b = Tensor::from_strings(&["abc"], 3);
        assert_eq!(compare(CmpOp::Lt, &a, &b).as_bool(), &[true]);
    }

    #[test]
    fn boolean_logic() {
        let a = Tensor::from_bool(vec![true, true, false, false]);
        let b = Tensor::from_bool(vec![true, false, true, false]);
        assert_eq!(and(&a, &b).as_bool(), &[true, false, false, false]);
        assert_eq!(or(&a, &b).as_bool(), &[true, true, true, false]);
        assert_eq!(not(&a).as_bool(), &[false, false, true, true]);
    }

    #[test]
    fn where_select_numeric() {
        let c = Tensor::from_bool(vec![true, false, true]);
        let a = Tensor::from_i64(vec![1, 1, 1]);
        let b = Tensor::from_i64(vec![0, 0, 0]);
        assert_eq!(where_select(&c, &a, &b).as_i64(), &[1, 0, 1]);
    }

    #[test]
    fn where_select_strings() {
        let c = Tensor::from_bool(vec![true, false]);
        let a = Tensor::from_strings(&["yes", "yes"], 0);
        let b = Tensor::from_strings(&["no", "no"], 0);
        let r = where_select(&c, &a, &b);
        assert_eq!(r.str_at(0), "yes");
        assert_eq!(r.str_at(1), "no");
    }

    #[test]
    fn in_list_membership() {
        let a = Tensor::from_i64(vec![1, 5, 7, 9]);
        let r = in_list(&a, &[Scalar::I64(5), Scalar::I64(9)]);
        assert_eq!(r.as_bool(), &[false, true, false, true]);
        let s = Tensor::from_strings(&["MAIL", "AIR", "SHIP"], 0);
        let r = in_list(
            &s,
            &[Scalar::Str("MAIL".into()), Scalar::Str("SHIP".into())],
        );
        assert_eq!(r.as_bool(), &[true, false, true]);
    }

    #[test]
    fn large_inputs_parallel_path() {
        let n = crate::pool::PAR_THRESHOLD * 2 + 3;
        let a = Tensor::from_i64((0..n as i64).collect());
        let b = Tensor::from_i64(vec![1; n]);
        let r = binary(BinOp::Add, &a, &b);
        assert_eq!(r.as_i64()[0], 1);
        assert_eq!(r.as_i64()[n - 1], n as i64);
        let m = compare_scalar(CmpOp::Lt, &a, &Scalar::I64(10));
        assert_eq!(m.as_bool().iter().filter(|&&x| x).count(), 10);
    }
}

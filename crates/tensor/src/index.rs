//! Index-space kernels: mask compaction, gather, `searchsorted`, `arange`,
//! `repeat_interleave`, `cumsum`, scatter-add, slicing, concatenation.
//!
//! These are the workhorses of TQP's filter and join algorithms: a filter is
//! `mask → indices → take`; the tensor sort-merge join expands match runs
//! with `repeat_interleave` + `arange` arithmetic and probes with
//! `searchsorted` (paper §2.2, "novel algorithms" of the companion paper).

use crate::dtype::DType;
use crate::pool::{par_chunks_mut, par_reduce, PAR_THRESHOLD};
use crate::tensor::Tensor;

/// Positions of `true` bits as an `I64` index tensor (`torch.nonzero`).
pub fn mask_to_indices(mask: &Tensor) -> Tensor {
    let m = mask.as_bool();
    // Two-pass parallel compaction: count per chunk, then write at offsets.
    if m.len() >= PAR_THRESHOLD * 4 {
        let threads = crate::pool::num_threads();
        let chunk = m.len().div_ceil(threads);
        let counts: Vec<usize> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(m.len());
                if lo >= hi {
                    0
                } else {
                    crate::simd::count_true(&m[lo..hi])
                }
            })
            .collect();
        let total: usize = counts.iter().sum();
        let mut offsets = vec![0usize; threads];
        let mut acc = 0;
        for (o, c) in offsets.iter_mut().zip(&counts) {
            *o = acc;
            acc += c;
        }
        let mut out = vec![0i64; total];
        // Carve the output into per-thread windows and fill them in parallel.
        let mut windows: Vec<&mut [i64]> = Vec::with_capacity(threads);
        let mut rest: &mut [i64] = &mut out;
        for &take in counts.iter().take(threads) {
            let (w, r) = rest.split_at_mut(take);
            windows.push(w);
            rest = r;
        }
        crossbeam::scope(|s| {
            for (t, w) in windows.into_iter().enumerate() {
                let m = &m;
                s.spawn(move |_| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(m.len());
                    let mut k = 0;
                    for (i, &b) in m[lo.min(m.len())..hi].iter().enumerate() {
                        if b {
                            w[k] = (lo + i) as i64;
                            k += 1;
                        }
                    }
                });
            }
        })
        .expect("worker thread panicked");
        return Tensor::from_i64(out);
    }
    let mut out = Vec::with_capacity(m.len() / 2);
    crate::simd::compact_indices_into(m, 0, &mut out);
    Tensor::from_i64(out)
}

/// Number of `true` bits in a bool tensor.
pub fn count_true(mask: &Tensor) -> usize {
    let m = mask.as_bool();
    par_reduce(m.len(), |r| crate::simd::count_true(&m[r]), |a, b| a + b, 0)
}

/// Row gather (`index_select` on dim 0). Works for rank-1 tensors of any
/// dtype and rank-2 matrices (rows move as units). Panics on out-of-bounds
/// indices — the planner always derives indices from masks or sorts.
#[allow(clippy::needless_range_loop)] // row windows index two slices in lockstep
pub fn take(t: &Tensor, idx: &Tensor) -> Tensor {
    let ix = idx.as_i64();
    let n = t.nrows();
    for &i in ix.iter().take(8) {
        // Fast sanity check on the first few; the kernels below still bound-check.
        assert!((i as usize) < n, "take: index {i} out of bounds ({n})");
    }
    macro_rules! gather1 {
        ($as:ident, $ctor:path, $t:ty) => {{
            let src = t.$as();
            let mut out: Vec<$t> = vec![Default::default(); ix.len()];
            par_chunks_mut(&mut out, |s, c| {
                for (k, o) in c.iter_mut().enumerate() {
                    *o = src[ix[s + k] as usize];
                }
            });
            $ctor(out)
        }};
    }
    if t.shape().len() == 2 {
        let m = t.row_width();
        match t.dtype() {
            DType::U8 => {
                let src = t.as_u8();
                let mut out = vec![0u8; ix.len() * m];
                par_chunks_mut(&mut out, |s, c| {
                    if c.is_empty() {
                        return;
                    }
                    // s is an element offset; chunks may straddle rows, so
                    // recompute row-by-row within the chunk window.
                    let lo = s;
                    let hi = s + c.len();
                    let first_row = lo / m;
                    let last_row = (hi - 1) / m;
                    for row in first_row..=last_row {
                        let src_off = ix[row] as usize * m;
                        let dst_lo = (row * m).max(lo);
                        let dst_hi = ((row + 1) * m).min(hi);
                        let s_lo = src_off + (dst_lo - row * m);
                        c[dst_lo - lo..dst_hi - lo]
                            .copy_from_slice(&src[s_lo..s_lo + (dst_hi - dst_lo)]);
                    }
                });
                Tensor::from_u8_matrix(out, ix.len(), m)
            }
            DType::F64 => {
                let src = t.as_f64();
                let mut out = vec![0f64; ix.len() * m];
                for (row, &i) in ix.iter().enumerate() {
                    let so = i as usize * m;
                    out[row * m..(row + 1) * m].copy_from_slice(&src[so..so + m]);
                }
                Tensor::from_f64_matrix(out, ix.len(), m)
            }
            DType::F32 => {
                let src = t.as_f32();
                let mut out = vec![0f32; ix.len() * m];
                for (row, &i) in ix.iter().enumerate() {
                    let so = i as usize * m;
                    out[row * m..(row + 1) * m].copy_from_slice(&src[so..so + m]);
                }
                Tensor::from_f32_matrix(out, ix.len(), m)
            }
            DType::I64 => {
                let src = t.as_i64();
                let mut out = vec![0i64; ix.len() * m];
                for (row, &i) in ix.iter().enumerate() {
                    let so = i as usize * m;
                    out[row * m..(row + 1) * m].copy_from_slice(&src[so..so + m]);
                }
                Tensor::from_i64_matrix(out, ix.len(), m)
            }
            other => panic!("take on rank-2 {other:?} unsupported"),
        }
    } else {
        match t.dtype() {
            DType::Bool => gather1!(as_bool, Tensor::from_bool, bool),
            DType::I32 => gather1!(as_i32, Tensor::from_i32, i32),
            // The 8-byte dtypes ride the hardware-gather kernel (same
            // bounds-check-then-panic contract as direct indexing).
            DType::I64 => {
                let src = t.as_i64();
                let mut out = vec![0i64; ix.len()];
                par_chunks_mut(&mut out, |s, c| {
                    let len = c.len();
                    crate::simd::gather_i64(src, &ix[s..s + len], c);
                });
                Tensor::from_i64(out)
            }
            DType::F32 => gather1!(as_f32, Tensor::from_f32, f32),
            DType::F64 => {
                let src = t.as_f64();
                let mut out = vec![0f64; ix.len()];
                par_chunks_mut(&mut out, |s, c| {
                    let len = c.len();
                    crate::simd::gather_f64(src, &ix[s..s + len], c);
                });
                Tensor::from_f64(out)
            }
            DType::U8 => gather1!(as_u8, Tensor::from_u8, u8),
        }
    }
}

/// Filter = compact rows where `mask` is true (`t[mask]` in PyTorch).
pub fn filter(t: &Tensor, mask: &Tensor) -> Tensor {
    take(t, &mask_to_indices(mask))
}

/// `[start, start+1, ..., end)` as an `I64` tensor.
pub fn arange(start: i64, end: i64) -> Tensor {
    Tensor::from_i64((start..end).collect())
}

/// Repeat each index `i` `counts[i]` times (`torch.repeat_interleave`):
/// `repeat_interleave([2,0,3]) = [0,0,2,2,2]`.
pub fn repeat_interleave(counts: &Tensor) -> Tensor {
    let cs = counts.as_i64();
    let total: i64 = cs.iter().sum();
    let mut out = Vec::with_capacity(total.max(0) as usize);
    for (i, &c) in cs.iter().enumerate() {
        for _ in 0..c {
            out.push(i as i64);
        }
    }
    Tensor::from_i64(out)
}

/// Exclusive prefix sum of an `I64` tensor: `exclusive_cumsum([2,3,1]) = [0,2,5]`.
pub fn exclusive_cumsum(t: &Tensor) -> Tensor {
    let x = t.as_i64();
    let mut out = Vec::with_capacity(x.len());
    let mut acc = 0i64;
    for &v in x {
        out.push(acc);
        acc += v;
    }
    Tensor::from_i64(out)
}

/// Inclusive prefix sum of an `I64` tensor.
pub fn cumsum(t: &Tensor) -> Tensor {
    let x = t.as_i64();
    let mut out = Vec::with_capacity(x.len());
    let mut acc = 0i64;
    for &v in x {
        acc += v;
        out.push(acc);
    }
    Tensor::from_i64(out)
}

/// Binary-search side for [`searchsorted`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// First position where `value` could be inserted keeping order.
    Left,
    /// Last position where `value` could be inserted keeping order.
    Right,
}

/// For each value in `needles`, the insertion point within ascending-sorted
/// `haystack` (`torch.searchsorted`). Supports `I64` and `F64` rank-1
/// tensors. This is the probe primitive of the tensor sort-merge join.
pub fn searchsorted(haystack: &Tensor, needles: &Tensor, side: Side) -> Tensor {
    assert_eq!(
        haystack.dtype(),
        needles.dtype(),
        "searchsorted dtype mismatch"
    );
    macro_rules! ss {
        ($as:ident) => {{
            let hs = haystack.$as();
            let ns = needles.$as();
            let mut out = vec![0i64; ns.len()];
            par_chunks_mut(&mut out, |s, c| {
                for (k, o) in c.iter_mut().enumerate() {
                    let v = &ns[s + k];
                    let pos = match side {
                        Side::Left => hs.partition_point(|x| x < v),
                        Side::Right => hs.partition_point(|x| x <= v),
                    };
                    *o = pos as i64;
                }
            });
            Tensor::from_i64(out)
        }};
    }
    match haystack.dtype() {
        DType::I64 => ss!(as_i64),
        DType::I32 => ss!(as_i32),
        DType::F64 => {
            let hs = haystack.as_f64();
            let ns = needles.as_f64();
            let mut out = vec![0i64; ns.len()];
            par_chunks_mut(&mut out, |s, c| {
                for (k, o) in c.iter_mut().enumerate() {
                    let v = ns[s + k];
                    let pos = match side {
                        Side::Left => hs.partition_point(|&x| x < v),
                        Side::Right => hs.partition_point(|&x| x <= v),
                    };
                    *o = pos as i64;
                }
            });
            Tensor::from_i64(out)
        }
        other => panic!("searchsorted on dtype {other:?}"),
    }
}

/// `out[idx[i]] += src[i]` over `F64` accumulators (`torch.scatter_add`).
/// The hash-aggregation strategy reduces into group slots with this kernel.
pub fn scatter_add_f64(len: usize, idx: &Tensor, src: &Tensor) -> Tensor {
    let ix = idx.as_i64();
    let xs = src.as_f64();
    assert_eq!(ix.len(), xs.len(), "scatter_add operand mismatch");
    let mut out = vec![0f64; len];
    for (&i, &v) in ix.iter().zip(xs) {
        out[i as usize] += v;
    }
    Tensor::from_f64(out)
}

/// `out[idx[i]] += src[i]` over `I64` accumulators.
pub fn scatter_add_i64(len: usize, idx: &Tensor, src: &Tensor) -> Tensor {
    let ix = idx.as_i64();
    let xs = src.as_i64();
    assert_eq!(ix.len(), xs.len(), "scatter_add operand mismatch");
    let mut out = vec![0i64; len];
    for (&i, &v) in ix.iter().zip(xs) {
        out[i as usize] += v;
    }
    Tensor::from_i64(out)
}

/// First `k` rows (the `LIMIT` kernel). Copies; tensors stay contiguous.
pub fn head(t: &Tensor, k: usize) -> Tensor {
    let k = k.min(t.nrows());
    take(t, &arange(0, k as i64))
}

/// Rows `[lo, hi)` as a direct contiguous copy — no index tensor, no
/// gather. This is the morsel-split primitive of the parallel executor,
/// so it must be a straight memcpy of the subrange.
pub fn slice_rows(t: &Tensor, lo: usize, hi: usize) -> Tensor {
    let hi = hi.min(t.nrows());
    let lo = lo.min(hi);
    if t.shape().len() == 2 {
        let m = t.row_width();
        return match t.dtype() {
            DType::U8 => Tensor::from_u8_matrix(t.as_u8()[lo * m..hi * m].to_vec(), hi - lo, m),
            DType::F64 => Tensor::from_f64_matrix(t.as_f64()[lo * m..hi * m].to_vec(), hi - lo, m),
            DType::F32 => Tensor::from_f32_matrix(t.as_f32()[lo * m..hi * m].to_vec(), hi - lo, m),
            DType::I64 => Tensor::from_i64_matrix(t.as_i64()[lo * m..hi * m].to_vec(), hi - lo, m),
            _ => take(t, &arange(lo as i64, hi as i64)),
        };
    }
    match t.dtype() {
        DType::Bool => Tensor::from_bool(t.as_bool()[lo..hi].to_vec()),
        DType::I32 => Tensor::from_i32(t.as_i32()[lo..hi].to_vec()),
        DType::I64 => Tensor::from_i64(t.as_i64()[lo..hi].to_vec()),
        DType::F32 => Tensor::from_f32(t.as_f32()[lo..hi].to_vec()),
        DType::F64 => Tensor::from_f64(t.as_f64()[lo..hi].to_vec()),
        DType::U8 => Tensor::from_u8(t.as_u8()[lo..hi].to_vec()),
    }
}

/// Vertical concatenation of rank-1 tensors or equal-width matrices of the
/// same dtype. String matrices of different widths are re-padded to the max.
pub fn concat(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat of zero tensors");
    if parts.len() == 1 {
        // O(1) handle clone. Byte-identical to the copying path even for
        // string matrices: a single part *is* the max width, and its
        // padding is already zeros.
        return parts[0].clone();
    }
    let dt = parts[0].dtype();
    assert!(
        parts.iter().all(|p| p.dtype() == dt),
        "concat dtype mismatch"
    );
    if parts[0].shape().len() == 2 {
        let m = parts.iter().map(|p| p.row_width()).max().unwrap();
        let n: usize = parts.iter().map(|p| p.nrows()).sum();
        match dt {
            DType::U8 => {
                let mut out = vec![0u8; n * m];
                let mut row = 0;
                for p in parts {
                    for i in 0..p.nrows() {
                        let src = p.str_row_trimmed(i);
                        out[row * m..row * m + src.len()].copy_from_slice(src);
                        row += 1;
                    }
                }
                Tensor::from_u8_matrix(out, n, m)
            }
            DType::F64 => {
                assert!(
                    parts.iter().all(|p| p.row_width() == m),
                    "f64 concat width mismatch"
                );
                let mut out = Vec::with_capacity(n * m);
                for p in parts {
                    out.extend_from_slice(p.as_f64());
                }
                Tensor::from_f64_matrix(out, n, m)
            }
            other => panic!("concat rank-2 {other:?} unsupported"),
        }
    } else {
        macro_rules! cat {
            ($as:ident, $ctor:path) => {{
                let mut out = Vec::with_capacity(parts.iter().map(|p| p.nrows()).sum());
                for p in parts {
                    out.extend_from_slice(p.$as());
                }
                $ctor(out)
            }};
        }
        match dt {
            DType::Bool => cat!(as_bool, Tensor::from_bool),
            DType::I32 => cat!(as_i32, Tensor::from_i32),
            DType::I64 => cat!(as_i64, Tensor::from_i64),
            DType::F32 => cat!(as_f32, Tensor::from_f32),
            DType::F64 => cat!(as_f64, Tensor::from_f64),
            DType::U8 => cat!(as_u8, Tensor::from_u8),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_to_indices_basic() {
        let m = Tensor::from_bool(vec![true, false, true, true, false]);
        assert_eq!(mask_to_indices(&m).as_i64(), &[0, 2, 3]);
        assert_eq!(count_true(&m), 3);
    }

    #[test]
    fn mask_to_indices_parallel_path() {
        let n = PAR_THRESHOLD * 8;
        let mask: Vec<bool> = (0..n).map(|i| i % 7 == 0).collect();
        let expect: Vec<i64> = (0..n as i64).filter(|i| i % 7 == 0).collect();
        let got = mask_to_indices(&Tensor::from_bool(mask));
        assert_eq!(got.as_i64(), expect.as_slice());
    }

    #[test]
    fn take_rank1() {
        let t = Tensor::from_f64(vec![10.0, 20.0, 30.0]);
        let r = take(&t, &Tensor::from_i64(vec![2, 0, 2]));
        assert_eq!(r.as_f64(), &[30.0, 10.0, 30.0]);
    }

    #[test]
    fn take_string_rows() {
        let t = Tensor::from_strings(&["aa", "bb", "cc"], 0);
        let r = take(&t, &Tensor::from_i64(vec![2, 1]));
        assert_eq!(r.str_at(0), "cc");
        assert_eq!(r.str_at(1), "bb");
    }

    #[test]
    fn take_empty_indices() {
        let t = Tensor::from_i64(vec![1, 2, 3]);
        let r = take(&t, &Tensor::from_i64(vec![]));
        assert!(r.is_empty());
    }

    #[test]
    fn filter_composes() {
        let t = Tensor::from_i64(vec![5, 6, 7, 8]);
        let m = Tensor::from_bool(vec![false, true, false, true]);
        assert_eq!(filter(&t, &m).as_i64(), &[6, 8]);
    }

    #[test]
    fn arange_repeat_cumsum() {
        assert_eq!(arange(2, 5).as_i64(), &[2, 3, 4]);
        assert_eq!(
            repeat_interleave(&Tensor::from_i64(vec![2, 0, 3])).as_i64(),
            &[0, 0, 2, 2, 2]
        );
        assert_eq!(
            exclusive_cumsum(&Tensor::from_i64(vec![2, 3, 1])).as_i64(),
            &[0, 2, 5]
        );
        assert_eq!(
            cumsum(&Tensor::from_i64(vec![2, 3, 1])).as_i64(),
            &[2, 5, 6]
        );
    }

    #[test]
    fn searchsorted_sides() {
        let h = Tensor::from_i64(vec![1, 2, 2, 4]);
        let n = Tensor::from_i64(vec![0, 2, 3, 5]);
        assert_eq!(searchsorted(&h, &n, Side::Left).as_i64(), &[0, 1, 3, 4]);
        assert_eq!(searchsorted(&h, &n, Side::Right).as_i64(), &[0, 3, 3, 4]);
    }

    #[test]
    fn scatter_adds() {
        let idx = Tensor::from_i64(vec![0, 1, 0, 2]);
        let src = Tensor::from_f64(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(scatter_add_f64(3, &idx, &src).as_f64(), &[4.0, 2.0, 4.0]);
        let srci = Tensor::from_i64(vec![1, 1, 1, 1]);
        assert_eq!(scatter_add_i64(3, &idx, &srci).as_i64(), &[2, 1, 1]);
    }

    #[test]
    fn head_slice_concat() {
        let t = Tensor::from_i64(vec![1, 2, 3, 4]);
        assert_eq!(head(&t, 2).as_i64(), &[1, 2]);
        assert_eq!(head(&t, 99).as_i64(), &[1, 2, 3, 4]);
        assert_eq!(slice_rows(&t, 1, 3).as_i64(), &[2, 3]);
        let c = concat(&[&head(&t, 2), &slice_rows(&t, 2, 4)]);
        assert_eq!(c.as_i64(), &[1, 2, 3, 4]);
    }

    #[test]
    fn concat_string_widths() {
        let a = Tensor::from_strings(&["ab"], 0);
        let b = Tensor::from_strings(&["wxyz"], 0);
        let c = concat(&[&a, &b]);
        assert_eq!(c.row_width(), 4);
        assert_eq!(c.str_at(0), "ab");
        assert_eq!(c.str_at(1), "wxyz");
    }

    #[test]
    fn take_large_string_matrix_parallel() {
        let rows: Vec<String> = (0..40_000).map(|i| format!("row{i:06}")).collect();
        let refs: Vec<&str> = rows.iter().map(|s| s.as_str()).collect();
        let t = Tensor::from_strings(&refs, 0);
        let idx: Vec<i64> = (0..40_000).rev().collect();
        let r = take(&t, &Tensor::from_i64(idx));
        assert_eq!(r.str_at(0), "row039999");
        assert_eq!(r.str_at(39_999), "row000000");
    }
}

//! Full and segmented reductions — the aggregation kernels behind SQL
//! `SUM`/`AVG`/`MIN`/`MAX`/`COUNT`.
//!
//! Sort-based aggregation reduces contiguous runs with [`segmented_reduce`];
//! hash-based aggregation scatters into group slots (see
//! [`crate::index::scatter_add_f64`]). Full-column reductions implement
//! ungrouped aggregates such as TPC-H Q6's single `SUM`.

use crate::dtype::DType;
use crate::pool::par_reduce;
use crate::tensor::Tensor;

/// Aggregation function selector shared by all engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    Sum,
    Min,
    Max,
    Count,
    Avg,
}

/// Sum of a numeric tensor as `f64` (parallel tree reduction).
///
/// Float ranges reduce with the canonical lane-split kernel
/// ([`crate::simd::sum_f64`]): the accumulation order is fixed by the
/// kernel definition, not by the dispatch tier, so results are bitwise
/// identical with SIMD on or off. The thread-range geometry of
/// [`par_reduce`] is unchanged, so worker count keeps its (pre-existing)
/// determinism contract too.
pub fn sum_f64(t: &Tensor) -> f64 {
    match t.dtype() {
        DType::F64 => {
            let x = t.as_f64();
            par_reduce(x.len(), |r| crate::simd::sum_f64(&x[r]), |a, b| a + b, 0.0)
        }
        DType::F32 => {
            let x = t.as_f32();
            par_reduce(x.len(), |r| crate::simd::sum_f32(&x[r]), |a, b| a + b, 0.0)
        }
        DType::I64 => sum_i64(t) as f64,
        DType::I32 => sum_i64(t) as f64,
        DType::Bool => sum_i64(t) as f64,
        other => panic!("sum on dtype {other:?}"),
    }
}

/// Sum of an integer/bool tensor as `i64`.
pub fn sum_i64(t: &Tensor) -> i64 {
    match t.dtype() {
        DType::I64 => {
            let x = t.as_i64();
            par_reduce(x.len(), |r| crate::simd::sum_i64(&x[r]), |a, b| a + b, 0)
        }
        DType::I32 => {
            let x = t.as_i32();
            par_reduce(
                x.len(),
                |r| x[r].iter().map(|&v| v as i64).sum::<i64>(),
                |a, b| a + b,
                0,
            )
        }
        DType::Bool => {
            let x = t.as_bool();
            par_reduce(
                x.len(),
                |r| crate::simd::count_true(&x[r]) as i64,
                |a, b| a + b,
                0,
            )
        }
        other => panic!("integer sum on dtype {other:?}"),
    }
}

/// Minimum as `f64`, or `None` on empty input.
///
/// Folds with the canonical comparator [`crate::simd::cmin`] (identity
/// `+inf`): deterministic on NaN (ignored) and signed-zero ties, and
/// identical on every dispatch tier — see the `simd` module docs.
pub fn min_f64(t: &Tensor) -> Option<f64> {
    if t.is_empty() {
        return None;
    }
    if t.dtype() == DType::F64 {
        let x = t.as_f64();
        return Some(par_reduce(
            x.len(),
            |r| crate::simd::min_f64(&x[r]),
            crate::simd::cmin,
            f64::INFINITY,
        ));
    }
    let v = t.to_f64_vec();
    Some(crate::simd::min_f64(&v))
}

/// Maximum as `f64`, or `None` on empty input (mirror of [`min_f64`]).
pub fn max_f64(t: &Tensor) -> Option<f64> {
    if t.is_empty() {
        return None;
    }
    if t.dtype() == DType::F64 {
        let x = t.as_f64();
        return Some(par_reduce(
            x.len(),
            |r| crate::simd::max_f64(&x[r]),
            crate::simd::cmax,
            f64::NEG_INFINITY,
        ));
    }
    let v = t.to_f64_vec();
    Some(crate::simd::max_f64(&v))
}

/// Mean, or `None` on empty input.
pub fn mean(t: &Tensor) -> Option<f64> {
    if t.is_empty() {
        None
    } else {
        Some(sum_f64(t) / t.nrows() as f64)
    }
}

/// Segmented reduction: reduce `values` within each contiguous group of
/// `ids` (dense, sorted ascending, in `0..num_groups`). Returns one `F64`
/// output row per group; empty groups cannot occur by construction (ids come
/// from [`crate::unique::group_ids`]).
pub fn segmented_reduce(values: &Tensor, ids: &Tensor, num_groups: usize, f: AggFn) -> Tensor {
    let gid = ids.as_i64();
    assert_eq!(
        values.nrows(),
        gid.len(),
        "segmented_reduce operand mismatch"
    );
    match f {
        AggFn::Count => {
            let mut out = vec![0f64; num_groups];
            for &g in gid {
                out[g as usize] += 1.0;
            }
            Tensor::from_f64(out)
        }
        AggFn::Sum | AggFn::Avg => {
            let xs = values.to_f64_vec();
            let mut sums = vec![0f64; num_groups];
            let mut counts = vec![0i64; num_groups];
            for (&g, &v) in gid.iter().zip(&xs) {
                sums[g as usize] += v;
                counts[g as usize] += 1;
            }
            if f == AggFn::Avg {
                for (s, &c) in sums.iter_mut().zip(&counts) {
                    if c > 0 {
                        *s /= c as f64;
                    }
                }
            }
            Tensor::from_f64(sums)
        }
        AggFn::Min => {
            let xs = values.to_f64_vec();
            let mut out = vec![f64::INFINITY; num_groups];
            for (&g, &v) in gid.iter().zip(&xs) {
                let slot = &mut out[g as usize];
                if v < *slot {
                    *slot = v;
                }
            }
            Tensor::from_f64(out)
        }
        AggFn::Max => {
            let xs = values.to_f64_vec();
            let mut out = vec![f64::NEG_INFINITY; num_groups];
            for (&g, &v) in gid.iter().zip(&xs) {
                let slot = &mut out[g as usize];
                if v > *slot {
                    *slot = v;
                }
            }
            Tensor::from_f64(out)
        }
    }
}

/// Segmented reduction preserving integer type (SUM/COUNT/MIN/MAX over
/// integer columns stay exact `I64`).
pub fn segmented_reduce_i64(values: &Tensor, ids: &Tensor, num_groups: usize, f: AggFn) -> Tensor {
    let gid = ids.as_i64();
    assert_eq!(
        values.nrows(),
        gid.len(),
        "segmented_reduce operand mismatch"
    );
    let xs = values.to_i64_vec();
    match f {
        AggFn::Count => {
            let mut out = vec![0i64; num_groups];
            for &g in gid {
                out[g as usize] += 1;
            }
            Tensor::from_i64(out)
        }
        AggFn::Sum => {
            let mut out = vec![0i64; num_groups];
            for (&g, &v) in gid.iter().zip(&xs) {
                out[g as usize] += v;
            }
            Tensor::from_i64(out)
        }
        AggFn::Min => {
            let mut out = vec![i64::MAX; num_groups];
            for (&g, &v) in gid.iter().zip(&xs) {
                let slot = &mut out[g as usize];
                if v < *slot {
                    *slot = v;
                }
            }
            Tensor::from_i64(out)
        }
        AggFn::Max => {
            let mut out = vec![i64::MIN; num_groups];
            for (&g, &v) in gid.iter().zip(&xs) {
                let slot = &mut out[g as usize];
                if v > *slot {
                    *slot = v;
                }
            }
            Tensor::from_i64(out)
        }
        AggFn::Avg => panic!("integer AVG must go through segmented_reduce (f64)"),
    }
}

/// Best (min or max) row index per group of a segmented string reduction;
/// `None` for groups with no member rows.
fn segmented_minmax_str_best(
    values: &Tensor,
    ids: &Tensor,
    num_groups: usize,
    min: bool,
) -> Vec<Option<usize>> {
    let gid = ids.as_i64();
    let mut best: Vec<Option<usize>> = vec![None; num_groups];
    for (row, &g) in gid.iter().enumerate() {
        let slot = &mut best[g as usize];
        match slot {
            None => *slot = Some(row),
            Some(cur) => {
                let ord = values.str_row(row).cmp(values.str_row(*cur));
                if (min && ord.is_lt()) || (!min && ord.is_gt()) {
                    *slot = Some(row);
                }
            }
        }
    }
    best
}

/// Segmented MIN over string rows: returns the lexicographically-smallest
/// row per group as a new `(g × m)` matrix (used by MIN/MAX over text
/// columns, e.g. TPC-H Q2's `min(ps_supplycost)` sibling projections).
/// Panics on a group with no member rows.
pub fn segmented_min_str(values: &Tensor, ids: &Tensor, num_groups: usize, min: bool) -> Tensor {
    let idx: Vec<i64> = segmented_minmax_str_best(values, ids, num_groups, min)
        .into_iter()
        .map(|b| b.expect("empty group") as i64)
        .collect();
    crate::index::take(values, &Tensor::from_i64(idx))
}

/// [`segmented_min_str`], except a group with no member rows materializes
/// an all-zero filler row instead of panicking. Used by partitioned
/// aggregation, where a morsel-local group can be entirely NULL — the
/// caller must exclude filler rows (by the zero valid count) before the
/// cross-morsel reduction.
pub fn segmented_min_str_or_filler(
    values: &Tensor,
    ids: &Tensor,
    num_groups: usize,
    min: bool,
) -> Tensor {
    let best = segmented_minmax_str_best(values, ids, num_groups, min);
    let width = values.row_width().max(1);
    let mut out = vec![0u8; num_groups * width];
    for (gi, b) in best.iter().enumerate() {
        if let Some(row) = b {
            let src = values.str_row(*row);
            out[gi * width..gi * width + src.len()].copy_from_slice(src);
        }
    }
    Tensor::from_u8_matrix(out, num_groups, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_reductions() {
        let t = Tensor::from_f64(vec![1.0, 2.0, 3.0]);
        assert_eq!(sum_f64(&t), 6.0);
        assert_eq!(min_f64(&t), Some(1.0));
        assert_eq!(max_f64(&t), Some(3.0));
        assert_eq!(mean(&t), Some(2.0));
        let i = Tensor::from_i64(vec![5, -2]);
        assert_eq!(sum_i64(&i), 3);
        let b = Tensor::from_bool(vec![true, false, true]);
        assert_eq!(sum_i64(&b), 2);
    }

    #[test]
    fn empty_reductions() {
        let t = Tensor::from_f64(vec![]);
        assert_eq!(sum_f64(&t), 0.0);
        assert_eq!(min_f64(&t), None);
        assert_eq!(max_f64(&t), None);
        assert_eq!(mean(&t), None);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let n = crate::pool::PAR_THRESHOLD * 3;
        let t = Tensor::from_i64(vec![1; n]);
        assert_eq!(sum_i64(&t), n as i64);
    }

    #[test]
    fn segmented_all_functions() {
        let vals = Tensor::from_f64(vec![1.0, 2.0, 10.0, 4.0, 6.0]);
        let ids = Tensor::from_i64(vec![0, 0, 1, 2, 2]);
        assert_eq!(
            segmented_reduce(&vals, &ids, 3, AggFn::Sum).as_f64(),
            &[3.0, 10.0, 10.0]
        );
        assert_eq!(
            segmented_reduce(&vals, &ids, 3, AggFn::Avg).as_f64(),
            &[1.5, 10.0, 5.0]
        );
        assert_eq!(
            segmented_reduce(&vals, &ids, 3, AggFn::Min).as_f64(),
            &[1.0, 10.0, 4.0]
        );
        assert_eq!(
            segmented_reduce(&vals, &ids, 3, AggFn::Max).as_f64(),
            &[2.0, 10.0, 6.0]
        );
        assert_eq!(
            segmented_reduce(&vals, &ids, 3, AggFn::Count).as_f64(),
            &[2.0, 1.0, 2.0]
        );
    }

    #[test]
    fn segmented_integer_exact() {
        let vals = Tensor::from_i64(vec![i64::MAX - 1, 1, 7]);
        let ids = Tensor::from_i64(vec![0, 0, 1]);
        let s = segmented_reduce_i64(&vals, &ids, 2, AggFn::Sum);
        assert_eq!(s.as_i64(), &[i64::MAX, 7]);
        assert_eq!(
            segmented_reduce_i64(&vals, &ids, 2, AggFn::Min).as_i64(),
            &[1, 7]
        );
        assert_eq!(
            segmented_reduce_i64(&vals, &ids, 2, AggFn::Count).as_i64(),
            &[2, 1]
        );
    }

    #[test]
    fn segmented_string_minmax() {
        let vals = Tensor::from_strings(&["pear", "apple", "zed", "kiwi"], 0);
        let ids = Tensor::from_i64(vec![0, 0, 1, 1]);
        let mn = segmented_min_str(&vals, &ids, 2, true);
        assert_eq!(mn.str_at(0), "apple");
        assert_eq!(mn.str_at(1), "kiwi");
        let mx = segmented_min_str(&vals, &ids, 2, false);
        assert_eq!(mx.str_at(0), "pear");
        assert_eq!(mx.str_at(1), "zed");
    }
}

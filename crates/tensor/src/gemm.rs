//! Dense matrix multiplication.
//!
//! GEMM is the backbone of the Hummingbird-style tree-model compilation the
//! paper inherits (§3.3, "TQP integrates and expands Hummingbird"): decision
//! trees become a cascade of matrix products, linear models a single one.
//! The kernel is a cache-friendly i-k-j loop, parallelised over output rows.

use crate::tensor::Tensor;

/// `C = A @ B` for rank-2 `F64` tensors: `(n×k) @ (k×m) -> (n×m)`.
pub fn matmul_f64(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be rank-2");
    let (n, k) = (a.shape()[0], a.shape()[1]);
    let (k2, m) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
    let av = a.as_f64();
    let bv = b.as_f64();
    let mut out = vec![0f64; n * m];
    // Parallelise across row blocks; i-k-j order keeps B row-contiguous in
    // the inner loop so the compiler can vectorize it.
    crate::pool::par_chunks_mut(&mut out, |start, chunk| {
        if chunk.is_empty() {
            return;
        }
        debug_assert_eq!(start % m, 0, "chunks must align to rows");
        let row0 = start / m;
        let rows = chunk.len() / m;
        for r in 0..rows {
            let i = row0 + r;
            let arow = &av[i * k..(i + 1) * k];
            let crow = &mut chunk[r * m..(r + 1) * m];
            for (kk, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue; // tree one-hot matrices are sparse
                }
                let brow = &bv[kk * m..(kk + 1) * m];
                for (c, &bkj) in crow.iter_mut().zip(brow) {
                    *c += aik * bkj;
                }
            }
        }
    });
    Tensor::from_f64_matrix(out, n, m)
}

/// `y = A @ x + bias` for a rank-2 `(n×k)` matrix and rank-1 `(k)` vector;
/// `bias` may be `None`. Returns a rank-1 `(n)` tensor. Linear-model predict.
pub fn matvec_f64(a: &Tensor, x: &Tensor, bias: Option<f64>) -> Tensor {
    assert_eq!(a.shape().len(), 2, "matvec lhs must be rank-2");
    let (n, k) = (a.shape()[0], a.shape()[1]);
    assert_eq!(x.nrows(), k, "matvec dim mismatch");
    let av = a.as_f64();
    let xv = x.as_f64();
    let b = bias.unwrap_or(0.0);
    let mut out = vec![0f64; n];
    crate::pool::par_chunks_mut(&mut out, |start, chunk| {
        for (r, o) in chunk.iter_mut().enumerate() {
            let i = start + r;
            let arow = &av[i * k..(i + 1) * k];
            let mut acc = b;
            for (a, x) in arow.iter().zip(xv) {
                acc += a * x;
            }
            *o = acc;
        }
    });
    Tensor::from_f64(out)
}

/// Row-wise argmax of a rank-2 `F64` matrix -> rank-1 `I64` class ids.
pub fn argmax_rows(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "argmax_rows needs rank-2");
    let (n, m) = (a.shape()[0], a.shape()[1]);
    let av = a.as_f64();
    let mut out = vec![0i64; n];
    for i in 0..n {
        let row = &av[i * m..(i + 1) * m];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        out[i] = best as i64;
    }
    Tensor::from_i64(out)
}

/// Element-wise sigmoid on any numeric tensor, returning `F64`.
pub fn sigmoid(t: &Tensor) -> Tensor {
    let x = t.to_f64_vec();
    Tensor::from_f64(x.into_iter().map(|v| 1.0 / (1.0 + (-v).exp())).collect())
}

/// Element-wise ReLU on `F64` tensors.
pub fn relu(t: &Tensor) -> Tensor {
    let x = t.to_f64_vec();
    let v: Vec<f64> = x.into_iter().map(|v| v.max(0.0)).collect();
    if t.shape().len() == 2 {
        Tensor::from_f64_matrix(v, t.shape()[0], t.shape()[1])
    } else {
        Tensor::from_f64(v)
    }
}

/// Row-wise softmax of a rank-2 `F64` matrix (numerically stabilized).
pub fn softmax_rows(a: &Tensor) -> Tensor {
    assert_eq!(a.shape().len(), 2, "softmax_rows needs rank-2");
    let (n, m) = (a.shape()[0], a.shape()[1]);
    let av = a.as_f64();
    let mut out = vec![0f64; n * m];
    for i in 0..n {
        let row = &av[i * m..(i + 1) * m];
        let mx = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut denom = 0.0;
        for (j, &v) in row.iter().enumerate() {
            let e = (v - mx).exp();
            out[i * m + j] = e;
            denom += e;
        }
        for j in 0..m {
            out[i * m + j] /= denom;
        }
    }
    Tensor::from_f64_matrix(out, n, m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_f64_matrix(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let i = Tensor::from_f64_matrix(vec![1.0, 0.0, 0.0, 1.0], 2, 2);
        assert_eq!(matmul_f64(&a, &i).as_f64(), a.as_f64());
    }

    #[test]
    fn matmul_rectangular() {
        // (2x3) @ (3x2)
        let a = Tensor::from_f64_matrix(vec![1., 2., 3., 4., 5., 6.], 2, 3);
        let b = Tensor::from_f64_matrix(vec![7., 8., 9., 10., 11., 12.], 3, 2);
        let c = matmul_f64(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_f64(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_vs_naive_random() {
        let (n, k, m) = (17, 13, 9);
        let av: Vec<f64> = (0..n * k)
            .map(|i| ((i * 31 + 7) % 23) as f64 - 11.0)
            .collect();
        let bv: Vec<f64> = (0..k * m)
            .map(|i| ((i * 17 + 3) % 19) as f64 - 9.0)
            .collect();
        let a = Tensor::from_f64_matrix(av.clone(), n, k);
        let b = Tensor::from_f64_matrix(bv.clone(), k, m);
        let c = matmul_f64(&a, &b);
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += av[i * k + kk] * bv[kk * m + j];
                }
                assert!((c.as_f64()[i * m + j] - acc).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matvec_with_bias() {
        let a = Tensor::from_f64_matrix(vec![1., 2., 3., 4.], 2, 2);
        let x = Tensor::from_f64(vec![10., 100.]);
        let y = matvec_f64(&a, &x, Some(1.0));
        assert_eq!(y.as_f64(), &[211., 431.]);
    }

    #[test]
    fn argmax_and_softmax() {
        let a = Tensor::from_f64_matrix(vec![0.1, 0.9, 5.0, -1.0], 2, 2);
        assert_eq!(argmax_rows(&a).as_i64(), &[1, 0]);
        let sm = softmax_rows(&a);
        let row0: f64 = sm.as_f64()[..2].iter().sum();
        assert!((row0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn activations() {
        let t = Tensor::from_f64(vec![-1.0, 0.0, 2.0]);
        assert_eq!(relu(&t).as_f64(), &[0.0, 0.0, 2.0]);
        let s = sigmoid(&t);
        assert!((s.as_f64()[1] - 0.5).abs() < 1e-12);
        assert!(s.as_f64()[0] < 0.5 && s.as_f64()[2] > 0.5);
    }
}

//! Blockwise hashing kernels and flat arena hash tables — the vectorized
//! hash core behind `tqp-exec`'s join build/probe and group-by.
//!
//! "Query Processing on Tensor Computation Runtimes" frames hash build and
//! probe as the operators where a tensor runtime wins or loses: they must
//! be bulk array passes, not per-row pointer chases. This module supplies
//! that shape:
//!
//! * **Blockwise multi-lane hashing** ([`hash_i64`], [`hash_columns`]):
//!   the whole key column hashes in one pass over [`HASH_BLOCK_ROWS`]-row
//!   blocks, [`HASH_LANES`] independent accumulator lanes per block so the
//!   compiler can keep the multiply/xor chains in SIMD registers — instead
//!   of one `Hasher` state machine invocation per row.
//! * **Counting-sort primitives** ([`scatter_count`], [`gather_u32`]): the
//!   histogram and gather passes flat table construction is made of.
//! * **[`FlatRowTable`]** — the join build table: a power-of-two bucket
//!   directory over two contiguous arenas (`rows`, `keys`), built with a
//!   counting pass then exact-offset fills. No per-key `Vec` allocations,
//!   no rehash growth, no hash-again on insert: the precomputed hash
//!   column *is* the directory index.
//! * **[`group_rows_by_hash`]** — the group-by table: open-addressing
//!   linear probing over fixed-width slots, collision-verified through a
//!   caller-supplied row-equality callback so this crate stays independent
//!   of the executor's column layout.
//!
//! ## Determinism contract
//!
//! `tqp-exec` promises bitwise-identical results at any worker count, and
//! its hash-join contract is specifically that every key's row bucket
//! lists build rows in **ascending row order** (the order a sequential
//! `HashMap<_, Vec<u32>>` build pushes them). [`FlatRowTable`] preserves
//! this structurally: the fill pass scans entries in ascending row order
//! and appends each to its bucket's next free slot, so within a bucket —
//! and therefore within the entries of any single key — rows ascend.
//! Radix-partitioned parallel builds feed each partition its entries in
//! ascending global row order (contiguous worker ranges drained in worker
//! order), so the same argument applies per partition.
//! [`group_rows_by_hash`] assigns dense group ids in first-appearance
//! order over a sequential scan, matching the executor's documented
//! group-output order exactly.

use crate::{DType, Tensor};

/// Rows per hashing block: big enough to amortize loop overhead, small
/// enough that a block's lanes stay cache- and register-resident.
pub const HASH_BLOCK_ROWS: usize = 1024;

/// Independent accumulator lanes per block (8-wide: one AVX2/NEON-friendly
/// stripe of u64 multiplies with no cross-lane dependency).
pub const HASH_LANES: usize = 8;

/// Fibonacci multiplier (2^64 / φ), the same constant the executor's radix
/// partitioner uses.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Odd multiplier for multi-column combining (FxHash's).
const COMBINE: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Seed for multi-column row hashes.
const SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Finalizing integer mix: a Fibonacci multiply spreads entropy upward,
/// the xor-shift folds the well-mixed high half back onto the low bits
/// (which a power-of-two directory masks on).
#[inline(always)]
pub fn mix64(k: u64) -> u64 {
    let h = k.wrapping_mul(FIB);
    h ^ (h >> 32)
}

/// Hash an `i64` key column in one blockwise pass: `out[i] = mix64(v[i])`,
/// computed [`HASH_LANES`] elements at a stride so the multiplies pipeline
/// instead of serializing through one accumulator.
pub fn hash_i64(vals: &[i64]) -> Vec<u64> {
    let mut out = vec![0u64; vals.len()];
    hash_i64_into(vals, &mut out);
    out
}

/// [`hash_i64`] into a caller-provided buffer (must be the same length).
/// Dispatches to the explicit SIMD tier (`simd::hash_i64`); all tiers
/// compute the identical per-element `mix64`.
pub fn hash_i64_into(vals: &[i64], out: &mut [u64]) {
    assert_eq!(vals.len(), out.len(), "hash output length mismatch");
    crate::simd::hash_i64(vals, out);
}

/// Fold one `i64` column into an existing row-hash accumulator column
/// (vectorized; per-element result identical on every tier).
fn combine_i64(acc: &mut [u64], vals: &[i64]) {
    assert_eq!(acc.len(), vals.len(), "hash combine length mismatch");
    crate::simd::hash_combine_i64(acc, vals);
}

/// FNV-1a over one string row (strings cannot lane-split; everything else
/// hashes blockwise).
#[inline]
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = SEED;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// Hash multi-column row keys into one `u64` column, column-at-a-time:
/// every numeric column folds in as a blockwise [`combine_i64`]-style
/// pass over the whole column (the "hash column in one pass" shape),
/// strings fall back to per-row byte hashing. Row equality must still be
/// verified by the caller — two distinct rows may collide.
pub fn hash_columns(cols: &[&Tensor]) -> Vec<u64> {
    assert!(
        !cols.is_empty(),
        "hash_columns requires at least one column"
    );
    let n = cols[0].nrows();
    let mut acc = vec![SEED; n];
    for c in cols {
        assert_eq!(c.nrows(), n, "hash_columns column length mismatch");
        match c.dtype() {
            DType::I64 => combine_i64(&mut acc, c.as_i64()),
            DType::I32 => {
                for (a, &v) in acc.iter_mut().zip(c.as_i32()) {
                    *a = (*a ^ mix64(v as u64)).wrapping_mul(COMBINE);
                }
            }
            DType::F64 => crate::simd::hash_combine_f64(&mut acc, c.as_f64()),
            DType::F32 => {
                for (a, &v) in acc.iter_mut().zip(c.as_f32()) {
                    *a = (*a ^ mix64(v.to_bits() as u64)).wrapping_mul(COMBINE);
                }
            }
            DType::Bool => {
                for (a, &v) in acc.iter_mut().zip(c.as_bool()) {
                    *a = (*a ^ mix64(v as u64)).wrapping_mul(COMBINE);
                }
            }
            DType::U8 => {
                for (i, a) in acc.iter_mut().enumerate() {
                    *a = (*a ^ hash_bytes(c.str_row(i))).wrapping_mul(COMBINE);
                }
            }
        }
    }
    acc
}

/// Histogram pass: `out[idx[i]] += 1`. The counting half of flat table
/// construction (and of any counting-sort shaped kernel).
pub fn scatter_count(idx: &[u32], n: usize) -> Vec<u32> {
    let mut counts = vec![0u32; n];
    for &b in idx {
        counts[b as usize] += 1;
    }
    counts
}

/// Gather pass: `out[i] = src[idx[i]]` (hardware-gather tier when the
/// index set validates in bounds; panics on out-of-range either way).
pub fn gather_u32(src: &[u32], idx: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; idx.len()];
    crate::simd::gather_u32(src, idx, &mut out);
    out
}

/// Directory size for `n` entries with an optional distinct-key estimate
/// (e.g. the catalog's KMV sketch): two slots per expected distinct key,
/// clamped to at most two per *entry* so a wild over-estimate cannot
/// explode the directory, power of two for mask indexing.
fn directory_size(n: usize, distinct_hint: Option<u64>) -> usize {
    let est = match distinct_hint {
        Some(d) => (d as usize).min(n),
        None => n,
    };
    (est.max(8) * 2).next_power_of_two()
}

/// The flat join build table: a power-of-two bucket directory over two
/// contiguous arenas.
///
/// Bucket `b` owns `rows[starts[b]..starts[b+1]]` (and the aligned
/// `keys[..]` slice): the entry set is bucket-sorted into the arena by a
/// counting pass + exact-offset fill, which subsumes a `next`-chain —
/// every chain is materialized as a contiguous run, so probing walks a
/// dense slice instead of chasing links. There are no per-key `Vec`s, no
/// growth reallocation, and inserts never re-hash: the caller supplies
/// the hash column (computed once, blockwise) and the table masks it.
///
/// Entries fill in input order; when the input is in ascending row order
/// (both the sequential build and each radix partition of the parallel
/// build are), every bucket — and every key within it — lists rows
/// ascending, which is the executor's bitwise-determinism contract.
pub struct FlatRowTable {
    /// Directory-size-minus-one bit mask over the hash.
    mask: u64,
    /// Exclusive prefix sums: bucket `b` spans `starts[b]..starts[b+1]`.
    starts: Vec<u32>,
    /// Row-id arena, bucket-contiguous.
    rows: Vec<u32>,
    /// Key arena aligned with `rows` (probe compares against it).
    keys: Vec<i64>,
    /// Distinct key count (tracked during the fill).
    distinct: usize,
}

impl FlatRowTable {
    /// Build over `keys[i]` with implicit row ids `0..n`.
    pub fn build(keys: &[i64], hashes: &[u64], distinct_hint: Option<u64>) -> FlatRowTable {
        Self::build_inner(keys, None, hashes, distinct_hint)
    }

    /// Build over explicit `(key, row)` entries (the radix-partitioned
    /// path, where each partition holds a subset of the global rows).
    /// Entries must arrive in ascending `rows` order for the bucket-order
    /// contract to hold.
    pub fn build_with_rows(
        keys: &[i64],
        rows: &[u32],
        hashes: &[u64],
        distinct_hint: Option<u64>,
    ) -> FlatRowTable {
        assert_eq!(keys.len(), rows.len(), "keys/rows length mismatch");
        Self::build_inner(keys, Some(rows), hashes, distinct_hint)
    }

    fn build_inner(
        keys: &[i64],
        rows: Option<&[u32]>,
        hashes: &[u64],
        distinct_hint: Option<u64>,
    ) -> FlatRowTable {
        let n = keys.len();
        assert_eq!(hashes.len(), n, "keys/hashes length mismatch");
        let d = directory_size(n, distinct_hint);
        let mask = (d - 1) as u64;

        // Counting pass: bucket histogram → exclusive prefix = exact
        // arena offsets. (This *is* `scatter_count`, fused with the mask
        // so the bucket ids never materialize.)
        let mut counts = vec![0u32; d];
        for &h in hashes {
            counts[(h & mask) as usize] += 1;
        }
        let mut starts = Vec::with_capacity(d + 1);
        let mut acc = 0u32;
        for &c in &counts {
            starts.push(acc);
            acc += c;
        }
        starts.push(acc);

        // Fill pass: ascending input order, each entry to its bucket's
        // next free slot. `cursor` reuses the counts buffer as write
        // heads.
        let mut cursor: Vec<u32> = starts[..d].to_vec();
        let mut row_arena = vec![0u32; n];
        let mut key_arena = vec![0i64; n];
        let mut distinct = 0usize;
        for i in 0..n {
            let b = (hashes[i] & mask) as usize;
            let slot = cursor[b] as usize;
            cursor[b] += 1;
            let k = keys[i];
            // First occurrence check against the bucket's filled prefix:
            // early-exits on the first equal key, so duplicate-heavy
            // buckets cost O(1) per insert.
            if !key_arena[starts[b] as usize..slot].contains(&k) {
                distinct += 1;
            }
            key_arena[slot] = k;
            row_arena[slot] = match rows {
                Some(r) => r[i],
                None => i as u32,
            };
        }
        FlatRowTable {
            mask,
            starts,
            rows: row_arena,
            keys: key_arena,
            distinct,
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.distinct
    }

    /// True when no entries were inserted.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Total entries (rows) in the table.
    pub fn n_entries(&self) -> usize {
        self.rows.len()
    }

    /// The `(keys, rows)` slices of the bucket `h` selects. Probing scans
    /// the key slice for equality and emits the aligned rows — matching
    /// rows appear in ascending row order.
    #[inline]
    pub fn bucket(&self, h: u64) -> (&[i64], &[u32]) {
        let b = (h & self.mask) as usize;
        let s = self.starts[b] as usize;
        let e = self.starts[b + 1] as usize;
        (&self.keys[s..e], &self.rows[s..e])
    }

    /// Number of entries matching key `k` (the probe's pre-sizing pass).
    /// Long skewed buckets scan with the vectorized equality count;
    /// typical short buckets stay on the scalar loop.
    #[inline]
    pub fn count_matches(&self, k: i64, h: u64) -> usize {
        let (keys, _) = self.bucket(h);
        crate::simd::count_eq_i64(keys, k)
    }

    /// The arena range `[start, end)` of the bucket `h` selects — the
    /// cheap half of [`Self::bucket`] (touches only the directory). The
    /// probe gathers a block of ranges first, then scans: splitting the
    /// directory read from the arena scan breaks the per-row dependent
    /// load chain so cache misses overlap across rows.
    #[inline]
    pub fn bucket_range(&self, h: u64) -> (u32, u32) {
        let b = (h & self.mask) as usize;
        (self.starts[b], self.starts[b + 1])
    }

    /// The `(keys, rows)` arena slices for a range from
    /// [`Self::bucket_range`].
    #[inline]
    pub fn entries(&self, start: u32, end: u32) -> (&[i64], &[u32]) {
        (
            &self.keys[start as usize..end as usize],
            &self.rows[start as usize..end as usize],
        )
    }
}

/// One open-addressing slot of the group table.
#[derive(Clone, Copy)]
struct GroupSlot {
    hash: u64,
    /// First row of the group; `u32::MAX` = empty slot.
    first: u32,
    gid: u32,
}

const EMPTY: u32 = u32::MAX;

/// Group rows by their hash with collision verification: `eq(i, j)` must
/// report true key equality of rows `i` and `j`. Returns `(gids, firsts)`
/// — dense group ids per row in first-appearance order, and each group's
/// first row — exactly the contract of the executor's `HashMap`-chain
/// grouping, computed over a flat linear-probing table instead.
///
/// The scan is sequential in row order, so group numbering is a pure
/// function of the input (never of scheduling); hash collisions between
/// distinct keys fail `eq` and probe onward to their own slot.
pub fn group_rows_by_hash(
    hashes: &[u64],
    mut eq: impl FnMut(usize, usize) -> bool,
) -> (Vec<i64>, Vec<i64>) {
    let n = hashes.len();
    // Start small and double at 7/8 load: a 16 Ki-row morsel with few
    // groups stays in one cache-resident table, many-group inputs
    // amortize the (cheap, eq-free) rehashes.
    let mut cap = 64usize;
    while cap < n / 4 {
        cap <<= 1;
    }
    let mut slots = vec![
        GroupSlot {
            hash: 0,
            first: EMPTY,
            gid: 0
        };
        cap
    ];
    let mut mask = cap - 1;
    let mut gids = vec![0i64; n];
    let mut firsts: Vec<i64> = Vec::new();
    for i in 0..n {
        if (firsts.len() + 1) * 8 > cap * 7 {
            // Grow: re-scatter occupied slots by their stored hash. All
            // occupants are distinct groups, so no equality checks.
            cap <<= 1;
            mask = cap - 1;
            let mut next = vec![
                GroupSlot {
                    hash: 0,
                    first: EMPTY,
                    gid: 0
                };
                cap
            ];
            for s in slots.iter().filter(|s| s.first != EMPTY) {
                let mut idx = (s.hash as usize) & mask;
                while next[idx].first != EMPTY {
                    idx = (idx + 1) & mask;
                }
                next[idx] = *s;
            }
            slots = next;
        }
        let h = hashes[i];
        let mut idx = (h as usize) & mask;
        let gid = loop {
            let s = slots[idx];
            if s.first == EMPTY {
                let g = firsts.len() as u32;
                slots[idx] = GroupSlot {
                    hash: h,
                    first: i as u32,
                    gid: g,
                };
                firsts.push(i as i64);
                break g;
            }
            if s.hash == h && eq(i, s.first as usize) {
                break s.gid;
            }
            idx = (idx + 1) & mask;
        };
        gids[i] = gid as i64;
    }
    (gids, firsts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hash_matches_scalar_mix() {
        let vals: Vec<i64> = (-5000..5000).map(|i| i * 37 - 11).collect();
        let hs = hash_i64(&vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(hs[i], mix64(v as u64));
        }
    }

    #[test]
    fn scatter_count_and_gather() {
        let idx = [1u32, 0, 1, 3, 1];
        assert_eq!(scatter_count(&idx, 4), vec![1, 3, 0, 1]);
        assert_eq!(
            gather_u32(&[10, 20, 30, 40], &idx),
            vec![20, 10, 20, 40, 20]
        );
    }

    fn oracle(keys: &[i64]) -> HashMap<i64, Vec<u32>> {
        let mut m: HashMap<i64, Vec<u32>> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            m.entry(k).or_default().push(i as u32);
        }
        m
    }

    fn assert_table_matches(keys: &[i64], hint: Option<u64>) {
        let hashes = hash_i64(keys);
        let t = FlatRowTable::build(keys, &hashes, hint);
        let m = oracle(keys);
        assert_eq!(t.len(), m.len(), "distinct count");
        assert_eq!(t.n_entries(), keys.len());
        for (&k, rows) in &m {
            let h = mix64(k as u64);
            assert_eq!(t.count_matches(k, h), rows.len(), "count for {k}");
            let (bkeys, brows) = t.bucket(h);
            let got: Vec<u32> = bkeys
                .iter()
                .zip(brows)
                .filter(|(&bk, _)| bk == k)
                .map(|(_, &r)| r)
                .collect();
            // The oracle's bucket is in ascending insert order; so must
            // the flat bucket be.
            assert_eq!(&got, rows, "bucket rows for {k}");
        }
    }

    #[test]
    fn flat_table_matches_hashmap_oracle() {
        assert_table_matches(&[], None);
        assert_table_matches(&[42], None);
        assert_table_matches(&(0..1000).collect::<Vec<i64>>(), None);
        assert_table_matches(&vec![7i64; 500], None);
        assert_table_matches(&(0..2000).map(|i| i % 13).collect::<Vec<i64>>(), Some(13));
        assert_table_matches(&[i64::MIN, i64::MAX, 0, -1, i64::MIN, i64::MAX], None);
    }

    #[test]
    fn build_with_rows_keeps_explicit_ids() {
        let keys = [5i64, 9, 5];
        let rows = [10u32, 20, 30];
        let hashes = hash_i64(&keys);
        let t = FlatRowTable::build_with_rows(&keys, &rows, &hashes, None);
        let (bkeys, brows) = t.bucket(mix64(5));
        let got: Vec<u32> = bkeys
            .iter()
            .zip(brows)
            .filter(|(&k, _)| k == 5)
            .map(|(_, &r)| r)
            .collect();
        assert_eq!(got, vec![10, 30]);
    }

    #[test]
    fn distinct_hint_only_shrinks_directory() {
        // A hint far above n must not blow up the directory.
        let keys: Vec<i64> = (0..64).collect();
        let hashes = hash_i64(&keys);
        let t = FlatRowTable::build(&keys, &hashes, Some(1 << 40));
        assert_eq!(t.len(), 64);
        // A hint far below still probes correctly (just longer buckets).
        let t = FlatRowTable::build(&keys, &hashes, Some(2));
        assert_eq!(t.len(), 64);
        for &k in &keys {
            assert_eq!(t.count_matches(k, mix64(k as u64)), 1);
        }
    }

    #[test]
    fn group_rows_first_appearance_order() {
        let keys = [30i64, 10, 30, 20, 10, 30];
        let hashes = hash_i64(&keys);
        let (gids, firsts) = group_rows_by_hash(&hashes, |i, j| keys[i] == keys[j]);
        assert_eq!(gids, vec![0, 1, 0, 2, 1, 0]);
        assert_eq!(firsts, vec![0, 1, 3]);
    }

    #[test]
    fn group_rows_collisions_verified() {
        // Identical hashes for every row, distinct keys: the eq callback
        // must separate them into their own groups via linear probing.
        let keys: Vec<i64> = (0..500).collect();
        let hashes = vec![0xDEAD_BEEFu64; keys.len()];
        let (gids, firsts) = group_rows_by_hash(&hashes, |i, j| keys[i] == keys[j]);
        assert_eq!(firsts.len(), 500);
        for (i, &g) in gids.iter().enumerate() {
            assert_eq!(g, i as i64);
        }
    }

    #[test]
    fn group_rows_grows_past_initial_capacity() {
        let n = 100_000usize;
        let keys: Vec<i64> = (0..n as i64).map(|i| i % 40_000).collect();
        let hashes = hash_i64(&keys);
        let (gids, firsts) = group_rows_by_hash(&hashes, |i, j| keys[i] == keys[j]);
        assert_eq!(firsts.len(), 40_000);
        for (i, &g) in gids.iter().enumerate() {
            assert_eq!(firsts[g as usize], keys[i]);
        }
    }
}

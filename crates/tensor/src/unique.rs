//! Run detection over sorted keys: the group-boundary primitive of TQP's
//! sort-based aggregation (paper §2.2).
//!
//! After sorting by the group keys, `group_ids` marks the start of every
//! run of equal keys (`x[i] != x[i-1]`, OR-ed across key columns) and turns
//! the boundary mask into dense group ids with a prefix sum — precisely the
//! `unique_consecutive`/`cumsum` formulation used on tensor runtimes.

use crate::dtype::DType;
use crate::index::{mask_to_indices, take};
use crate::tensor::Tensor;

/// Boolean mask of length `n` with `true` where row `i` differs from row
/// `i-1` in *any* of the key columns. Row 0 is always `true` (first run).
#[allow(clippy::needless_range_loop)] // comparisons look back at i-1
pub fn run_starts(keys: &[&Tensor]) -> Tensor {
    assert!(!keys.is_empty(), "run_starts needs at least one key");
    let n = keys[0].nrows();
    let mut mask = vec![false; n];
    if n > 0 {
        mask[0] = true;
    }
    for key in keys {
        assert_eq!(key.nrows(), n, "run_starts keys must align");
        match key.dtype() {
            DType::U8 => {
                for i in 1..n {
                    if !mask[i] && key.str_row(i) != key.str_row(i - 1) {
                        mask[i] = true;
                    }
                }
            }
            DType::Bool => {
                let v = key.as_bool();
                for i in 1..n {
                    mask[i] |= v[i] != v[i - 1];
                }
            }
            DType::I32 => {
                let v = key.as_i32();
                for i in 1..n {
                    mask[i] |= v[i] != v[i - 1];
                }
            }
            DType::I64 => {
                let v = key.as_i64();
                for i in 1..n {
                    mask[i] |= v[i] != v[i - 1];
                }
            }
            DType::F32 => {
                let v = key.as_f32();
                for i in 1..n {
                    mask[i] |= v[i].to_bits() != v[i - 1].to_bits();
                }
            }
            DType::F64 => {
                let v = key.as_f64();
                for i in 1..n {
                    mask[i] |= v[i].to_bits() != v[i - 1].to_bits();
                }
            }
        }
    }
    Tensor::from_bool(mask)
}

/// Result of [`group_ids`].
#[derive(Debug, Clone)]
pub struct Groups {
    /// Dense group id per input row (`I64`, values in `0..num_groups`).
    pub ids: Tensor,
    /// Row index of the first member of each group (`I64`, ascending).
    pub firsts: Tensor,
    /// Number of distinct groups.
    pub num_groups: usize,
}

/// Dense group ids for *sorted* key columns: rows of the same run share an
/// id; `firsts` selects one representative row per group (for materializing
/// the key columns of the output).
pub fn group_ids(keys: &[&Tensor]) -> Groups {
    let starts = run_starts(keys);
    let firsts = mask_to_indices(&starts);
    let num_groups = firsts.nrows();
    let s = starts.as_bool();
    let mut ids = Vec::with_capacity(s.len());
    let mut g: i64 = -1;
    for &b in s {
        if b {
            g += 1;
        }
        ids.push(g);
    }
    Groups {
        ids: Tensor::from_i64(ids),
        firsts,
        num_groups,
    }
}

/// Run lengths per group of sorted keys (`counts[g]` = members of group g).
pub fn run_lengths(groups: &Groups, n: usize) -> Tensor {
    let firsts = groups.firsts.as_i64();
    let mut out = Vec::with_capacity(groups.num_groups);
    for (i, &f) in firsts.iter().enumerate() {
        let next = if i + 1 < firsts.len() {
            firsts[i + 1]
        } else {
            n as i64
        };
        out.push(next - f);
    }
    Tensor::from_i64(out)
}

/// Distinct values of a *sorted* tensor (`unique_consecutive`).
pub fn unique_sorted(t: &Tensor) -> Tensor {
    let g = group_ids(&[t]);
    take(t, &g.firsts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_starts_single_key() {
        let t = Tensor::from_i64(vec![1, 1, 2, 2, 2, 3]);
        assert_eq!(
            run_starts(&[&t]).as_bool(),
            &[true, false, true, false, false, true]
        );
    }

    #[test]
    fn run_starts_multi_key() {
        let a = Tensor::from_i64(vec![1, 1, 1, 2]);
        let b = Tensor::from_strings(&["x", "x", "y", "y"], 0);
        assert_eq!(run_starts(&[&a, &b]).as_bool(), &[true, false, true, true]);
    }

    #[test]
    fn group_ids_dense() {
        let t = Tensor::from_i64(vec![5, 5, 7, 9, 9]);
        let g = group_ids(&[&t]);
        assert_eq!(g.num_groups, 3);
        assert_eq!(g.ids.as_i64(), &[0, 0, 1, 2, 2]);
        assert_eq!(g.firsts.as_i64(), &[0, 2, 3]);
        assert_eq!(run_lengths(&g, 5).as_i64(), &[2, 1, 2]);
    }

    #[test]
    fn unique_of_sorted() {
        let t = Tensor::from_i64(vec![1, 1, 4, 4, 4, 6]);
        assert_eq!(unique_sorted(&t).as_i64(), &[1, 4, 6]);
    }

    #[test]
    fn empty_input() {
        let t = Tensor::from_i64(vec![]);
        let g = group_ids(&[&t]);
        assert_eq!(g.num_groups, 0);
        assert_eq!(g.ids.nrows(), 0);
        assert_eq!(run_lengths(&g, 0).nrows(), 0);
    }

    #[test]
    fn float_runs_use_bits() {
        let t = Tensor::from_f64(vec![1.0, 1.0, 2.0]);
        let g = group_ids(&[&t]);
        assert_eq!(g.num_groups, 2);
    }
}

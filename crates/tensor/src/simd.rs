//! Explicit SIMD kernel layer with one-time runtime CPU-feature dispatch.
//!
//! Every kernel here has (at least) three tiers: a **scalar** reference
//! implementation (the oracle the test suites pin against), an **AVX2**
//! path, and an **AVX-512** path, selected once per process by
//! [`level`] from `is_x86_feature_detected!` and the `TQP_SIMD`
//! environment variable (`off`/`scalar` forces the fallback, `avx2` caps
//! the tier, anything else picks the best the host supports). The
//! [`set_enabled`] switch lets `ExecConfig::simd` turn vectorized tiers
//! off per run without re-reading the environment.
//!
//! **Determinism contract.** Every tier of every kernel produces
//! bitwise-identical output. Integer and comparison kernels are exact by
//! construction. Float *reductions* are made tier-invariant by defining
//! the canonical algorithm as a fixed 8-lane split ([`LANES`]): lane `j`
//! accumulates elements `8*b + j`, lanes fold in the fixed halving order
//! of [`fold8`], and the ragged tail folds sequentially into the result.
//! The scalar tier runs that same lane-split loop, so `{simd on, off}`
//! cannot disagree even though float addition is non-associative. Min and
//! max use the canonical comparators [`cmin`]/[`cmax`], which are
//! deterministic on `NaN` (ignored unless the accumulator itself is NaN)
//! and on `±0.0` (first operand wins a tie) and map 1:1 onto a
//! compare+blend vector sequence.
//!
//! One carve-out: when a float **sum** itself evaluates to NaN (the input
//! contained NaN, or `+inf` and `-inf` met), *which* NaN bit pattern comes
//! out is not part of the contract — IEEE 754 leaves NaN propagation
//! through addition implementation-defined, and LLVM may commute scalar
//! `fadd` operands. NaN-ness of the result still agrees across tiers, and
//! min/max *select* an element (never synthesize a value), so they remain
//! fully bitwise even on NaN payloads.
//!
//! Per-family dispatch counters ([`counters`]) count vectorized kernel
//! invocations process-wide; `ExecStats` snapshots a delta around each
//! run (approximate under concurrent queries, exact otherwise).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Dispatch tier, ordered by capability. A tier may reuse a narrower
/// tier's implementation for a kernel with no wider win — output is
/// bitwise identical either way, so only throughput differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Reference implementation; also the forced `TQP_SIMD=off` tier.
    Scalar,
    /// 256-bit `core::arch::x86_64` paths.
    Avx2,
    /// 512-bit paths (requires avx512{f,bw,dq,vl}).
    Avx512,
}

impl Level {
    /// Stable lowercase name (used by benches and stats output).
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Avx2 => "avx2",
            Level::Avx512 => "avx512",
        }
    }
}

static LEVEL: OnceLock<Level> = OnceLock::new();

fn detect() -> Level {
    let cap = match std::env::var("TQP_SIMD").ok().as_deref() {
        Some("off") | Some("0") | Some("false") | Some("scalar") => return Level::Scalar,
        Some("avx2") => Level::Avx2,
        _ => Level::Avx512,
    };
    #[cfg(target_arch = "x86_64")]
    {
        if cap >= Level::Avx512
            && is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512bw")
            && is_x86_feature_detected!("avx512dq")
            && is_x86_feature_detected!("avx512vl")
        {
            return Level::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return Level::Avx2;
        }
    }
    let _ = cap;
    Level::Scalar
}

/// The tier this process dispatches to when SIMD is enabled. Detected
/// once (first call) from the CPU and `TQP_SIMD`.
pub fn level() -> Level {
    *LEVEL.get_or_init(detect)
}

/// Process-global enable switch (`ExecConfig::simd`). `false` forces
/// every kernel onto the scalar tier. Because all tiers are bitwise
/// identical, a race between concurrent runs with different settings can
/// only affect throughput and counters, never results.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Set by the executor at run start from `ExecConfig::simd`.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[inline]
fn active() -> Level {
    if ENABLED.load(Ordering::Relaxed) {
        level()
    } else {
        Level::Scalar
    }
}

/// Kernels shorter than this stay scalar: below ~2 vectors of work the
/// dispatch + tail handling costs more than it saves.
const SIMD_MIN: usize = 16;

// ---------------------------------------------------------------------
// Dispatch counters
// ---------------------------------------------------------------------

/// Kernel family, for dispatch accounting.
#[derive(Debug, Clone, Copy)]
enum Family {
    Hash = 0,
    Filter = 1,
    Gather = 2,
    Reduce = 3,
    Decode = 4,
}

static COUNTERS: [AtomicU64; 5] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

#[inline]
fn bump(f: Family) {
    COUNTERS[f as usize].fetch_add(1, Ordering::Relaxed);
}

/// Per-family counts of vectorized (non-scalar tier) kernel dispatches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchCounts {
    pub hash: u64,
    pub filter: u64,
    pub gather: u64,
    pub reduce: u64,
    pub decode: u64,
}

impl DispatchCounts {
    /// Saturating per-field difference (`self` taken after `earlier`).
    pub fn since(&self, earlier: &DispatchCounts) -> DispatchCounts {
        DispatchCounts {
            hash: self.hash.saturating_sub(earlier.hash),
            filter: self.filter.saturating_sub(earlier.filter),
            gather: self.gather.saturating_sub(earlier.gather),
            reduce: self.reduce.saturating_sub(earlier.reduce),
            decode: self.decode.saturating_sub(earlier.decode),
        }
    }

    /// Total across families.
    pub fn total(&self) -> u64 {
        self.hash + self.filter + self.gather + self.reduce + self.decode
    }
}

/// Snapshot the process-wide dispatch counters.
pub fn counters() -> DispatchCounts {
    DispatchCounts {
        hash: COUNTERS[0].load(Ordering::Relaxed),
        filter: COUNTERS[1].load(Ordering::Relaxed),
        gather: COUNTERS[2].load(Ordering::Relaxed),
        reduce: COUNTERS[3].load(Ordering::Relaxed),
        decode: COUNTERS[4].load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Canonical comparison ops (filter-mask family)
// ---------------------------------------------------------------------

/// Canonical `i64` per-element predicate. `In(lo, r)` is the closed
/// interval `lo <= x <= lo + r` in the wrapping-subtract form the dense
/// mask planner produces: `x.wrapping_sub(lo) as u64 <= r`.
#[derive(Debug, Clone, Copy)]
pub enum CmpI64 {
    Eq(i64),
    Ne(i64),
    Lt(i64),
    Le(i64),
    Gt(i64),
    Ge(i64),
    In(i64, u64),
}

/// Canonical `f64` per-element predicate (IEEE semantics: ordered
/// compares are false on NaN; `Ne` is true on NaN, like `!=`).
/// `In` is the two-sided interval with per-bound strictness.
#[derive(Debug, Clone, Copy)]
pub enum CmpF64 {
    Eq(f64),
    Ne(f64),
    Lt(f64),
    Le(f64),
    Gt(f64),
    Ge(f64),
    In {
        lo: f64,
        lo_strict: bool,
        hi: f64,
        hi_strict: bool,
    },
}

/// Scalar evaluation of [`CmpI64`] — the single source of truth all
/// tiers must match.
#[inline(always)]
pub fn eval_i64(op: CmpI64, x: i64) -> bool {
    match op {
        CmpI64::Eq(c) => x == c,
        CmpI64::Ne(c) => x != c,
        CmpI64::Lt(c) => x < c,
        CmpI64::Le(c) => x <= c,
        CmpI64::Gt(c) => x > c,
        CmpI64::Ge(c) => x >= c,
        CmpI64::In(lo, r) => x.wrapping_sub(lo) as u64 <= r,
    }
}

/// Scalar evaluation of [`CmpF64`].
#[inline(always)]
pub fn eval_f64(op: CmpF64, x: f64) -> bool {
    match op {
        CmpF64::Eq(c) => x == c,
        CmpF64::Ne(c) => x != c,
        CmpF64::Lt(c) => x < c,
        CmpF64::Le(c) => x <= c,
        CmpF64::Gt(c) => x > c,
        CmpF64::Ge(c) => x >= c,
        CmpF64::In {
            lo,
            lo_strict,
            hi,
            hi_strict,
        } => {
            (if lo_strict { x > lo } else { x >= lo }) & (if hi_strict { x < hi } else { x <= hi })
        }
    }
}

// ---------------------------------------------------------------------
// Canonical float fold (reduce family)
// ---------------------------------------------------------------------

/// Accumulator lane count of the canonical reduction. Eight `f64` lanes
/// is one AVX-512 register or an AVX2 register pair — both widths fold
/// to the identical operation tree.
pub const LANES: usize = 8;

/// Canonical deterministic minimum: picks `b` when `b < a` or when the
/// accumulator `a` is NaN, else keeps `a`. Ignores NaN inputs, keeps the
/// first operand on a `±0.0` tie, and maps exactly onto the vector
/// sequence `blend(a, b, lt(b, a) | unord(a, a))`.
#[inline(always)]
pub fn cmin(a: f64, b: f64) -> f64 {
    if b < a || a.is_nan() {
        b
    } else {
        a
    }
}

/// Canonical deterministic maximum (mirror of [`cmin`]).
#[inline(always)]
pub fn cmax(a: f64, b: f64) -> f64 {
    if b > a || a.is_nan() {
        b
    } else {
        a
    }
}

/// The fixed lane-fold order every tier uses: 8 lanes halve to 4
/// (`f(a[j], a[j+4])`), 4 to 2, 2 to 1 — exactly the sequence of vector
/// half-width reductions, so the scalar tier reproduces the SIMD
/// horizontal fold bit for bit.
#[inline(always)]
pub fn fold8(a: &[f64; LANES], f: impl Fn(f64, f64) -> f64) -> f64 {
    let s = [f(a[0], a[4]), f(a[1], a[5]), f(a[2], a[6]), f(a[3], a[7])];
    let t = [f(s[0], s[2]), f(s[1], s[3])];
    f(t[0], t[1])
}

// ---------------------------------------------------------------------
// Bit-to-bool expansion tables
// ---------------------------------------------------------------------

/// Expand the low 8 bits of `m` to 8 bool bytes (bit `j` -> byte `j`).
const fn expand8(m: usize) -> u64 {
    let mut v = 0u64;
    let mut j = 0;
    while j < 8 {
        if m & (1 << j) != 0 {
            v |= 1 << (8 * j);
        }
        j += 1;
    }
    v
}

/// 4-bit mask -> 4 bool bytes.
static LUT4: [u32; 16] = {
    let mut t = [0u32; 16];
    let mut m = 0;
    while m < 16 {
        t[m] = expand8(m) as u32;
        m += 1;
    }
    t
};

/// 8-bit mask -> 8 bool bytes. Also the bulk `unpack_bits` table: the
/// bit order (bit `j` of the byte -> element `8*k + j`) matches the
/// storage format's `packed[i / 8] & (1 << (i % 8))`.
static LUT8: [u64; 256] = {
    let mut t = [0u64; 256];
    let mut m = 0;
    while m < 256 {
        t[m] = expand8(m);
        m += 1;
    }
    t
};

/// Per-mask ascending positions of set bits (compaction table).
static POS8: [[u8; 8]; 256] = {
    let mut t = [[0u8; 8]; 256];
    let mut m = 0;
    while m < 256 {
        let mut k = 0;
        let mut j = 0;
        while j < 8 {
            if m & (1 << j) != 0 {
                t[m][k] = j as u8;
                k += 1;
            }
            j += 1;
        }
        m += 1;
    }
    t
};

/// Multiply trick: 8 bool bytes (read as one LE `u64`) -> 8-bit mask
/// with bit `j` = byte `j`. Each byte of the product accumulates at most
/// eight single-bit terms, so no carries cross byte lanes.
#[inline(always)]
fn bools_to_mask(chunk: u64) -> u8 {
    (chunk.wrapping_mul(0x0102_0408_1020_4080) >> 56) as u8
}

// ---------------------------------------------------------------------
// Scalar reference tier
// ---------------------------------------------------------------------

/// The scalar reference implementations — the *same code* the oracle
/// tests pin against, and what every dispatching kernel in this module
/// falls back to. Public so benches and property tests can compare the
/// dispatching entry points against them in-process.
pub mod scalar {
    use super::{cmax, cmin, eval_f64, eval_i64, fold8, CmpF64, CmpI64, LANES};

    /// `m[i] = eval(op, d[i])`, or `&=` when `and` is set.
    pub fn mask_i64(op: CmpI64, d: &[i64], m: &mut [bool], and: bool) {
        if and {
            for (o, &x) in m.iter_mut().zip(d) {
                *o &= eval_i64(op, x);
            }
        } else {
            for (o, &x) in m.iter_mut().zip(d) {
                *o = eval_i64(op, x);
            }
        }
    }

    /// `m[i] = eval(op, d[i])`, or `&=` when `and` is set.
    pub fn mask_f64(op: CmpF64, d: &[f64], m: &mut [bool], and: bool) {
        if and {
            for (o, &x) in m.iter_mut().zip(d) {
                *o &= eval_f64(op, x);
            }
        } else {
            for (o, &x) in m.iter_mut().zip(d) {
                *o = eval_f64(op, x);
            }
        }
    }

    /// `m[i] = src[i]`, or `&=` when `and` is set.
    pub fn mask_bool(src: &[bool], m: &mut [bool], and: bool) {
        if and {
            for (o, &v) in m.iter_mut().zip(src) {
                *o &= v;
            }
        } else {
            m.copy_from_slice(src);
        }
    }

    /// Canonical lane-split sum (see module docs for why this shape is
    /// the definition, not an optimization of one).
    pub fn sum_f64(x: &[f64]) -> f64 {
        let mut acc = [0.0f64; LANES];
        let mut it = x.chunks_exact(LANES);
        for c in &mut it {
            for (a, &v) in acc.iter_mut().zip(c) {
                *a += v;
            }
        }
        let mut r = fold8(&acc, |a, b| a + b);
        for &v in it.remainder() {
            r += v;
        }
        r
    }

    /// Canonical lane-split sum of `f32` values widened to `f64`.
    pub fn sum_f32(x: &[f32]) -> f64 {
        let mut acc = [0.0f64; LANES];
        let mut it = x.chunks_exact(LANES);
        for c in &mut it {
            for (a, &v) in acc.iter_mut().zip(c) {
                *a += v as f64;
            }
        }
        let mut r = fold8(&acc, |a, b| a + b);
        for &v in it.remainder() {
            r += v as f64;
        }
        r
    }

    /// Wrapping lane-split sum (order-free, but kept in the canonical
    /// shape so all tiers share one structure).
    pub fn sum_i64(x: &[i64]) -> i64 {
        let mut acc = [0i64; LANES];
        let mut it = x.chunks_exact(LANES);
        for c in &mut it {
            for (a, &v) in acc.iter_mut().zip(c) {
                *a = a.wrapping_add(v);
            }
        }
        let mut r = acc.iter().fold(0i64, |a, &b| a.wrapping_add(b));
        for &v in it.remainder() {
            r = r.wrapping_add(v);
        }
        r
    }

    /// Canonical lane-split minimum; identity `+inf` (empty input and
    /// all-NaN input both return `+inf`, matching the pre-SIMD fold).
    pub fn min_f64(x: &[f64]) -> f64 {
        let mut acc = [f64::INFINITY; LANES];
        let mut it = x.chunks_exact(LANES);
        for c in &mut it {
            for (a, &v) in acc.iter_mut().zip(c) {
                *a = cmin(*a, v);
            }
        }
        let mut r = fold8(&acc, cmin);
        for &v in it.remainder() {
            r = cmin(r, v);
        }
        r
    }

    /// Canonical lane-split maximum; identity `-inf`.
    pub fn max_f64(x: &[f64]) -> f64 {
        let mut acc = [f64::NEG_INFINITY; LANES];
        let mut it = x.chunks_exact(LANES);
        for c in &mut it {
            for (a, &v) in acc.iter_mut().zip(c) {
                *a = cmax(*a, v);
            }
        }
        let mut r = fold8(&acc, cmax);
        for &v in it.remainder() {
            r = cmax(r, v);
        }
        r
    }

    /// Set-byte count of a bool slice.
    pub fn count_true(m: &[bool]) -> usize {
        m.iter().filter(|&&b| b).count()
    }

    /// Ascending positions (plus `base`) of set mask bytes.
    pub fn compact_indices_into(m: &[bool], base: i64, out: &mut Vec<i64>) {
        for (i, &b) in m.iter().enumerate() {
            if b {
                out.push(base + i as i64);
            }
        }
    }

    /// `out[k] = src[idx[k]]` (panics on out-of-bounds, like indexing).
    pub fn gather_i64(src: &[i64], idx: &[i64], out: &mut [i64]) {
        for (o, &i) in out.iter_mut().zip(idx) {
            *o = src[i as usize];
        }
    }

    /// `out[k] = src[idx[k]]`.
    pub fn gather_f64(src: &[f64], idx: &[i64], out: &mut [f64]) {
        for (o, &i) in out.iter_mut().zip(idx) {
            *o = src[i as usize];
        }
    }

    /// `out[k] = src[idx[k]]` (u32 row ids, the hash-engine shape).
    pub fn gather_u32(src: &[u32], idx: &[u32], out: &mut [u32]) {
        for (o, &i) in out.iter_mut().zip(idx) {
            *o = src[i as usize];
        }
    }

    /// Fibonacci mix of each key: `out[i] = mix64(v[i] as u64)`.
    pub fn hash_i64(vals: &[i64], out: &mut [u64]) {
        for (o, &v) in out.iter_mut().zip(vals) {
            *o = super::mix64(v as u64);
        }
    }

    /// Combine step: `a = (a ^ mix64(v)) * COMBINE` per element.
    pub fn hash_combine_i64(acc: &mut [u64], vals: &[i64]) {
        for (a, &v) in acc.iter_mut().zip(vals) {
            *a = (*a ^ super::mix64(v as u64)).wrapping_mul(super::COMBINE);
        }
    }

    /// Combine step over float bit patterns.
    pub fn hash_combine_f64(acc: &mut [u64], vals: &[f64]) {
        for (a, &v) in acc.iter_mut().zip(vals) {
            *a = (*a ^ super::mix64(v.to_bits())).wrapping_mul(super::COMBINE);
        }
    }

    /// Occurrences of `key` in a bucket's key slice.
    pub fn count_eq_i64(keys: &[i64], key: i64) -> usize {
        keys.iter().filter(|&&k| k == key).count()
    }

    /// LSB-first bit unpack: element `i` = bit `i % 8` of byte `i / 8`.
    pub fn unpack_bits_into(packed: &[u8], out: &mut [bool]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = packed[i / 8] & (1 << (i % 8)) != 0;
        }
    }

    /// Frame-of-reference decode: `out[i] = min + delta_i` where
    /// `delta_i` is the little-endian `width`-byte unsigned value at
    /// `bytes[i*width..]`. `bytes.len()` must be `width * out.len()`.
    pub fn decode_for(bytes: &[u8], width: usize, min: i64, out: &mut [i64]) {
        for (i, o) in out.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b[..width].copy_from_slice(&bytes[i * width..(i + 1) * width]);
            *o = min.wrapping_add(u64::from_le_bytes(b) as i64);
        }
    }

    /// Little-endian plain decode; `bytes.len()` must be `8 * out.len()`.
    pub fn decode_i64_le(bytes: &[u8], out: &mut [i64]) {
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(8)) {
            *o = i64::from_le_bytes(c.try_into().unwrap());
        }
    }

    /// Little-endian plain decode; `bytes.len()` must be `8 * out.len()`.
    pub fn decode_f64_le(bytes: &[u8], out: &mut [f64]) {
        for (o, c) in out.iter_mut().zip(bytes.chunks_exact(8)) {
            *o = f64::from_le_bytes(c.try_into().unwrap());
        }
    }

    /// Append `n` copies of `val`.
    pub fn splat_i64(out: &mut Vec<i64>, val: i64, n: usize) {
        out.resize(out.len() + n, val);
    }
}

/// Fibonacci multiplier (must match `hash.rs`).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
/// Odd combine multiplier (must match `hash.rs`).
const COMBINE: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The engine's 64-bit mixer: `h = k * FIB; h ^ (h >> 32)` — identical
/// to `hash::mix64`, re-stated here so the vector tiers and the hash
/// module can't drift apart (a unit test pins them equal).
#[inline(always)]
pub fn mix64(k: u64) -> u64 {
    let h = k.wrapping_mul(FIB);
    h ^ (h >> 32)
}

// ---------------------------------------------------------------------
// AVX2 tier
// ---------------------------------------------------------------------

/// 256-bit implementations. Every function is `unsafe` only because of
/// `#[target_feature]`; callers must have verified AVX2 support (the
/// dispatchers do, once, via [`level`]).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{bools_to_mask, CmpF64, CmpI64, COMBINE, FIB, LUT4, POS8};
    use std::arch::x86_64::*;

    /// Write 4 bool bytes from a 4-bit lane mask (`and` folds into the
    /// existing bytes). Bool bytes are always 0x00/0x01, so unaligned
    /// `u32` loads/stores of them are valid.
    #[inline(always)]
    unsafe fn write4(p: *mut bool, nib: u32, and: bool) {
        let bits = LUT4[nib as usize];
        let p = p.cast::<u32>();
        if and {
            p.write_unaligned(p.read_unaligned() & bits);
        } else {
            p.write_unaligned(bits);
        }
    }

    /// Sign-bit mask (bit per 64-bit lane) of a full-lane compare result.
    #[inline(always)]
    unsafe fn mm4(v: __m256i) -> u32 {
        _mm256_movemask_pd(_mm256_castsi256_pd(v)) as u32
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mask_i64(op: CmpI64, d: &[i64], m: &mut [bool], and: bool) {
        let n = d.len();
        let dp = d.as_ptr();
        let mp = m.as_mut_ptr();
        macro_rules! run {
            ($v:ident, $nib:expr) => {{
                let mut i = 0usize;
                while i + 4 <= n {
                    let $v = _mm256_loadu_si256(dp.add(i).cast());
                    write4(mp.add(i), ($nib) & 0xF, and);
                    i += 4;
                }
                i
            }};
        }
        let done = match op {
            CmpI64::Eq(c) => {
                let cv = _mm256_set1_epi64x(c);
                run!(v, mm4(_mm256_cmpeq_epi64(v, cv)))
            }
            CmpI64::Ne(c) => {
                let cv = _mm256_set1_epi64x(c);
                run!(v, mm4(_mm256_cmpeq_epi64(v, cv)) ^ 0xF)
            }
            CmpI64::Gt(c) => {
                let cv = _mm256_set1_epi64x(c);
                run!(v, mm4(_mm256_cmpgt_epi64(v, cv)))
            }
            CmpI64::Le(c) => {
                let cv = _mm256_set1_epi64x(c);
                run!(v, mm4(_mm256_cmpgt_epi64(v, cv)) ^ 0xF)
            }
            CmpI64::Lt(c) => {
                let cv = _mm256_set1_epi64x(c);
                run!(v, mm4(_mm256_cmpgt_epi64(cv, v)))
            }
            CmpI64::Ge(c) => {
                let cv = _mm256_set1_epi64x(c);
                run!(v, mm4(_mm256_cmpgt_epi64(cv, v)) ^ 0xF)
            }
            CmpI64::In(lo, r) => {
                // Unsigned `x - lo <= r` via the sign-flip trick: biased
                // signed compare == unsigned compare.
                let lov = _mm256_set1_epi64x(lo);
                let bias = _mm256_set1_epi64x(i64::MIN);
                let rb = _mm256_xor_si256(_mm256_set1_epi64x(r as i64), bias);
                run!(
                    v,
                    mm4(_mm256_cmpgt_epi64(
                        _mm256_xor_si256(_mm256_sub_epi64(v, lov), bias),
                        rb
                    )) ^ 0xF
                )
            }
        };
        super::scalar::mask_i64(op, &d[done..], &mut m[done..], and);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mask_f64(op: CmpF64, d: &[f64], m: &mut [bool], and: bool) {
        let n = d.len();
        let dp = d.as_ptr();
        let mp = m.as_mut_ptr();
        macro_rules! run {
            ($v:ident, $nib:expr) => {{
                let mut i = 0usize;
                while i + 4 <= n {
                    let $v = _mm256_loadu_pd(dp.add(i));
                    write4(mp.add(i), ($nib) & 0xF, and);
                    i += 4;
                }
                i
            }};
        }
        macro_rules! cmp1 {
            ($imm:expr, $c:expr) => {{
                let cv = _mm256_set1_pd($c);
                run!(v, _mm256_movemask_pd(_mm256_cmp_pd::<$imm>(v, cv)) as u32)
            }};
        }
        let done = match op {
            CmpF64::Eq(c) => cmp1!(_CMP_EQ_OQ, c),
            CmpF64::Ne(c) => cmp1!(_CMP_NEQ_UQ, c),
            CmpF64::Lt(c) => cmp1!(_CMP_LT_OQ, c),
            CmpF64::Le(c) => cmp1!(_CMP_LE_OQ, c),
            CmpF64::Gt(c) => cmp1!(_CMP_GT_OQ, c),
            CmpF64::Ge(c) => cmp1!(_CMP_GE_OQ, c),
            CmpF64::In {
                lo,
                lo_strict,
                hi,
                hi_strict,
            } => {
                let lov = _mm256_set1_pd(lo);
                let hiv = _mm256_set1_pd(hi);
                macro_rules! run2 {
                    ($limm:expr, $himm:expr) => {
                        run!(
                            v,
                            _mm256_movemask_pd(_mm256_and_pd(
                                _mm256_cmp_pd::<$limm>(v, lov),
                                _mm256_cmp_pd::<$himm>(v, hiv)
                            )) as u32
                        )
                    };
                }
                match (lo_strict, hi_strict) {
                    (false, false) => run2!(_CMP_GE_OQ, _CMP_LE_OQ),
                    (false, true) => run2!(_CMP_GE_OQ, _CMP_LT_OQ),
                    (true, false) => run2!(_CMP_GT_OQ, _CMP_LE_OQ),
                    (true, true) => run2!(_CMP_GT_OQ, _CMP_LT_OQ),
                }
            }
        };
        super::scalar::mask_f64(op, &d[done..], &mut m[done..], and);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn mask_bool(src: &[bool], m: &mut [bool], and: bool) {
        if !and {
            m.copy_from_slice(src);
            return;
        }
        let n = m.len();
        let sp = src.as_ptr().cast::<u8>();
        let mp = m.as_mut_ptr().cast::<u8>();
        let mut i = 0usize;
        while i + 32 <= n {
            let a = _mm256_loadu_si256(mp.add(i).cast());
            let b = _mm256_loadu_si256(sp.add(i).cast());
            _mm256_storeu_si256(mp.add(i).cast(), _mm256_and_si256(a, b));
            i += 32;
        }
        super::scalar::mask_bool(&src[i..], &mut m[i..], true);
    }

    // -- reductions ---------------------------------------------------

    /// Horizontal fold of the (y0 = lanes 0..3, y1 = lanes 4..7)
    /// accumulator pair in the canonical halving order.
    #[inline(always)]
    unsafe fn hfold_add(y0: __m256d, y1: __m256d) -> f64 {
        let s = _mm256_add_pd(y0, y1);
        let t = _mm_add_pd(_mm256_castpd256_pd128(s), _mm256_extractf128_pd::<1>(s));
        _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_f64(x: &[f64]) -> f64 {
        let n = x.len();
        let p = x.as_ptr();
        let mut y0 = _mm256_setzero_pd();
        let mut y1 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 8 <= n {
            y0 = _mm256_add_pd(y0, _mm256_loadu_pd(p.add(i)));
            y1 = _mm256_add_pd(y1, _mm256_loadu_pd(p.add(i + 4)));
            i += 8;
        }
        let mut r = hfold_add(y0, y1);
        while i < n {
            r += *p.add(i);
            i += 1;
        }
        r
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_f32(x: &[f32]) -> f64 {
        let n = x.len();
        let p = x.as_ptr();
        let mut y0 = _mm256_setzero_pd();
        let mut y1 = _mm256_setzero_pd();
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm256_loadu_ps(p.add(i));
            y0 = _mm256_add_pd(y0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
            y1 = _mm256_add_pd(y1, _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(v)));
            i += 8;
        }
        let mut r = hfold_add(y0, y1);
        while i < n {
            r += *p.add(i) as f64;
            i += 1;
        }
        r
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum_i64(x: &[i64]) -> i64 {
        let n = x.len();
        let p = x.as_ptr();
        let mut y0 = _mm256_setzero_si256();
        let mut y1 = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 8 <= n {
            y0 = _mm256_add_epi64(y0, _mm256_loadu_si256(p.add(i).cast()));
            y1 = _mm256_add_epi64(y1, _mm256_loadu_si256(p.add(i + 4).cast()));
            i += 8;
        }
        let s = _mm256_add_epi64(y0, y1);
        let t = _mm_add_epi64(_mm256_castsi256_si128(s), _mm256_extracti128_si256::<1>(s));
        let mut r = (_mm_cvtsi128_si64(t) as i64).wrapping_add(_mm_extract_epi64::<1>(t) as i64);
        while i < n {
            r = r.wrapping_add(*p.add(i));
            i += 1;
        }
        r
    }

    /// Vector form of [`super::cmin`]: `blend(a, b, lt(b,a) | unord(a,a))`.
    #[inline(always)]
    unsafe fn vcmin(a: __m256d, b: __m256d) -> __m256d {
        let pick_b = _mm256_or_pd(
            _mm256_cmp_pd::<_CMP_LT_OQ>(b, a),
            _mm256_cmp_pd::<_CMP_UNORD_Q>(a, a),
        );
        _mm256_blendv_pd(a, b, pick_b)
    }

    /// Vector form of [`super::cmax`].
    #[inline(always)]
    unsafe fn vcmax(a: __m256d, b: __m256d) -> __m256d {
        let pick_b = _mm256_or_pd(
            _mm256_cmp_pd::<_CMP_GT_OQ>(b, a),
            _mm256_cmp_pd::<_CMP_UNORD_Q>(a, a),
        );
        _mm256_blendv_pd(a, b, pick_b)
    }

    macro_rules! minmax {
        ($name:ident, $ident:expr, $vop:ident, $sop:path) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(x: &[f64]) -> f64 {
                let n = x.len();
                let p = x.as_ptr();
                let mut y0 = _mm256_set1_pd($ident);
                let mut y1 = _mm256_set1_pd($ident);
                let mut i = 0usize;
                while i + 8 <= n {
                    y0 = $vop(y0, _mm256_loadu_pd(p.add(i)));
                    y1 = $vop(y1, _mm256_loadu_pd(p.add(i + 4)));
                    i += 8;
                }
                let s = $vop(y0, y1);
                let lo = _mm256_castpd256_pd128(s);
                let hi = _mm256_extractf128_pd::<1>(s);
                let t = $vop(_mm256_castpd128_pd256(lo), _mm256_castpd128_pd256(hi));
                let t = _mm256_castpd256_pd128(t);
                let mut r = $sop(_mm_cvtsd_f64(t), _mm_cvtsd_f64(_mm_unpackhi_pd(t, t)));
                while i < n {
                    r = $sop(r, *p.add(i));
                    i += 1;
                }
                r
            }
        };
    }
    minmax!(min_f64, f64::INFINITY, vcmin, super::cmin);
    minmax!(max_f64, f64::NEG_INFINITY, vcmax, super::cmax);

    #[target_feature(enable = "avx2")]
    pub unsafe fn count_true(m: &[bool]) -> usize {
        let n = m.len();
        let p = m.as_ptr().cast::<u8>();
        let zero = _mm256_setzero_si256();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= n {
            let v = _mm256_loadu_si256(p.add(i).cast());
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
            i += 32;
        }
        let t = _mm_add_epi64(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256::<1>(acc),
        );
        let mut c =
            (_mm_cvtsi128_si64(t) as u64).wrapping_add(_mm_extract_epi64::<1>(t) as u64) as usize;
        while i < n {
            c += m[i] as usize;
            i += 1;
        }
        c
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn compact_indices_into(m: &[bool], base: i64, out: &mut Vec<i64>) {
        out.reserve(m.len());
        let n = m.len();
        let p = m.as_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            let chunk = p.add(i).cast::<u64>().read_unaligned();
            if chunk != 0 {
                let mask = bools_to_mask(chunk);
                let pos = &POS8[mask as usize];
                let b = base + i as i64;
                for &off in pos.iter().take(mask.count_ones() as usize) {
                    out.push(b + off as i64);
                }
            }
            i += 8;
        }
        super::scalar::compact_indices_into(&m[i..], base + i as i64, out);
    }

    // -- gather -------------------------------------------------------

    macro_rules! gather64 {
        ($name:ident, $ty:ty, $intr:ident, $cast:ty) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(src: &[$ty], idx: &[i64], out: &mut [$ty]) {
                // Hardware gathers skip bounds checks, so each block is
                // validated first (biased signed compare, so negative
                // indices look huge and fail exactly like `as usize`
                // indexing would); on violation finish with the scalar
                // loop, which panics at the offending index exactly
                // like the reference tier.
                let bias = _mm256_set1_epi64x(i64::MIN);
                let limit = _mm256_set1_epi64x((src.len() as i64).wrapping_add(i64::MIN));
                let n = idx.len();
                let ip = idx.as_ptr();
                let op = out.as_mut_ptr();
                let sp = src.as_ptr().cast::<$cast>();
                let mut i = 0usize;
                while i + 4 <= n {
                    let vi = _mm256_loadu_si256(ip.add(i).cast());
                    let oob =
                        _mm256_movemask_epi8(_mm256_cmpgt_epi64(limit, _mm256_xor_si256(vi, bias)));
                    if oob != -1 {
                        break;
                    }
                    let g = $intr::<8>(sp, vi);
                    std::ptr::write_unaligned(op.add(i).cast(), g);
                    i += 4;
                }
                super::scalar::$name(src, &idx[i..], &mut out[i..]);
            }
        };
    }
    gather64!(gather_i64, i64, _mm256_i64gather_epi64, i64);
    gather64!(gather_f64, f64, _mm256_i64gather_pd, f64);

    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_u32(src: &[u32], idx: &[u32], out: &mut [u32]) {
        // i32 gathers sign-extend indices, so bail to scalar whenever an
        // index (or the source length) doesn't fit in i32.
        if src.len() > i32::MAX as usize {
            return super::scalar::gather_u32(src, idx, out);
        }
        let len = src.len() as u32;
        if idx.iter().any(|&i| i >= len) {
            return super::scalar::gather_u32(src, idx, out);
        }
        let n = idx.len();
        let ip = idx.as_ptr();
        let op = out.as_mut_ptr();
        let sp = src.as_ptr().cast::<i32>();
        let mut i = 0usize;
        while i + 8 <= n {
            let vi = _mm256_loadu_si256(ip.add(i).cast());
            let g = _mm256_i32gather_epi32::<4>(sp, vi);
            std::ptr::write_unaligned(op.add(i).cast(), g);
            i += 8;
        }
        super::scalar::gather_u32(src, &idx[i..], &mut out[i..]);
    }

    // -- hash ---------------------------------------------------------

    /// Low 64 bits of the 64x64 product, via three 32x32 partials.
    #[inline(always)]
    unsafe fn mullo64(a: __m256i, b: __m256i, b_hi: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64::<32>(a);
        let lolo = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(lolo, _mm256_slli_epi64::<32>(cross))
    }

    #[inline(always)]
    unsafe fn vmix64(k: __m256i, fib: __m256i, fib_hi: __m256i) -> __m256i {
        let h = mullo64(k, fib, fib_hi);
        _mm256_xor_si256(h, _mm256_srli_epi64::<32>(h))
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_i64(vals: &[i64], out: &mut [u64]) {
        let fib = _mm256_set1_epi64x(FIB as i64);
        let fib_hi = _mm256_srli_epi64::<32>(fib);
        let n = vals.len();
        let vp = vals.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(vp.add(i).cast());
            _mm256_storeu_si256(op.add(i).cast(), vmix64(v, fib, fib_hi));
            i += 4;
        }
        super::scalar::hash_i64(&vals[i..], &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_combine_i64(acc: &mut [u64], vals: &[i64]) {
        let fib = _mm256_set1_epi64x(FIB as i64);
        let fib_hi = _mm256_srli_epi64::<32>(fib);
        let cmb = _mm256_set1_epi64x(COMBINE as i64);
        let cmb_hi = _mm256_srli_epi64::<32>(cmb);
        let n = vals.len();
        let vp = vals.as_ptr();
        let ap = acc.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(vp.add(i).cast());
            let a = _mm256_loadu_si256(ap.add(i).cast());
            let x = _mm256_xor_si256(a, vmix64(v, fib, fib_hi));
            _mm256_storeu_si256(ap.add(i).cast(), mullo64(x, cmb, cmb_hi));
            i += 4;
        }
        super::scalar::hash_combine_i64(&mut acc[i..], &vals[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn hash_combine_f64(acc: &mut [u64], vals: &[f64]) {
        let fib = _mm256_set1_epi64x(FIB as i64);
        let fib_hi = _mm256_srli_epi64::<32>(fib);
        let cmb = _mm256_set1_epi64x(COMBINE as i64);
        let cmb_hi = _mm256_srli_epi64::<32>(cmb);
        let n = vals.len();
        let vp = vals.as_ptr().cast::<i64>(); // same bit pattern as to_bits
        let ap = acc.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(vp.add(i).cast());
            let a = _mm256_loadu_si256(ap.add(i).cast());
            let x = _mm256_xor_si256(a, vmix64(v, fib, fib_hi));
            _mm256_storeu_si256(ap.add(i).cast(), mullo64(x, cmb, cmb_hi));
            i += 4;
        }
        super::scalar::hash_combine_f64(&mut acc[i..], &vals[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn count_eq_i64(keys: &[i64], key: i64) -> usize {
        let kv = _mm256_set1_epi64x(key);
        let n = keys.len();
        let p = keys.as_ptr();
        let mut c = 0usize;
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_si256(p.add(i).cast());
            c += (_mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, kv))) as u32)
                .count_ones() as usize;
            i += 4;
        }
        c + super::scalar::count_eq_i64(&keys[i..], key)
    }

    // -- decode -------------------------------------------------------

    #[target_feature(enable = "avx2")]
    pub unsafe fn decode_for(bytes: &[u8], width: usize, min: i64, out: &mut [i64]) {
        let n = out.len();
        let bp = bytes.as_ptr();
        let op = out.as_mut_ptr();
        let minv = _mm256_set1_epi64x(min);
        let mut i = 0usize;
        match width {
            1 => {
                while i + 4 <= n {
                    let raw = bp.add(i).cast::<u32>().read_unaligned();
                    let v = _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(raw as i32));
                    _mm256_storeu_si256(op.add(i).cast(), _mm256_add_epi64(minv, v));
                    i += 4;
                }
            }
            2 => {
                while i + 4 <= n {
                    let v = _mm256_cvtepu16_epi64(_mm_loadl_epi64(bp.add(i * 2).cast()));
                    _mm256_storeu_si256(op.add(i).cast(), _mm256_add_epi64(minv, v));
                    i += 4;
                }
            }
            4 => {
                while i + 4 <= n {
                    let v = _mm256_cvtepu32_epi64(_mm_loadu_si128(bp.add(i * 4).cast()));
                    _mm256_storeu_si256(op.add(i).cast(), _mm256_add_epi64(minv, v));
                    i += 4;
                }
            }
            8 => {
                while i + 4 <= n {
                    let v = _mm256_loadu_si256(bp.add(i * 8).cast());
                    _mm256_storeu_si256(op.add(i).cast(), _mm256_add_epi64(minv, v));
                    i += 4;
                }
            }
            _ => {
                // Odd widths: unaligned 8-byte window loads masked down
                // to `width` bytes, while a full window is readable.
                let mask = (1u64 << (8 * width)) - 1;
                while i < n && i * width + 8 <= bytes.len() {
                    let raw = bp.add(i * width).cast::<u64>().read_unaligned() & mask;
                    *op.add(i) = min.wrapping_add(raw as i64);
                    i += 1;
                }
            }
        }
        super::scalar::decode_for(&bytes[i * width..], width, min, &mut out[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn unpack_bits_into(packed: &[u8], out: &mut [bool]) {
        // Byte-at-a-time table expansion: one u64 store per input byte.
        let full = out.len() / 8;
        let op = out.as_mut_ptr();
        for (k, &byte) in packed.iter().enumerate().take(full) {
            op.add(8 * k)
                .cast::<u64>()
                .write_unaligned(super::LUT8[byte as usize]);
        }
        for i in 8 * full..out.len() {
            *op.add(i) = packed[i / 8] & (1 << (i % 8)) != 0;
        }
    }
}

// ---------------------------------------------------------------------
// AVX-512 tier
// ---------------------------------------------------------------------

/// 512-bit implementations (avx512{f,bw,dq,vl}). Kernels without a
/// meaningful 512-bit win (gathers, bit unpack, FOR decode) reuse the
/// AVX2 tier — see [`Level`] docs.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{CmpF64, CmpI64, COMBINE, FIB, LUT8};
    use std::arch::x86_64::*;

    /// Write 8 bool bytes from an 8-lane compare mask.
    #[inline(always)]
    unsafe fn write8(p: *mut bool, mask: u8, and: bool) {
        let bits = LUT8[mask as usize];
        let p = p.cast::<u64>();
        if and {
            p.write_unaligned(p.read_unaligned() & bits);
        } else {
            p.write_unaligned(bits);
        }
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn mask_i64(op: CmpI64, d: &[i64], m: &mut [bool], and: bool) {
        let n = d.len();
        let dp = d.as_ptr();
        let mp = m.as_mut_ptr();
        macro_rules! run {
            ($v:ident, $mask:expr) => {{
                let mut i = 0usize;
                while i + 8 <= n {
                    let $v = _mm512_loadu_si512(dp.add(i).cast());
                    write8(mp.add(i), $mask, and);
                    i += 8;
                }
                i
            }};
        }
        macro_rules! cmp1 {
            ($imm:expr, $c:expr) => {{
                let cv = _mm512_set1_epi64($c);
                run!(v, _mm512_cmp_epi64_mask::<$imm>(v, cv))
            }};
        }
        let done = match op {
            CmpI64::Eq(c) => cmp1!(_MM_CMPINT_EQ, c),
            CmpI64::Ne(c) => cmp1!(_MM_CMPINT_NE, c),
            CmpI64::Lt(c) => cmp1!(_MM_CMPINT_LT, c),
            CmpI64::Le(c) => cmp1!(_MM_CMPINT_LE, c),
            CmpI64::Gt(c) => cmp1!(_MM_CMPINT_NLE, c),
            CmpI64::Ge(c) => cmp1!(_MM_CMPINT_NLT, c),
            CmpI64::In(lo, r) => {
                let lov = _mm512_set1_epi64(lo);
                let rv = _mm512_set1_epi64(r as i64);
                run!(
                    v,
                    _mm512_cmp_epu64_mask::<_MM_CMPINT_LE>(_mm512_sub_epi64(v, lov), rv)
                )
            }
        };
        super::scalar::mask_i64(op, &d[done..], &mut m[done..], and);
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn mask_f64(op: CmpF64, d: &[f64], m: &mut [bool], and: bool) {
        let n = d.len();
        let dp = d.as_ptr();
        let mp = m.as_mut_ptr();
        macro_rules! run {
            ($v:ident, $mask:expr) => {{
                let mut i = 0usize;
                while i + 8 <= n {
                    let $v = _mm512_loadu_pd(dp.add(i));
                    write8(mp.add(i), $mask, and);
                    i += 8;
                }
                i
            }};
        }
        macro_rules! cmp1 {
            ($imm:expr, $c:expr) => {{
                let cv = _mm512_set1_pd($c);
                run!(v, _mm512_cmp_pd_mask::<$imm>(v, cv))
            }};
        }
        let done = match op {
            CmpF64::Eq(c) => cmp1!(_CMP_EQ_OQ, c),
            CmpF64::Ne(c) => cmp1!(_CMP_NEQ_UQ, c),
            CmpF64::Lt(c) => cmp1!(_CMP_LT_OQ, c),
            CmpF64::Le(c) => cmp1!(_CMP_LE_OQ, c),
            CmpF64::Gt(c) => cmp1!(_CMP_GT_OQ, c),
            CmpF64::Ge(c) => cmp1!(_CMP_GE_OQ, c),
            CmpF64::In {
                lo,
                lo_strict,
                hi,
                hi_strict,
            } => {
                let lov = _mm512_set1_pd(lo);
                let hiv = _mm512_set1_pd(hi);
                macro_rules! run2 {
                    ($limm:expr, $himm:expr) => {
                        run!(
                            v,
                            _mm512_cmp_pd_mask::<$limm>(v, lov)
                                & _mm512_cmp_pd_mask::<$himm>(v, hiv)
                        )
                    };
                }
                match (lo_strict, hi_strict) {
                    (false, false) => run2!(_CMP_GE_OQ, _CMP_LE_OQ),
                    (false, true) => run2!(_CMP_GE_OQ, _CMP_LT_OQ),
                    (true, false) => run2!(_CMP_GT_OQ, _CMP_LE_OQ),
                    (true, true) => run2!(_CMP_GT_OQ, _CMP_LT_OQ),
                }
            }
        };
        super::scalar::mask_f64(op, &d[done..], &mut m[done..], and);
    }

    /// Canonical halving fold from one zmm accumulator: the low ymm half
    /// holds lanes 0..3, the high half lanes 4..7 — identical structure
    /// to the AVX2 register pair, hence the identical result.
    #[inline(always)]
    unsafe fn hfold_add(z: __m512d) -> f64 {
        let s = _mm256_add_pd(_mm512_castpd512_pd256(z), _mm512_extractf64x4_pd::<1>(z));
        let t = _mm_add_pd(_mm256_castpd256_pd128(s), _mm256_extractf128_pd::<1>(s));
        _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t))
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn sum_f64(x: &[f64]) -> f64 {
        let n = x.len();
        let p = x.as_ptr();
        let mut z = _mm512_setzero_pd();
        let mut i = 0usize;
        while i + 8 <= n {
            z = _mm512_add_pd(z, _mm512_loadu_pd(p.add(i)));
            i += 8;
        }
        let mut r = hfold_add(z);
        while i < n {
            r += *p.add(i);
            i += 1;
        }
        r
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn sum_i64(x: &[i64]) -> i64 {
        let n = x.len();
        let p = x.as_ptr();
        let mut z = _mm512_setzero_si512();
        let mut i = 0usize;
        while i + 8 <= n {
            z = _mm512_add_epi64(z, _mm512_loadu_si512(p.add(i).cast()));
            i += 8;
        }
        let mut r = _mm512_reduce_add_epi64(z); // wrapping: order-free
        while i < n {
            r = r.wrapping_add(*p.add(i));
            i += 1;
        }
        r
    }

    macro_rules! minmax {
        ($name:ident, $ident:expr, $limm:expr, $sop:path) => {
            #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
            pub unsafe fn $name(x: &[f64]) -> f64 {
                let n = x.len();
                let p = x.as_ptr();
                let mut acc = _mm512_set1_pd($ident);
                let mut i = 0usize;
                while i + 8 <= n {
                    let v = _mm512_loadu_pd(p.add(i));
                    // cmin/cmax: pick v where v <op> acc or acc is NaN.
                    let pick = _mm512_cmp_pd_mask::<$limm>(v, acc)
                        | _mm512_cmp_pd_mask::<_CMP_UNORD_Q>(acc, acc);
                    acc = _mm512_mask_mov_pd(acc, pick, v);
                    i += 8;
                }
                // Same halving order as the scalar fold8 / AVX2 pair.
                let mut lanes = [0.0f64; 8];
                _mm512_storeu_pd(lanes.as_mut_ptr(), acc);
                let mut r = super::fold8(&lanes, $sop);
                while i < n {
                    r = $sop(r, *p.add(i));
                    i += 1;
                }
                r
            }
        };
    }
    minmax!(min_f64, f64::INFINITY, _CMP_LT_OQ, super::cmin);
    minmax!(max_f64, f64::NEG_INFINITY, _CMP_GT_OQ, super::cmax);

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn compact_indices_into(m: &[bool], base: i64, out: &mut Vec<i64>) {
        // Compress-store eight candidate indices per step; each store
        // writes a full vector, so keep 8 lanes of slack capacity.
        out.reserve(m.len() + 8);
        let n = m.len();
        let p = m.as_ptr();
        let iota = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
        let mut len = out.len();
        let dst = out.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            let chunk = p.add(i).cast::<u64>().read_unaligned();
            if chunk != 0 {
                let mask = super::bools_to_mask(chunk);
                let idx = _mm512_add_epi64(iota, _mm512_set1_epi64(base + i as i64));
                let packed = _mm512_maskz_compress_epi64(mask, idx);
                _mm512_storeu_si512(dst.add(len).cast(), packed);
                len += mask.count_ones() as usize;
            }
            i += 8;
        }
        out.set_len(len);
        super::scalar::compact_indices_into(&m[i..], base + i as i64, out);
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn hash_i64(vals: &[i64], out: &mut [u64]) {
        let fib = _mm512_set1_epi64(FIB as i64);
        let n = vals.len();
        let vp = vals.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm512_loadu_si512(vp.add(i).cast());
            let h = _mm512_mullo_epi64(v, fib);
            let h = _mm512_xor_si512(h, _mm512_srli_epi64::<32>(h));
            _mm512_storeu_si512(op.add(i).cast(), h);
            i += 8;
        }
        super::scalar::hash_i64(&vals[i..], &mut out[i..]);
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    unsafe fn hash_combine_bits(acc: &mut [u64], vp: *const i64, n: usize) {
        let fib = _mm512_set1_epi64(FIB as i64);
        let cmb = _mm512_set1_epi64(COMBINE as i64);
        let ap = acc.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            let v = _mm512_loadu_si512(vp.add(i).cast());
            let h = _mm512_mullo_epi64(v, fib);
            let h = _mm512_xor_si512(h, _mm512_srli_epi64::<32>(h));
            let a = _mm512_loadu_si512(ap.add(i).cast());
            let x = _mm512_xor_si512(a, h);
            _mm512_storeu_si512(ap.add(i).cast(), _mm512_mullo_epi64(x, cmb));
            i += 8;
        }
        // Tail is finished by the caller's scalar slice.
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn hash_combine_i64(acc: &mut [u64], vals: &[i64]) {
        let n = vals.len();
        let done = n - n % 8;
        hash_combine_bits(acc, vals.as_ptr(), n);
        super::scalar::hash_combine_i64(&mut acc[done..], &vals[done..]);
    }

    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    pub unsafe fn hash_combine_f64(acc: &mut [u64], vals: &[f64]) {
        let n = vals.len();
        let done = n - n % 8;
        hash_combine_bits(acc, vals.as_ptr().cast::<i64>(), n);
        super::scalar::hash_combine_f64(&mut acc[done..], &vals[done..]);
    }

    macro_rules! gather64 {
        ($name:ident, $ty:ty, $intr:ident, $store:ident, $gty:ty) => {
            #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
            pub unsafe fn $name(src: &[$ty], idx: &[i64], out: &mut [$ty]) {
                // Unsigned per-block bound mask (negative indices look
                // huge, like `as usize`); a violating block falls to the
                // scalar loop, which panics at the offending index.
                let limit = _mm512_set1_epi64(src.len() as i64);
                let n = idx.len();
                let ip = idx.as_ptr();
                let op = out.as_mut_ptr();
                let sp = src.as_ptr().cast::<u8>();
                let mut i = 0usize;
                while i + 8 <= n {
                    let vi = _mm512_loadu_si512(ip.add(i).cast());
                    if _mm512_cmplt_epu64_mask(vi, limit) != 0xFF {
                        break;
                    }
                    let g: $gty = $intr::<8>(vi, sp.cast());
                    $store(op.add(i).cast(), g);
                    i += 8;
                }
                super::scalar::$name(src, &idx[i..], &mut out[i..]);
            }
        };
    }
    gather64!(
        gather_i64,
        i64,
        _mm512_i64gather_epi64,
        _mm512_storeu_si512,
        __m512i
    );
    gather64!(
        gather_f64,
        f64,
        _mm512_i64gather_pd,
        _mm512_storeu_pd,
        __m512d
    );
}

// ---------------------------------------------------------------------
// Dispatching entry points
// ---------------------------------------------------------------------

macro_rules! dispatch {
    // Kernel with distinct AVX2 and AVX-512 implementations.
    ($family:expr, $len:expr, $name:ident ( $($arg:expr),* )) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if $len >= SIMD_MIN {
                match active() {
                    Level::Avx2 => {
                        bump($family);
                        return unsafe { avx2::$name($($arg),*) };
                    }
                    Level::Avx512 => {
                        bump($family);
                        return unsafe { avx512::$name($($arg),*) };
                    }
                    Level::Scalar => {}
                }
            }
        }
        scalar::$name($($arg),*)
    }};
    // Kernel whose widest implementation is the AVX2 one.
    ($family:expr, $len:expr, avx2_only $name:ident ( $($arg:expr),* )) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if $len >= SIMD_MIN && active() != Level::Scalar {
                bump($family);
                return unsafe { avx2::$name($($arg),*) };
            }
        }
        scalar::$name($($arg),*)
    }};
}

/// Filter-mask kernel: `m[i] = op(d[i])` (or `&=` with `and`).
pub fn mask_i64(op: CmpI64, d: &[i64], m: &mut [bool], and: bool) {
    debug_assert_eq!(d.len(), m.len());
    dispatch!(Family::Filter, d.len(), mask_i64(op, d, m, and))
}

/// Filter-mask kernel: `m[i] = op(d[i])` (or `&=` with `and`).
pub fn mask_f64(op: CmpF64, d: &[f64], m: &mut [bool], and: bool) {
    debug_assert_eq!(d.len(), m.len());
    dispatch!(Family::Filter, d.len(), mask_f64(op, d, m, and))
}

/// Bool-column / validity-channel fold: `m[i] = src[i]` (or `&=`).
pub fn mask_bool(src: &[bool], m: &mut [bool], and: bool) {
    debug_assert_eq!(src.len(), m.len());
    dispatch!(Family::Filter, src.len(), avx2_only mask_bool(src, m, and))
}

/// Canonical lane-split float sum (bitwise tier-invariant; see module docs).
pub fn sum_f64(x: &[f64]) -> f64 {
    dispatch!(Family::Reduce, x.len(), sum_f64(x))
}

/// Canonical lane-split `f32 -> f64` sum.
pub fn sum_f32(x: &[f32]) -> f64 {
    dispatch!(Family::Reduce, x.len(), avx2_only sum_f32(x))
}

/// Wrapping integer sum.
pub fn sum_i64(x: &[i64]) -> i64 {
    dispatch!(Family::Reduce, x.len(), sum_i64(x))
}

/// Canonical minimum ([`cmin`] fold, identity `+inf`).
pub fn min_f64(x: &[f64]) -> f64 {
    dispatch!(Family::Reduce, x.len(), min_f64(x))
}

/// Canonical maximum ([`cmax`] fold, identity `-inf`).
pub fn max_f64(x: &[f64]) -> f64 {
    dispatch!(Family::Reduce, x.len(), max_f64(x))
}

/// Count of set bool bytes.
pub fn count_true(m: &[bool]) -> usize {
    dispatch!(Family::Gather, m.len(), avx2_only count_true(m))
}

/// Append the (ascending) positions of set mask bytes, offset by `base`.
pub fn compact_indices_into(m: &[bool], base: i64, out: &mut Vec<i64>) {
    dispatch!(Family::Gather, m.len(), compact_indices_into(m, base, out))
}

/// `out[k] = src[idx[k]]`; panics on an out-of-range index (all tiers).
pub fn gather_i64(src: &[i64], idx: &[i64], out: &mut [i64]) {
    debug_assert_eq!(idx.len(), out.len());
    dispatch!(Family::Gather, idx.len(), gather_i64(src, idx, out))
}

/// `out[k] = src[idx[k]]`; panics on an out-of-range index (all tiers).
pub fn gather_f64(src: &[f64], idx: &[i64], out: &mut [f64]) {
    debug_assert_eq!(idx.len(), out.len());
    dispatch!(Family::Gather, idx.len(), gather_f64(src, idx, out))
}

/// `out[k] = src[idx[k]]` over u32 row ids (hash-engine payload gather).
pub fn gather_u32(src: &[u32], idx: &[u32], out: &mut [u32]) {
    debug_assert_eq!(idx.len(), out.len());
    dispatch!(Family::Gather, idx.len(), avx2_only gather_u32(src, idx, out))
}

/// Blockwise Fibonacci mix: `out[i] = mix64(vals[i] as u64)`.
pub fn hash_i64(vals: &[i64], out: &mut [u64]) {
    debug_assert_eq!(vals.len(), out.len());
    dispatch!(Family::Hash, vals.len(), hash_i64(vals, out))
}

/// Multi-column combine: `acc[i] = (acc[i] ^ mix64(vals[i])) * COMBINE`.
pub fn hash_combine_i64(acc: &mut [u64], vals: &[i64]) {
    debug_assert_eq!(acc.len(), vals.len());
    dispatch!(Family::Hash, vals.len(), hash_combine_i64(acc, vals))
}

/// Multi-column combine over `f64` bit patterns.
pub fn hash_combine_f64(acc: &mut [u64], vals: &[f64]) {
    debug_assert_eq!(acc.len(), vals.len());
    dispatch!(Family::Hash, vals.len(), hash_combine_f64(acc, vals))
}

/// Occurrences of `key` in a bucket-directory key slice.
pub fn count_eq_i64(keys: &[i64], key: i64) -> usize {
    dispatch!(Family::Hash, keys.len(), avx2_only count_eq_i64(keys, key))
}

/// LSB-first validity/bool bitmap expansion.
pub fn unpack_bits_into(packed: &[u8], out: &mut [bool]) {
    dispatch!(Family::Decode, out.len(), avx2_only unpack_bits_into(packed, out))
}

/// Frame-of-reference decode (`width` in 1..=8 bytes per delta;
/// `bytes.len()` must equal `width * out.len()`).
pub fn decode_for(bytes: &[u8], width: usize, min: i64, out: &mut [i64]) {
    assert!((1..=8).contains(&width), "FOR width out of range");
    assert_eq!(bytes.len(), width * out.len(), "FOR payload length");
    dispatch!(Family::Decode, out.len(), avx2_only decode_for(bytes, width, min, out))
}

/// Plain little-endian `i64` column decode (`bytes.len() == 8 * out.len()`).
pub fn decode_i64_le(bytes: &[u8], out: &mut [i64]) {
    assert_eq!(bytes.len(), 8 * out.len(), "plain i64 payload length");
    #[cfg(all(target_arch = "x86_64", target_endian = "little"))]
    {
        if out.len() >= SIMD_MIN && active() != Level::Scalar {
            bump(Family::Decode);
            // On a little-endian host the decoded column *is* the byte
            // stream: one bulk copy, the memory-bandwidth ceiling.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    bytes.as_ptr(),
                    out.as_mut_ptr().cast::<u8>(),
                    bytes.len(),
                );
            }
            return;
        }
    }
    scalar::decode_i64_le(bytes, out)
}

/// Plain little-endian `f64` column decode (`bytes.len() == 8 * out.len()`).
pub fn decode_f64_le(bytes: &[u8], out: &mut [f64]) {
    assert_eq!(bytes.len(), 8 * out.len(), "plain f64 payload length");
    #[cfg(all(target_arch = "x86_64", target_endian = "little"))]
    {
        if out.len() >= SIMD_MIN && active() != Level::Scalar {
            bump(Family::Decode);
            unsafe {
                std::ptr::copy_nonoverlapping(
                    bytes.as_ptr(),
                    out.as_mut_ptr().cast::<u8>(),
                    bytes.len(),
                );
            }
            return;
        }
    }
    scalar::decode_f64_le(bytes, out)
}

/// Run-length fill: append `n` copies of `val`. All tiers lower to
/// `Vec::resize` (a memset — already at memory bandwidth); the dispatch
/// point exists so RLE decode shows up in the decode-family accounting.
pub fn splat_i64(out: &mut Vec<i64>, val: i64, n: usize) {
    if n >= SIMD_MIN && active() != Level::Scalar {
        bump(Family::Decode);
    }
    scalar::splat_i64(out, val, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adversarial f64 pool: NaN payloads, signed zeros, infinities,
    /// subnormals, plus ordinary magnitudes.
    fn evil_f64() -> Vec<f64> {
        vec![
            f64::NAN,
            -f64::NAN,
            0.0,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            5e-324,
            -5e-324,
            1.0,
            -1.0,
            1e300,
            -1e300,
            0.1,
            -0.1,
        ]
    }

    fn evil_i64() -> Vec<i64> {
        vec![
            i64::MIN,
            i64::MIN + 1,
            i64::MAX,
            i64::MAX - 1,
            -1,
            0,
            1,
            42,
            -42,
            1 << 62,
            -(1 << 62),
        ]
    }

    /// Deterministic pseudo-random fill mixing the adversarial pools.
    fn mixed_f64(n: usize) -> Vec<f64> {
        let pool = evil_f64();
        let mut s = 0x9E37_79B9u64;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if s.is_multiple_of(3) {
                    pool[(s >> 32) as usize % pool.len()]
                } else {
                    ((s >> 16) as i32 as f64) / 7.0
                }
            })
            .collect()
    }

    fn mixed_i64(n: usize) -> Vec<i64> {
        let pool = evil_i64();
        let mut s = 0xDEAD_BEEFu64;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if s.is_multiple_of(4) {
                    pool[(s >> 32) as usize % pool.len()]
                } else {
                    (s >> 8) as i64 % 1000
                }
            })
            .collect()
    }

    /// Ragged lengths crossing every tail shape around the lane widths.
    const SIZES: [usize; 10] = [0, 1, 3, 4, 7, 8, 9, 15, 33, 257];

    #[test]
    fn mix64_matches_hash_module() {
        for &k in &[0u64, 1, u64::MAX, 0x1234_5678_9ABC_DEF0] {
            assert_eq!(mix64(k), crate::hash::mix64(k));
        }
    }

    #[test]
    fn mask_kernels_match_scalar() {
        for &n in &SIZES {
            let di = mixed_i64(n.max(20));
            let di = &di[..n];
            let df = mixed_f64(n.max(20));
            let df = &df[..n];
            let iops = [
                CmpI64::Eq(0),
                CmpI64::Ne(42),
                CmpI64::Lt(10),
                CmpI64::Le(i64::MIN),
                CmpI64::Gt(-42),
                CmpI64::Ge(i64::MAX),
                CmpI64::In(-5, 10),
                CmpI64::In(i64::MIN + 1, u64::MAX - 2),
            ];
            let fops = [
                CmpF64::Eq(0.0),
                CmpF64::Ne(0.0),
                CmpF64::Lt(0.5),
                CmpF64::Le(f64::INFINITY),
                CmpF64::Gt(f64::NAN),
                CmpF64::Ge(-0.0),
                CmpF64::In {
                    lo: -1.0,
                    lo_strict: false,
                    hi: 1.0,
                    hi_strict: true,
                },
                CmpF64::In {
                    lo: f64::NEG_INFINITY,
                    lo_strict: true,
                    hi: 0.0,
                    hi_strict: false,
                },
            ];
            for (k, &op) in iops.iter().enumerate() {
                for and in [false, true] {
                    let seed: Vec<bool> = (0..n).map(|i| (i + k) % 3 != 0).collect();
                    let mut a = seed.clone();
                    let mut b = seed.clone();
                    mask_i64(op, di, &mut a, and);
                    scalar::mask_i64(op, di, &mut b, and);
                    assert_eq!(a, b, "mask_i64 {op:?} and={and} n={n}");
                }
            }
            for (k, &op) in fops.iter().enumerate() {
                for and in [false, true] {
                    let seed: Vec<bool> = (0..n).map(|i| (i + k) % 2 == 0).collect();
                    let mut a = seed.clone();
                    let mut b = seed.clone();
                    mask_f64(op, df, &mut a, and);
                    scalar::mask_f64(op, df, &mut b, and);
                    assert_eq!(a, b, "mask_f64 {op:?} and={and} n={n}");
                }
            }
            let src: Vec<bool> = (0..n).map(|i| i % 5 != 0).collect();
            for and in [false, true] {
                let seed: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
                let mut a = seed.clone();
                let mut b = seed;
                mask_bool(&src, &mut a, and);
                scalar::mask_bool(&src, &mut b, and);
                assert_eq!(a, b, "mask_bool and={and} n={n}");
            }
        }
    }

    #[test]
    fn reductions_bitwise_match_scalar() {
        for &n in &SIZES {
            let x = mixed_f64(n);
            // NaN-free variants for sum (a NaN makes both paths NaN, but
            // bit payloads of NaN sums are not meaningful to compare).
            let clean: Vec<f64> = x
                .iter()
                .map(|v| if v.is_nan() { 1.5 } else { *v })
                .collect();
            assert_eq!(
                sum_f64(&clean).to_bits(),
                scalar::sum_f64(&clean).to_bits(),
                "sum_f64 n={n}"
            );
            assert_eq!(
                min_f64(&x).to_bits(),
                scalar::min_f64(&x).to_bits(),
                "min_f64 n={n}"
            );
            assert_eq!(
                max_f64(&x).to_bits(),
                scalar::max_f64(&x).to_bits(),
                "max_f64 n={n}"
            );
            let xi = mixed_i64(n);
            assert_eq!(sum_i64(&xi), scalar::sum_i64(&xi), "sum_i64 n={n}");
            let xs: Vec<f32> = clean.iter().map(|&v| v as f32).collect();
            assert_eq!(
                sum_f32(&xs).to_bits(),
                scalar::sum_f32(&xs).to_bits(),
                "sum_f32 n={n}"
            );
        }
    }

    #[test]
    fn min_max_canonical_semantics() {
        // All-NaN folds to the identity, like the pre-SIMD fold did.
        let nans = vec![f64::NAN; 40];
        assert_eq!(min_f64(&nans), f64::INFINITY);
        assert_eq!(max_f64(&nans), f64::NEG_INFINITY);
        // NaNs between values are ignored.
        let mut v = vec![f64::NAN; 33];
        v[7] = 3.0;
        v[21] = -2.0;
        assert_eq!(min_f64(&v), -2.0);
        assert_eq!(max_f64(&v), 3.0);
        // Signed-zero ties resolve deterministically on every tier.
        let zs = [
            vec![0.0, -0.0],
            vec![-0.0, 0.0],
            vec![0.0; 64],
            vec![-0.0; 64],
        ];
        for z in &zs {
            assert_eq!(min_f64(z).to_bits(), scalar::min_f64(z).to_bits());
            assert_eq!(max_f64(z).to_bits(), scalar::max_f64(z).to_bits());
        }
    }

    #[test]
    fn selection_kernels_match_scalar() {
        for &n in &SIZES {
            for phase in 0..3usize {
                let m: Vec<bool> = (0..n).map(|i| (i + phase) % (phase + 2) == 0).collect();
                assert_eq!(count_true(&m), scalar::count_true(&m), "count_true n={n}");
                let mut a = vec![-7i64];
                let mut b = vec![-7i64];
                compact_indices_into(&m, 100, &mut a);
                scalar::compact_indices_into(&m, 100, &mut b);
                assert_eq!(a, b, "compact n={n} phase={phase}");
            }
            // all-false and all-true masks
            for val in [false, true] {
                let m = vec![val; n];
                let mut a = Vec::new();
                let mut b = Vec::new();
                compact_indices_into(&m, 0, &mut a);
                scalar::compact_indices_into(&m, 0, &mut b);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn gathers_match_scalar() {
        let src = mixed_i64(100);
        let srcf = mixed_f64(100);
        for &n in &SIZES {
            let idx: Vec<i64> = (0..n).map(|i| ((i * 37 + 11) % 100) as i64).collect();
            let mut a = vec![0i64; n];
            let mut b = vec![0i64; n];
            gather_i64(&src, &idx, &mut a);
            scalar::gather_i64(&src, &idx, &mut b);
            assert_eq!(a, b);
            let mut a = vec![0f64; n];
            let mut b = vec![0f64; n];
            gather_f64(&srcf, &idx, &mut a);
            scalar::gather_f64(&srcf, &idx, &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let srcu: Vec<u32> = (0..100u32).map(|i| i * 3).collect();
            let idxu: Vec<u32> = idx.iter().map(|&i| i as u32).collect();
            let mut a = vec![0u32; n];
            let mut b = vec![0u32; n];
            gather_u32(&srcu, &idxu, &mut a);
            scalar::gather_u32(&srcu, &idxu, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    #[should_panic]
    fn gather_out_of_bounds_panics() {
        let src = vec![1i64; 8];
        let idx: Vec<i64> = (0..64).map(|i| if i == 63 { 8 } else { 0 }).collect();
        let mut out = vec![0i64; 64];
        gather_i64(&src, &idx, &mut out);
    }

    #[test]
    fn hash_kernels_match_scalar() {
        for &n in &SIZES {
            let vals = mixed_i64(n);
            let mut a = vec![0u64; n];
            let mut b = vec![0u64; n];
            hash_i64(&vals, &mut a);
            scalar::hash_i64(&vals, &mut b);
            assert_eq!(a, b, "hash_i64 n={n}");
            let seed: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0xABCD)).collect();
            let mut a = seed.clone();
            let mut b = seed.clone();
            hash_combine_i64(&mut a, &vals);
            scalar::hash_combine_i64(&mut b, &vals);
            assert_eq!(a, b, "hash_combine_i64 n={n}");
            let valsf = mixed_f64(n);
            let mut a = seed.clone();
            let mut b = seed;
            hash_combine_f64(&mut a, &valsf);
            scalar::hash_combine_f64(&mut b, &valsf);
            assert_eq!(a, b, "hash_combine_f64 n={n}");
            let key = vals.first().copied().unwrap_or(0);
            assert_eq!(count_eq_i64(&vals, key), scalar::count_eq_i64(&vals, key));
        }
    }

    #[test]
    fn decode_kernels_match_scalar() {
        for &n in &SIZES {
            // validity bitmaps: alternating, all-set, all-clear
            for pat in [0x55u8, 0xFF, 0x00, 0xC3] {
                let packed = vec![pat; n.div_ceil(8)];
                let mut a = vec![false; n];
                let mut b = vec![false; n];
                unpack_bits_into(&packed, &mut a);
                scalar::unpack_bits_into(&packed, &mut b);
                assert_eq!(a, b, "unpack pat={pat:#x} n={n}");
            }
            // FOR at every width, with MIN/MAX-adjacent bases
            for width in 1..=8usize {
                for &min in &[0i64, -5, i64::MIN, i64::MAX - 1000] {
                    let bytes: Vec<u8> = (0..n * width).map(|i| (i * 31 + 7) as u8).collect();
                    let mut a = vec![0i64; n];
                    let mut b = vec![0i64; n];
                    decode_for(&bytes, width, min, &mut a);
                    scalar::decode_for(&bytes, width, min, &mut b);
                    assert_eq!(a, b, "FOR w={width} min={min} n={n}");
                }
            }
            let bytes: Vec<u8> = (0..n * 8).map(|i| (i * 17 + 3) as u8).collect();
            let mut a = vec![0i64; n];
            let mut b = vec![0i64; n];
            decode_i64_le(&bytes, &mut a);
            scalar::decode_i64_le(&bytes, &mut b);
            assert_eq!(a, b);
            let mut a = vec![0f64; n];
            let mut b = vec![0f64; n];
            decode_f64_le(&bytes, &mut a);
            scalar::decode_f64_le(&bytes, &mut b);
            assert_eq!(
                a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn counters_accumulate_when_vectorized() {
        let before = counters();
        let x = mixed_f64(4096);
        let _ = sum_f64(&x);
        let after = counters();
        if level() != Level::Scalar {
            assert!(after.since(&before).reduce >= 1);
        } else {
            assert_eq!(after.since(&before).reduce, 0);
        }
    }
}

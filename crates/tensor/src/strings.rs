//! Kernels over TQP's `(n × m)` right-zero-padded UTF-8 string matrices
//! (paper §2.1), most importantly SQL `LIKE`.
//!
//! `LIKE` patterns compile once per query into a [`LikePattern`]; matching a
//! column is then a vectorized row scan with fast paths for the four shapes
//! that cover every TPC-H predicate (`exact`, `prefix%`, `%suffix`,
//! `%contains%`) and a general wildcard matcher for the rest
//! (e.g. Q13's `'%special%requests%'`).

use crate::pool::par_chunks_mut;
use crate::tensor::Tensor;

/// A compiled `LIKE` pattern. `%` matches any run (possibly empty), `_`
/// matches exactly one byte. (TQP operates on UTF-8 bytes; TPC-H text is
/// ASCII so byte == character.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LikePattern {
    /// No wildcards: equality.
    Exact(Vec<u8>),
    /// `lit%`.
    Prefix(Vec<u8>),
    /// `%lit`.
    Suffix(Vec<u8>),
    /// `%lit%`.
    Contains(Vec<u8>),
    /// Anything else: literal segments separated by `%`; `_` only supported
    /// in the general form. `leading`/`trailing` indicate whether the
    /// pattern starts/ends with `%`.
    General {
        segments: Vec<Vec<u8>>,
        leading: bool,
        trailing: bool,
    },
}

impl LikePattern {
    /// Compile a SQL LIKE pattern string.
    pub fn compile(pattern: &str) -> LikePattern {
        let p = pattern.as_bytes();
        let has_underscore = p.contains(&b'_');
        let pct: Vec<usize> = p
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'%')
            .map(|(i, _)| i)
            .collect();
        if !has_underscore {
            match pct.len() {
                0 => return LikePattern::Exact(p.to_vec()),
                1 if pct[0] == p.len() - 1 => return LikePattern::Prefix(p[..pct[0]].to_vec()),
                1 if pct[0] == 0 => return LikePattern::Suffix(p[1..].to_vec()),
                2 if pct[0] == 0 && pct[1] == p.len() - 1 && p.len() >= 2 => {
                    return LikePattern::Contains(p[1..p.len() - 1].to_vec())
                }
                _ => {}
            }
        }
        let leading = p.first() == Some(&b'%');
        let trailing = p.last() == Some(&b'%');
        let segments: Vec<Vec<u8>> = p
            .split(|&b| b == b'%')
            .filter(|s| !s.is_empty())
            .map(|s| s.to_vec())
            .collect();
        LikePattern::General {
            segments,
            leading,
            trailing,
        }
    }

    /// Match one trimmed byte string.
    pub fn matches(&self, s: &[u8]) -> bool {
        match self {
            LikePattern::Exact(lit) => s == lit.as_slice(),
            LikePattern::Prefix(lit) => s.starts_with(lit),
            LikePattern::Suffix(lit) => s.ends_with(lit),
            LikePattern::Contains(lit) => contains(s, lit),
            LikePattern::General {
                segments,
                leading,
                trailing,
            } => match_general(s, segments, *leading, *trailing),
        }
    }
}

/// Substring search (naive two-pointer; needles are short in practice).
/// `_` inside the needle matches any byte.
fn contains(hay: &[u8], needle: &[u8]) -> bool {
    find_from(hay, needle, 0).is_some()
}

fn seg_match_at(hay: &[u8], needle: &[u8], at: usize) -> bool {
    if at + needle.len() > hay.len() {
        return false;
    }
    hay[at..at + needle.len()]
        .iter()
        .zip(needle)
        .all(|(&h, &n)| n == b'_' || h == n)
}

fn find_from(hay: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() {
        return Some(from.min(hay.len()));
    }
    if from + needle.len() > hay.len() {
        return None;
    }
    (from..=hay.len() - needle.len()).find(|&i| seg_match_at(hay, needle, i))
}

/// General `%`-separated segment matching: first segment anchored at start
/// unless `leading`, last anchored at end unless `trailing`, middle segments
/// greedy left-to-right (correct for `%`-separated literals).
fn match_general(s: &[u8], segments: &[Vec<u8>], leading: bool, trailing: bool) -> bool {
    if segments.is_empty() {
        // Pattern was only '%'s: matches anything (or empty for no-%).
        return leading || trailing || s.is_empty();
    }
    let mut pos = 0usize;
    for (k, seg) in segments.iter().enumerate() {
        let first = k == 0;
        let last = k == segments.len() - 1;
        if first && !leading {
            if !seg_match_at(s, seg, 0) {
                return false;
            }
            pos = seg.len();
            if last && !trailing {
                return pos == s.len();
            }
            continue;
        }
        if last && !trailing {
            // Anchor at end; also must start at or after pos.
            if s.len() < seg.len() {
                return false;
            }
            let at = s.len() - seg.len();
            return at >= pos && seg_match_at(s, seg, at);
        }
        match find_from(s, seg, pos) {
            Some(at) => pos = at + seg.len(),
            None => return false,
        }
    }
    true
}

/// Vectorized `LIKE` over a string matrix: returns a `Bool` mask.
pub fn like(col: &Tensor, pattern: &LikePattern) -> Tensor {
    let n = col.nrows();
    let mut out = vec![false; n];
    par_chunks_mut(&mut out, |s, c| {
        for (i, o) in c.iter_mut().enumerate() {
            *o = pattern.matches(col.str_row_trimmed(s + i));
        }
    });
    Tensor::from_bool(out)
}

/// SQL `SUBSTRING(col, start, len)` with 1-based `start`; returns a new
/// `(n × len)` padded matrix (used by TPC-H Q22's country-code extraction).
pub fn substring(col: &Tensor, start: usize, len: usize) -> Tensor {
    assert!(start >= 1, "SQL SUBSTRING start is 1-based");
    let n = col.nrows();
    let w = len.max(1);
    let mut out = vec![0u8; n * w];
    for i in 0..n {
        let row = col.str_row_trimmed(i);
        let lo = (start - 1).min(row.len());
        let hi = (lo + len).min(row.len());
        out[i * w..i * w + (hi - lo)].copy_from_slice(&row[lo..hi]);
    }
    Tensor::from_u8_matrix(out, n, w)
}

/// Per-row character (byte) length, trimmed of padding.
pub fn char_length(col: &Tensor) -> Tensor {
    let n = col.nrows();
    let mut out = vec![0i64; n];
    par_chunks_mut(&mut out, |s, c| {
        for (i, o) in c.iter_mut().enumerate() {
            *o = col.str_row_trimmed(s + i).len() as i64;
        }
    });
    Tensor::from_i64(out)
}

/// Vectorized prefix test (`starts_with`), a common planner fast path.
pub fn starts_with(col: &Tensor, prefix: &str) -> Tensor {
    like(col, &LikePattern::Prefix(prefix.as_bytes().to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        LikePattern::compile(pat).matches(s.as_bytes())
    }

    #[test]
    fn compile_shapes() {
        assert_eq!(
            LikePattern::compile("abc"),
            LikePattern::Exact(b"abc".to_vec())
        );
        assert_eq!(
            LikePattern::compile("abc%"),
            LikePattern::Prefix(b"abc".to_vec())
        );
        assert_eq!(
            LikePattern::compile("%abc"),
            LikePattern::Suffix(b"abc".to_vec())
        );
        assert_eq!(
            LikePattern::compile("%abc%"),
            LikePattern::Contains(b"abc".to_vec())
        );
        assert!(matches!(
            LikePattern::compile("%a%b%"),
            LikePattern::General { .. }
        ));
    }

    #[test]
    fn exact_prefix_suffix_contains() {
        assert!(m("hello", "hello"));
        assert!(!m("hello", "hell"));
        assert!(m("PROMO%", "PROMO BURNISHED"));
        assert!(!m("PROMO%", "STANDARD"));
        assert!(m("%BRASS", "SMALL BRASS"));
        assert!(!m("%BRASS", "BRASS NICKEL"));
        assert!(m("%green%", "dark green metallic"));
        assert!(m("%green%", "green"));
        assert!(!m("%green%", "gren"));
    }

    #[test]
    fn multi_segment_q13_pattern() {
        assert!(m(
            "%special%requests%",
            "handle special delivery requests now"
        ));
        assert!(!m("%special%requests%", "requests then special"));
        assert!(m("%special%requests%", "specialrequests"));
    }

    #[test]
    fn underscore_wildcards() {
        assert!(m("h_llo", "hello"));
        assert!(!m("h_llo", "hllo"));
        assert!(m("%gr_en%", "big green box"));
        assert!(m("a_c%", "abcdef"));
        assert!(!m("a_c%", "abdef"));
    }

    #[test]
    fn degenerate_patterns() {
        assert!(m("%", "anything"));
        assert!(m("%", ""));
        assert!(m("%%", "x"));
        assert!(m("", ""));
        assert!(!m("", "x"));
    }

    #[test]
    fn anchored_general_both_sides() {
        // No leading/trailing % with a middle %: 'ab%yz'
        assert!(m("ab%yz", "abyz"));
        assert!(m("ab%yz", "ab123yz"));
        assert!(!m("ab%yz", "xab123yz"));
        assert!(!m("ab%yz", "ab123yzx"));
        // Overlap guard: last segment must start after first ends.
        assert!(!m("abc%bcd", "abcd"));
        assert!(m("abc%bcd", "abcbcd"));
    }

    #[test]
    fn like_kernel_on_column() {
        let col = Tensor::from_strings(&["PROMO A", "STD B", "PROMO C"], 0);
        let mask = like(&col, &LikePattern::compile("PROMO%"));
        assert_eq!(mask.as_bool(), &[true, false, true]);
    }

    #[test]
    fn substring_sql_semantics() {
        let col = Tensor::from_strings(&["13-345-222", "9", ""], 0);
        let cc = substring(&col, 1, 2);
        assert_eq!(cc.str_at(0), "13");
        assert_eq!(cc.str_at(1), "9");
        assert_eq!(cc.str_at(2), "");
        let mid = substring(&col, 4, 3);
        assert_eq!(mid.str_at(0), "345");
    }

    #[test]
    fn char_length_trims_padding() {
        let col = Tensor::from_strings(&["abc", "", "zz"], 0);
        assert_eq!(char_length(&col).as_i64(), &[3, 0, 2]);
    }

    #[test]
    fn starts_with_kernel() {
        let col = Tensor::from_strings(&["forest green", "rose", "forestry"], 0);
        assert_eq!(starts_with(&col, "forest").as_bool(), &[true, false, true]);
    }
}

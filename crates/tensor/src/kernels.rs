//! **Fused, type-monomorphized expression kernels.**
//!
//! The generic expression executor (`tqp-exec`'s `exprprog`) dispatches one
//! tensor kernel per op per batch and materializes every intermediate
//! register as a full-width tensor — for a Q6-style filter chain that is
//! five mask allocations plus as many full passes over memory. This module
//! is the specialized alternative: a whole expression program compiled (by
//! `tqp-exec`'s fusion pass) into one [`FusedKernel`] whose execution is a
//! **single chunked pass** over the input columns:
//!
//! * rows are processed in fixed [`CHUNK_ROWS`] blocks so every operand
//!   slice lives in L1 while the op list runs over it;
//! * each op is **type-monomorphized** — the per-dtype inner loops are
//!   macro-generated (`arith_kernel!` / `cmp_kernel!` / `cmp_const_kernel!`)
//!   straight-line `zip` iterations over `&[i64]` / `&[f64]` slices with no
//!   dynamic dispatch inside, exactly the shape the autovectorizer turns
//!   into SIMD;
//! * intermediate registers are tiny reusable chunk buffers (or, for bare
//!   column operands, borrowed input slices — no copy at all), never
//!   full-width tensors;
//! * NULL validity is folded into the filter mask with bitwise AND loops
//!   instead of per-row branching;
//! * filter (mask) execution folds conjunct-at-a-time, **skips the rest of
//!   a chunk** once its mask is all-false, and evaluates per-row string
//!   predicates (`=`/`IN`/`LIKE` on string columns) only for rows still
//!   alive — the selective-compaction idea at chunk granularity.
//!
//! Every inner loop replicates the semantics of the generic kernels in
//! [`crate::ops`] **bit for bit** (wrapping integer arithmetic, integer
//! division by zero yielding 0, plain IEEE float ops, trimmed-byte string
//! comparison). All fused ops are element-wise — no reductions — so chunked
//! evaluation cannot reorder float operations, and results are bitwise
//! identical to the unfused path by construction. The fusion pass (which
//! decides *what* fuses and owns the program-fingerprint cache) lives in
//! `tqp-exec`; this module only knows how to run a compiled kernel.

use crate::ops::{BinOp, CmpOp};
use crate::strings::LikePattern;

/// Rows per execution chunk. 1 Ki rows keeps every live operand slice
/// (8 KiB for an `i64`/`f64` register) comfortably in L1 even for programs
/// with a dozen live registers, while amortizing per-chunk dispatch.
pub const CHUNK_ROWS: usize = 1024;

/// A kernel operand: either a borrowed input-column slice (bare column
/// loads never copy) or a chunk-local register buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KSrc {
    /// Input column channel index (see [`ColInput`] ordering).
    Col(usize),
    /// Class-local register buffer slot.
    Buf(usize),
}

/// One fused op. Register slots are class-local (`i64` / `f64` / `bool`
/// buffers are separate arrays) and SSA-ordered within a class: an op's
/// destination slot is strictly greater than any buffer slot it reads,
/// which is what lets execution split the buffer array mutably without
/// aliasing. Constant operands index the per-execution [`ConstPool`] so a
/// compiled kernel is reusable across prepared-statement re-binds.
#[derive(Debug, Clone, PartialEq)]
pub enum KOp {
    /// Fill `i64` slot `dst` with constant `c` (runs once, not per chunk).
    ConstI64 { dst: usize, c: usize },
    /// Fill `f64` slot `dst` with constant `c` (runs once, not per chunk).
    ConstF64 { dst: usize, c: usize },
    /// Fill `bool` slot `dst` with constant `c` (runs once, not per chunk).
    ConstBool { dst: usize, c: usize },
    /// `dst[i] = src[i] as f64` (the `promote`-mandated widening cast).
    CastI64F64 { dst: usize, src: KSrc },
    /// Integer arithmetic: wrapping, with `/ 0` and `% 0` yielding 0 —
    /// exactly [`crate::ops::binary`]'s integer loop.
    ArithI64 {
        dst: usize,
        op: BinOp,
        a: KSrc,
        b: KSrc,
    },
    /// Float arithmetic: plain IEEE ops, NaN/∞ flow through untouched.
    ArithF64 {
        dst: usize,
        op: BinOp,
        a: KSrc,
        b: KSrc,
    },
    /// Integer negation (wrapping, ≡ release-mode `-x`).
    NegI64 { dst: usize, src: KSrc },
    /// Float negation.
    NegF64 { dst: usize, src: KSrc },
    /// `i64 × i64` comparison.
    CmpI64 {
        dst: usize,
        op: CmpOp,
        a: KSrc,
        b: KSrc,
    },
    /// `f64 × f64` comparison (IEEE partial order, NaN compares false).
    CmpF64 {
        dst: usize,
        op: CmpOp,
        a: KSrc,
        b: KSrc,
    },
    /// `bool × bool` comparison (`false < true`).
    CmpBool {
        dst: usize,
        op: CmpOp,
        a: KSrc,
        b: KSrc,
    },
    /// `i64` column/register vs. broadcast constant — the hottest TPC-H
    /// filter kernel, ≡ [`crate::ops::compare_scalar`]'s `i64` fast path.
    CmpConstI64 {
        dst: usize,
        op: CmpOp,
        src: KSrc,
        c: usize,
    },
    /// `f64` vs. broadcast constant.
    CmpConstF64 {
        dst: usize,
        op: CmpOp,
        src: KSrc,
        c: usize,
    },
    /// `bool` vs. broadcast constant.
    CmpConstBool {
        dst: usize,
        op: CmpOp,
        src: KSrc,
        c: usize,
    },
    /// String column row (trailing-zero-trimmed) vs. constant byte string.
    /// Mask-mode execution evaluates only rows still alive in the mask.
    CmpStrConst {
        dst: usize,
        col: usize,
        op: CmpOp,
        c: usize,
    },
    /// `src IN (list)` over `i64` (OR-fold of equality tests).
    InListI64 {
        dst: usize,
        src: KSrc,
        c: usize,
        negated: bool,
    },
    /// `src IN (list)` over `f64`.
    InListF64 {
        dst: usize,
        src: KSrc,
        c: usize,
        negated: bool,
    },
    /// String-column `IN` over trimmed rows; mask-guarded like
    /// [`KOp::CmpStrConst`].
    InListStr {
        dst: usize,
        col: usize,
        c: usize,
        negated: bool,
    },
    /// SQL `LIKE` over a string column (pre-compiled pattern);
    /// mask-guarded.
    LikeStr {
        dst: usize,
        col: usize,
        c: usize,
        negated: bool,
    },
    /// Logical AND of two bool registers.
    And { dst: usize, a: KSrc, b: KSrc },
    /// Logical OR.
    Or { dst: usize, a: KSrc, b: KSrc },
    /// Logical NOT.
    Not { dst: usize, src: KSrc },
    /// SQL `IS [NOT] NULL`: true where any listed validity channel is
    /// false. With no channels (statically never-NULL input) the result is
    /// the constant `negated`.
    IsNull {
        dst: usize,
        vchans: Vec<usize>,
        negated: bool,
    },
}

/// One filter conjunct of a mask-mode kernel: the ops in `ops[start..end]`
/// must have run for `reg` to be readable; `vchans` are the validity
/// channels folded into the mask alongside the conjunct value (NULL =
/// drop, the SQL three-valued filter rule).
#[derive(Debug, Clone, PartialEq)]
pub struct KConjunct {
    pub end: usize,
    /// Bool slot holding the conjunct value, or `None` when the conjunct
    /// is a bare bool column (folded straight from the input).
    pub reg: Option<usize>,
    /// Bool column channel folded directly (bare-column conjunct).
    pub col: Option<usize>,
    pub vchans: Vec<usize>,
}

/// One output of an outputs-mode kernel (projection / aggregate-input /
/// sort-key evaluation). The host materializes bare column outputs and
/// validity tensors itself; the kernel only fills register-valued outputs.
#[derive(Debug, Clone, PartialEq)]
pub enum KOut {
    /// Copy `i64` slot per chunk into a full-width output vector.
    I64(usize),
    /// Copy `f64` slot per chunk.
    F64(usize),
    /// Copy `bool` slot per chunk.
    Bool(usize),
    /// Bare column passthrough: the host Arc-clones the input tensor.
    Col(usize),
}

/// Per-execution constant pools, extracted from the live (parameter-bound)
/// expression program by the fusion layer. Kept separate from the compiled
/// op list so prepared-statement re-binding patches constants without
/// recompiling the kernel.
#[derive(Debug, Default)]
pub struct ConstPool {
    pub i64s: Vec<i64>,
    pub f64s: Vec<f64>,
    pub bools: Vec<bool>,
    /// Byte needles for string comparison (compared against trimmed rows).
    pub strs: Vec<Vec<u8>>,
    pub i64_lists: Vec<Vec<i64>>,
    pub f64_lists: Vec<Vec<f64>>,
    pub str_lists: Vec<Vec<Vec<u8>>>,
    pub likes: Vec<LikePattern>,
}

/// A borrowed input column in kernel form.
pub enum ColInput<'a> {
    I64(&'a [i64]),
    F64(&'a [f64]),
    Bool(&'a [bool]),
    /// Padded `n × width` string matrix bytes.
    Str {
        data: &'a [u8],
        width: usize,
    },
}

/// A compiled fused kernel: the op list plus the register-file shape. Mask
/// kernels additionally carry conjunct boundaries; output kernels carry
/// the output list.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedKernel {
    pub ops: Vec<KOp>,
    pub n_i64: usize,
    pub n_f64: usize,
    pub n_bool: usize,
    /// Conjunct structure (mask-mode kernels; empty for output kernels).
    pub conjuncts: Vec<KConjunct>,
    /// Output list (output-mode kernels; empty for mask kernels).
    pub outs: Vec<KOut>,
}

/// A materialized output column from [`FusedKernel::run_outputs`].
pub enum KOutValue {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Bool(Vec<bool>),
    /// Bare column passthrough (channel index): host clones the tensor.
    Col(usize),
}

/// One predicate of a dense mask plan, in **canonical interval form**.
/// When every conjunct of a mask kernel is a single
/// compare-against-constant over a directly loaded column (or a bare bool
/// column) — the dominant TPC-H filter pattern (Q1/Q6 date windows,
/// quantity/discount ranges) — [`FusedKernel::run_mask`] skips the
/// chunked register-file machinery and AND-folds one vectorized pass per
/// predicate straight into the output mask. Before executing, the plan
/// **merges every compare against the same column into one interval
/// test**: `ship >= lo AND ship < hi` (the `BETWEEN` idiom) collapses
/// from two passes into a single branchless wrapping-subtract range
/// check, so Q6's five compares over three columns run as three passes.
/// Measured on the 299k-row Q6 site that is ~2.2× faster than
/// pass-per-compare and ~2.6× faster than the chunked register-file
/// path, which per conjunct pays a compare pass plus a mask-fold pass.
///
/// Canonicalization is exact, not approximate:
///
/// * `i64` compares become **closed** intervals (`Gt c` ⇒ `[c+1, MAX]`,
///   `Lt c` ⇒ `[MIN, c-1]`, `Eq c` ⇒ `[c, c]`), with the `c = MAX`/`MIN`
///   overflow cases folded to a constant-false plan. The per-row test
///   `(x - lo) as u64 <= (hi - lo) as u64` is exact for every closed
///   `i64` interval: for `x >= lo` the subtraction is the true distance,
///   and for `x < lo` it wraps to at least `2^64 - (lo - x) >
///   hi - lo` since `hi - x < 2^64`.
/// * `f64` compares become bound pairs with strictness flags, defaulting
///   to `[-inf, +inf]` non-strict — vacuous for every non-NaN value and
///   false for NaN, exactly like the original compare. Bound merging
///   picks the larger `lo` / smaller `hi` and ORs strictness on ties, so
///   `-0.0`/`+0.0` ties (equal under IEEE) keep IEEE semantics. A NaN
///   constant makes `Eq`/`Lt`/`Le`/`Gt`/`Ge` constant-false and `Ne`
///   constant-true (dropped), again exactly the compare's behavior.
/// * `Ne` stays its own pass (its row set is not an interval).
///
/// Validity channels present at runtime become [`DensePred::Valid`] fold
/// steps; the (overwhelmingly common) statically-referenced but all-valid
/// channels cost nothing. Every pass uses plain Rust comparison operators
/// on the same values, and AND is commutative and side-effect free, so
/// the produced mask is bit-identical to the chunked path's.
#[derive(Debug, Clone, Copy)]
enum DensePred {
    /// `lo <= col[i] <= hi` (closed interval, merged `i64` compares).
    I64In { col: usize, lo: i64, hi: i64 },
    /// `col[i] != c`.
    I64Ne { col: usize, c: i64 },
    /// `lo <[=] col[i] <[=] hi` (strictness per bound, merged `f64`
    /// compares; NaN rows always fail).
    F64In {
        col: usize,
        lo: f64,
        lo_strict: bool,
        hi: f64,
        hi_strict: bool,
    },
    /// `col[i] != c` (true for NaN rows, like the operator).
    F64Ne { col: usize, c: f64 },
    /// Bare bool column conjunct.
    BoolCol { col: usize },
    /// Fold a validity channel that is present at runtime (`NULL` = drop).
    Valid { vc: usize },
}

/// A canonicalized dense mask plan: the predicate passes, or the
/// degenerate constant-false plan (some merged interval is empty — e.g.
/// `x < 5 AND x > 9` — so no row can pass).
enum DensePlan {
    Preds(Vec<DensePred>),
    ConstFalse,
}

/// Fold one [`DensePred`] pass over a row range into a mask slice
/// through the explicit SIMD layer (`and = false` writes the mask,
/// `true` AND-folds into it). The predicate lowers to a canonical
/// [`crate::simd::CmpI64`]/[`crate::simd::CmpF64`] op — single-bounded
/// intervals (`<= c`, `>= c` — Q1's whole filter) as one plain compare,
/// true two-sided ranges as the wrapping-subtract form; a non-strict
/// infinite `f64` bound rejects only NaN, which the opposite bound's
/// compare already does, so it drops (when both bounds are vacuous — a
/// literal `x <= inf` — one compare must still run for the NaN
/// rejection). The scalar tier of each mask kernel is the same plain
/// Rust comparison loop this path ran before the SIMD layer existed.
#[inline(always)]
fn i64_col<'a>(cols: &[ColInput<'a>], ch: usize) -> &'a [i64] {
    match cols[ch] {
        ColInput::I64(d) => d,
        _ => unreachable!("dense predicate channel must be i64"),
    }
}

#[inline(always)]
fn f64_col<'a>(cols: &[ColInput<'a>], ch: usize) -> &'a [f64] {
    match cols[ch] {
        ColInput::F64(d) => d,
        _ => unreachable!("dense predicate channel must be f64"),
    }
}

#[inline(always)]
fn bool_col<'a>(cols: &[ColInput<'a>], ch: usize) -> &'a [bool] {
    match cols[ch] {
        ColInput::Bool(d) => d,
        _ => unreachable!("dense predicate channel must be bool"),
    }
}

/// Lower a [`CmpOp`]-against-constant to the canonical SIMD-layer op.
#[inline(always)]
fn cmp_const_i64(op: CmpOp, c: i64) -> crate::simd::CmpI64 {
    use crate::simd::CmpI64;
    match op {
        CmpOp::Eq => CmpI64::Eq(c),
        CmpOp::Ne => CmpI64::Ne(c),
        CmpOp::Lt => CmpI64::Lt(c),
        CmpOp::Le => CmpI64::Le(c),
        CmpOp::Gt => CmpI64::Gt(c),
        CmpOp::Ge => CmpI64::Ge(c),
    }
}

/// Lower a [`CmpOp`]-against-constant to the canonical SIMD-layer op.
#[inline(always)]
fn cmp_const_f64(op: CmpOp, c: f64) -> crate::simd::CmpF64 {
    use crate::simd::CmpF64;
    match op {
        CmpOp::Eq => CmpF64::Eq(c),
        CmpOp::Ne => CmpF64::Ne(c),
        CmpOp::Lt => CmpF64::Lt(c),
        CmpOp::Le => CmpF64::Le(c),
        CmpOp::Gt => CmpF64::Gt(c),
        CmpOp::Ge => CmpF64::Ge(c),
    }
}

fn dense_pred_fold(
    p: &DensePred,
    m: &mut [bool],
    cols: &[ColInput],
    validity: &[Option<&[bool]>],
    s: usize,
    e: usize,
    and: bool,
) {
    use crate::simd::{CmpF64, CmpI64};
    match *p {
        DensePred::I64In { col, lo, hi } => {
            let op = if lo == i64::MIN {
                CmpI64::Le(hi)
            } else if hi == i64::MAX {
                CmpI64::Ge(lo)
            } else {
                CmpI64::In(lo, hi.wrapping_sub(lo) as u64)
            };
            crate::simd::mask_i64(op, &i64_col(cols, col)[s..e], m, and);
        }
        DensePred::I64Ne { col, c } => {
            crate::simd::mask_i64(CmpI64::Ne(c), &i64_col(cols, col)[s..e], m, and);
        }
        DensePred::F64In {
            col,
            lo,
            lo_strict,
            hi,
            hi_strict,
        } => {
            let lo_vac = lo == f64::NEG_INFINITY && !lo_strict;
            let hi_vac = hi == f64::INFINITY && !hi_strict;
            let op = match (lo_vac, hi_vac) {
                (true, true) => CmpF64::Le(hi),
                (true, false) if hi_strict => CmpF64::Lt(hi),
                (true, false) => CmpF64::Le(hi),
                (false, true) if lo_strict => CmpF64::Gt(lo),
                (false, true) => CmpF64::Ge(lo),
                (false, false) => CmpF64::In {
                    lo,
                    lo_strict,
                    hi,
                    hi_strict,
                },
            };
            crate::simd::mask_f64(op, &f64_col(cols, col)[s..e], m, and);
        }
        DensePred::F64Ne { col, c } => {
            crate::simd::mask_f64(CmpF64::Ne(c), &f64_col(cols, col)[s..e], m, and);
        }
        DensePred::BoolCol { col } => {
            crate::simd::mask_bool(&bool_col(cols, col)[s..e], m, and);
        }
        DensePred::Valid { vc } => {
            let v = validity[vc].expect("Valid pred requires a present channel");
            crate::simd::mask_bool(&v[s..e], m, and);
        }
    }
}

/// Chunk-local register file. Buffers are allocated once per kernel run
/// and reused across chunks; constant slots are filled once in a prologue.
struct RegFile {
    i64s: Vec<Vec<i64>>,
    f64s: Vec<Vec<f64>>,
    bools: Vec<Vec<bool>>,
}

impl RegFile {
    fn new(k: &FusedKernel) -> RegFile {
        RegFile {
            i64s: vec![vec![0i64; CHUNK_ROWS]; k.n_i64],
            f64s: vec![vec![0f64; CHUNK_ROWS]; k.n_f64],
            bools: vec![vec![false; CHUNK_ROWS]; k.n_bool],
        }
    }
}

/// Trailing-zero-trimmed row `i` of a padded string matrix — must match
/// `Tensor::str_row_trimmed` byte for byte.
#[inline]
pub fn trimmed_row(data: &[u8], width: usize, i: usize) -> &[u8] {
    let row = &data[i * width..(i + 1) * width];
    let end = row.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
    &row[..end]
}

// ---------------------------------------------------------------------
// Monomorphized inner loops
// ---------------------------------------------------------------------

// Integer arithmetic loop: wrapping ops; `/ 0` and `% 0` yield 0. The
// `$op` match hoists outside the row loop, so each arm is a bare slice
// iteration the autovectorizer can unroll.
macro_rules! arith_int_kernel {
    ($op:expr, $a:expr, $b:expr, $out:expr) => {{
        let (a, b, out) = ($a, $b, $out);
        match $op {
            BinOp::Add => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x.wrapping_add(y);
                }
            }
            BinOp::Sub => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x.wrapping_sub(y);
                }
            }
            BinOp::Mul => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x.wrapping_mul(y);
                }
            }
            BinOp::Div => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = if y == 0 { 0 } else { x.wrapping_div(y) };
                }
            }
            BinOp::Mod => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = if y == 0 { 0 } else { x.wrapping_rem(y) };
                }
            }
        }
    }};
}

// Float arithmetic loop: plain IEEE ops (including `%`), matching
// `ops::binary`'s float arm exactly.
macro_rules! arith_float_kernel {
    ($op:expr, $a:expr, $b:expr, $out:expr) => {{
        let (a, b, out) = ($a, $b, $out);
        match $op {
            BinOp::Add => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x + y;
                }
            }
            BinOp::Sub => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x - y;
                }
            }
            BinOp::Mul => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x * y;
                }
            }
            BinOp::Div => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x / y;
                }
            }
            BinOp::Mod => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x % y;
                }
            }
        }
    }};
}

// Element × element comparison.
macro_rules! cmp_kernel {
    ($op:expr, $a:expr, $b:expr, $out:expr) => {{
        let (a, b, out) = ($a, $b, $out);
        match $op {
            CmpOp::Eq => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x == y;
                }
            }
            CmpOp::Ne => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x != y;
                }
            }
            CmpOp::Lt => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x < y;
                }
            }
            CmpOp::Le => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x <= y;
                }
            }
            CmpOp::Gt => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x > y;
                }
            }
            CmpOp::Ge => {
                for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
                    *o = x >= y;
                }
            }
        }
    }};
}

// Element × broadcast-constant comparison (the Q6 inner loop).
macro_rules! cmp_const_kernel {
    ($op:expr, $a:expr, $v:expr, $out:expr) => {{
        let (a, v, out) = ($a, $v, $out);
        match $op {
            CmpOp::Eq => {
                for (o, &x) in out.iter_mut().zip(a) {
                    *o = x == v;
                }
            }
            CmpOp::Ne => {
                for (o, &x) in out.iter_mut().zip(a) {
                    *o = x != v;
                }
            }
            CmpOp::Lt => {
                for (o, &x) in out.iter_mut().zip(a) {
                    *o = x < v;
                }
            }
            CmpOp::Le => {
                for (o, &x) in out.iter_mut().zip(a) {
                    *o = x <= v;
                }
            }
            CmpOp::Gt => {
                for (o, &x) in out.iter_mut().zip(a) {
                    *o = x > v;
                }
            }
            CmpOp::Ge => {
                for (o, &x) in out.iter_mut().zip(a) {
                    *o = x >= v;
                }
            }
        }
    }};
}

impl FusedKernel {
    /// Execute in **mask mode**: AND-fold every conjunct (value and
    /// validity) into one full-width boolean mask. `cols` are the input
    /// channels (full columns), `validity[v]` the validity channels
    /// (`None` = all rows valid — channel statically referenced but absent
    /// in this batch), `n` the row count. All-compare conjunct chains take
    /// the dense fast path (see [`DensePred`]); everything else evaluates
    /// chunk at a time.
    pub fn run_mask(
        &self,
        cols: &[ColInput],
        validity: &[Option<&[bool]>],
        consts: &ConstPool,
        n: usize,
    ) -> Vec<bool> {
        match self.dense_plan(validity, consts) {
            Some(DensePlan::ConstFalse) => vec![false; n],
            Some(DensePlan::Preds(preds)) => self.run_mask_dense(&preds, cols, validity, n),
            None => self.run_mask_chunked(cols, validity, consts, n),
        }
    }

    /// Does this mask kernel qualify for the dense fast path? Every
    /// conjunct must be a single compare-against-constant over a direct
    /// column load (or a bare bool column); qualifying compares are
    /// canonicalized and merged per column as described on [`DensePred`].
    /// Validity channels are resolved against the **runtime** batch:
    /// channels absent at runtime (`None` = all rows valid, the
    /// overwhelmingly common case) vanish from the plan; present ones
    /// become [`DensePred::Valid`] fold steps. Extraction is a handful of
    /// enum matches over the (tiny) op list per call — negligible next to
    /// any per-row work.
    fn dense_plan(&self, validity: &[Option<&[bool]>], consts: &ConstPool) -> Option<DensePlan> {
        if self.conjuncts.is_empty() {
            return None;
        }
        let mut preds: Vec<DensePred> = Vec::with_capacity(self.conjuncts.len());
        let merge_i64 = |preds: &mut Vec<DensePred>, col: usize, lo: i64, hi: i64| -> bool {
            for p in preds.iter_mut() {
                if let DensePred::I64In {
                    col: c0,
                    lo: l0,
                    hi: h0,
                } = p
                {
                    if *c0 == col {
                        *l0 = (*l0).max(lo);
                        *h0 = (*h0).min(hi);
                        return *l0 <= *h0;
                    }
                }
            }
            preds.push(DensePred::I64In { col, lo, hi });
            true
        };
        let merge_f64 = |preds: &mut Vec<DensePred>,
                         col: usize,
                         lo: f64,
                         ls: bool,
                         hi: f64,
                         hs: bool|
         -> bool {
            for p in preds.iter_mut() {
                if let DensePred::F64In {
                    col: c0,
                    lo: l0,
                    lo_strict: s0,
                    hi: h0,
                    hi_strict: t0,
                } = p
                {
                    if *c0 == col {
                        // Larger lower bound wins; on an (IEEE-equal) tie
                        // — including -0.0 vs +0.0 — strictness ORs, so
                        // the kept bound value never changes which rows
                        // pass.
                        if lo > *l0 {
                            *l0 = lo;
                            *s0 = ls;
                        } else if lo == *l0 {
                            *s0 |= ls;
                        }
                        if hi < *h0 {
                            *h0 = hi;
                            *t0 = hs;
                        } else if hi == *h0 {
                            *t0 |= hs;
                        }
                        return *l0 < *h0 || (*l0 == *h0 && !*s0 && !*t0);
                    }
                }
            }
            preds.push(DensePred::F64In {
                col,
                lo,
                lo_strict: ls,
                hi,
                hi_strict: hs,
            });
            true
        };
        let mut start = 0;
        for cj in &self.conjuncts {
            if let Some(chan) = cj.col {
                // Bare bool column conjuncts lower to no kernel ops.
                if cj.end != start {
                    return None;
                }
                preds.push(DensePred::BoolCol { col: chan });
            } else {
                let reg = cj.reg?;
                if cj.end != start + 1 {
                    return None;
                }
                match self.ops[start] {
                    KOp::CmpConstI64 {
                        dst,
                        op,
                        src: KSrc::Col(col),
                        c,
                    } if dst == reg => {
                        let c = consts.i64s[c];
                        let iv = match op {
                            CmpOp::Eq => Some((c, c)),
                            CmpOp::Ne => {
                                preds.push(DensePred::I64Ne { col, c });
                                None
                            }
                            // `< MIN` / `> MAX` have no closed form — and
                            // no satisfying row.
                            CmpOp::Lt if c == i64::MIN => return Some(DensePlan::ConstFalse),
                            CmpOp::Gt if c == i64::MAX => return Some(DensePlan::ConstFalse),
                            CmpOp::Lt => Some((i64::MIN, c - 1)),
                            CmpOp::Le => Some((i64::MIN, c)),
                            CmpOp::Gt => Some((c + 1, i64::MAX)),
                            CmpOp::Ge => Some((c, i64::MAX)),
                        };
                        if let Some((lo, hi)) = iv {
                            if !merge_i64(&mut preds, col, lo, hi) {
                                return Some(DensePlan::ConstFalse);
                            }
                        }
                    }
                    KOp::CmpConstF64 {
                        dst,
                        op,
                        src: KSrc::Col(col),
                        c,
                    } if dst == reg => {
                        let c = consts.f64s[c];
                        if c.is_nan() {
                            // Every compare against NaN is false — except
                            // `!=`, which is true for every row.
                            if op == CmpOp::Ne {
                                start = cj.end;
                                for &vc in &cj.vchans {
                                    if validity[vc].is_some() {
                                        preds.push(DensePred::Valid { vc });
                                    }
                                }
                                continue;
                            }
                            return Some(DensePlan::ConstFalse);
                        }
                        let iv = match op {
                            CmpOp::Eq => Some((c, false, c, false)),
                            CmpOp::Ne => {
                                preds.push(DensePred::F64Ne { col, c });
                                None
                            }
                            CmpOp::Lt => Some((f64::NEG_INFINITY, false, c, true)),
                            CmpOp::Le => Some((f64::NEG_INFINITY, false, c, false)),
                            CmpOp::Gt => Some((c, true, f64::INFINITY, false)),
                            CmpOp::Ge => Some((c, false, f64::INFINITY, false)),
                        };
                        if let Some((lo, ls, hi, hs)) = iv {
                            if !merge_f64(&mut preds, col, lo, ls, hi, hs) {
                                return Some(DensePlan::ConstFalse);
                            }
                        }
                    }
                    _ => return None,
                }
                start = cj.end;
            }
            for &vc in &cj.vchans {
                if validity[vc].is_some() {
                    preds.push(DensePred::Valid { vc });
                }
            }
        }
        Some(DensePlan::Preds(preds))
    }

    /// Dense execution of a canonicalized mask plan (see [`DensePred`]):
    /// per [`CHUNK_ROWS`] block, the first predicate writes the mask
    /// slice and every later predicate AND-folds one more vectorized pass
    /// into it. Chunking keeps the block's mask in L1 across passes.
    /// Skips the register file and per-chunk fold machinery entirely,
    /// which also makes 1-4 row prepared-statement batches cheap.
    fn run_mask_dense(
        &self,
        preds: &[DensePred],
        cols: &[ColInput],
        validity: &[Option<&[bool]>],
        n: usize,
    ) -> Vec<bool> {
        // Every predicate canonicalized away (e.g. a lone `x != NaN`):
        // the conjunction is vacuously true.
        let Some((first, rest)) = preds.split_first() else {
            return vec![true; n];
        };
        let mut mask: Vec<bool> = vec![false; n];
        let mut s = 0usize;
        while s < n {
            let e = (s + CHUNK_ROWS).min(n);
            let m = &mut mask[s..e];
            dense_pred_fold(first, m, cols, validity, s, e, false);
            for p in rest {
                dense_pred_fold(p, m, cols, validity, s, e, true);
            }
            s = e;
        }
        mask
    }

    /// Chunked full-width mask execution — the general path for conjuncts
    /// with arithmetic, string predicates, OR-trees, or validity folds.
    fn run_mask_chunked(
        &self,
        cols: &[ColInput],
        validity: &[Option<&[bool]>],
        consts: &ConstPool,
        n: usize,
    ) -> Vec<bool> {
        let mut mask = vec![false; n];
        let mut regs = RegFile::new(self);
        self.const_prologue(&mut regs, consts);
        let mut base = 0;
        while base < n {
            let len = (n - base).min(CHUNK_ROWS);
            let m = &mut mask[base..base + len];
            m.fill(true);
            let mut start = 0;
            for cj in &self.conjuncts {
                self.exec_range(
                    start..cj.end,
                    &mut regs,
                    cols,
                    validity,
                    consts,
                    base,
                    len,
                    Some(&*m),
                );
                start = cj.end;
                // Fold the conjunct value...
                if let Some(reg) = cj.reg {
                    crate::simd::mask_bool(&regs.bools[reg][..len], m, true);
                } else if let Some(chan) = cj.col {
                    let ColInput::Bool(col) = cols[chan] else {
                        unreachable!("bare-column conjunct channel must be bool");
                    };
                    crate::simd::mask_bool(&col[base..base + len], m, true);
                }
                // ...then its validity channels (NULL = drop).
                for &vc in &cj.vchans {
                    if let Some(v) = validity[vc] {
                        crate::simd::mask_bool(&v[base..base + len], m, true);
                    }
                }
                // Chunk short-circuit: nothing alive, skip the remaining
                // (often most expensive) conjuncts for this chunk.
                if !m.iter().any(|&x| x) {
                    break;
                }
            }
            base += len;
        }
        mask
    }

    /// Execute in **outputs mode**: every output register materialized
    /// full-width. String predicates run unguarded (all rows). Validity
    /// tensors are assembled by the host from the statically-known
    /// channel sets; the kernel only produces values.
    pub fn run_outputs(
        &self,
        cols: &[ColInput],
        validity: &[Option<&[bool]>],
        consts: &ConstPool,
        n: usize,
    ) -> Vec<KOutValue> {
        let mut outs: Vec<KOutValue> = self
            .outs
            .iter()
            .map(|o| match o {
                KOut::I64(_) => KOutValue::I64(vec![0i64; n]),
                KOut::F64(_) => KOutValue::F64(vec![0f64; n]),
                KOut::Bool(_) => KOutValue::Bool(vec![false; n]),
                KOut::Col(c) => KOutValue::Col(*c),
            })
            .collect();
        let mut regs = RegFile::new(self);
        self.const_prologue(&mut regs, consts);
        let mut base = 0;
        while base < n {
            let len = (n - base).min(CHUNK_ROWS);
            self.exec_range(
                0..self.ops.len(),
                &mut regs,
                cols,
                validity,
                consts,
                base,
                len,
                None,
            );
            for (spec, out) in self.outs.iter().zip(outs.iter_mut()) {
                match (spec, out) {
                    (KOut::I64(s), KOutValue::I64(v)) => {
                        v[base..base + len].copy_from_slice(&regs.i64s[*s][..len])
                    }
                    (KOut::F64(s), KOutValue::F64(v)) => {
                        v[base..base + len].copy_from_slice(&regs.f64s[*s][..len])
                    }
                    (KOut::Bool(s), KOutValue::Bool(v)) => {
                        v[base..base + len].copy_from_slice(&regs.bools[*s][..len])
                    }
                    (KOut::Col(_), KOutValue::Col(_)) => {}
                    _ => unreachable!("output spec/value class mismatch"),
                }
            }
            base += len;
        }
        outs
    }

    /// Fill constant register slots (chunk-invariant: runs once per kernel
    /// execution, before the chunk loop).
    fn const_prologue(&self, regs: &mut RegFile, consts: &ConstPool) {
        for op in &self.ops {
            match *op {
                KOp::ConstI64 { dst, c } => regs.i64s[dst].fill(consts.i64s[c]),
                KOp::ConstF64 { dst, c } => regs.f64s[dst].fill(consts.f64s[c]),
                KOp::ConstBool { dst, c } => regs.bools[dst].fill(consts.bools[c]),
                _ => {}
            }
        }
    }

    /// Execute `ops[range]` over one chunk. `mask` is `Some` in mask mode:
    /// per-row string predicates evaluate only rows still alive (sound
    /// because a dead row's conjunct value is ANDed into an already-false
    /// mask bit, and the mask only ever shrinks).
    #[allow(clippy::too_many_arguments)]
    fn exec_range(
        &self,
        range: std::ops::Range<usize>,
        regs: &mut RegFile,
        cols: &[ColInput],
        validity: &[Option<&[bool]>],
        consts: &ConstPool,
        base: usize,
        len: usize,
        mask: Option<&[bool]>,
    ) {
        // Chunk views of the numeric/bool input channels, sliced once.
        let i64_col = |c: usize| -> &[i64] {
            let ColInput::I64(v) = &cols[c] else {
                unreachable!("channel {c} is not i64")
            };
            &v[base..base + len]
        };
        let f64_col = |c: usize| -> &[f64] {
            let ColInput::F64(v) = &cols[c] else {
                unreachable!("channel {c} is not f64")
            };
            &v[base..base + len]
        };
        let bool_col = |c: usize| -> &[bool] {
            let ColInput::Bool(v) = &cols[c] else {
                unreachable!("channel {c} is not bool")
            };
            &v[base..base + len]
        };
        let str_col = |c: usize| -> (&[u8], usize) {
            let ColInput::Str { data, width } = &cols[c] else {
                unreachable!("channel {c} is not a string matrix")
            };
            (data, *width)
        };
        let alive = |i: usize| mask.is_none_or(|m| m[i]);

        for op in &self.ops[range] {
            match op {
                // Constants were filled by the prologue.
                KOp::ConstI64 { .. } | KOp::ConstF64 { .. } | KOp::ConstBool { .. } => {}
                KOp::CastI64F64 { dst, src } => {
                    let a: &[i64] = match *src {
                        KSrc::Col(c) => i64_col(c),
                        KSrc::Buf(s) => &regs.i64s[s][..len],
                    };
                    let out = &mut regs.f64s[*dst][..len];
                    for (o, &x) in out.iter_mut().zip(a) {
                        *o = x as f64;
                    }
                }
                KOp::ArithI64 { dst, op, a, b } => {
                    let (head, tail) = regs.i64s.split_at_mut(*dst);
                    let out = &mut tail[0][..len];
                    let av: &[i64] = match *a {
                        KSrc::Col(c) => i64_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    let bv: &[i64] = match *b {
                        KSrc::Col(c) => i64_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    arith_int_kernel!(*op, av, bv, out);
                }
                KOp::ArithF64 { dst, op, a, b } => {
                    let (head, tail) = regs.f64s.split_at_mut(*dst);
                    let out = &mut tail[0][..len];
                    let av: &[f64] = match *a {
                        KSrc::Col(c) => f64_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    let bv: &[f64] = match *b {
                        KSrc::Col(c) => f64_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    arith_float_kernel!(*op, av, bv, out);
                }
                KOp::NegI64 { dst, src } => {
                    let (head, tail) = regs.i64s.split_at_mut(*dst);
                    let out = &mut tail[0][..len];
                    let a: &[i64] = match *src {
                        KSrc::Col(c) => i64_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    for (o, &x) in out.iter_mut().zip(a) {
                        *o = x.wrapping_neg();
                    }
                }
                KOp::NegF64 { dst, src } => {
                    let (head, tail) = regs.f64s.split_at_mut(*dst);
                    let out = &mut tail[0][..len];
                    let a: &[f64] = match *src {
                        KSrc::Col(c) => f64_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    for (o, &x) in out.iter_mut().zip(a) {
                        *o = -x;
                    }
                }
                KOp::CmpI64 { dst, op, a, b } => {
                    let av: &[i64] = match *a {
                        KSrc::Col(c) => i64_col(c),
                        KSrc::Buf(s) => &regs.i64s[s][..len],
                    };
                    let bv: &[i64] = match *b {
                        KSrc::Col(c) => i64_col(c),
                        KSrc::Buf(s) => &regs.i64s[s][..len],
                    };
                    cmp_kernel!(*op, av, bv, &mut regs.bools[*dst][..len]);
                }
                KOp::CmpF64 { dst, op, a, b } => {
                    let av: &[f64] = match *a {
                        KSrc::Col(c) => f64_col(c),
                        KSrc::Buf(s) => &regs.f64s[s][..len],
                    };
                    let bv: &[f64] = match *b {
                        KSrc::Col(c) => f64_col(c),
                        KSrc::Buf(s) => &regs.f64s[s][..len],
                    };
                    cmp_kernel!(*op, av, bv, &mut regs.bools[*dst][..len]);
                }
                KOp::CmpBool { dst, op, a, b } => {
                    let (head, tail) = regs.bools.split_at_mut(*dst);
                    let out = &mut tail[0][..len];
                    let av: &[bool] = match *a {
                        KSrc::Col(c) => bool_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    let bv: &[bool] = match *b {
                        KSrc::Col(c) => bool_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    cmp_kernel!(*op, av, bv, out);
                }
                KOp::CmpConstI64 { dst, op, src, c } => {
                    let a: &[i64] = match *src {
                        KSrc::Col(ch) => i64_col(ch),
                        KSrc::Buf(s) => &regs.i64s[s][..len],
                    };
                    crate::simd::mask_i64(
                        cmp_const_i64(*op, consts.i64s[*c]),
                        a,
                        &mut regs.bools[*dst][..len],
                        false,
                    );
                }
                KOp::CmpConstF64 { dst, op, src, c } => {
                    let a: &[f64] = match *src {
                        KSrc::Col(ch) => f64_col(ch),
                        KSrc::Buf(s) => &regs.f64s[s][..len],
                    };
                    crate::simd::mask_f64(
                        cmp_const_f64(*op, consts.f64s[*c]),
                        a,
                        &mut regs.bools[*dst][..len],
                        false,
                    );
                }
                KOp::CmpConstBool { dst, op, src, c } => {
                    let (head, tail) = regs.bools.split_at_mut(*dst);
                    let out = &mut tail[0][..len];
                    let a: &[bool] = match *src {
                        KSrc::Col(ch) => bool_col(ch),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    cmp_const_kernel!(*op, a, consts.bools[*c], out);
                }
                KOp::CmpStrConst { dst, col, op, c } => {
                    let (data, width) = str_col(*col);
                    let needle = consts.strs[*c].as_slice();
                    let out = &mut regs.bools[*dst][..len];
                    for (i, o) in out.iter_mut().enumerate() {
                        *o =
                            alive(i) && op.eval_ord(trimmed_row(data, width, base + i).cmp(needle));
                    }
                }
                KOp::InListI64 {
                    dst,
                    src,
                    c,
                    negated,
                } => {
                    let a: &[i64] = match *src {
                        KSrc::Col(ch) => i64_col(ch),
                        KSrc::Buf(s) => &regs.i64s[s][..len],
                    };
                    let list = consts.i64_lists[*c].as_slice();
                    let out = &mut regs.bools[*dst][..len];
                    for (o, &x) in out.iter_mut().zip(a) {
                        let hit = list.contains(&x);
                        *o = hit != *negated;
                    }
                }
                KOp::InListF64 {
                    dst,
                    src,
                    c,
                    negated,
                } => {
                    let a: &[f64] = match *src {
                        KSrc::Col(ch) => f64_col(ch),
                        KSrc::Buf(s) => &regs.f64s[s][..len],
                    };
                    let list = consts.f64_lists[*c].as_slice();
                    let out = &mut regs.bools[*dst][..len];
                    for (o, &x) in out.iter_mut().zip(a) {
                        let hit = list.contains(&x);
                        *o = hit != *negated;
                    }
                }
                KOp::InListStr {
                    dst,
                    col,
                    c,
                    negated,
                } => {
                    let (data, width) = str_col(*col);
                    let list = consts.str_lists[*c].as_slice();
                    let out = &mut regs.bools[*dst][..len];
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = alive(i) && {
                            let row = trimmed_row(data, width, base + i);
                            let hit = list.iter().any(|v| row == v.as_slice());
                            hit != *negated
                        };
                    }
                }
                KOp::LikeStr {
                    dst,
                    col,
                    c,
                    negated,
                } => {
                    let (data, width) = str_col(*col);
                    let pat = &consts.likes[*c];
                    let out = &mut regs.bools[*dst][..len];
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = alive(i)
                            && (pat.matches(trimmed_row(data, width, base + i)) != *negated);
                    }
                }
                KOp::And { dst, a, b } => {
                    let (head, tail) = regs.bools.split_at_mut(*dst);
                    let out = &mut tail[0][..len];
                    let av: &[bool] = match *a {
                        KSrc::Col(c) => bool_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    let bv: &[bool] = match *b {
                        KSrc::Col(c) => bool_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    for ((o, &x), &y) in out.iter_mut().zip(av).zip(bv) {
                        *o = x && y;
                    }
                }
                KOp::Or { dst, a, b } => {
                    let (head, tail) = regs.bools.split_at_mut(*dst);
                    let out = &mut tail[0][..len];
                    let av: &[bool] = match *a {
                        KSrc::Col(c) => bool_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    let bv: &[bool] = match *b {
                        KSrc::Col(c) => bool_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    for ((o, &x), &y) in out.iter_mut().zip(av).zip(bv) {
                        *o = x || y;
                    }
                }
                KOp::Not { dst, src } => {
                    let (head, tail) = regs.bools.split_at_mut(*dst);
                    let out = &mut tail[0][..len];
                    let a: &[bool] = match *src {
                        KSrc::Col(c) => bool_col(c),
                        KSrc::Buf(s) => &head[s][..len],
                    };
                    for (o, &x) in out.iter_mut().zip(a) {
                        *o = !x;
                    }
                }
                KOp::IsNull {
                    dst,
                    vchans,
                    negated,
                } => {
                    let out = &mut regs.bools[*dst][..len];
                    // Start from "all valid", AND the channels in, negate.
                    out.fill(true);
                    for &vc in vchans {
                        if let Some(v) = validity[vc] {
                            for (o, &b) in out.iter_mut().zip(&v[base..base + len]) {
                                *o &= b;
                            }
                        }
                    }
                    // valid -> IS NULL false; `negated` flips to IS NOT NULL.
                    for o in out.iter_mut() {
                        *o = *o == *negated;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_mask_matches_chunked_path_bitwise() {
        // An all-compare chain qualifying for the dense fast path:
        // a jammed i64 pair (date window), an f64 range, one more f64
        // compare, and a bare bool column. Data crosses chunk boundaries
        // and includes NaN / ±0.0 to pin IEEE compare semantics.
        let n = CHUNK_ROWS * 3 + 17;
        let date: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 2556).collect();
        let disc: Vec<f64> = (0..n)
            .map(|i| match i % 13 {
                0 => f64::NAN,
                1 => 0.0,
                2 => -0.0,
                k => k as f64 / 100.0,
            })
            .collect();
        let flag: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        let kernel = FusedKernel {
            ops: vec![
                KOp::CmpConstI64 {
                    dst: 0,
                    op: CmpOp::Ge,
                    src: KSrc::Col(0),
                    c: 0,
                },
                KOp::CmpConstI64 {
                    dst: 1,
                    op: CmpOp::Lt,
                    src: KSrc::Col(0),
                    c: 1,
                },
                KOp::CmpConstF64 {
                    dst: 2,
                    op: CmpOp::Ge,
                    src: KSrc::Col(1),
                    c: 0,
                },
                KOp::CmpConstF64 {
                    dst: 3,
                    op: CmpOp::Ne,
                    src: KSrc::Col(1),
                    c: 1,
                },
            ],
            n_i64: 0,
            n_f64: 0,
            n_bool: 4,
            conjuncts: vec![
                KConjunct {
                    end: 1,
                    reg: Some(0),
                    col: None,
                    vchans: vec![],
                },
                KConjunct {
                    end: 2,
                    reg: Some(1),
                    col: None,
                    vchans: vec![],
                },
                KConjunct {
                    end: 3,
                    reg: Some(2),
                    col: None,
                    vchans: vec![],
                },
                KConjunct {
                    end: 4,
                    reg: Some(3),
                    col: None,
                    vchans: vec![],
                },
                KConjunct {
                    end: 4,
                    reg: None,
                    col: Some(2),
                    vchans: vec![],
                },
            ],
            outs: vec![],
        };
        let consts = ConstPool {
            i64s: vec![365, 1095],
            f64s: vec![0.02, 0.0],
            ..Default::default()
        };
        let cols = [
            ColInput::I64(&date),
            ColInput::F64(&disc),
            ColInput::Bool(&flag),
        ];
        assert!(
            kernel.dense_plan(&[], &consts).is_some(),
            "chain must qualify for the fast path"
        );
        let fast = kernel.run_mask(&cols, &[], &consts, n);
        let slow = kernel.run_mask_chunked(&cols, &[], &consts, n);
        assert_eq!(fast, slow);
        // NaN rows fail `>= 0.02` but pass `!= 0.0` — both paths must agree.
        assert!(fast.iter().any(|&b| b), "mask should not be empty");
    }

    #[test]
    fn dense_path_folds_runtime_validity_like_chunked() {
        // Two compare conjuncts each carrying a validity channel. With the
        // channel present (NULLs) the fast path must fold it identically
        // to the chunked path; with it absent the plan drops it entirely.
        let n = CHUNK_ROWS + 41;
        let a: Vec<i64> = (0..n as i64).map(|i| i % 97).collect();
        let b: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let va: Vec<bool> = (0..n).map(|i| i % 5 != 0).collect();
        let vb: Vec<bool> = (0..n).map(|i| i % 11 != 3).collect();
        let kernel = FusedKernel {
            ops: vec![
                KOp::CmpConstI64 {
                    dst: 0,
                    op: CmpOp::Lt,
                    src: KSrc::Col(0),
                    c: 0,
                },
                KOp::CmpConstF64 {
                    dst: 1,
                    op: CmpOp::Ge,
                    src: KSrc::Col(1),
                    c: 0,
                },
            ],
            n_i64: 0,
            n_f64: 0,
            n_bool: 2,
            conjuncts: vec![
                KConjunct {
                    end: 1,
                    reg: Some(0),
                    col: None,
                    vchans: vec![0],
                },
                KConjunct {
                    end: 2,
                    reg: Some(1),
                    col: None,
                    vchans: vec![1],
                },
            ],
            outs: vec![],
        };
        let consts = ConstPool {
            i64s: vec![60],
            f64s: vec![2.0],
            ..Default::default()
        };
        let cols = [ColInput::I64(&a), ColInput::F64(&b)];
        for validity in [
            [Some(va.as_slice()), Some(vb.as_slice())],
            [None, Some(vb.as_slice())],
            [None, None],
        ] {
            assert!(kernel.dense_plan(&validity, &consts).is_some());
            let fast = kernel.run_mask(&cols, &validity, &consts, n);
            let slow = kernel.run_mask_chunked(&cols, &validity, &consts, n);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn dense_single_pass_plans_match_chunked() {
        // Short plans (single compare, jammed pair) stay dense too (no
        // vector): a lone compare and a jammed same-column pair.
        let n = CHUNK_ROWS * 2 + 5;
        let d: Vec<i64> = (0..n as i64).map(|i| (i * 31) % 1000).collect();
        let single = FusedKernel {
            ops: vec![KOp::CmpConstI64 {
                dst: 0,
                op: CmpOp::Le,
                src: KSrc::Col(0),
                c: 0,
            }],
            n_i64: 0,
            n_f64: 0,
            n_bool: 1,
            conjuncts: vec![KConjunct {
                end: 1,
                reg: Some(0),
                col: None,
                vchans: vec![],
            }],
            outs: vec![],
        };
        let pair = FusedKernel {
            ops: vec![
                KOp::CmpConstI64 {
                    dst: 0,
                    op: CmpOp::Ge,
                    src: KSrc::Col(0),
                    c: 0,
                },
                KOp::CmpConstI64 {
                    dst: 1,
                    op: CmpOp::Lt,
                    src: KSrc::Col(0),
                    c: 1,
                },
            ],
            n_i64: 0,
            n_f64: 0,
            n_bool: 2,
            conjuncts: vec![
                KConjunct {
                    end: 1,
                    reg: Some(0),
                    col: None,
                    vchans: vec![],
                },
                KConjunct {
                    end: 2,
                    reg: Some(1),
                    col: None,
                    vchans: vec![],
                },
            ],
            outs: vec![],
        };
        let consts = ConstPool {
            i64s: vec![400, 700],
            ..Default::default()
        };
        let cols = [ColInput::I64(&d)];
        for k in [&single, &pair] {
            let fast = k.run_mask(&cols, &[], &consts, n);
            let slow = k.run_mask_chunked(&cols, &[], &consts, n);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn fused_cmp_const_chain_matches_scalar_loop() {
        // 3 chunks worth of rows with a tail.
        let n = CHUNK_ROWS * 2 + 100;
        let quantity: Vec<i64> = (0..n as i64).map(|i| i % 50).collect();
        let discount: Vec<f64> = (0..n).map(|i| (i % 11) as f64 / 100.0).collect();
        let kernel = FusedKernel {
            ops: vec![
                KOp::CmpConstI64 {
                    dst: 0,
                    op: CmpOp::Lt,
                    src: KSrc::Col(0),
                    c: 0,
                },
                KOp::CmpConstF64 {
                    dst: 1,
                    op: CmpOp::Ge,
                    src: KSrc::Col(1),
                    c: 0,
                },
            ],
            n_i64: 0,
            n_f64: 0,
            n_bool: 2,
            conjuncts: vec![
                KConjunct {
                    end: 1,
                    reg: Some(0),
                    col: None,
                    vchans: vec![],
                },
                KConjunct {
                    end: 2,
                    reg: Some(1),
                    col: None,
                    vchans: vec![],
                },
            ],
            outs: vec![],
        };
        let consts = ConstPool {
            i64s: vec![24],
            f64s: vec![0.05],
            ..Default::default()
        };
        let mask = kernel.run_mask(
            &[ColInput::I64(&quantity), ColInput::F64(&discount)],
            &[],
            &consts,
            n,
        );
        for i in 0..n {
            assert_eq!(mask[i], quantity[i] < 24 && discount[i] >= 0.05, "row {i}");
        }
    }

    #[test]
    fn fused_arith_matches_ops_semantics() {
        let n = 1500;
        let price: Vec<f64> = (0..n).map(|i| 900.0 + i as f64).collect();
        let disc: Vec<f64> = (0..n).map(|i| (i % 10) as f64 / 100.0).collect();
        // price * (1 - disc)
        let kernel = FusedKernel {
            ops: vec![
                KOp::ConstF64 { dst: 0, c: 0 },
                KOp::ArithF64 {
                    dst: 1,
                    op: BinOp::Sub,
                    a: KSrc::Buf(0),
                    b: KSrc::Col(1),
                },
                KOp::ArithF64 {
                    dst: 2,
                    op: BinOp::Mul,
                    a: KSrc::Col(0),
                    b: KSrc::Buf(1),
                },
            ],
            n_i64: 0,
            n_f64: 3,
            n_bool: 0,
            conjuncts: vec![],
            outs: vec![KOut::F64(2)],
        };
        let consts = ConstPool {
            f64s: vec![1.0],
            ..Default::default()
        };
        let outs = kernel.run_outputs(
            &[ColInput::F64(&price), ColInput::F64(&disc)],
            &[],
            &consts,
            n,
        );
        let KOutValue::F64(v) = &outs[0] else {
            panic!()
        };
        for i in 0..n {
            let want = price[i] * (1.0 - disc[i]);
            assert_eq!(v[i].to_bits(), want.to_bits(), "row {i}");
        }
    }

    #[test]
    fn int_div_mod_zero_yields_zero() {
        let n = 8;
        let a: Vec<i64> = vec![5; n];
        let b: Vec<i64> = vec![0, 1, 2, 0, 3, 0, 4, 0];
        let kernel = FusedKernel {
            ops: vec![KOp::ArithI64 {
                dst: 0,
                op: BinOp::Div,
                a: KSrc::Col(0),
                b: KSrc::Col(1),
            }],
            n_i64: 1,
            n_f64: 0,
            n_bool: 0,
            conjuncts: vec![],
            outs: vec![KOut::I64(0)],
        };
        let outs = kernel.run_outputs(
            &[ColInput::I64(&a), ColInput::I64(&b)],
            &[],
            &ConstPool::default(),
            n,
        );
        let KOutValue::I64(v) = &outs[0] else {
            panic!()
        };
        assert_eq!(v, &[0, 5, 2, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn validity_folds_into_mask() {
        let n = 6;
        let x: Vec<i64> = vec![1, 2, 3, 4, 5, 6];
        let valid = vec![true, false, true, true, false, true];
        let kernel = FusedKernel {
            ops: vec![KOp::CmpConstI64 {
                dst: 0,
                op: CmpOp::Gt,
                src: KSrc::Col(0),
                c: 0,
            }],
            n_i64: 0,
            n_f64: 0,
            n_bool: 1,
            conjuncts: vec![KConjunct {
                end: 1,
                reg: Some(0),
                col: None,
                vchans: vec![0],
            }],
            outs: vec![],
        };
        let consts = ConstPool {
            i64s: vec![2],
            ..Default::default()
        };
        let mask = kernel.run_mask(&[ColInput::I64(&x)], &[Some(&valid)], &consts, n);
        assert_eq!(mask, vec![false, false, true, true, false, true]);
    }
}

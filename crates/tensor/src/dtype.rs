//! Data types and scalar values.
//!
//! TQP's columnar representation (paper §2.1) needs numeric, boolean, date
//! (encoded as `I64` UNIX-epoch nanoseconds) and padded-byte string columns;
//! this is the closed dtype set implementing that.

/// Element type of a [`crate::Tensor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 1-byte boolean.
    Bool,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer (also used for dates as epoch nanoseconds and
    /// for index tensors, matching PyTorch's `int64` index convention).
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float (used for SQL decimals in the reproduction).
    F64,
    /// Raw byte, used for `(n × m)` padded UTF-8 string matrices.
    U8,
}

impl DType {
    /// Width of one element in bytes.
    pub fn size_of(self) -> usize {
        match self {
            DType::Bool | DType::U8 => 1,
            DType::I32 | DType::F32 => 4,
            DType::I64 | DType::F64 => 8,
        }
    }

    /// True for `F32`/`F64`.
    pub fn is_float(self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// True for `I32`/`I64`.
    pub fn is_int(self) -> bool {
        matches!(self, DType::I32 | DType::I64)
    }

    /// True if the type participates in arithmetic.
    pub fn is_numeric(self) -> bool {
        self.is_float() || self.is_int()
    }

    /// The dtype arithmetic between `self` and `other` is carried out in
    /// (SQL-style numeric promotion: any float ⇒ `F64` result for mixed
    /// precision, `F32` only when both are `F32`; otherwise widest int).
    /// `Bool` promotes with integers (0/1), which lets mask sums like
    /// `SUM(CASE WHEN ...)` stay on the integer path. `U8` (strings) never
    /// promotes.
    pub fn promote(self, other: DType) -> DType {
        use DType::*;
        match (self, other) {
            (U8, b) => panic!("no numeric promotion between U8 and {b:?}"),
            (a, U8) => panic!("no numeric promotion between {a:?} and U8"),
            (F64, _) | (_, F64) => F64,
            (F32, F32) => F32,
            (F32, _) | (_, F32) => F64,
            (I64, _) | (_, I64) => I64,
            (I32, _) | (_, I32) => I32,
            (Bool, Bool) => I64,
        }
    }
}

/// A single dynamically-typed value: literals, aggregation results, and the
/// row representation of the baseline Volcano engine.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// SQL NULL (arises from outer joins and empty aggregations).
    Null,
    Bool(bool),
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    /// UTF-8 string payload (unpadded).
    Str(String),
}

impl Scalar {
    /// Dtype this scalar maps to, or `None` for NULL.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Scalar::Null => None,
            Scalar::Bool(_) => Some(DType::Bool),
            Scalar::I32(_) => Some(DType::I32),
            Scalar::I64(_) => Some(DType::I64),
            Scalar::F32(_) => Some(DType::F32),
            Scalar::F64(_) => Some(DType::F64),
            Scalar::Str(_) => Some(DType::U8),
        }
    }

    /// True if this is [`Scalar::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Scalar::Null)
    }

    /// Numeric view as f64 (panics for non-numeric variants).
    pub fn as_f64(&self) -> f64 {
        match self {
            Scalar::I32(v) => *v as f64,
            Scalar::I64(v) => *v as f64,
            Scalar::F32(v) => *v as f64,
            Scalar::F64(v) => *v,
            Scalar::Bool(v) => *v as i64 as f64,
            other => panic!("scalar {other:?} is not numeric"),
        }
    }

    /// Numeric view as i64 (panics for non-integer variants).
    pub fn as_i64(&self) -> i64 {
        match self {
            Scalar::I32(v) => *v as i64,
            Scalar::I64(v) => *v,
            Scalar::Bool(v) => *v as i64,
            other => panic!("scalar {other:?} is not an integer"),
        }
    }

    /// Boolean view (panics otherwise).
    pub fn as_bool(&self) -> bool {
        match self {
            Scalar::Bool(v) => *v,
            other => panic!("scalar {other:?} is not a bool"),
        }
    }

    /// String view (panics otherwise).
    pub fn as_str(&self) -> &str {
        match self {
            Scalar::Str(s) => s,
            other => panic!("scalar {other:?} is not a string"),
        }
    }

    /// SQL comparison. NULL compares less than everything (used only for
    /// deterministic ORDER BY of the oracle engine; SQL predicates treat NULL
    /// via three-valued logic upstream).
    pub fn cmp_sql(&self, other: &Scalar) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Scalar::Null, Scalar::Null) => Ordering::Equal,
            (Scalar::Null, _) => Ordering::Less,
            (_, Scalar::Null) => Ordering::Greater,
            (Scalar::Str(a), Scalar::Str(b)) => a.cmp(b),
            (Scalar::Bool(a), Scalar::Bool(b)) => a.cmp(b),
            (a, b)
                if a.dtype().map(|d| d.is_int()) == Some(true)
                    && b.dtype().map(|d| d.is_int()) == Some(true) =>
            {
                a.as_i64().cmp(&b.as_i64())
            }
            (a, b) => a
                .as_f64()
                .partial_cmp(&b.as_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl std::fmt::Display for Scalar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Scalar::Null => write!(f, "NULL"),
            Scalar::Bool(v) => write!(f, "{v}"),
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::I64(v) => write!(f, "{v}"),
            Scalar::F32(v) => write!(f, "{v}"),
            Scalar::F64(v) => write!(f, "{v:.4}"),
            Scalar::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::Bool.size_of(), 1);
        assert_eq!(DType::U8.size_of(), 1);
        assert_eq!(DType::I32.size_of(), 4);
        assert_eq!(DType::F32.size_of(), 4);
        assert_eq!(DType::I64.size_of(), 8);
        assert_eq!(DType::F64.size_of(), 8);
    }

    #[test]
    fn promotion_rules() {
        assert_eq!(DType::I32.promote(DType::I32), DType::I32);
        assert_eq!(DType::I32.promote(DType::I64), DType::I64);
        assert_eq!(DType::I64.promote(DType::F64), DType::F64);
        assert_eq!(DType::F32.promote(DType::F32), DType::F32);
        assert_eq!(DType::F32.promote(DType::I64), DType::F64);
        assert_eq!(DType::F64.promote(DType::F32), DType::F64);
        assert_eq!(DType::Bool.promote(DType::I64), DType::I64);
        assert_eq!(DType::Bool.promote(DType::Bool), DType::I64);
    }

    #[test]
    #[should_panic(expected = "no numeric promotion")]
    fn promotion_rejects_strings() {
        DType::U8.promote(DType::I64);
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Scalar::I32(7).as_i64(), 7);
        assert_eq!(Scalar::I64(-3).as_f64(), -3.0);
        assert!(Scalar::Bool(true).as_bool());
        assert_eq!(Scalar::Str("abc".into()).as_str(), "abc");
        assert!(Scalar::Null.is_null());
        assert_eq!(Scalar::F64(1.5).dtype(), Some(DType::F64));
        assert_eq!(Scalar::Null.dtype(), None);
    }

    #[test]
    fn scalar_sql_ordering() {
        use std::cmp::Ordering::*;
        assert_eq!(Scalar::Null.cmp_sql(&Scalar::I64(0)), Less);
        assert_eq!(Scalar::I64(2).cmp_sql(&Scalar::I64(2)), Equal);
        assert_eq!(Scalar::F64(1.5).cmp_sql(&Scalar::I64(1)), Greater);
        assert_eq!(
            Scalar::Str("a".into()).cmp_sql(&Scalar::Str("b".into())),
            Less
        );
    }
}

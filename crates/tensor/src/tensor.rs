//! The [`Tensor`] type: an immutable, reference-counted, contiguous,
//! row-major dense array.
//!
//! TQP represents every table column as a tensor (paper §2.1): numeric and
//! date columns are rank-1 `(n)`, string columns are rank-2 `(n × m)` byte
//! matrices. Rank-2 float tensors also appear inside compiled ML operators
//! (weight matrices). Cloning a tensor is O(1) — buffers are shared through
//! `Arc`, which is what makes the ingestion path "zero-copy in general"
//! (paper §2.1).

use std::sync::Arc;

use crate::dtype::{DType, Scalar};
use crate::{Result, TensorError};

/// Typed, shared storage behind a tensor.
#[derive(Debug, Clone)]
pub enum Buffer {
    Bool(Arc<Vec<bool>>),
    I32(Arc<Vec<i32>>),
    I64(Arc<Vec<i64>>),
    F32(Arc<Vec<f32>>),
    F64(Arc<Vec<f64>>),
    U8(Arc<Vec<u8>>),
}

impl Buffer {
    fn len(&self) -> usize {
        match self {
            Buffer::Bool(v) => v.len(),
            Buffer::I32(v) => v.len(),
            Buffer::I64(v) => v.len(),
            Buffer::F32(v) => v.len(),
            Buffer::F64(v) => v.len(),
            Buffer::U8(v) => v.len(),
        }
    }

    fn dtype(&self) -> DType {
        match self {
            Buffer::Bool(_) => DType::Bool,
            Buffer::I32(_) => DType::I32,
            Buffer::I64(_) => DType::I64,
            Buffer::F32(_) => DType::F32,
            Buffer::F64(_) => DType::F64,
            Buffer::U8(_) => DType::U8,
        }
    }
}

/// Dense, immutable tensor. Rank is 1 or 2 (all TQP relational kernels
/// operate on columns and byte matrices; ML kernels on matrices).
#[derive(Debug, Clone)]
pub struct Tensor {
    shape: Vec<usize>,
    buf: Buffer,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    fn new(shape: Vec<usize>, buf: Buffer) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            numel,
            buf.len(),
            "shape {shape:?} does not match buffer of {} elements",
            buf.len()
        );
        Tensor { shape, buf }
    }

    /// Rank-1 tensor from a `bool` vector.
    pub fn from_bool(v: Vec<bool>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], Buffer::Bool(Arc::new(v)))
    }

    /// Rank-1 tensor from an `i32` vector.
    pub fn from_i32(v: Vec<i32>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], Buffer::I32(Arc::new(v)))
    }

    /// Rank-1 tensor from an `i64` vector.
    pub fn from_i64(v: Vec<i64>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], Buffer::I64(Arc::new(v)))
    }

    /// Rank-1 tensor from an `f32` vector.
    pub fn from_f32(v: Vec<f32>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], Buffer::F32(Arc::new(v)))
    }

    /// Rank-1 tensor from an `f64` vector.
    pub fn from_f64(v: Vec<f64>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], Buffer::F64(Arc::new(v)))
    }

    /// Rank-1 tensor from a raw byte vector.
    pub fn from_u8(v: Vec<u8>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], Buffer::U8(Arc::new(v)))
    }

    /// Rank-1 tensor sharing an existing `i64` buffer — the zero-copy
    /// ingestion path of paper §2.1 ("data transformation is in general
    /// zero-copy"): the DataFrame column and the tensor alias one allocation.
    pub fn from_i64_shared(v: Arc<Vec<i64>>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], Buffer::I64(v))
    }

    /// Rank-1 tensor sharing an existing `f64` buffer (zero-copy ingestion).
    pub fn from_f64_shared(v: Arc<Vec<f64>>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], Buffer::F64(v))
    }

    /// Rank-1 tensor sharing an existing `bool` buffer (zero-copy ingestion).
    pub fn from_bool_shared(v: Arc<Vec<bool>>) -> Self {
        let n = v.len();
        Tensor::new(vec![n], Buffer::Bool(v))
    }

    /// Rank-2 `(rows × cols)` tensor from a row-major `f64` vector.
    pub fn from_f64_matrix(v: Vec<f64>, rows: usize, cols: usize) -> Self {
        Tensor::new(vec![rows, cols], Buffer::F64(Arc::new(v)))
    }

    /// Rank-2 `(rows × cols)` tensor from a row-major `f32` vector.
    pub fn from_f32_matrix(v: Vec<f32>, rows: usize, cols: usize) -> Self {
        Tensor::new(vec![rows, cols], Buffer::F32(Arc::new(v)))
    }

    /// Rank-2 `(rows × cols)` byte matrix — TQP's padded-string column layout.
    pub fn from_u8_matrix(v: Vec<u8>, rows: usize, cols: usize) -> Self {
        Tensor::new(vec![rows, cols], Buffer::U8(Arc::new(v)))
    }

    /// Rank-2 `(rows × cols)` i64 matrix (token-id matrices for the text
    /// models of scenario 3).
    pub fn from_i64_matrix(v: Vec<i64>, rows: usize, cols: usize) -> Self {
        Tensor::new(vec![rows, cols], Buffer::I64(Arc::new(v)))
    }

    /// Build a `(n × m)` padded byte matrix from UTF-8 strings, right-padding
    /// with zeros — the paper's string representation (§2.1). `m` is
    /// `max(len)` unless `min_width` demands more.
    pub fn from_strings(values: &[&str], min_width: usize) -> Self {
        let m = values
            .iter()
            .map(|s| s.len())
            .max()
            .unwrap_or(0)
            .max(min_width)
            .max(1);
        let mut data = vec![0u8; values.len() * m];
        for (i, s) in values.iter().enumerate() {
            data[i * m..i * m + s.len()].copy_from_slice(s.as_bytes());
        }
        Tensor::from_u8_matrix(data, values.len(), m)
    }

    /// All-zeros tensor of the given dtype and rank-1 length.
    pub fn zeros(dtype: DType, n: usize) -> Self {
        match dtype {
            DType::Bool => Tensor::from_bool(vec![false; n]),
            DType::I32 => Tensor::from_i32(vec![0; n]),
            DType::I64 => Tensor::from_i64(vec![0; n]),
            DType::F32 => Tensor::from_f32(vec![0.0; n]),
            DType::F64 => Tensor::from_f64(vec![0.0; n]),
            DType::U8 => Tensor::from_u8(vec![0; n]),
        }
    }

    /// Rank-1 tensor filled with `scalar` repeated `n` times.
    pub fn full(scalar: &Scalar, n: usize) -> Self {
        match scalar {
            Scalar::Bool(v) => Tensor::from_bool(vec![*v; n]),
            Scalar::I32(v) => Tensor::from_i32(vec![*v; n]),
            Scalar::I64(v) => Tensor::from_i64(vec![*v; n]),
            Scalar::F32(v) => Tensor::from_f32(vec![*v; n]),
            Scalar::F64(v) => Tensor::from_f64(vec![*v; n]),
            Scalar::Str(s) => {
                Tensor::from_strings(&std::iter::repeat_n(s.as_str(), n).collect::<Vec<_>>(), 1)
            }
            Scalar::Null => panic!("cannot broadcast NULL into a tensor; use a validity mask"),
        }
    }

    // ------------------------------------------------------------------
    // Metadata
    // ------------------------------------------------------------------

    /// Shape of the tensor (`[n]` or `[n, m]`).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element dtype.
    pub fn dtype(&self) -> DType {
        self.buf.dtype()
    }

    /// Number of rows (first dimension).
    pub fn nrows(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Row width: 1 for rank-1 tensors, `m` for rank-2.
    pub fn row_width(&self) -> usize {
        if self.shape.len() >= 2 {
            self.shape[1]
        } else {
            1
        }
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// Total payload size in bytes (drives the GPU cost model in `tqp-exec`).
    pub fn nbytes(&self) -> usize {
        self.numel() * self.dtype().size_of()
    }

    /// True when the tensor holds no rows.
    pub fn is_empty(&self) -> bool {
        self.nrows() == 0
    }

    /// Reinterpret the buffer with a new shape (same number of elements).
    pub fn reshape(&self, shape: Vec<usize>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.numel(),
            "reshape {shape:?} incompatible with {:?}",
            self.shape
        );
        Tensor {
            shape,
            buf: self.buf.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Typed slice accessors (panic on dtype mismatch — planner bug)
    // ------------------------------------------------------------------

    /// Borrow as `&[bool]`; panics if dtype differs.
    pub fn as_bool(&self) -> &[bool] {
        match &self.buf {
            Buffer::Bool(v) => v,
            _ => panic!("expected Bool tensor, got {:?}", self.dtype()),
        }
    }

    /// Borrow as `&[i32]`; panics if dtype differs.
    pub fn as_i32(&self) -> &[i32] {
        match &self.buf {
            Buffer::I32(v) => v,
            _ => panic!("expected I32 tensor, got {:?}", self.dtype()),
        }
    }

    /// Borrow as `&[i64]`; panics if dtype differs.
    pub fn as_i64(&self) -> &[i64] {
        match &self.buf {
            Buffer::I64(v) => v,
            _ => panic!("expected I64 tensor, got {:?}", self.dtype()),
        }
    }

    /// Borrow as `&[f32]`; panics if dtype differs.
    pub fn as_f32(&self) -> &[f32] {
        match &self.buf {
            Buffer::F32(v) => v,
            _ => panic!("expected F32 tensor, got {:?}", self.dtype()),
        }
    }

    /// Borrow as `&[f64]`; panics if dtype differs.
    pub fn as_f64(&self) -> &[f64] {
        match &self.buf {
            Buffer::F64(v) => v,
            _ => panic!("expected F64 tensor, got {:?}", self.dtype()),
        }
    }

    /// Borrow as `&[u8]`; panics if dtype differs.
    pub fn as_u8(&self) -> &[u8] {
        match &self.buf {
            Buffer::U8(v) => v,
            _ => panic!("expected U8 tensor, got {:?}", self.dtype()),
        }
    }

    /// Byte row `i` of a rank-2 `U8` matrix, including padding.
    pub fn str_row(&self, i: usize) -> &[u8] {
        let m = self.row_width();
        &self.as_u8()[i * m..(i + 1) * m]
    }

    /// Byte row `i` with trailing zero padding removed.
    pub fn str_row_trimmed(&self, i: usize) -> &[u8] {
        let row = self.str_row(i);
        let end = row.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
        &row[..end]
    }

    /// Decode row `i` of a string matrix into `String`.
    pub fn str_at(&self, i: usize) -> String {
        String::from_utf8_lossy(self.str_row_trimmed(i)).into_owned()
    }

    // ------------------------------------------------------------------
    // Element access & conversion
    // ------------------------------------------------------------------

    /// Dynamically-typed element access (rank-1 numeric/bool tensors, or the
    /// full row of a string matrix).
    pub fn get(&self, i: usize) -> Scalar {
        assert!(i < self.nrows(), "row {i} out of bounds ({})", self.nrows());
        match &self.buf {
            Buffer::Bool(v) => Scalar::Bool(v[i]),
            Buffer::I32(v) => Scalar::I32(v[i]),
            Buffer::I64(v) => Scalar::I64(v[i]),
            Buffer::F32(v) => Scalar::F32(v[i]),
            Buffer::F64(v) => Scalar::F64(v[i]),
            Buffer::U8(_) => Scalar::Str(self.str_at(i)),
        }
    }

    /// Cast to another dtype (numeric/bool only; `U8` casts unsupported).
    pub fn cast(&self, to: DType) -> Result<Tensor> {
        let from = self.dtype();
        if from == to {
            return Ok(self.clone());
        }
        macro_rules! conv {
            ($src:expr, $t:ty, $ctor:path) => {{
                let v: Vec<$t> = $src;
                Ok(Tensor {
                    shape: self.shape.clone(),
                    buf: $ctor(Arc::new(v)),
                })
            }};
        }
        match (from, to) {
            (DType::U8, _) | (_, DType::U8) => Err(TensorError::BadCast { from, to }),
            (_, DType::Bool) => Err(TensorError::BadCast { from, to }),
            (DType::Bool, DType::I32) => {
                conv!(
                    self.as_bool().iter().map(|&b| b as i32).collect(),
                    i32,
                    Buffer::I32
                )
            }
            (DType::Bool, DType::I64) => {
                conv!(
                    self.as_bool().iter().map(|&b| b as i64).collect(),
                    i64,
                    Buffer::I64
                )
            }
            (DType::Bool, DType::F32) => {
                conv!(
                    self.as_bool().iter().map(|&b| b as i32 as f32).collect(),
                    f32,
                    Buffer::F32
                )
            }
            (DType::Bool, DType::F64) => {
                conv!(
                    self.as_bool().iter().map(|&b| b as i32 as f64).collect(),
                    f64,
                    Buffer::F64
                )
            }
            (DType::I32, DType::I64) => {
                conv!(
                    self.as_i32().iter().map(|&x| x as i64).collect(),
                    i64,
                    Buffer::I64
                )
            }
            (DType::I32, DType::F32) => {
                conv!(
                    self.as_i32().iter().map(|&x| x as f32).collect(),
                    f32,
                    Buffer::F32
                )
            }
            (DType::I32, DType::F64) => {
                conv!(
                    self.as_i32().iter().map(|&x| x as f64).collect(),
                    f64,
                    Buffer::F64
                )
            }
            (DType::I64, DType::I32) => {
                conv!(
                    self.as_i64().iter().map(|&x| x as i32).collect(),
                    i32,
                    Buffer::I32
                )
            }
            (DType::I64, DType::F32) => {
                conv!(
                    self.as_i64().iter().map(|&x| x as f32).collect(),
                    f32,
                    Buffer::F32
                )
            }
            (DType::I64, DType::F64) => {
                conv!(
                    self.as_i64().iter().map(|&x| x as f64).collect(),
                    f64,
                    Buffer::F64
                )
            }
            (DType::F32, DType::I32) => {
                conv!(
                    self.as_f32().iter().map(|&x| x as i32).collect(),
                    i32,
                    Buffer::I32
                )
            }
            (DType::F32, DType::I64) => {
                conv!(
                    self.as_f32().iter().map(|&x| x as i64).collect(),
                    i64,
                    Buffer::I64
                )
            }
            (DType::F32, DType::F64) => {
                conv!(
                    self.as_f32().iter().map(|&x| x as f64).collect(),
                    f64,
                    Buffer::F64
                )
            }
            (DType::F64, DType::I32) => {
                conv!(
                    self.as_f64().iter().map(|&x| x as i32).collect(),
                    i32,
                    Buffer::I32
                )
            }
            (DType::F64, DType::I64) => {
                conv!(
                    self.as_f64().iter().map(|&x| x as i64).collect(),
                    i64,
                    Buffer::I64
                )
            }
            (DType::F64, DType::F32) => {
                conv!(
                    self.as_f64().iter().map(|&x| x as f32).collect(),
                    f32,
                    Buffer::F32
                )
            }
            _ => unreachable!("cast {from:?}->{to:?}"),
        }
    }

    /// Contents as a `Vec<f64>` regardless of numeric dtype.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match &self.buf {
            Buffer::Bool(v) => v.iter().map(|&b| b as i64 as f64).collect(),
            Buffer::I32(v) => v.iter().map(|&x| x as f64).collect(),
            Buffer::I64(v) => v.iter().map(|&x| x as f64).collect(),
            Buffer::F32(v) => v.iter().map(|&x| x as f64).collect(),
            Buffer::F64(v) => v.as_ref().clone(),
            Buffer::U8(_) => panic!("string tensor has no f64 view"),
        }
    }

    /// Contents as a `Vec<i64>` (integer/bool dtypes only).
    pub fn to_i64_vec(&self) -> Vec<i64> {
        match &self.buf {
            Buffer::Bool(v) => v.iter().map(|&b| b as i64).collect(),
            Buffer::I32(v) => v.iter().map(|&x| x as i64).collect(),
            Buffer::I64(v) => v.as_ref().clone(),
            _ => panic!("tensor {:?} has no lossless i64 view", self.dtype()),
        }
    }
}

impl PartialEq for Tensor {
    /// Structural equality: same dtype, shape, and bitwise-equal elements
    /// (floats compared by `==`; NaN != NaN as usual).
    fn eq(&self, other: &Self) -> bool {
        if self.shape != other.shape || self.dtype() != other.dtype() {
            return false;
        }
        match (&self.buf, &other.buf) {
            (Buffer::Bool(a), Buffer::Bool(b)) => a == b,
            (Buffer::I32(a), Buffer::I32(b)) => a == b,
            (Buffer::I64(a), Buffer::I64(b)) => a == b,
            (Buffer::F32(a), Buffer::F32(b)) => a == b,
            (Buffer::F64(a), Buffer::F64(b)) => a == b,
            (Buffer::U8(a), Buffer::U8(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_meta() {
        let t = Tensor::from_i64(vec![1, 2, 3]);
        assert_eq!(t.shape(), &[3]);
        assert_eq!(t.dtype(), DType::I64);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.numel(), 3);
        assert_eq!(t.nbytes(), 24);
        assert!(!t.is_empty());
        assert_eq!(t.get(1), Scalar::I64(2));
    }

    #[test]
    fn clone_is_shallow() {
        let t = Tensor::from_f64(vec![0.0; 1024]);
        let u = t.clone();
        assert_eq!(t.as_f64().as_ptr(), u.as_f64().as_ptr());
    }

    #[test]
    fn string_matrix_padding() {
        let t = Tensor::from_strings(&["ab", "", "xyz"], 0);
        assert_eq!(t.shape(), &[3, 3]);
        assert_eq!(t.str_at(0), "ab");
        assert_eq!(t.str_at(1), "");
        assert_eq!(t.str_at(2), "xyz");
        assert_eq!(t.str_row(0), b"ab\0");
        assert_eq!(t.str_row_trimmed(0), b"ab");
    }

    #[test]
    fn string_matrix_min_width() {
        let t = Tensor::from_strings(&["a"], 5);
        assert_eq!(t.shape(), &[1, 5]);
    }

    #[test]
    fn empty_string_matrix() {
        let t = Tensor::from_strings(&[], 0);
        assert_eq!(t.nrows(), 0);
        assert!(t.is_empty());
    }

    #[test]
    fn cast_roundtrips() {
        let t = Tensor::from_i32(vec![-1, 0, 5]);
        assert_eq!(t.cast(DType::I64).unwrap().as_i64(), &[-1, 0, 5]);
        assert_eq!(t.cast(DType::F64).unwrap().as_f64(), &[-1.0, 0.0, 5.0]);
        let f = Tensor::from_f64(vec![1.9, -2.9]);
        assert_eq!(f.cast(DType::I64).unwrap().as_i64(), &[1, -2]);
        let b = Tensor::from_bool(vec![true, false]);
        assert_eq!(b.cast(DType::I64).unwrap().as_i64(), &[1, 0]);
        assert!(Tensor::from_u8(vec![1]).cast(DType::I64).is_err());
    }

    #[test]
    fn full_and_zeros() {
        assert_eq!(Tensor::zeros(DType::F64, 3).as_f64(), &[0.0; 3]);
        assert_eq!(Tensor::full(&Scalar::I64(7), 2).as_i64(), &[7, 7]);
        let s = Tensor::full(&Scalar::Str("hi".into()), 2);
        assert_eq!(s.str_at(1), "hi");
    }

    #[test]
    fn reshape_shares_buffer() {
        let t = Tensor::from_f64(vec![1.0, 2.0, 3.0, 4.0]);
        let m = t.reshape(vec![2, 2]);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.as_f64().as_ptr(), t.as_f64().as_ptr());
    }

    #[test]
    fn equality() {
        assert_eq!(Tensor::from_i64(vec![1, 2]), Tensor::from_i64(vec![1, 2]));
        assert_ne!(Tensor::from_i64(vec![1, 2]), Tensor::from_i64(vec![2, 1]));
        assert_ne!(
            Tensor::from_i64(vec![1, 2]),
            Tensor::from_i32(vec![1, 2])
                .cast(DType::I64)
                .unwrap()
                .reshape(vec![2, 1])
        );
    }
}

//! # tqp-json — a small, dependency-free JSON library
//!
//! Backs every textual artifact in the workspace: the physical-plan
//! interchange format (`tqp_ir::physical::PhysicalPlan::to_json`), the
//! serialized [`TensorProgram`](../tqp_exec/program) artifact that the
//! Graph/Wasm backends execute, and the profiler's Chrome-trace export.
//!
//! The value model is deliberately simple: numbers are either `I64` or
//! `F64` (integral tokens parse to `I64`), object key order is preserved,
//! and the writer emits floats with Rust's shortest round-trippable
//! representation so `parse(write(v)) == v` for finite values.

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse / access errors.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description with byte offset.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
    })
}

impl Json {
    // -- constructors --------------------------------------------------

    /// Object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Array from an iterator.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    // -- accessors -----------------------------------------------------

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| JsonError {
            message: format!("missing field {key:?}"),
        })
    }

    /// Array element lookup.
    pub fn at(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(index),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    // -- writing -------------------------------------------------------

    /// Pretty rendering with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    let s = format!("{v}");
                    out.push_str(&s);
                    // Keep the float/integer distinction through a round-trip.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, level);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if !pairs.is_empty() {
                    newline(out, indent, level);
                }
                out.push('}');
            }
        }
    }

    // -- parsing -------------------------------------------------------

    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Compact single-line rendering (so `json.to_string()` works too).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return err(format!("expected , or ] at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return err(format!("expected , or }} at byte {}", self.pos)),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| JsonError {
                                    message: "bad \\u escape".into(),
                                })?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                message: "bad \\u escape".into(),
                            })?;
                            // Surrogate pairs are not needed by our writers.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let start = self.pos;
                    let rest =
                        std::str::from_utf8(&self.bytes[start..]).map_err(|_| JsonError {
                            message: "invalid utf-8".into(),
                        })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            message: "invalid number".into(),
        })?;
        if text.is_empty() || text == "-" {
            return err(format!("invalid number at byte {start}"));
        }
        if is_float {
            match text.parse::<f64>() {
                Ok(v) => Ok(Json::F64(v)),
                Err(_) => err(format!("invalid number {text:?}")),
            }
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::I64(v)),
                Err(_) => text.parse::<f64>().map(Json::F64).map_err(|_| JsonError {
                    message: format!("invalid number {text:?}"),
                }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Json::obj(vec![
            ("name", Json::str("Scan(t)")),
            ("n", Json::I64(-42)),
            ("x", Json::F64(1.5)),
            ("whole", Json::F64(3.0)),
            ("flags", Json::arr([Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::str("v\"q\n"))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        // Pretty output parses to the same value too.
        assert_eq!(Json::parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn float_integer_distinction_survives() {
        let v = Json::Arr(vec![Json::F64(2.0), Json::I64(2)]);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.at(0), Some(&Json::F64(2.0)));
        assert_eq!(back.at(1), Some(&Json::I64(2)));
    }

    #[test]
    fn float_roundtrip_exact() {
        for x in [0.1, 1e-12, -123456.789, f64::MAX, 5e-324] {
            let back = Json::parse(&Json::F64(x).to_string()).unwrap();
            assert_eq!(back, Json::F64(x));
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": [1, "two", 3.5], "b": {"c": true}}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.at(1)).and_then(Json::as_str),
            Some("two")
        );
        assert_eq!(
            v.get("a").and_then(|a| a.at(0)).and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_bool),
            Some(true)
        );
        assert!(v.get("missing").is_none());
        assert!(v.field("missing").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::Str("héllo \u{1F600} \"q\" \\ \n".into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(r#""A\t""#).unwrap(), Json::Str("A\t".into()));
    }
}

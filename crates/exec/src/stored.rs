//! Stored-table scans: zone-map pruning pre-pass + chunk-at-a-time decode
//! through the shared morsel scheduler.
//!
//! A `tqp-store` table arrives at the VM as chunks with per-column
//! [`ZoneMap`]s. Before decoding anything, the scan inspects the compiled
//! filter that consumes it (when one directly follows in the pipeline
//! segment): every conjunct whose compiled form is `CompareConst` or
//! `IsNull` over a bare column load is evaluated **against the zone maps**
//! — a chunk no row of which can satisfy some conjunct is skipped without
//! touching its bytes. Surviving chunks decode in parallel via
//! [`crate::sched::map_tasks`] and concatenate **in chunk order**.
//!
//! ## Determinism under pruning
//!
//! Pruning only ever removes rows the filter was about to drop, so the
//! post-filter row sequence is identical to the in-memory path's. The one
//! place raw (pre-filter) geometry leaks into results is the fused
//! partitioned aggregation, whose float partials merge per scan-morsel:
//! the scan therefore reports a [`ScanLayout`] mapping pruned row
//! coordinates back to **original** row offsets, and the aggregation
//! route carves its morsels in original coordinates (pruned gaps become
//! empty partials — merge identities). Partial grouping is then
//! bit-identical to an unpruned in-memory scan of the same table at every
//! worker count.

use std::sync::{Arc, OnceLock};

use tqp_store::{StoredTable, ZoneMap};
use tqp_tensor::{Scalar, Tensor};

use crate::batch::Batch;
use crate::expr::to_cmp;
use crate::exprprog::{ExprOp, ExprProgram};

/// Pruned-scan coordinate map: which original row ranges survived.
#[derive(Debug, Clone)]
pub struct ScanLayout {
    /// Rows the unpruned table holds.
    pub original_rows: usize,
    /// Kept ranges as `(original_start, len)`, ascending, non-adjacent
    /// gaps = pruned chunks.
    kept: Vec<(usize, usize)>,
    /// Cumulative kept rows before each range (same length as `kept`).
    prefix: Vec<usize>,
}

impl ScanLayout {
    /// Build from kept ranges in ascending original order.
    pub fn new(original_rows: usize, kept: Vec<(usize, usize)>) -> ScanLayout {
        let mut prefix = Vec::with_capacity(kept.len());
        let mut acc = 0usize;
        for &(_, len) in &kept {
            prefix.push(acc);
            acc += len;
        }
        ScanLayout {
            original_rows,
            kept,
            prefix,
        }
    }

    /// An identity layout (nothing pruned).
    pub fn identity(rows: usize) -> ScanLayout {
        ScanLayout::new(rows, vec![(0, rows)])
    }

    /// Number of kept rows strictly before original row `orig`.
    fn kept_before(&self, orig: usize) -> usize {
        // Last range starting at or before `orig`.
        match self.kept.partition_point(|&(start, _)| start <= orig) {
            0 => 0,
            i => {
                let (start, len) = self.kept[i - 1];
                self.prefix[i - 1] + (orig - start).min(len)
            }
        }
    }

    /// Map an original row range `[lo, hi)` to pruned coordinates. The
    /// kept rows of an original range are contiguous in pruned space
    /// because pruning removes whole ranges and preserves order.
    pub fn project(&self, lo: usize, hi: usize) -> (usize, usize) {
        (self.kept_before(lo), self.kept_before(hi))
    }

    /// Total kept rows.
    pub fn kept_rows(&self) -> usize {
        self.prefix
            .last()
            .map_or(0, |&p| p + self.kept.last().unwrap().1)
    }
}

/// One zone-testable conjunct extracted from a compiled filter.
#[derive(Debug, Clone)]
pub enum PrunePred {
    /// `column <op> constant` (the compiled `CompareConst` fast path).
    Cmp {
        /// Stored-table column index (scan projection already applied).
        col: usize,
        op: tqp_tensor::ops::CmpOp,
        value: Scalar,
    },
    /// `column IS [NOT] NULL`.
    Null { col: usize, negated: bool },
}

impl PrunePred {
    /// Could any row of the chunk behind `zone` satisfy this conjunct?
    fn may_match(&self, zone: &ZoneMap, rows: u64) -> bool {
        match self {
            PrunePred::Cmp { op, value, .. } => zone.may_match_compare(*op, value),
            PrunePred::Null { negated, .. } => zone.may_match_is_null(*negated, rows),
        }
    }

    /// The stored-table column this predicate tests.
    fn col(&self) -> usize {
        match self {
            PrunePred::Cmp { col, .. } | PrunePred::Null { col, .. } => *col,
        }
    }
}

/// Extract the zone-testable conjuncts of a compiled filter. Every output
/// of the program is one conjunct; only outputs whose defining op is a
/// `CompareConst`/`IsNull` over a direct `LoadColumn` participate —
/// anything else (arithmetic, LIKE, OR-trees, CASE) is left to the real
/// filter. `projection` maps scan-batch column indexes back to stored
/// columns. Programs still carrying unbound parameter slots yield nothing
/// (their constants are placeholders).
pub fn prunable_conjuncts(prog: &ExprProgram, projection: Option<&[usize]>) -> Vec<PrunePred> {
    if !prog.params.is_empty() {
        return Vec::new();
    }
    let table_col = |scan_col: usize| -> usize {
        match projection {
            Some(p) => p[scan_col],
            None => scan_col,
        }
    };
    let mut out = Vec::new();
    for &reg in &prog.outputs {
        match &prog.ops[reg] {
            ExprOp::CompareConst { op, src, value } => {
                if let ExprOp::LoadColumn { index, .. } = &prog.ops[*src] {
                    if let Some(cmp) = to_cmp(*op) {
                        out.push(PrunePred::Cmp {
                            col: table_col(*index),
                            op: cmp,
                            value: value.clone(),
                        });
                    }
                }
            }
            ExprOp::IsNull { src, negated } => {
                if let ExprOp::LoadColumn { index, .. } = &prog.ops[*src] {
                    out.push(PrunePred::Null {
                        col: table_col(*index),
                        negated: *negated,
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Outcome of a stored scan: the decoded batch, the coordinate layout,
/// and pruning counters.
pub struct StoredScan {
    pub batch: Batch,
    pub layout: ScanLayout,
    pub chunks_scanned: u64,
    pub chunks_pruned: u64,
}

/// Scan a stored table: prune chunks against `preds`, decode survivors
/// (fanned out over the shared pool when `workers > 1`), concatenate in
/// chunk order.
pub fn scan_stored(
    table: &Arc<StoredTable>,
    cols: &[usize],
    preds: &[PrunePred],
    workers: usize,
) -> StoredScan {
    let n_chunks = table.n_chunks();
    let mut keep: Vec<usize> = Vec::with_capacity(n_chunks);
    let mut kept_ranges: Vec<(usize, usize)> = Vec::with_capacity(n_chunks);
    let mut orig = 0usize;
    for c in 0..n_chunks {
        let rows = table.chunk_len(c);
        let survives = preds
            .iter()
            .all(|p| p.may_match(table.zone(c, p.col()), rows as u64));
        if survives {
            keep.push(c);
            kept_ranges.push((orig, rows));
        }
        orig += rows;
    }
    let layout = ScanLayout::new(table.nrows(), kept_ranges);
    let chunks_pruned = (n_chunks - keep.len()) as u64;
    let chunks_scanned = keep.len() as u64;

    let batch = if keep.is_empty() {
        decoded_to_batch(table.empty_columns(cols))
    } else {
        let parts: Vec<Batch> = crate::sched::map_tasks(keep.len(), workers, |k| {
            // Chunk boundary: deadline/cancellation check per decode.
            crate::sched::check_cancelled();
            let decoded = table
                .decode_chunk(keep[k], cols)
                .unwrap_or_else(|e| panic!("decoding chunk {} of {:?}: {e}", keep[k], table));
            decoded_to_batch(decoded)
        });
        Batch::vcat_all(parts)
    };
    StoredScan {
        batch,
        layout,
        chunks_scanned,
        chunks_pruned,
    }
}

/// Outcome of opening a stored scan as a stream: the (lazy) chunk stream,
/// the coordinate layout, and pruning counters. Nothing is decoded yet.
pub struct StreamScan {
    pub stream: StoredStream,
    pub layout: ScanLayout,
    pub chunks_scanned: u64,
    pub chunks_pruned: u64,
}

/// Open a stored scan **without decoding anything**: the zone-map prune
/// pass runs eagerly (it is metadata-only), decode is deferred to
/// [`StoredStream::slice`] — morsel-sized batches are handed straight to
/// the pipeline segment, chunk by chunk, with **no whole-scan
/// concatenation**. On the pruned path this eliminates the old
/// decode-then-concat copy entirely: a morsel inside one chunk is a plain
/// `slice_rows` of that chunk's decoded batch.
pub fn open_stream(table: &Arc<StoredTable>, cols: &[usize], preds: &[PrunePred]) -> StreamScan {
    let n_chunks = table.n_chunks();
    let mut keep: Vec<usize> = Vec::with_capacity(n_chunks);
    let mut kept_ranges: Vec<(usize, usize)> = Vec::with_capacity(n_chunks);
    let mut bounds: Vec<usize> = vec![0];
    let mut orig = 0usize;
    let mut kept_rows = 0usize;
    for c in 0..n_chunks {
        let rows = table.chunk_len(c);
        let survives = preds
            .iter()
            .all(|p| p.may_match(table.zone(c, p.col()), rows as u64));
        if survives {
            keep.push(c);
            kept_ranges.push((orig, rows));
            kept_rows += rows;
            bounds.push(kept_rows);
        }
        orig += rows;
    }
    let layout = ScanLayout::new(table.nrows(), kept_ranges);
    let chunks_pruned = (n_chunks - keep.len()) as u64;
    let chunks_scanned = keep.len() as u64;
    let cache = (0..keep.len()).map(|_| OnceLock::new()).collect();
    StreamScan {
        stream: StoredStream {
            table: Arc::clone(table),
            cols: cols.to_vec(),
            keep,
            bounds,
            cache,
        },
        layout,
        chunks_scanned,
        chunks_pruned,
    }
}

/// A lazily-decoding view over the surviving chunks of a pruned stored
/// scan, addressed in **pruned** row coordinates (the same coordinates
/// [`ScanLayout::project`] produces).
///
/// Each chunk decodes at most once, on first touch, into a cached
/// [`Batch`]; tensors are reference-counted, so handing slices of it to
/// morsel workers shares the decoded buffers instead of copying them.
pub struct StoredStream {
    table: Arc<StoredTable>,
    cols: Vec<usize>,
    /// Surviving chunk indexes, ascending.
    keep: Vec<usize>,
    /// Pruned-coordinate start of each kept chunk (length `keep + 1`;
    /// chunk `k` covers pruned rows `[bounds[k], bounds[k+1])`).
    bounds: Vec<usize>,
    /// Lazily decoded chunks (thread-safe: morsel workers may race to
    /// decode, exactly one wins and the rest share its batch).
    cache: Vec<OnceLock<Batch>>,
}

impl StoredStream {
    /// Total rows the stream exposes (pruned coordinates).
    pub fn nrows(&self) -> usize {
        *self.bounds.last().expect("bounds never empty")
    }

    /// The decoded batch of kept-chunk `k`, decoding on first touch.
    fn chunk(&self, k: usize) -> &Batch {
        // Chunk boundary: streaming consumers check their query's token
        // before paying for another decode.
        crate::sched::check_cancelled();
        self.cache[k].get_or_init(|| {
            let decoded = self
                .table
                .decode_chunk(self.keep[k], &self.cols)
                .unwrap_or_else(|e| {
                    panic!("decoding chunk {} of {:?}: {e}", self.keep[k], self.table)
                });
            decoded_to_batch(decoded)
        })
    }

    /// An empty batch with the scan's column shapes.
    fn empty(&self) -> Batch {
        decoded_to_batch(self.table.empty_columns(&self.cols))
    }

    /// Materialize pruned rows `[lo, hi)` as one batch. A morsel inside a
    /// single chunk — the common case, since agg morsels (16 Ki) divide
    /// the chunk size (64 Ki) — is one `slice_rows` of the cached decode;
    /// boundary-spanning morsels concatenate the few pieces involved.
    pub fn slice(&self, lo: usize, hi: usize) -> Batch {
        if lo >= hi {
            return self.empty();
        }
        // Last chunk starting at or before `lo`.
        let first = self.bounds.partition_point(|&b| b <= lo) - 1;
        let mut pieces = Vec::new();
        let mut k = first;
        while k < self.keep.len() && self.bounds[k] < hi {
            let c_lo = self.bounds[k];
            let c_hi = self.bounds[k + 1];
            let piece = self
                .chunk(k)
                .slice_rows(lo.max(c_lo) - c_lo, hi.min(c_hi) - c_lo);
            if pieces.is_empty() && hi <= c_hi {
                return piece; // entirely inside one chunk: zero concat
            }
            pieces.push(piece);
            k += 1;
        }
        Batch::vcat_all(pieces)
    }

    /// Decode everything into one batch (the non-streaming consumers:
    /// barrier ops reading the whole scan). Chunks decode fanned out over
    /// the shared pool and concatenate in chunk order — byte-identical to
    /// the eager [`scan_stored`] batch.
    pub fn into_batch(self, workers: usize) -> Batch {
        if self.keep.is_empty() {
            return self.empty();
        }
        let parts: Vec<Batch> = crate::sched::map_tasks(self.keep.len(), workers, |k| {
            // Reuse any chunk a streaming consumer already decoded.
            match self.cache[k].get() {
                Some(b) => b.clone(),
                None => {
                    let decoded = self
                        .table
                        .decode_chunk(self.keep[k], &self.cols)
                        .unwrap_or_else(|e| {
                            panic!("decoding chunk {} of {:?}: {e}", self.keep[k], self.table)
                        });
                    decoded_to_batch(decoded)
                }
            }
        });
        Batch::vcat_all(parts)
    }
}

/// What a `Scan` op hands to the rest of the pipeline: either a fully
/// materialized batch (in-memory tables, metered runs) or a lazy stored
/// stream that decodes chunk-at-a-time as morsels pull on it.
pub enum ScanSource {
    Whole(Batch),
    Stream(StoredStream),
}

impl ScanSource {
    /// Rows the source exposes (pruned coordinates for streams).
    pub fn nrows(&self) -> usize {
        match self {
            ScanSource::Whole(b) => b.nrows(),
            ScanSource::Stream(s) => s.nrows(),
        }
    }

    /// Materialize rows `[lo, hi)`.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Batch {
        match self {
            ScanSource::Whole(b) => b.slice_rows(lo, hi),
            ScanSource::Stream(s) => s.slice(lo, hi),
        }
    }

    /// Materialize the whole source as one batch.
    pub fn into_batch(self, workers: usize) -> Batch {
        match self {
            ScanSource::Whole(b) => b,
            ScanSource::Stream(s) => s.into_batch(workers),
        }
    }
}

/// Materialize a whole stored table as one tensor table (the Wasm
/// sandbox-copy and baseline-oracle path — sequential, unpruned).
pub fn materialize(table: &StoredTable) -> tqp_data::ingest::TensorTable {
    let cols: Vec<usize> = (0..table.schema().len()).collect();
    let mut per_col: Vec<Vec<Tensor>> = vec![Vec::new(); cols.len()];
    for c in 0..table.n_chunks() {
        let decoded = table
            .decode_chunk(c, &cols)
            .unwrap_or_else(|e| panic!("decoding chunk {c} of {table:?}: {e}"));
        for (slot, (tensor, validity)) in per_col.iter_mut().zip(decoded) {
            assert!(
                validity.is_none(),
                "cannot materialize a NULL-bearing stored table as a frame"
            );
            slot.push(tensor);
        }
    }
    let tensors: Vec<Tensor> = if table.n_chunks() == 0 {
        table
            .empty_columns(&cols)
            .into_iter()
            .map(|(t, _)| t)
            .collect()
    } else {
        per_col
            .into_iter()
            .map(|mut parts| {
                // Single-chunk tables (and single survivors after pruning)
                // hand the decoded tensor through without a copy.
                if parts.len() == 1 {
                    return parts.pop().expect("one part");
                }
                let refs: Vec<&Tensor> = parts.iter().collect();
                tqp_tensor::index::concat(&refs)
            })
            .collect()
    };
    tqp_data::ingest::TensorTable {
        schema: table.schema().clone(),
        tensors,
    }
}

fn decoded_to_batch(decoded: Vec<tqp_store::DecodedColumn>) -> Batch {
    let mut columns = Vec::with_capacity(decoded.len());
    let mut validity = Vec::with_capacity(decoded.len());
    for (t, v) in decoded {
        columns.push(t);
        validity.push(v);
    }
    Batch::with_validity(columns, validity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_projection() {
        // Original 100 rows; kept [10, 30) and [60, 80).
        let l = ScanLayout::new(100, vec![(10, 20), (60, 20)]);
        assert_eq!(l.kept_rows(), 40);
        assert_eq!(l.project(0, 10), (0, 0));
        assert_eq!(l.project(0, 100), (0, 40));
        assert_eq!(l.project(10, 30), (0, 20));
        assert_eq!(l.project(15, 65), (5, 25));
        assert_eq!(l.project(30, 60), (20, 20));
        assert_eq!(l.project(70, 90), (30, 40));
    }

    #[test]
    fn identity_layout() {
        let l = ScanLayout::identity(50);
        assert_eq!(l.project(7, 31), (7, 31));
        assert_eq!(l.kept_rows(), 50);
    }
}

//! The Graph ("ONNX") and Wasm ("ORT-Web") backends.
//!
//! **Graph**: the physical plan is serialized into a self-contained JSON
//! artifact (the reproduction's ONNX file). `run_graph` deserializes it and
//! executes with the standalone vectorized VM — demonstrating the paper's
//! deployment story: a compiled query is a portable artifact that runs
//! without the compiler front-end.
//!
//! **Wasm**: the same artifact interpreted the way ORT-Web runs on a
//! browser: single-threaded, scalar (boxed values, per-row dispatch), with
//! data copied across the "sandbox" boundary (tensor → row conversion), and
//! an instruction-dilation factor approximating WASM-vs-native slowdown
//! (default ×3, spec'd from typical WASM compute benchmarks; override with
//! `TQP_WASM_DILATION`). All reported numbers are real measured wall-clock
//! of this deliberately interpretive execution — see EXPERIMENTS.md.

use bytes::Bytes;
use tqp_baseline::RowEngine;
use tqp_data::DataFrame;
use tqp_ir::physical::PhysicalPlan;
use tqp_ml::ModelRegistry;
use tqp_profile::Profiler;

use crate::device::DeviceMeter;
use crate::interp::Interp;
use crate::{ExecConfig, Storage};

/// Serialize a plan into the portable artifact.
pub fn serialize_plan(plan: &PhysicalPlan) -> Bytes {
    Bytes::from(plan.to_json().into_bytes())
}

/// Deserialize an artifact back into a plan.
pub fn deserialize_plan(artifact: &Bytes) -> PhysicalPlan {
    let s = std::str::from_utf8(artifact).expect("artifact is utf-8 json");
    PhysicalPlan::from_json(s).expect("artifact deserializes")
}

/// Execute the Graph backend: deserialize + vectorized VM.
pub fn run_graph(
    artifact: &Bytes,
    storage: &Storage,
    models: &ModelRegistry,
    profiler: &Profiler,
    cfg: ExecConfig,
) -> (DataFrame, DeviceMeter) {
    let start = profiler.now_us();
    let t0 = std::time::Instant::now();
    let plan = deserialize_plan(artifact);
    profiler.record(
        "GraphLoad",
        "compile",
        start,
        t0.elapsed().as_micros() as u64,
        0,
        artifact.len() as u64,
    );
    let mut cx = Interp::new(storage, models, profiler, cfg, false);
    let out = cx.execute(&plan);
    (out, cx.into_meter())
}

/// Execute the Wasm backend: scalar single-threaded VM over sandbox copies.
pub fn run_wasm(
    artifact: &Bytes,
    storage: &Storage,
    models: &ModelRegistry,
    profiler: &Profiler,
) -> (DataFrame, DeviceMeter) {
    let plan = deserialize_plan(artifact);
    let dilation: u32 = std::env::var("TQP_WASM_DILATION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    // Sandbox boundary: copy tensors into the VM's own (row) representation.
    let start = profiler.now_us();
    let t0 = std::time::Instant::now();
    let mut tables = std::collections::HashMap::new();
    for (name, tt) in storage {
        tables.insert(name.clone(), tqp_data::ingest::tensors_to_frame(tt));
    }
    profiler.record(
        "WasmSandboxCopy",
        "transfer",
        start,
        t0.elapsed().as_micros() as u64,
        0,
        tables.values().map(|f| f.nrows() as u64).sum(),
    );

    // Scalar interpretation, dilated to model WASM-vs-native overhead.
    let engine = RowEngine::new(&tables, models);
    let start = profiler.now_us();
    let t0 = std::time::Instant::now();
    let mut out = engine.execute(&plan);
    for _ in 1..dilation {
        out = engine.execute(&plan);
    }
    profiler.record(
        "WasmScalarVM",
        "relational",
        start,
        t0.elapsed().as_micros() as u64,
        out.nrows() as u64,
        0,
    );
    (out, DeviceMeter::new(false, crate::GpuStrategy::Resident))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tqp_data::frame::df;
    use tqp_data::Column;
    use tqp_ir::{compile_sql, Catalog, PhysicalOptions};

    fn setup() -> (Storage, Catalog) {
        let t = df(vec![
            ("id", Column::from_i64(vec![1, 2, 3])),
            ("v", Column::from_f64(vec![5.0, 15.0, 25.0])),
        ]);
        let mut catalog = Catalog::new();
        catalog.register("t", t.schema().clone(), t.nrows());
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), t);
        (crate::ingest_tables(&tables), catalog)
    }

    #[test]
    fn artifact_roundtrip() {
        let (_, catalog) = setup();
        let plan = compile_sql("select id from t where v > 10.0", &catalog, &PhysicalOptions::default())
            .unwrap();
        let bytes = serialize_plan(&plan);
        assert!(!bytes.is_empty());
        let back = deserialize_plan(&bytes);
        assert_eq!(plan, back);
    }

    #[test]
    fn graph_and_wasm_produce_same_result() {
        let (storage, catalog) = setup();
        let plan = compile_sql(
            "select id, v * 2 as vv from t where v > 10.0 order by id",
            &catalog,
            &PhysicalOptions::default(),
        )
        .unwrap();
        let bytes = serialize_plan(&plan);
        let models = ModelRegistry::new();
        let profiler = Profiler::new();
        let (g, _) = run_graph(&bytes, &storage, &models, &profiler, ExecConfig::default());
        let (w, _) = run_wasm(&bytes, &storage, &models, &profiler);
        assert_eq!(g.nrows(), w.nrows());
        for i in 0..g.nrows() {
            assert_eq!(g.row(i), w.row(i));
        }
        // The profiler saw the sandbox copy + scalar VM spans.
        let names: Vec<String> = profiler.aggregate().into_iter().map(|s| s.name).collect();
        assert!(names.iter().any(|n| n == "WasmSandboxCopy"));
        assert!(names.iter().any(|n| n == "GraphLoad"));
    }
}

//! The Graph ("ONNX") and Wasm ("ORT-Web") backends.
//!
//! Both execute the **serialized [`TensorProgram`] artifact** — not the
//! physical plan. The artifact (see [`crate::program::serialize_program`])
//! is versioned and self-describing: it is the reproduction's ONNX file,
//! and these entry points are the deployment story — a compiled query is
//! a portable artifact that runs without the compiler front-end.
//!
//! **Graph**: deserialize + the vectorized register VM ([`crate::vm`]).
//!
//! **Wasm**: the same artifact interpreted the way ORT-Web runs on a
//! browser: single-threaded, scalar (boxed values, per-row dispatch), with
//! data copied across the "sandbox" boundary (tensor → row conversion), and
//! an instruction-dilation factor approximating WASM-vs-native slowdown
//! (default ×3, spec'd from typical WASM compute benchmarks; override with
//! `TQP_WASM_DILATION`). All reported numbers are real measured wall-clock
//! of this deliberately interpretive execution — see EXPERIMENTS.md.

use bytes::Bytes;
use tqp_data::DataFrame;
use tqp_ml::ModelRegistry;
use tqp_profile::Profiler;

use crate::device::DeviceMeter;
use crate::program::{deserialize_program, TensorProgram};
use crate::{scalar, vm, ExecConfig, Storage};

/// Decode the artifact, charging the load to the profiler.
fn load_artifact(artifact: &Bytes, profiler: &Profiler) -> TensorProgram {
    let start = profiler.now_us();
    let t0 = std::time::Instant::now();
    let prog = deserialize_program(artifact).expect("artifact deserializes");
    profiler.record(
        "GraphLoad",
        "compile",
        start,
        t0.elapsed().as_micros() as u64,
        0,
        artifact.len() as u64,
    );
    prog
}

/// Execute the Graph backend: deserialize + vectorized VM.
pub fn run_graph(
    artifact: &Bytes,
    storage: &Storage,
    models: &ModelRegistry,
    profiler: &Profiler,
    cfg: ExecConfig,
) -> (DataFrame, DeviceMeter, crate::ScanStats) {
    let prog = load_artifact(artifact, profiler);
    vm::run_program(&prog, storage, models, profiler, cfg, false)
}

/// Execute the Wasm backend: scalar single-threaded VM over sandbox copies.
pub fn run_wasm(
    artifact: &Bytes,
    storage: &Storage,
    models: &ModelRegistry,
    profiler: &Profiler,
) -> (DataFrame, DeviceMeter, crate::ScanStats) {
    let prog = load_artifact(artifact, profiler);
    let dilation: u32 = std::env::var("TQP_WASM_DILATION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);

    // Sandbox boundary: copy tensors into the VM's own (row) representation.
    let start = profiler.now_us();
    let t0 = std::time::Instant::now();
    let mut tables = std::collections::HashMap::new();
    for (name, src) in storage {
        // Stored tables decode every chunk here: the sandbox boundary is
        // a whole-table copy by design (ORT-Web ships the data in).
        tables.insert(
            name.clone(),
            tqp_data::ingest::tensors_to_frame(&src.to_tensor_table()),
        );
    }
    profiler.record(
        "WasmSandboxCopy",
        "transfer",
        start,
        t0.elapsed().as_micros() as u64,
        0,
        tables.values().map(|f| f.nrows() as u64).sum(),
    );

    // Scalar interpretation, dilated to model WASM-vs-native overhead.
    // Per-op spans record on the first iteration only, so trace row
    // counts are independent of the dilation factor.
    let start = profiler.now_us();
    let t0 = std::time::Instant::now();
    let mut out = scalar::run_program_scalar_profiled(&prog, &tables, models, Some(profiler));
    for _ in 1..dilation {
        out = scalar::run_program_scalar(&prog, &tables, models);
    }
    profiler.record(
        "WasmScalarVM",
        "relational",
        start,
        t0.elapsed().as_micros() as u64,
        out.nrows() as u64,
        0,
    );
    (
        out,
        DeviceMeter::new(false, crate::GpuStrategy::Resident),
        crate::ScanStats::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{lower, serialize_program};
    use std::collections::HashMap;
    use tqp_data::frame::df;
    use tqp_data::Column;
    use tqp_ir::{compile_sql, Catalog, PhysicalOptions};

    fn setup() -> (Storage, Catalog) {
        let t = df(vec![
            ("id", Column::from_i64(vec![1, 2, 3])),
            ("v", Column::from_f64(vec![5.0, 15.0, 25.0])),
        ]);
        let mut catalog = Catalog::new();
        catalog.register("t", t.schema().clone(), t.nrows());
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), t);
        (crate::ingest_tables(&tables), catalog)
    }

    #[test]
    fn artifact_roundtrip() {
        let (_, catalog) = setup();
        let plan = compile_sql(
            "select id from t where v > 10.0",
            &catalog,
            &PhysicalOptions::default(),
        )
        .unwrap();
        let prog = lower(&plan);
        let bytes = serialize_program(&prog);
        assert!(!bytes.is_empty());
        let back = deserialize_program(&bytes).unwrap();
        assert_eq!(prog, back);
    }

    #[test]
    fn graph_and_wasm_produce_same_result() {
        let (storage, catalog) = setup();
        let plan = compile_sql(
            "select id, v * 2 as vv from t where v > 10.0 order by id",
            &catalog,
            &PhysicalOptions::default(),
        )
        .unwrap();
        let bytes = serialize_program(&lower(&plan));
        let models = ModelRegistry::new();
        let profiler = Profiler::new();
        let (g, _, _) = run_graph(&bytes, &storage, &models, &profiler, ExecConfig::default());
        let (w, _, _) = run_wasm(&bytes, &storage, &models, &profiler);
        assert_eq!(g.nrows(), w.nrows());
        for i in 0..g.nrows() {
            assert_eq!(g.row(i), w.row(i));
        }
        // The profiler saw the sandbox copy + scalar VM spans.
        let names: Vec<String> = profiler.aggregate().into_iter().map(|s| s.name).collect();
        assert!(names.iter().any(|n| n == "WasmSandboxCopy"));
        assert!(names.iter().any(|n| n == "GraphLoad"));
    }
}

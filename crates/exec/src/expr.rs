//! Shared expression kernels (`EXTRACT`, row hashing, key equality) and
//! the **legacy tree-walk interpreter**.
//!
//! Production execution no longer goes through this module's [`eval`] /
//! [`eval_mask`]: every backend now runs expressions as compiled
//! [`crate::exprprog::ExprProgram`]s (flat register-based kernel
//! sequences, built at lowering time). The tree walk is kept as the
//! **reference oracle** — the proptest parity suite asserts bitwise
//! equivalence between it and the compiled form, and
//! `crates/bench/src/bin/expr_bench.rs` measures compiled-vs-interpreted
//! dispatch on TPC-H expression workloads. Do not add production callers.
//!
//! `PREDICT` is evaluated *inline*: argument columns are already tensors, so
//! the model's tensor program runs as just another kernel in the pipeline —
//! no runtime boundary, which is the paper's §3.3 "unified runtime" claim.
//!
//! Validity handling is conservative Kleene logic: a result row is valid iff
//! every input it touched was valid; filters treat invalid predicate rows as
//! non-matching. (TPC-H's only NULL producers are left joins whose NULLs
//! flow directly into COUNT, so the approximation is exact on the suite —
//! asserted by the differential tests.)

use tqp_data::dates::Date;
use tqp_data::LogicalType;
use tqp_ir::expr::{BinOp, BoundExpr, ScalarFunc};
use tqp_ml::ModelRegistry;
use tqp_tensor::ops::{self, BinOp as TB, CmpOp};
use tqp_tensor::strings::{self, LikePattern};
use tqp_tensor::{Scalar, Tensor};

use crate::batch::Batch;

/// A value + optional validity pair.
pub type Evaled = (Tensor, Option<Tensor>);

/// Evaluate an expression tree over a batch.
///
/// **Legacy reference interpreter** — production paths run compiled
/// [`crate::exprprog::ExprProgram`]s instead; this stays as the oracle
/// for parity tests and the `expr_bench` interpreted baseline.
pub fn eval(e: &BoundExpr, batch: &Batch, models: &ModelRegistry) -> Evaled {
    let n = batch.nrows();
    match e {
        BoundExpr::Column { index, .. } => (
            batch.columns[*index].clone(),
            batch.validity[*index].clone(),
        ),
        BoundExpr::OuterRef { .. } => panic!("OuterRef survived decorrelation"),
        BoundExpr::Param { index, .. } => panic!(
            "unbound parameter ${} reached the tree interpreter — bind values first",
            index + 1
        ),
        BoundExpr::Literal { value, ty } => {
            assert!(
                !value.is_null() || *ty == LogicalType::Int64,
                "NULL literals are not materializable"
            );
            if value.is_null() {
                // Only reachable through IS NULL checks on literals.
                return (
                    Tensor::zeros(tqp_tensor::DType::I64, n),
                    Some(Tensor::from_bool(vec![false; n])),
                );
            }
            (Tensor::full(value, n), None)
        }
        BoundExpr::Binary {
            op, left, right, ..
        } => {
            // Scalar fast paths: comparisons/arithmetic against a literal
            // never materialize the broadcast tensor.
            if let Some(cmp) = to_cmp(*op) {
                if let BoundExpr::Literal { value, .. } = right.as_ref() {
                    if !value.is_null() {
                        let (lv, lval) = eval(left, batch, models);
                        return (ops::compare_scalar(cmp, &lv, value), lval);
                    }
                }
                if let BoundExpr::Literal { value, .. } = left.as_ref() {
                    if !value.is_null() {
                        let (rv, rval) = eval(right, batch, models);
                        return (ops::compare_scalar(cmp.flip(), &rv, value), rval);
                    }
                }
            }
            let (lv, lval) = eval(left, batch, models);
            let (rv, rval) = eval(right, batch, models);
            let validity = merge_validity(lval, rval);
            let value = match op {
                BinOp::And => ops::and(&lv, &rv),
                BinOp::Or => ops::or(&lv, &rv),
                BinOp::Add => ops::binary(TB::Add, &lv, &rv),
                BinOp::Sub => ops::binary(TB::Sub, &lv, &rv),
                BinOp::Mul => ops::binary(TB::Mul, &lv, &rv),
                BinOp::Div => ops::binary(TB::Div, &lv, &rv),
                BinOp::Mod => ops::binary(TB::Mod, &lv, &rv),
                BinOp::Eq => ops::compare(CmpOp::Eq, &lv, &rv),
                BinOp::NotEq => ops::compare(CmpOp::Ne, &lv, &rv),
                BinOp::Lt => ops::compare(CmpOp::Lt, &lv, &rv),
                BinOp::LtEq => ops::compare(CmpOp::Le, &lv, &rv),
                BinOp::Gt => ops::compare(CmpOp::Gt, &lv, &rv),
                BinOp::GtEq => ops::compare(CmpOp::Ge, &lv, &rv),
            };
            (value, validity)
        }
        BoundExpr::Not(inner) => {
            let (v, val) = eval(inner, batch, models);
            (ops::not(&v), val)
        }
        BoundExpr::Neg(inner) => {
            let (v, val) = eval(inner, batch, models);
            (ops::neg(&v), val)
        }
        BoundExpr::Case {
            branches,
            else_expr,
            ty,
        } => {
            // Fold from the last branch backwards: where(cond, val, acc).
            let (mut acc, mut acc_val) = eval(else_expr, batch, models);
            // CASE values may mix Int64/Float64; land on the result type.
            acc = coerce(acc, *ty);
            for (cond, val) in branches.iter().rev() {
                let (c, cval) = eval(cond, batch, models);
                // Invalid condition = no match: fold into the condition.
                let c = match cval {
                    Some(m) => ops::and(&c, &m),
                    None => c,
                };
                let (v, vval) = eval(val, batch, models);
                let v = coerce(v, *ty);
                acc = ops::where_select(&c, &v, &acc);
                acc_val = merge_validity(acc_val, vval);
            }
            (acc, acc_val)
        }
        BoundExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let (v, val) = eval(expr, batch, models);
            let compiled = LikePattern::compile(pattern);
            let mask = strings::like(&v, &compiled);
            let mask = if *negated { ops::not(&mask) } else { mask };
            (mask, val)
        }
        BoundExpr::InList {
            expr,
            list,
            negated,
        } => {
            let (v, val) = eval(expr, batch, models);
            let mask = ops::in_list(&v, list);
            let mask = if *negated { ops::not(&mask) } else { mask };
            (mask, val)
        }
        BoundExpr::IsNull { expr, negated } => {
            let (v, val) = eval(expr, batch, models);
            let _ = v;
            let mask = match val {
                Some(m) => ops::not(&m), // invalid == NULL
                None => Tensor::from_bool(vec![false; n]),
            };
            let mask = if *negated { ops::not(&mask) } else { mask };
            (mask, None)
        }
        BoundExpr::Func { func, args, .. } => {
            let (v, val) = eval(&args[0], batch, models);
            let out = match func {
                ScalarFunc::ExtractYear => extract_year_kernel(&v),
                ScalarFunc::ExtractMonth => extract_month_kernel(&v),
                ScalarFunc::Substring { start, len } => {
                    strings::substring(&v, *start as usize, *len as usize)
                }
                ScalarFunc::Abs => ops::abs(&v),
            };
            (out, val)
        }
        BoundExpr::Predict { model, args, .. } => {
            let m = models.require(model);
            let inputs: Vec<Tensor> = args
                .iter()
                .map(|a| {
                    let (v, val) = eval(a, batch, models);
                    assert!(val.is_none(), "PREDICT over NULLable columns unsupported");
                    v
                })
                .collect();
            (m.predict(&inputs), None)
        }
        BoundExpr::ScalarSubquery { .. }
        | BoundExpr::InSubquery { .. }
        | BoundExpr::Exists { .. } => panic!("subquery survived decorrelation"),
    }
}

/// Evaluate a predicate tree to a filter mask (validity folded in:
/// NULL = drop). Legacy reference path — see [`eval`].
pub fn eval_mask(e: &BoundExpr, batch: &Batch, models: &ModelRegistry) -> Tensor {
    let (v, val) = eval(e, batch, models);
    match val {
        Some(m) => ops::and(&v, &m),
        None => v,
    }
}

/// Comparison `BinOp` → tensor `CmpOp` (shared with the compiled
/// expression executor in [`crate::exprprog`]).
pub(crate) fn to_cmp(op: BinOp) -> Option<CmpOp> {
    Some(match op {
        BinOp::Eq => CmpOp::Eq,
        BinOp::NotEq => CmpOp::Ne,
        BinOp::Lt => CmpOp::Lt,
        BinOp::LtEq => CmpOp::Le,
        BinOp::Gt => CmpOp::Gt,
        BinOp::GtEq => CmpOp::Ge,
        _ => return None,
    })
}

/// Conservative Kleene validity merge (shared with the compiled
/// expression executor in [`crate::exprprog`]).
pub(crate) fn merge_validity(a: Option<Tensor>, b: Option<Tensor>) -> Option<Tensor> {
    match (a, b) {
        (None, None) => None,
        (Some(m), None) | (None, Some(m)) => Some(m),
        (Some(x), Some(y)) => Some(ops::and(&x, &y)),
    }
}

/// Dtype-checked cast onto a logical type's tensor dtype (CASE branch
/// unification; shared with the compiled expression executor).
pub(crate) fn coerce(t: Tensor, ty: LogicalType) -> Tensor {
    match ty {
        LogicalType::Float64 if t.dtype() != tqp_tensor::DType::F64 => {
            t.cast(tqp_tensor::DType::F64).expect("coerce to f64")
        }
        LogicalType::Int64
            if t.dtype() != tqp_tensor::DType::I64 && t.dtype() != tqp_tensor::DType::U8 =>
        {
            t.cast(tqp_tensor::DType::I64).expect("coerce to i64")
        }
        _ => t,
    }
}

/// Vectorized `EXTRACT(YEAR ...)` over epoch-nanosecond dates.
pub fn extract_year_kernel(t: &Tensor) -> Tensor {
    let out: Vec<i64> = t
        .as_i64()
        .iter()
        .map(|&ns| Date::from_epoch_ns(ns).year as i64)
        .collect();
    Tensor::from_i64(out)
}

/// Vectorized `EXTRACT(MONTH ...)`.
pub fn extract_month_kernel(t: &Tensor) -> Tensor {
    let out: Vec<i64> = t
        .as_i64()
        .iter()
        .map(|&ns| Date::from_epoch_ns(ns).month as i64)
        .collect();
    Tensor::from_i64(out)
}

/// FxHash-style row hash over multiple key columns → `I64` tensor. Used by
/// multi-key joins and hash aggregation (hash + full-key verification).
pub fn hash_rows(keys: &[&Tensor]) -> Tensor {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    let n = keys.first().map_or(0, |k| k.nrows());
    let mut acc = vec![0xcbf2_9ce4_8422_2325u64; n];
    let mix = |h: u64, v: u64| -> u64 { (h.rotate_left(5) ^ v).wrapping_mul(SEED) };
    for k in keys {
        match k.dtype() {
            tqp_tensor::DType::I64 => {
                for (a, &v) in acc.iter_mut().zip(k.as_i64()) {
                    *a = mix(*a, v as u64);
                }
            }
            tqp_tensor::DType::I32 => {
                for (a, &v) in acc.iter_mut().zip(k.as_i32()) {
                    *a = mix(*a, v as i64 as u64);
                }
            }
            tqp_tensor::DType::F64 => {
                for (a, &v) in acc.iter_mut().zip(k.as_f64()) {
                    *a = mix(*a, v.to_bits());
                }
            }
            tqp_tensor::DType::Bool => {
                for (a, &v) in acc.iter_mut().zip(k.as_bool()) {
                    *a = mix(*a, v as u64);
                }
            }
            tqp_tensor::DType::U8 => {
                for (i, a) in acc.iter_mut().enumerate() {
                    let row = k.str_row_trimmed(i);
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for &b in row {
                        h = mix(h, b as u64);
                    }
                    *a = mix(*a, h);
                }
            }
            other => panic!("hash_rows on {other:?}"),
        }
    }
    Tensor::from_i64(acc.into_iter().map(|h| h as i64).collect())
}

/// Row-wise key equality across two gathered key sets (hash-collision
/// verification and join-key residuals).
pub fn keys_equal(left: &[Tensor], right: &[Tensor]) -> Tensor {
    assert_eq!(left.len(), right.len());
    let n = left.first().map_or(0, |t| t.nrows());
    let mut acc = Tensor::from_bool(vec![true; n]);
    for (l, r) in left.iter().zip(right) {
        acc = ops::and(&acc, &ops::compare(CmpOp::Eq, l, r));
    }
    acc
}

/// Dynamically typed scalar → 1-element tensor helper for tests.
pub fn scalar_tensor(s: &Scalar, n: usize) -> Tensor {
    Tensor::full(s, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqp_ir::expr::BoundExpr as E;

    fn batch() -> Batch {
        Batch::new(vec![
            Tensor::from_i64(vec![1, 2, 3, 4]),
            Tensor::from_f64(vec![10.0, 20.0, 30.0, 40.0]),
            Tensor::from_strings(&["PROMO A", "STD B", "PROMO C", "ECON D"], 0),
        ])
    }

    fn models() -> ModelRegistry {
        ModelRegistry::new()
    }

    #[test]
    fn arithmetic_and_compare() {
        let e = E::Binary {
            op: BinOp::Mul,
            left: Box::new(E::col(1, LogicalType::Float64)),
            right: Box::new(E::lit_f64(2.0)),
            ty: LogicalType::Float64,
        };
        let (v, val) = eval(&e, &batch(), &models());
        assert_eq!(v.as_f64(), &[20.0, 40.0, 60.0, 80.0]);
        assert!(val.is_none());
        let c = E::Binary {
            op: BinOp::Lt,
            left: Box::new(E::col(0, LogicalType::Int64)),
            right: Box::new(E::lit_i64(3)),
            ty: LogicalType::Bool,
        };
        let mask = eval_mask(&c, &batch(), &models());
        assert_eq!(mask.as_bool(), &[true, true, false, false]);
    }

    #[test]
    fn case_when_like() {
        // Q14 numerator shape.
        let e = E::Case {
            branches: vec![(
                E::Like {
                    expr: Box::new(E::col(2, LogicalType::Str)),
                    pattern: "PROMO%".into(),
                    negated: false,
                },
                E::col(1, LogicalType::Float64),
            )],
            else_expr: Box::new(E::lit_f64(0.0)),
            ty: LogicalType::Float64,
        };
        let (v, _) = eval(&e, &batch(), &models());
        assert_eq!(v.as_f64(), &[10.0, 0.0, 30.0, 0.0]);
    }

    #[test]
    fn case_mixing_int_and_float_coerces() {
        let e = E::Case {
            branches: vec![(
                E::Binary {
                    op: BinOp::Gt,
                    left: Box::new(E::col(0, LogicalType::Int64)),
                    right: Box::new(E::lit_i64(2)),
                    ty: LogicalType::Bool,
                },
                E::col(1, LogicalType::Float64),
            )],
            else_expr: Box::new(E::lit_i64(0)),
            ty: LogicalType::Float64,
        };
        let (v, _) = eval(&e, &batch(), &models());
        assert_eq!(v.as_f64(), &[0.0, 0.0, 30.0, 40.0]);
    }

    #[test]
    fn validity_drops_rows_in_masks() {
        let b = Batch::with_validity(
            vec![Tensor::from_i64(vec![1, 2, 3])],
            vec![Some(Tensor::from_bool(vec![true, false, true]))],
        );
        let e = E::Binary {
            op: BinOp::Gt,
            left: Box::new(E::col(0, LogicalType::Int64)),
            right: Box::new(E::lit_i64(0)),
            ty: LogicalType::Bool,
        };
        let mask = eval_mask(&e, &b, &models());
        assert_eq!(mask.as_bool(), &[true, false, true]);
        // IS NULL sees the invalid row.
        let isnull = E::IsNull {
            expr: Box::new(E::col(0, LogicalType::Int64)),
            negated: false,
        };
        let (v, _) = eval(&isnull, &b, &models());
        assert_eq!(v.as_bool(), &[false, true, false]);
    }

    #[test]
    fn extract_kernels() {
        let ns = tqp_data::dates::parse_to_ns("1995-09-14").unwrap();
        let t = Tensor::from_i64(vec![ns]);
        assert_eq!(extract_year_kernel(&t).as_i64(), &[1995]);
        assert_eq!(extract_month_kernel(&t).as_i64(), &[9]);
    }

    #[test]
    fn hash_rows_consistency() {
        let a = Tensor::from_i64(vec![1, 2, 1]);
        let b = Tensor::from_strings(&["x", "y", "x"], 0);
        let h = hash_rows(&[&a, &b]);
        assert_eq!(h.as_i64()[0], h.as_i64()[2]);
        assert_ne!(h.as_i64()[0], h.as_i64()[1]);
    }

    #[test]
    fn keys_equal_verifies() {
        let l = vec![Tensor::from_i64(vec![1, 2])];
        let r = vec![Tensor::from_i64(vec![1, 3])];
        assert_eq!(keys_equal(&l, &r).as_bool(), &[true, false]);
    }
}

//! Column batches: the unit of data flowing between tensor operators.
//!
//! A batch is one tensor per column (paper §2.1's representation) plus an
//! optional validity mask per column — NULLs exist only downstream of
//! left-outer joins in the TPC-H workload, so most columns carry `None`.

use tqp_tensor::index::{concat, slice_rows, take};
use tqp_tensor::Tensor;

/// A set of equal-length column tensors with optional validity.
#[derive(Debug, Clone)]
pub struct Batch {
    pub columns: Vec<Tensor>,
    /// `validity[i]` is `None` (all rows valid) or a `Bool` tensor.
    pub validity: Vec<Option<Tensor>>,
    nrows: usize,
}

impl Batch {
    /// Build from all-valid columns.
    pub fn new(columns: Vec<Tensor>) -> Batch {
        let nrows = columns.first().map_or(0, |c| c.nrows());
        for c in &columns {
            assert_eq!(c.nrows(), nrows, "batch columns must align");
        }
        let validity = vec![None; columns.len()];
        Batch {
            columns,
            validity,
            nrows,
        }
    }

    /// Build with explicit validity masks. Enforces the same column-length
    /// alignment as [`Batch::new`], plus mask/column alignment — a
    /// misaligned validity mask would silently mis-NULL rows downstream.
    pub fn with_validity(columns: Vec<Tensor>, validity: Vec<Option<Tensor>>) -> Batch {
        assert_eq!(
            columns.len(),
            validity.len(),
            "one validity slot per column"
        );
        let nrows = columns.first().map_or(0, |c| c.nrows());
        for c in &columns {
            assert_eq!(c.nrows(), nrows, "batch columns must align");
        }
        for v in validity.iter().flatten() {
            assert_eq!(v.nrows(), nrows, "validity masks must align with columns");
        }
        Batch {
            columns,
            validity,
            nrows,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.columns.len()
    }

    /// Total payload bytes (drives the GPU cost model).
    pub fn nbytes(&self) -> usize {
        self.columns.iter().map(|c| c.nbytes()).sum()
    }

    /// Gather rows by an `I64` index tensor (columns and validity move
    /// together) — the compaction step behind filters and joins.
    pub fn take(&self, idx: &Tensor) -> Batch {
        let columns = self.columns.iter().map(|c| take(c, idx)).collect();
        let validity = self
            .validity
            .iter()
            .map(|v| v.as_ref().map(|m| take(m, idx)))
            .collect();
        Batch {
            columns,
            validity,
            nrows: idx.nrows(),
        }
    }

    /// Horizontal concatenation (join output assembly).
    pub fn hcat(mut self, right: Batch) -> Batch {
        assert_eq!(self.nrows, right.nrows, "hcat row mismatch");
        self.columns.extend(right.columns);
        self.validity.extend(right.validity);
        self
    }

    /// A sub-batch of the given columns.
    pub fn select(&self, cols: &[usize]) -> Batch {
        Batch {
            columns: cols.iter().map(|&c| self.columns[c].clone()).collect(),
            validity: cols.iter().map(|&c| self.validity[c].clone()).collect(),
            nrows: self.nrows,
        }
    }

    /// Contiguous row range `[lo, hi)` — the morsel split of the parallel
    /// executor.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Batch {
        assert!(lo <= hi && hi <= self.nrows, "slice out of range");
        Batch {
            columns: self.columns.iter().map(|c| slice_rows(c, lo, hi)).collect(),
            validity: self
                .validity
                .iter()
                .map(|v| v.as_ref().map(|m| slice_rows(m, lo, hi)))
                .collect(),
            nrows: hi - lo,
        }
    }

    /// Vertical concatenation of two batches (validity-aware).
    pub fn vcat(a: Batch, b: Batch) -> Batch {
        assert_eq!(a.ncols(), b.ncols(), "vcat arity mismatch");
        if a.nrows() == 0 {
            return b;
        }
        if b.nrows() == 0 {
            return a;
        }
        let columns: Vec<Tensor> = a
            .columns
            .iter()
            .zip(&b.columns)
            .map(|(x, y)| concat(&[x, y]))
            .collect();
        let validity: Vec<Option<Tensor>> = a
            .validity
            .iter()
            .zip(&b.validity)
            .map(|(va, vb)| match (va, vb) {
                (None, None) => None,
                _ => {
                    let xa = va
                        .clone()
                        .unwrap_or_else(|| Tensor::from_bool(vec![true; a.nrows()]));
                    let xb = vb
                        .clone()
                        .unwrap_or_else(|| Tensor::from_bool(vec![true; b.nrows()]));
                    Some(concat(&[&xa, &xb]))
                }
            })
            .collect();
        Batch::with_validity(columns, validity)
    }

    /// Vertical concatenation of any number of batches, in order.
    pub fn vcat_all(parts: Vec<Batch>) -> Batch {
        let mut parts = parts.into_iter();
        let first = parts.next().expect("vcat_all of zero batches");
        parts.fold(first, Batch::vcat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_meta() {
        let b = Batch::new(vec![
            Tensor::from_i64(vec![1, 2, 3]),
            Tensor::from_f64(vec![0.5, 1.5, 2.5]),
        ]);
        assert_eq!(b.nrows(), 3);
        assert_eq!(b.ncols(), 2);
        assert_eq!(b.nbytes(), 48);
    }

    #[test]
    fn take_moves_validity() {
        let b = Batch::with_validity(
            vec![Tensor::from_i64(vec![10, 20, 30])],
            vec![Some(Tensor::from_bool(vec![true, false, true]))],
        );
        let t = b.take(&Tensor::from_i64(vec![2, 1]));
        assert_eq!(t.columns[0].as_i64(), &[30, 20]);
        assert_eq!(t.validity[0].as_ref().unwrap().as_bool(), &[true, false]);
    }

    #[test]
    fn hcat_and_select() {
        let a = Batch::new(vec![Tensor::from_i64(vec![1, 2])]);
        let b = Batch::new(vec![Tensor::from_f64(vec![5.0, 6.0])]);
        let c = a.hcat(b);
        assert_eq!(c.ncols(), 2);
        let s = c.select(&[1]);
        assert_eq!(s.columns[0].as_f64(), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn rejects_misaligned() {
        Batch::new(vec![
            Tensor::from_i64(vec![1]),
            Tensor::from_i64(vec![1, 2]),
        ]);
    }
}

//! The **TensorProgram** IR — the paper's "tensor program" (§2.2) made
//! explicit.
//!
//! [`lower`] compiles a [`PhysicalPlan`] tree into a flat, register-based
//! sequence of tensor operators. The program — not the plan — is what
//! every backend executes:
//!
//! * the vectorized register VM ([`crate::vm`]) runs it directly
//!   (`Eager`/`Fused` are VM modes: fusion is selection-vector compaction
//!   between ops);
//! * the Graph backend serializes it into a **versioned, self-describing
//!   artifact** ([`serialize_program`]) — the reproduction's "ONNX file" —
//!   and the standalone VM executes the deserialized program without the
//!   compiler front-end;
//! * the Wasm backend scalar-interprets the *same* artifact row-at-a-time
//!   ([`crate::scalar`]), the ORT-Web analog.
//!
//! **Expressions are compiled, not embedded.** Since artifact v2, no op
//! carries a `BoundExpr` tree: every scalar expression — filter
//! conjuncts, projections, join residuals, group-by keys, aggregate
//! inputs, sort keys, `PREDICT` splice points — is lowered here into a
//! flat [`ExprProgram`] ([`crate::exprprog`]) with lowering-time constant
//! folding and cross-expression common-subexpression reuse. Lowering also
//! folds the conjunct list itself: always-true conjuncts are dropped
//! (possibly eliding the whole `Filter`), and a constant-false conjunct
//! collapses the filter to a canonical short-circuit the VMs turn into an
//! empty scan without evaluating anything.
//!
//! Register discipline: lowering walks the plan tree post-order, so every
//! op writes a fresh register and each register is read after it is
//! written; data-flow is explicit (`dst`/`src` fields), which is what the
//! morsel-parallel executor uses to find chunkable pipeline segments.

use bytes::Bytes;
use tqp_ir::expr::{eval_const, AggCall, AggFunc, BoundExpr};
use tqp_ir::json as irjson;
use tqp_ir::physical::{dedup_names, AggStrategy, JoinStrategy, PhysicalPlan};
use tqp_ir::plan::{JoinType, PlanSchema};
use tqp_json::Json;
use tqp_tensor::Scalar;

use crate::exprprog::{
    compile_expr, compile_exprs, exprprog_from_json, exprprog_to_json, ExprProgram,
};

/// Artifact format tag (the self-describing header's `format` field).
pub const ARTIFACT_FORMAT: &str = "tqp-tensor-program";

/// Current artifact version. Bump on any encoding change; the loader
/// rejects versions it does not understand. v1 embedded `BoundExpr`
/// trees; v2 encodes compiled [`ExprProgram`]s natively.
pub const ARTIFACT_VERSION: i64 = 2;

/// The last tree-based artifact version, rejected with a pointed error.
pub const ARTIFACT_VERSION_V1: i64 = 1;

/// A register index. Registers hold either a column batch or a join
/// build table (see `tqp_exec::vm::Value`).
pub type Reg = usize;

/// One aggregate call of a [`ReduceExprs`] bundle. The argument is a slot
/// into the bundle's compiled outputs, not an expression tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledAgg {
    pub func: AggFunc,
    /// Output slot of the reduce program holding the argument values
    /// (`None` for `COUNT(*)`).
    pub arg: Option<usize>,
    /// Result type.
    pub ty: tqp_data::LogicalType,
}

/// The compiled expression bundle of a `GroupedReduce`: one shared
/// [`ExprProgram`] whose outputs are the group keys (`..n_keys`) followed
/// by the aggregate argument columns, plus per-aggregate metadata.
/// Sharing one program means a subterm used by several aggregates (Q1's
/// `l_extendedprice * (1 - l_discount)`) evaluates once per batch.
#[derive(Debug, Clone, PartialEq)]
pub struct ReduceExprs {
    pub exprs: ExprProgram,
    pub n_keys: usize,
    pub aggs: Vec<CompiledAgg>,
}

impl ReduceExprs {
    /// Compile group-by keys + aggregate arguments into one bundle.
    pub fn compile(group_by: &[BoundExpr], aggs: &[AggCall]) -> ReduceExprs {
        let mut sources: Vec<BoundExpr> = group_by.to_vec();
        let mut compiled = Vec::with_capacity(aggs.len());
        for call in aggs {
            let arg = call.arg.as_ref().map(|a| {
                let slot = sources.len();
                sources.push(a.clone());
                slot
            });
            compiled.push(CompiledAgg {
                func: call.func,
                arg,
                ty: call.ty,
            });
        }
        ReduceExprs {
            exprs: compile_exprs(&sources),
            n_keys: group_by.len(),
            aggs: compiled,
        }
    }
}

/// One flat tensor-program operator.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgOp {
    /// Load a stored table (optionally projected) into `dst`.
    Scan {
        dst: Reg,
        table: String,
        projection: Option<Vec<usize>>,
    },
    /// Filter `src` by compiled conjuncts (one program output per
    /// conjunct). The VM mode decides the evaluation shape: Eager
    /// materializes every conjunct mask over the full input and compacts
    /// once; Fused compacts adaptively between conjuncts (selection
    /// vectors), compacting the expression registers alongside. A
    /// constant-false conjunct (see [`lower`]) short-circuits to an empty
    /// batch without evaluating anything.
    Filter {
        dst: Reg,
        src: Reg,
        conjuncts: ExprProgram,
    },
    /// Evaluate compiled projection expressions over `src` (one program
    /// output per projected column).
    Project {
        dst: Reg,
        src: Reg,
        exprs: ExprProgram,
    },
    /// Build the hash table over the right (build) side's key columns.
    /// `distinct` is the optimizer's distinct-key estimate for the build
    /// side (from the catalog's KMV sketch), used to size the flat hash
    /// directory; `None` sizes for all-distinct keys.
    HashBuild {
        dst: Reg,
        src: Reg,
        keys: Vec<usize>,
        distinct: Option<u64>,
    },
    /// Probe a [`ProgOp::HashBuild`] table with the left side's keys,
    /// verify/filter pairs, and assemble the join output.
    HashProbe {
        dst: Reg,
        table: Reg,
        left: Reg,
        right: Reg,
        join_type: JoinType,
        on: Vec<(usize, usize)>,
        residual: Option<ExprProgram>,
    },
    /// The tensor-native sort-merge join (argsort + double searchsorted +
    /// pair expansion) as one fused op.
    SortMergeJoin {
        dst: Reg,
        left: Reg,
        right: Reg,
        join_type: JoinType,
        on: Vec<(usize, usize)>,
        residual: Option<ExprProgram>,
    },
    /// Cartesian product (scalar-subquery sides only).
    CrossJoin { dst: Reg, left: Reg, right: Reg },
    /// Grouped/global reduction (sort- or hash-strategy segmented
    /// reduce — the paper's GroupedReduce) over a compiled key/argument
    /// bundle.
    GroupedReduce {
        dst: Reg,
        src: Reg,
        strategy: AggStrategy,
        reduce: ReduceExprs,
    },
    /// Stable multi-key sort over compiled key expressions (`desc[k]`
    /// flips key `k`).
    Sort {
        dst: Reg,
        src: Reg,
        keys: ExprProgram,
        desc: Vec<bool>,
    },
    /// Keep the first `n` rows.
    Limit { dst: Reg, src: Reg, n: usize },
}

impl ProgOp {
    /// The register this op writes.
    pub fn dst(&self) -> Reg {
        match self {
            ProgOp::Scan { dst, .. }
            | ProgOp::Filter { dst, .. }
            | ProgOp::Project { dst, .. }
            | ProgOp::HashBuild { dst, .. }
            | ProgOp::HashProbe { dst, .. }
            | ProgOp::SortMergeJoin { dst, .. }
            | ProgOp::CrossJoin { dst, .. }
            | ProgOp::GroupedReduce { dst, .. }
            | ProgOp::Sort { dst, .. }
            | ProgOp::Limit { dst, .. } => *dst,
        }
    }

    /// The registers this op reads.
    pub fn srcs(&self) -> Vec<Reg> {
        match self {
            ProgOp::Scan { .. } => vec![],
            ProgOp::Filter { src, .. }
            | ProgOp::Project { src, .. }
            | ProgOp::HashBuild { src, .. }
            | ProgOp::GroupedReduce { src, .. }
            | ProgOp::Sort { src, .. }
            | ProgOp::Limit { src, .. } => vec![*src],
            ProgOp::HashProbe {
                table, left, right, ..
            } => vec![*table, *left, *right],
            ProgOp::SortMergeJoin { left, right, .. } | ProgOp::CrossJoin { left, right, .. } => {
                vec![*left, *right]
            }
        }
    }

    /// Profiler/display name, matching the plan-walk interpreter's
    /// operator names where an equivalent existed.
    pub fn name(&self) -> String {
        match self {
            ProgOp::Scan { table, .. } => format!("Scan({table})"),
            ProgOp::Filter { .. } => "Filter".into(),
            ProgOp::Project { exprs, .. } if exprs.has_model_apply() => "Project+Predict".into(),
            ProgOp::Project { .. } => "Project".into(),
            ProgOp::HashBuild { .. } => "HashBuild".into(),
            ProgOp::HashProbe { join_type, .. } => format!("HashJoin({join_type:?})"),
            ProgOp::SortMergeJoin { join_type, .. } => format!("SortMergeJoin({join_type:?})"),
            ProgOp::CrossJoin { .. } => "CrossJoin".into(),
            ProgOp::GroupedReduce { strategy, .. } => format!("{strategy:?}Aggregate"),
            ProgOp::Sort { .. } => "Sort".into(),
            ProgOp::Limit { .. } => "Limit".into(),
        }
    }

    /// Number of compiled expression micro-ops this operator carries
    /// (display / artifact statistics).
    pub fn expr_op_count(&self) -> usize {
        match self {
            ProgOp::Filter { conjuncts, .. } => conjuncts.ops.len(),
            ProgOp::Project { exprs, .. } => exprs.ops.len(),
            ProgOp::HashProbe { residual, .. } | ProgOp::SortMergeJoin { residual, .. } => {
                residual.as_ref().map_or(0, |r| r.ops.len())
            }
            ProgOp::GroupedReduce { reduce, .. } => reduce.exprs.ops.len(),
            ProgOp::Sort { keys, .. } => keys.ops.len(),
            _ => 0,
        }
    }
}

/// A lowered query: flat op sequence + register budget + output schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorProgram {
    /// Topologically ordered op sequence (writer-before-reader).
    pub ops: Vec<ProgOp>,
    /// Number of registers the VM must allocate.
    pub n_regs: usize,
    /// Register holding the query result.
    pub output: Reg,
    /// Output schema (names deduplicated, display-ready).
    pub schema: PlanSchema,
}

impl TensorProgram {
    /// Visit every compiled [`ExprProgram`] the program carries (filter
    /// conjuncts, projections, join residuals, reduce bundles, sort keys).
    pub fn for_each_exprprog(&self, mut f: impl FnMut(&ExprProgram)) {
        for op in &self.ops {
            match op {
                ProgOp::Filter { conjuncts, .. } => f(conjuncts),
                ProgOp::Project { exprs, .. } => f(exprs),
                ProgOp::HashProbe { residual, .. } | ProgOp::SortMergeJoin { residual, .. } => {
                    if let Some(r) = residual {
                        f(r)
                    }
                }
                ProgOp::GroupedReduce { reduce, .. } => f(&reduce.exprs),
                ProgOp::Sort { keys, .. } => f(keys),
                ProgOp::Scan { .. }
                | ProgOp::HashBuild { .. }
                | ProgOp::CrossJoin { .. }
                | ProgOp::Limit { .. } => {}
            }
        }
    }

    /// Mutable variant of [`TensorProgram::for_each_exprprog`].
    pub fn for_each_exprprog_mut(&mut self, mut f: impl FnMut(&mut ExprProgram)) {
        for op in &mut self.ops {
            match op {
                ProgOp::Filter { conjuncts, .. } => f(conjuncts),
                ProgOp::Project { exprs, .. } => f(exprs),
                ProgOp::HashProbe { residual, .. } | ProgOp::SortMergeJoin { residual, .. } => {
                    if let Some(r) = residual {
                        f(r)
                    }
                }
                ProgOp::GroupedReduce { reduce, .. } => f(&mut reduce.exprs),
                ProgOp::Sort { keys, .. } => f(keys),
                ProgOp::Scan { .. }
                | ProgOp::HashBuild { .. }
                | ProgOp::CrossJoin { .. }
                | ProgOp::Limit { .. } => {}
            }
        }
    }

    /// Number of parameter values ([`$1..$n`] placeholders) an execution
    /// must bind before this program may run; 0 for parameter-free queries.
    pub fn n_params(&self) -> usize {
        let mut n = 0;
        self.for_each_exprprog(|p| n = n.max(p.n_params()));
        n
    }

    /// Bind parameter values into a **clone** of the program by patching
    /// the compiled `LoadConst` slots — the prepared-statement fast path:
    /// no parse/bind/optimize/lower work happens here, so re-binding the
    /// same compiled program with new values never recompiles anything.
    pub fn bind_params(&self, values: &[Scalar]) -> Result<TensorProgram, String> {
        let need = self.n_params();
        if values.len() != need {
            return Err(format!(
                "query takes {need} parameter(s), {} supplied",
                values.len()
            ));
        }
        let mut bound = self.clone();
        let mut err: Option<String> = None;
        bound.for_each_exprprog_mut(|p| {
            if err.is_none() {
                if let Err(e) = p.bind_params(values) {
                    err = Some(e);
                }
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(bound),
        }
    }

    /// Names of the stored tables the program scans (deduplicated).
    pub fn tables(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for op in &self.ops {
            if let ProgOp::Scan { table, .. } = op {
                if !out.contains(&table.as_str()) {
                    out.push(table);
                }
            }
        }
        out
    }

    /// Names of the registered models the program invokes (deduplicated).
    pub fn model_names(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        self.for_each_exprprog(|p| {
            for op in &p.ops {
                if let crate::exprprog::ExprOp::ModelApply { model, .. } = op {
                    if !out.contains(model) {
                        out.push(model.clone());
                    }
                }
            }
        });
        out
    }

    /// Multi-line assembly-style listing (EXPLAIN for programs). Ops that
    /// carry compiled expressions show their micro-op count.
    pub fn display(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            let srcs: Vec<String> = op.srcs().iter().map(|r| format!("r{r}")).collect();
            let exprs = match op.expr_op_count() {
                0 => String::new(),
                n => format!(" [{n} expr ops]"),
            };
            out.push_str(&format!(
                "op{i:<3} r{} = {}({}){exprs}\n",
                op.dst(),
                op.name(),
                srcs.join(", ")
            ));
        }
        out.push_str(&format!("return r{}\n", self.output));
        out
    }
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Compile a physical plan into a [`TensorProgram`]. All expression trees
/// are compiled to [`ExprProgram`]s here — this is the last point in the
/// pipeline where a `BoundExpr` exists.
pub fn lower(plan: &PhysicalPlan) -> TensorProgram {
    lower_with_map(plan).0
}

/// [`lower`] plus a plan-node → program-op side table for trace
/// attribution (`EXPLAIN ANALYZE`). The table has one entry per plan
/// node in **post-order, children left-to-right** (the recursion order
/// of lowering itself, so the root is last); each entry is the index of
/// the op producing that node's output register. An elided node (a
/// Filter whose conjuncts all folded to true) aliases its child's op;
/// `None` only for a leaf that lowered to nothing (cannot happen today).
pub fn lower_with_map(plan: &PhysicalPlan) -> (TensorProgram, Vec<Option<usize>>) {
    let mut b = Builder {
        ops: Vec::new(),
        next_reg: 0,
        node_ops: Vec::new(),
    };
    let output = b.lower_node(plan);
    (
        TensorProgram {
            ops: b.ops,
            n_regs: b.next_reg,
            output,
            schema: dedup_names(&plan.schema()),
        },
        b.node_ops,
    )
}

struct Builder {
    ops: Vec<ProgOp>,
    next_reg: usize,
    node_ops: Vec<Option<usize>>,
}

impl Builder {
    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn lower_node(&mut self, plan: &PhysicalPlan) -> Reg {
        let reg = self.lower_node_inner(plan);
        // Single-assignment registers make the producing op unambiguous;
        // an elided Filter returns its child's register and so aliases
        // the child's op.
        let entry = self.ops.iter().rposition(|o| o.dst() == reg);
        self.node_ops.push(entry);
        reg
    }

    fn lower_node_inner(&mut self, plan: &PhysicalPlan) -> Reg {
        match plan {
            PhysicalPlan::Scan {
                table, projection, ..
            } => {
                let dst = self.fresh();
                self.ops.push(ProgOp::Scan {
                    dst,
                    table: table.clone(),
                    projection: projection.clone(),
                });
                dst
            }
            PhysicalPlan::Filter { input, predicate } => {
                let src = self.lower_node(input);
                let mut conjuncts = Vec::new();
                split_and(predicate.clone(), &mut conjuncts);
                // Conjunct-level folding: drop always-true conjuncts; a
                // constant-false conjunct makes the whole filter a
                // canonical short-circuit (the VMs emit an empty batch
                // without evaluating anything — an empty scan in effect).
                let mut kept = Vec::with_capacity(conjuncts.len());
                let mut const_false = false;
                for c in conjuncts {
                    match eval_const(&c) {
                        Some(Scalar::Bool(true)) => {}
                        Some(Scalar::Bool(false)) => const_false = true,
                        _ => kept.push(c),
                    }
                }
                if const_false {
                    kept = vec![BoundExpr::lit_bool(false)];
                } else if kept.is_empty() {
                    // Every conjunct was constant-true: elide the Filter.
                    return src;
                }
                let dst = self.fresh();
                self.ops.push(ProgOp::Filter {
                    dst,
                    src,
                    conjuncts: compile_exprs(&kept),
                });
                dst
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let src = self.lower_node(input);
                let dst = self.fresh();
                self.ops.push(ProgOp::Project {
                    dst,
                    src,
                    exprs: compile_exprs(exprs),
                });
                dst
            }
            PhysicalPlan::Join {
                left,
                right,
                join_type,
                strategy,
                on,
                residual,
                build_distinct,
            } => {
                let l = self.lower_node(left);
                let r = self.lower_node(right);
                let residual = residual.as_ref().map(compile_expr);
                match strategy {
                    JoinStrategy::Hash => {
                        let table = self.fresh();
                        self.ops.push(ProgOp::HashBuild {
                            dst: table,
                            src: r,
                            keys: on.iter().map(|&(_, rk)| rk).collect(),
                            distinct: *build_distinct,
                        });
                        let dst = self.fresh();
                        self.ops.push(ProgOp::HashProbe {
                            dst,
                            table,
                            left: l,
                            right: r,
                            join_type: *join_type,
                            on: on.clone(),
                            residual,
                        });
                        dst
                    }
                    JoinStrategy::SortMerge => {
                        let dst = self.fresh();
                        self.ops.push(ProgOp::SortMergeJoin {
                            dst,
                            left: l,
                            right: r,
                            join_type: *join_type,
                            on: on.clone(),
                            residual,
                        });
                        dst
                    }
                }
            }
            PhysicalPlan::CrossJoin { left, right } => {
                let l = self.lower_node(left);
                let r = self.lower_node(right);
                let dst = self.fresh();
                self.ops.push(ProgOp::CrossJoin {
                    dst,
                    left: l,
                    right: r,
                });
                dst
            }
            PhysicalPlan::Aggregate {
                input,
                strategy,
                group_by,
                aggs,
                ..
            } => {
                let src = self.lower_node(input);
                let dst = self.fresh();
                self.ops.push(ProgOp::GroupedReduce {
                    dst,
                    src,
                    strategy: *strategy,
                    reduce: ReduceExprs::compile(group_by, aggs),
                });
                dst
            }
            PhysicalPlan::Sort { input, keys } => {
                let src = self.lower_node(input);
                let dst = self.fresh();
                let exprs: Vec<BoundExpr> = keys.iter().map(|k| k.expr.clone()).collect();
                self.ops.push(ProgOp::Sort {
                    dst,
                    src,
                    keys: compile_exprs(&exprs),
                    desc: keys.iter().map(|k| k.desc).collect(),
                });
                dst
            }
            PhysicalPlan::Limit { input, n } => {
                let src = self.lower_node(input);
                let dst = self.fresh();
                self.ops.push(ProgOp::Limit { dst, src, n: *n });
                dst
            }
        }
    }
}

/// Split a predicate tree on top-level ANDs.
pub fn split_and(e: BoundExpr, out: &mut Vec<BoundExpr>) {
    use tqp_ir::expr::BinOp;
    match e {
        BoundExpr::Binary {
            op: BinOp::And,
            left,
            right,
            ..
        } => {
            split_and(*left, out);
            split_and(*right, out);
        }
        other => out.push(other),
    }
}

// ---------------------------------------------------------------------
// Artifact (de)serialization
// ---------------------------------------------------------------------

/// Artifact decode errors.
#[derive(Debug, Clone)]
pub struct ProgramError {
    pub message: String,
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tensor program artifact: {}", self.message)
    }
}

impl std::error::Error for ProgramError {}

impl From<tqp_json::JsonError> for ProgramError {
    fn from(e: tqp_json::JsonError) -> Self {
        ProgramError { message: e.message }
    }
}

impl From<irjson::PlanJsonError> for ProgramError {
    fn from(e: irjson::PlanJsonError) -> Self {
        ProgramError { message: e.message }
    }
}

fn invalid<T>(message: impl Into<String>) -> Result<T, ProgramError> {
    Err(ProgramError {
        message: message.into(),
    })
}

/// Serialize a program into the portable artifact: a self-describing,
/// versioned document every backend (and any external runtime) can load
/// without the compiler front-end. Since v2 the encoding carries compiled
/// [`ExprProgram`]s — loaders never reconstruct expression trees.
pub fn serialize_program(prog: &TensorProgram) -> Bytes {
    let ops: Vec<Json> = prog.ops.iter().map(op_to_json).collect();
    let doc = Json::obj(vec![
        ("format", Json::str(ARTIFACT_FORMAT)),
        ("version", Json::I64(ARTIFACT_VERSION)),
        ("n_regs", Json::I64(prog.n_regs as i64)),
        ("output", Json::I64(prog.output as i64)),
        ("schema", irjson::schema_to_json(&prog.schema)),
        ("ops", Json::Arr(ops)),
    ]);
    Bytes::from(doc.to_string().into_bytes())
}

/// Load an artifact produced by [`serialize_program`].
pub fn deserialize_program(artifact: &Bytes) -> Result<TensorProgram, ProgramError> {
    let text = std::str::from_utf8(artifact).map_err(|_| ProgramError {
        message: "artifact is not utf-8".into(),
    })?;
    let doc = Json::parse(text)?;
    match doc.field("format")?.as_str() {
        Some(ARTIFACT_FORMAT) => {}
        other => return invalid(format!("unknown artifact format {other:?}")),
    }
    match doc.field("version")?.as_i64() {
        Some(ARTIFACT_VERSION) => {}
        Some(ARTIFACT_VERSION_V1) => {
            return invalid(format!(
                "artifact version {ARTIFACT_VERSION_V1} is no longer supported: v1 artifacts \
                 embed expression trees, but this loader reads version {ARTIFACT_VERSION} \
                 (compiled ExprPrograms). Recompile the query with this build to produce a \
                 v{ARTIFACT_VERSION} artifact."
            ))
        }
        other => {
            return invalid(format!(
                "unsupported artifact version {other:?} (loader supports {ARTIFACT_VERSION})"
            ))
        }
    }
    let n_regs = reg_field(&doc, "n_regs")?;
    let output = reg_field(&doc, "output")?;
    let schema = irjson::schema_from_json(doc.field("schema")?)?;
    let ops = doc
        .field("ops")?
        .as_arr()
        .ok_or(ProgramError {
            message: "ops must be an array".into(),
        })?
        .iter()
        .map(op_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    // Bound the register budget before allocating anything sized by it:
    // lowering emits exactly one register per op, so a larger claim is
    // corrupt (and must not drive an attacker-controlled allocation).
    if n_regs > ops.len() {
        return invalid(format!(
            "register budget {n_regs} exceeds op count {}",
            ops.len()
        ));
    }
    // Structural sanity: every read happens after its write.
    let mut written = vec![false; n_regs];
    for op in &ops {
        for s in op.srcs() {
            if s >= n_regs || !written[s] {
                return invalid(format!("op reads register r{s} before it is written"));
            }
        }
        let d = op.dst();
        if d >= n_regs {
            return invalid(format!("op writes out-of-range register r{d}"));
        }
        written[d] = true;
    }
    if output >= n_regs || !written[output] {
        return invalid("output register is never written");
    }
    Ok(TensorProgram {
        ops,
        n_regs,
        output,
        schema,
    })
}

fn reg_field(j: &Json, key: &str) -> Result<usize, ProgramError> {
    match j.field(key)?.as_i64() {
        Some(v) if v >= 0 => Ok(v as usize),
        other => invalid(format!(
            "field {key:?} must be a non-negative integer, got {other:?}"
        )),
    }
}

fn on_json(on: &[(usize, usize)]) -> Json {
    Json::Arr(
        on.iter()
            .map(|&(l, r)| Json::arr([Json::I64(l as i64), Json::I64(r as i64)]))
            .collect(),
    )
}

fn on_from(j: &Json) -> Result<Vec<(usize, usize)>, ProgramError> {
    j.as_arr()
        .ok_or(ProgramError {
            message: "join keys must be an array".into(),
        })?
        .iter()
        .map(|pair| {
            match (
                pair.at(0).and_then(Json::as_i64),
                pair.at(1).and_then(Json::as_i64),
            ) {
                (Some(l), Some(r)) if l >= 0 && r >= 0 => Ok((l as usize, r as usize)),
                _ => invalid("join key pair invalid"),
            }
        })
        .collect()
}

fn residual_json(residual: &Option<ExprProgram>) -> Json {
    match residual {
        Some(e) => exprprog_to_json(e),
        None => Json::Null,
    }
}

fn residual_from(j: &Json) -> Result<Option<ExprProgram>, ProgramError> {
    match j {
        Json::Null => Ok(None),
        e => {
            let prog = exprprog_from_json(e)?;
            // A residual is one predicate: the executors read exactly
            // output 0, so reject anything else at load instead of
            // panicking mid-probe.
            if prog.outputs.len() != 1 {
                return invalid(format!(
                    "join residual must have exactly one output, got {}",
                    prog.outputs.len()
                ));
            }
            Ok(Some(prog))
        }
    }
}

fn reduce_json(reduce: &ReduceExprs) -> Json {
    Json::obj(vec![
        ("exprs", exprprog_to_json(&reduce.exprs)),
        ("n_keys", Json::I64(reduce.n_keys as i64)),
        (
            "aggs",
            Json::Arr(
                reduce
                    .aggs
                    .iter()
                    .map(|a| {
                        Json::obj(vec![
                            ("func", irjson::agg_func_to_json(a.func)),
                            (
                                "arg",
                                match a.arg {
                                    Some(s) => Json::I64(s as i64),
                                    None => Json::Null,
                                },
                            ),
                            ("ty", irjson::type_to_json(a.ty)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn reduce_from(j: &Json) -> Result<ReduceExprs, ProgramError> {
    let exprs = exprprog_from_json(j.field("exprs")?)?;
    let n_keys = reg_field(j, "n_keys")?;
    let aggs = j
        .field("aggs")?
        .as_arr()
        .ok_or(ProgramError {
            message: "aggs must be an array".into(),
        })?
        .iter()
        .map(|a| -> Result<CompiledAgg, ProgramError> {
            Ok(CompiledAgg {
                func: irjson::agg_func_from_json(a.field("func")?)?,
                arg: match a.field("arg")? {
                    Json::Null => None,
                    v => match v.as_i64() {
                        Some(s) if s >= 0 => Some(s as usize),
                        other => return invalid(format!("bad agg arg slot {other:?}")),
                    },
                },
                ty: irjson::type_from_json(a.field("ty")?)?,
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    // Slot sanity: keys and every referenced argument must exist in the
    // compiled program's outputs.
    let n_outputs = exprs.outputs.len();
    if n_keys > n_outputs {
        return invalid(format!(
            "reduce claims {n_keys} keys but the program has {n_outputs} outputs"
        ));
    }
    for a in &aggs {
        match a.arg {
            Some(s) if s >= n_outputs => {
                return invalid(format!(
                    "agg arg slot {s} out of range ({n_outputs} outputs)"
                ))
            }
            // COUNT(*) is the only argument-less aggregate; every other
            // function dereferences its arg at execution, so a missing
            // slot must fail at load, not panic mid-query.
            None if a.func != AggFunc::CountStar => {
                return invalid(format!("aggregate {:?} requires an arg slot", a.func))
            }
            Some(_) if a.func == AggFunc::CountStar => {
                return invalid("COUNT(*) must not carry an arg slot")
            }
            _ => {}
        }
    }
    Ok(ReduceExprs {
        exprs,
        n_keys,
        aggs,
    })
}

fn op_to_json(op: &ProgOp) -> Json {
    let reg = |r: Reg| Json::I64(r as i64);
    match op {
        ProgOp::Scan {
            dst,
            table,
            projection,
        } => Json::obj(vec![
            ("op", Json::str("scan")),
            ("dst", reg(*dst)),
            ("table", Json::str(table.as_str())),
            (
                "projection",
                match projection {
                    Some(idx) => Json::Arr(idx.iter().map(|&i| Json::I64(i as i64)).collect()),
                    None => Json::Null,
                },
            ),
        ]),
        ProgOp::Filter {
            dst,
            src,
            conjuncts,
        } => Json::obj(vec![
            ("op", Json::str("filter")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            ("conjuncts", exprprog_to_json(conjuncts)),
        ]),
        ProgOp::Project { dst, src, exprs } => Json::obj(vec![
            ("op", Json::str("project")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            ("exprs", exprprog_to_json(exprs)),
        ]),
        ProgOp::HashBuild {
            dst,
            src,
            keys,
            distinct,
        } => {
            let mut fields = vec![
                ("op", Json::str("hash_build")),
                ("dst", reg(*dst)),
                ("src", reg(*src)),
                (
                    "keys",
                    Json::Arr(keys.iter().map(|&k| Json::I64(k as i64)).collect()),
                ),
            ];
            // Emitted only when present, so artifacts without an estimate
            // re-encode byte-identically to version-2 artifacts that
            // predate the field.
            if let Some(d) = distinct {
                fields.push(("distinct", Json::I64(*d as i64)));
            }
            Json::obj(fields)
        }
        ProgOp::HashProbe {
            dst,
            table,
            left,
            right,
            join_type,
            on,
            residual,
        } => Json::obj(vec![
            ("op", Json::str("hash_probe")),
            ("dst", reg(*dst)),
            ("table", reg(*table)),
            ("left", reg(*left)),
            ("right", reg(*right)),
            ("join_type", irjson::join_type_to_json(*join_type)),
            ("on", on_json(on)),
            ("residual", residual_json(residual)),
        ]),
        ProgOp::SortMergeJoin {
            dst,
            left,
            right,
            join_type,
            on,
            residual,
        } => Json::obj(vec![
            ("op", Json::str("sort_merge_join")),
            ("dst", reg(*dst)),
            ("left", reg(*left)),
            ("right", reg(*right)),
            ("join_type", irjson::join_type_to_json(*join_type)),
            ("on", on_json(on)),
            ("residual", residual_json(residual)),
        ]),
        ProgOp::CrossJoin { dst, left, right } => Json::obj(vec![
            ("op", Json::str("cross_join")),
            ("dst", reg(*dst)),
            ("left", reg(*left)),
            ("right", reg(*right)),
        ]),
        ProgOp::GroupedReduce {
            dst,
            src,
            strategy,
            reduce,
        } => Json::obj(vec![
            ("op", Json::str("grouped_reduce")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            ("strategy", irjson::agg_strategy_to_json(*strategy)),
            ("reduce", reduce_json(reduce)),
        ]),
        ProgOp::Sort {
            dst,
            src,
            keys,
            desc,
        } => Json::obj(vec![
            ("op", Json::str("sort")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            ("keys", exprprog_to_json(keys)),
            (
                "desc",
                Json::Arr(desc.iter().map(|&d| Json::Bool(d)).collect()),
            ),
        ]),
        ProgOp::Limit { dst, src, n } => Json::obj(vec![
            ("op", Json::str("limit")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            ("n", Json::I64(*n as i64)),
        ]),
    }
}

fn op_from_json(j: &Json) -> Result<ProgOp, ProgramError> {
    let kind = j.field("op")?.as_str().unwrap_or_default().to_string();
    let dst = reg_field(j, "dst")?;
    match kind.as_str() {
        "scan" => Ok(ProgOp::Scan {
            dst,
            table: j.field("table")?.as_str().unwrap_or_default().to_string(),
            projection: match j.field("projection")? {
                Json::Null => None,
                arr => Some(
                    arr.as_arr()
                        .ok_or(ProgramError {
                            message: "projection must be an array".into(),
                        })?
                        .iter()
                        .map(|v| {
                            v.as_i64()
                                .filter(|&i| i >= 0)
                                .map(|i| i as usize)
                                .ok_or(ProgramError {
                                    message: "projection index invalid".into(),
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                ),
            },
        }),
        "filter" => {
            let conjuncts = exprprog_from_json(j.field("conjuncts")?)?;
            // Lowering never emits a conjunct-less filter (all-true
            // filters are elided); a zero-output program would diverge
            // across backends (Eager drops every row, Fused/Wasm keep
            // them all), so reject it at load.
            if conjuncts.outputs.is_empty() {
                return invalid("filter must have at least one conjunct");
            }
            Ok(ProgOp::Filter {
                dst,
                src: reg_field(j, "src")?,
                conjuncts,
            })
        }
        "project" => Ok(ProgOp::Project {
            dst,
            src: reg_field(j, "src")?,
            exprs: exprprog_from_json(j.field("exprs")?)?,
        }),
        "hash_build" => Ok(ProgOp::HashBuild {
            dst,
            src: reg_field(j, "src")?,
            keys: j
                .field("keys")?
                .as_arr()
                .ok_or(ProgramError {
                    message: "keys must be an array".into(),
                })?
                .iter()
                .map(|v| {
                    v.as_i64()
                        .filter(|&i| i >= 0)
                        .map(|i| i as usize)
                        .ok_or(ProgramError {
                            message: "key index invalid".into(),
                        })
                })
                .collect::<Result<Vec<_>, _>>()?,
            // Optional: absent in artifacts lowered without stats (and in
            // all pre-estimate artifacts).
            distinct: j.get("distinct").and_then(|v| v.as_i64()).map(|d| d as u64),
        }),
        "hash_probe" => Ok(ProgOp::HashProbe {
            dst,
            table: reg_field(j, "table")?,
            left: reg_field(j, "left")?,
            right: reg_field(j, "right")?,
            join_type: irjson::join_type_from_json(j.field("join_type")?)?,
            on: on_from(j.field("on")?)?,
            residual: residual_from(j.field("residual")?)?,
        }),
        "sort_merge_join" => Ok(ProgOp::SortMergeJoin {
            dst,
            left: reg_field(j, "left")?,
            right: reg_field(j, "right")?,
            join_type: irjson::join_type_from_json(j.field("join_type")?)?,
            on: on_from(j.field("on")?)?,
            residual: residual_from(j.field("residual")?)?,
        }),
        "cross_join" => Ok(ProgOp::CrossJoin {
            dst,
            left: reg_field(j, "left")?,
            right: reg_field(j, "right")?,
        }),
        "grouped_reduce" => Ok(ProgOp::GroupedReduce {
            dst,
            src: reg_field(j, "src")?,
            strategy: irjson::agg_strategy_from_json(j.field("strategy")?)?,
            reduce: reduce_from(j.field("reduce")?)?,
        }),
        "sort" => {
            let keys = exprprog_from_json(j.field("keys")?)?;
            let desc: Vec<bool> = j
                .field("desc")?
                .as_arr()
                .ok_or(ProgramError {
                    message: "sort desc must be an array".into(),
                })?
                .iter()
                .map(|v| {
                    v.as_bool().ok_or(ProgramError {
                        message: "sort desc flag invalid".into(),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            // One direction flag per key: a longer list panics the scalar
            // VM's comparator, a shorter one silently drops sort keys.
            if desc.len() != keys.outputs.len() {
                return invalid(format!(
                    "sort has {} keys but {} desc flags",
                    keys.outputs.len(),
                    desc.len()
                ));
            }
            Ok(ProgOp::Sort {
                dst,
                src: reg_field(j, "src")?,
                keys,
                desc,
            })
        }
        "limit" => Ok(ProgOp::Limit {
            dst,
            src: reg_field(j, "src")?,
            n: reg_field(j, "n")?,
        }),
        other => invalid(format!("unknown program op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exprprog::ExprOp;
    use tqp_ir::{compile_sql, Catalog, PhysicalOptions};

    fn catalog() -> Catalog {
        use tqp_data::{Field, LogicalType, Schema};
        let mut c = Catalog::new();
        c.register(
            "t",
            Schema::new(vec![
                Field::new("a", LogicalType::Int64),
                Field::new("b", LogicalType::Float64),
                Field::new("s", LogicalType::Str),
            ]),
            100,
        );
        c.register(
            "u",
            Schema::new(vec![
                Field::new("a", LogicalType::Int64),
                Field::new("x", LogicalType::Float64),
            ]),
            50,
        );
        c
    }

    fn program(sql: &str, opts: PhysicalOptions) -> TensorProgram {
        let plan = compile_sql(sql, &catalog(), &opts).unwrap();
        lower(&plan)
    }

    #[test]
    fn lowering_is_flat_and_topological() {
        let p = program(
            "select t.a, sum(u.x) from t, u where t.a = u.a and t.b > 1.0 \
             group by t.a order by t.a limit 5",
            PhysicalOptions::default(),
        );
        assert!(p.ops.len() >= 5, "{}", p.display());
        let mut written = vec![false; p.n_regs];
        for op in &p.ops {
            for s in op.srcs() {
                assert!(
                    written[s],
                    "register r{s} read before write:\n{}",
                    p.display()
                );
            }
            written[op.dst()] = true;
        }
        assert!(written[p.output]);
    }

    #[test]
    fn filters_split_into_conjuncts() {
        let p = program(
            "select a from t where a > 1 and b < 2.0 and s like 'x%'",
            PhysicalOptions::default(),
        );
        let conjuncts: Vec<usize> = p
            .ops
            .iter()
            .filter_map(|op| match op {
                ProgOp::Filter { conjuncts, .. } => Some(conjuncts.outputs.len()),
                _ => None,
            })
            .collect();
        // Pushdown may split filters across scans, but the total number of
        // conjuncts must be 3.
        assert_eq!(conjuncts.iter().sum::<usize>(), 3, "{}", p.display());
    }

    #[test]
    fn expressions_lower_to_flat_programs() {
        let p = program(
            "select a * 2 + 1, b from t where b > 0.5",
            PhysicalOptions::default(),
        );
        for op in &p.ops {
            match op {
                ProgOp::Filter { conjuncts, .. } => {
                    assert!(!conjuncts.ops.is_empty());
                    assert!(matches!(conjuncts.ops[1], ExprOp::CompareConst { .. }));
                }
                ProgOp::Project { exprs, .. } => {
                    assert_eq!(exprs.outputs.len(), 2);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn always_true_conjuncts_are_dropped() {
        // `1 = 1` folds away entirely; the filter keeps only `a > 1`.
        let p = program(
            "select a from t where a > 1 and 1 = 1",
            PhysicalOptions::default(),
        );
        let filter_conjuncts: usize = p
            .ops
            .iter()
            .filter_map(|op| match op {
                ProgOp::Filter { conjuncts, .. } => Some(conjuncts.outputs.len()),
                _ => None,
            })
            .sum();
        assert_eq!(filter_conjuncts, 1, "{}", p.display());
        // A filter that is entirely constant-true is elided.
        let p = program("select a from t where 1 = 1", PhysicalOptions::default());
        assert!(
            !p.ops.iter().any(|o| matches!(o, ProgOp::Filter { .. })),
            "{}",
            p.display()
        );
    }

    #[test]
    fn constant_false_filter_collapses_to_short_circuit() {
        let p = program(
            "select a from t where a > 1 and 1 = 2",
            PhysicalOptions::default(),
        );
        let filters: Vec<&ExprProgram> = p
            .ops
            .iter()
            .filter_map(|op| match op {
                ProgOp::Filter { conjuncts, .. } => Some(conjuncts),
                _ => None,
            })
            .collect();
        assert_eq!(filters.len(), 1, "{}", p.display());
        assert!(filters[0].has_const_false_output());
        // The short-circuit is canonical: a single constant-false output.
        assert_eq!(filters[0].outputs.len(), 1);
        assert_eq!(filters[0].ops.len(), 1);
    }

    #[test]
    fn hash_joins_lower_to_build_plus_probe() {
        let opts = PhysicalOptions {
            join: tqp_ir::JoinStrategy::Hash,
            agg: tqp_ir::AggStrategy::Hash,
        };
        let p = program("select t.a from t, u where t.a = u.a", opts);
        let builds = p
            .ops
            .iter()
            .filter(|o| matches!(o, ProgOp::HashBuild { .. }))
            .count();
        let probes = p
            .ops
            .iter()
            .filter(|o| matches!(o, ProgOp::HashProbe { .. }))
            .count();
        assert_eq!((builds, probes), (1, 1), "{}", p.display());
        // Probe reads the build's output register.
        let build_dst = p
            .ops
            .iter()
            .find_map(|o| match o {
                ProgOp::HashBuild { dst, .. } => Some(*dst),
                _ => None,
            })
            .unwrap();
        assert!(p
            .ops
            .iter()
            .any(|o| matches!(o, ProgOp::HashProbe { table, .. } if *table == build_dst)));
    }

    #[test]
    fn artifact_roundtrips_exactly() {
        for opts in [
            PhysicalOptions::default(),
            PhysicalOptions {
                join: tqp_ir::JoinStrategy::Hash,
                agg: tqp_ir::AggStrategy::Hash,
            },
        ] {
            let p = program(
                "select t.a, count(*) as c, sum(t.b * 2.0 - 0.5) from t, u \
                 where t.a = u.a and t.s like 'PROMO%' and t.b between 1.0 and 9.5 \
                 group by t.a order by c desc, t.a limit 7",
                opts,
            );
            let bytes = serialize_program(&p);
            assert!(!bytes.is_empty());
            let back = deserialize_program(&bytes).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn artifact_is_versioned_and_self_describing() {
        let p = program("select a from t", PhysicalOptions::default());
        let bytes = serialize_program(&p);
        let doc = tqp_json::Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(doc.field("format").unwrap().as_str(), Some(ARTIFACT_FORMAT));
        assert_eq!(
            doc.field("version").unwrap().as_i64(),
            Some(ARTIFACT_VERSION)
        );
        // A future version must be rejected, not misread.
        let mut tampered = String::from_utf8(bytes.to_vec()).unwrap();
        tampered = tampered.replace("\"version\":2", "\"version\":999");
        assert!(deserialize_program(&Bytes::from(tampered.into_bytes())).is_err());
    }

    #[test]
    fn v1_artifacts_rejected_with_actionable_error() {
        let p = program("select a from t", PhysicalOptions::default());
        let bytes = serialize_program(&p);
        let tampered = String::from_utf8(bytes.to_vec())
            .unwrap()
            .replace("\"version\":2", "\"version\":1");
        let err = deserialize_program(&Bytes::from(tampered.into_bytes())).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("version 1"), "{msg}");
        assert!(msg.contains("version 2"), "{msg}");
        assert!(msg.contains("Recompile"), "{msg}");
    }

    #[test]
    fn oversized_register_budget_rejected() {
        // A corrupt artifact must not drive an attacker-sized allocation.
        let p = program("select a from t", PhysicalOptions::default());
        let text = String::from_utf8(serialize_program(&p).to_vec()).unwrap();
        let tampered = text.replace(
            &format!("\"n_regs\":{}", p.n_regs),
            "\"n_regs\":4611686018427387904",
        );
        assert_ne!(text, tampered, "tamper point not found");
        assert!(deserialize_program(&Bytes::from(tampered.into_bytes())).is_err());
    }

    #[test]
    fn zero_conjunct_filter_artifact_rejected() {
        // Lowering elides all-true filters, so a conjunct-less Filter can
        // only come from a corrupt artifact — and would diverge across
        // backends (Eager: empty, Fused/Wasm: everything). Reject it.
        let doc = r#"{"format":"tqp-tensor-program","version":2,"n_regs":2,"output":1,
            "schema":[{"qualifier":null,"name":"a","ty":"int64"}],
            "ops":[{"op":"scan","dst":0,"table":"t","projection":null},
                   {"op":"filter","dst":1,"src":0,
                    "conjuncts":{"ops":[],"outputs":[],"out_tys":[]}}]}"#;
        let err = deserialize_program(&Bytes::from(doc.as_bytes().to_vec())).unwrap_err();
        assert!(err.to_string().contains("conjunct"), "{err}");
    }

    #[test]
    fn argless_aggregate_artifact_rejected() {
        // SUM without an arg slot would panic at execution; reject at load.
        let p = program(
            "select sum(b) from t group by a",
            PhysicalOptions::default(),
        );
        let text = String::from_utf8(serialize_program(&p).to_vec()).unwrap();
        let tampered = text.replace(
            "\"func\":\"sum\",\"arg\":1",
            "\"func\":\"sum\",\"arg\":null",
        );
        assert_ne!(text, tampered, "tamper point not found");
        let err = deserialize_program(&Bytes::from(tampered.into_bytes())).unwrap_err();
        assert!(err.to_string().contains("requires an arg slot"), "{err}");
    }

    #[test]
    fn multi_output_residual_artifact_rejected() {
        // A residual is one predicate; extra outputs would panic in the
        // scalar probe loop. Hand-built doc: scan+scan+build+probe with a
        // two-output residual program.
        let doc = r#"{"format":"tqp-tensor-program","version":2,"n_regs":4,"output":3,
            "schema":[{"qualifier":null,"name":"a","ty":"int64"},
                      {"qualifier":null,"name":"b","ty":"int64"}],
            "ops":[{"op":"scan","dst":0,"table":"t","projection":null},
                   {"op":"scan","dst":1,"table":"u","projection":null},
                   {"op":"hash_build","dst":2,"src":1,"keys":[0]},
                   {"op":"hash_probe","dst":3,"table":2,"left":0,"right":1,
                    "join_type":"inner","on":[[0,0]],
                    "residual":{"ops":[{"k":"col","index":0,"ty":"int64"},
                                       {"k":"cmp_const","op":">","src":0,
                                        "value":{"t":"i64","v":1}}],
                                "outputs":[1,1],"out_tys":["bool","bool"]}}]}"#;
        let err = deserialize_program(&Bytes::from(doc.as_bytes().to_vec())).unwrap_err();
        assert!(err.to_string().contains("exactly one output"), "{err}");
    }

    #[test]
    fn sort_desc_arity_mismatch_rejected() {
        let p = program(
            "select a from t order by a desc",
            PhysicalOptions::default(),
        );
        let text = String::from_utf8(serialize_program(&p).to_vec()).unwrap();
        let tampered = text.replace("\"desc\":[true]", "\"desc\":[true,false]");
        assert_ne!(text, tampered, "tamper point not found");
        let err = deserialize_program(&Bytes::from(tampered.into_bytes())).unwrap_err();
        assert!(err.to_string().contains("desc flags"), "{err}");
        let truncated = text.replace("\"desc\":[true]", "\"desc\":[]");
        assert!(deserialize_program(&Bytes::from(truncated.into_bytes())).is_err());
    }

    #[test]
    fn corrupt_register_flow_rejected() {
        let p = program("select a from t where b > 0.5", PhysicalOptions::default());
        let text = String::from_utf8(serialize_program(&p).to_vec()).unwrap();
        // Point the filter's src at an unwritten register.
        let tampered = text.replace("\"src\":0", "\"src\":7");
        assert!(deserialize_program(&Bytes::from(tampered.into_bytes())).is_err());
    }
}

//! The **TensorProgram** IR — the paper's "tensor program" (§2.2) made
//! explicit.
//!
//! [`lower`] compiles a [`PhysicalPlan`] tree into a flat, register-based
//! sequence of tensor operators. The program — not the plan — is what
//! every backend executes:
//!
//! * the vectorized register VM ([`crate::vm`]) runs it directly
//!   (`Eager`/`Fused` are VM modes: fusion is selection-vector compaction
//!   between ops);
//! * the Graph backend serializes it into a **versioned, self-describing
//!   artifact** ([`serialize_program`]) — the reproduction's "ONNX file" —
//!   and the standalone VM executes the deserialized program without the
//!   compiler front-end;
//! * the Wasm backend scalar-interprets the *same* artifact row-at-a-time
//!   ([`crate::scalar`]), the ORT-Web analog.
//!
//! Register discipline: lowering walks the plan tree post-order, so every
//! op writes a fresh register and each register is read after it is
//! written; data-flow is explicit (`dst`/`src` fields), which is what the
//! morsel-parallel executor uses to find chunkable pipeline segments.

use bytes::Bytes;
use tqp_ir::expr::{AggCall, BoundExpr};
use tqp_ir::json as irjson;
use tqp_ir::physical::{dedup_names, AggStrategy, JoinStrategy, PhysicalPlan};
use tqp_ir::plan::{JoinType, PlanSchema, SortKey};
use tqp_json::Json;

/// Artifact format tag (the self-describing header's `format` field).
pub const ARTIFACT_FORMAT: &str = "tqp-tensor-program";

/// Current artifact version. Bump on any encoding change; the loader
/// rejects versions it does not understand.
pub const ARTIFACT_VERSION: i64 = 1;

/// A register index. Registers hold either a column batch or a join
/// build table (see `tqp_exec::vm::Value`).
pub type Reg = usize;

/// One flat tensor-program operator.
#[derive(Debug, Clone, PartialEq)]
pub enum ProgOp {
    /// Load a stored table (optionally projected) into `dst`.
    Scan {
        dst: Reg,
        table: String,
        projection: Option<Vec<usize>>,
    },
    /// Filter `src` by a conjunction of predicates. The VM mode decides
    /// the evaluation shape: Eager materializes every conjunct mask over
    /// the full input and compacts once; Fused compacts adaptively
    /// between conjuncts (selection vectors).
    Filter {
        dst: Reg,
        src: Reg,
        conjuncts: Vec<BoundExpr>,
    },
    /// Evaluate projection expressions over `src`. `has_predict` marks
    /// inline ML inference (profiling shows it as `Project+Predict`).
    Project {
        dst: Reg,
        src: Reg,
        exprs: Vec<BoundExpr>,
        has_predict: bool,
    },
    /// Build the hash table over the right (build) side's key columns.
    HashBuild {
        dst: Reg,
        src: Reg,
        keys: Vec<usize>,
    },
    /// Probe a [`ProgOp::HashBuild`] table with the left side's keys,
    /// verify/filter pairs, and assemble the join output.
    HashProbe {
        dst: Reg,
        table: Reg,
        left: Reg,
        right: Reg,
        join_type: JoinType,
        on: Vec<(usize, usize)>,
        residual: Option<BoundExpr>,
    },
    /// The tensor-native sort-merge join (argsort + double searchsorted +
    /// pair expansion) as one fused op.
    SortMergeJoin {
        dst: Reg,
        left: Reg,
        right: Reg,
        join_type: JoinType,
        on: Vec<(usize, usize)>,
        residual: Option<BoundExpr>,
    },
    /// Cartesian product (scalar-subquery sides only).
    CrossJoin { dst: Reg, left: Reg, right: Reg },
    /// Grouped/global reduction (sort- or hash-strategy segmented
    /// reduce — the paper's GroupedReduce).
    GroupedReduce {
        dst: Reg,
        src: Reg,
        strategy: AggStrategy,
        group_by: Vec<BoundExpr>,
        aggs: Vec<AggCall>,
    },
    /// Stable multi-key sort.
    Sort {
        dst: Reg,
        src: Reg,
        keys: Vec<SortKey>,
    },
    /// Keep the first `n` rows.
    Limit { dst: Reg, src: Reg, n: usize },
}

impl ProgOp {
    /// The register this op writes.
    pub fn dst(&self) -> Reg {
        match self {
            ProgOp::Scan { dst, .. }
            | ProgOp::Filter { dst, .. }
            | ProgOp::Project { dst, .. }
            | ProgOp::HashBuild { dst, .. }
            | ProgOp::HashProbe { dst, .. }
            | ProgOp::SortMergeJoin { dst, .. }
            | ProgOp::CrossJoin { dst, .. }
            | ProgOp::GroupedReduce { dst, .. }
            | ProgOp::Sort { dst, .. }
            | ProgOp::Limit { dst, .. } => *dst,
        }
    }

    /// The registers this op reads.
    pub fn srcs(&self) -> Vec<Reg> {
        match self {
            ProgOp::Scan { .. } => vec![],
            ProgOp::Filter { src, .. }
            | ProgOp::Project { src, .. }
            | ProgOp::HashBuild { src, .. }
            | ProgOp::GroupedReduce { src, .. }
            | ProgOp::Sort { src, .. }
            | ProgOp::Limit { src, .. } => vec![*src],
            ProgOp::HashProbe {
                table, left, right, ..
            } => vec![*table, *left, *right],
            ProgOp::SortMergeJoin { left, right, .. } | ProgOp::CrossJoin { left, right, .. } => {
                vec![*left, *right]
            }
        }
    }

    /// Profiler/display name, matching the plan-walk interpreter's
    /// operator names where an equivalent existed.
    pub fn name(&self) -> String {
        match self {
            ProgOp::Scan { table, .. } => format!("Scan({table})"),
            ProgOp::Filter { .. } => "Filter".into(),
            ProgOp::Project {
                has_predict: true, ..
            } => "Project+Predict".into(),
            ProgOp::Project { .. } => "Project".into(),
            ProgOp::HashBuild { .. } => "HashBuild".into(),
            ProgOp::HashProbe { join_type, .. } => format!("HashJoin({join_type:?})"),
            ProgOp::SortMergeJoin { join_type, .. } => format!("SortMergeJoin({join_type:?})"),
            ProgOp::CrossJoin { .. } => "CrossJoin".into(),
            ProgOp::GroupedReduce { strategy, .. } => format!("{strategy:?}Aggregate"),
            ProgOp::Sort { .. } => "Sort".into(),
            ProgOp::Limit { .. } => "Limit".into(),
        }
    }
}

/// A lowered query: flat op sequence + register budget + output schema.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorProgram {
    /// Topologically ordered op sequence (writer-before-reader).
    pub ops: Vec<ProgOp>,
    /// Number of registers the VM must allocate.
    pub n_regs: usize,
    /// Register holding the query result.
    pub output: Reg,
    /// Output schema (names deduplicated, display-ready).
    pub schema: PlanSchema,
}

impl TensorProgram {
    /// Multi-line assembly-style listing (EXPLAIN for programs).
    pub fn display(&self) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            let srcs: Vec<String> = op.srcs().iter().map(|r| format!("r{r}")).collect();
            out.push_str(&format!(
                "op{i:<3} r{} = {}({})\n",
                op.dst(),
                op.name(),
                srcs.join(", ")
            ));
        }
        out.push_str(&format!("return r{}\n", self.output));
        out
    }
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// Compile a physical plan into a [`TensorProgram`].
pub fn lower(plan: &PhysicalPlan) -> TensorProgram {
    let mut b = Builder {
        ops: Vec::new(),
        next_reg: 0,
    };
    let output = b.lower_node(plan);
    TensorProgram {
        ops: b.ops,
        n_regs: b.next_reg,
        output,
        schema: dedup_names(&plan.schema()),
    }
}

struct Builder {
    ops: Vec<ProgOp>,
    next_reg: usize,
}

impl Builder {
    fn fresh(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn lower_node(&mut self, plan: &PhysicalPlan) -> Reg {
        match plan {
            PhysicalPlan::Scan {
                table, projection, ..
            } => {
                let dst = self.fresh();
                self.ops.push(ProgOp::Scan {
                    dst,
                    table: table.clone(),
                    projection: projection.clone(),
                });
                dst
            }
            PhysicalPlan::Filter { input, predicate } => {
                let src = self.lower_node(input);
                let dst = self.fresh();
                let mut conjuncts = Vec::new();
                split_and(predicate.clone(), &mut conjuncts);
                self.ops.push(ProgOp::Filter {
                    dst,
                    src,
                    conjuncts,
                });
                dst
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let src = self.lower_node(input);
                let dst = self.fresh();
                let has_predict = exprs.iter().any(contains_predict);
                self.ops.push(ProgOp::Project {
                    dst,
                    src,
                    exprs: exprs.clone(),
                    has_predict,
                });
                dst
            }
            PhysicalPlan::Join {
                left,
                right,
                join_type,
                strategy,
                on,
                residual,
            } => {
                let l = self.lower_node(left);
                let r = self.lower_node(right);
                match strategy {
                    JoinStrategy::Hash => {
                        let table = self.fresh();
                        self.ops.push(ProgOp::HashBuild {
                            dst: table,
                            src: r,
                            keys: on.iter().map(|&(_, rk)| rk).collect(),
                        });
                        let dst = self.fresh();
                        self.ops.push(ProgOp::HashProbe {
                            dst,
                            table,
                            left: l,
                            right: r,
                            join_type: *join_type,
                            on: on.clone(),
                            residual: residual.clone(),
                        });
                        dst
                    }
                    JoinStrategy::SortMerge => {
                        let dst = self.fresh();
                        self.ops.push(ProgOp::SortMergeJoin {
                            dst,
                            left: l,
                            right: r,
                            join_type: *join_type,
                            on: on.clone(),
                            residual: residual.clone(),
                        });
                        dst
                    }
                }
            }
            PhysicalPlan::CrossJoin { left, right } => {
                let l = self.lower_node(left);
                let r = self.lower_node(right);
                let dst = self.fresh();
                self.ops.push(ProgOp::CrossJoin {
                    dst,
                    left: l,
                    right: r,
                });
                dst
            }
            PhysicalPlan::Aggregate {
                input,
                strategy,
                group_by,
                aggs,
                ..
            } => {
                let src = self.lower_node(input);
                let dst = self.fresh();
                self.ops.push(ProgOp::GroupedReduce {
                    dst,
                    src,
                    strategy: *strategy,
                    group_by: group_by.clone(),
                    aggs: aggs.clone(),
                });
                dst
            }
            PhysicalPlan::Sort { input, keys } => {
                let src = self.lower_node(input);
                let dst = self.fresh();
                self.ops.push(ProgOp::Sort {
                    dst,
                    src,
                    keys: keys.clone(),
                });
                dst
            }
            PhysicalPlan::Limit { input, n } => {
                let src = self.lower_node(input);
                let dst = self.fresh();
                self.ops.push(ProgOp::Limit { dst, src, n: *n });
                dst
            }
        }
    }
}

/// Split a predicate tree on top-level ANDs.
pub fn split_and(e: BoundExpr, out: &mut Vec<BoundExpr>) {
    use tqp_ir::expr::BinOp;
    match e {
        BoundExpr::Binary {
            op: BinOp::And,
            left,
            right,
            ..
        } => {
            split_and(*left, out);
            split_and(*right, out);
        }
        other => out.push(other),
    }
}

fn contains_predict(e: &BoundExpr) -> bool {
    let mut found = false;
    e.visit(&mut |n| {
        if matches!(n, BoundExpr::Predict { .. }) {
            found = true;
        }
    });
    found
}

// ---------------------------------------------------------------------
// Artifact (de)serialization
// ---------------------------------------------------------------------

/// Artifact decode errors.
#[derive(Debug, Clone)]
pub struct ProgramError {
    pub message: String,
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tensor program artifact: {}", self.message)
    }
}

impl std::error::Error for ProgramError {}

impl From<tqp_json::JsonError> for ProgramError {
    fn from(e: tqp_json::JsonError) -> Self {
        ProgramError { message: e.message }
    }
}

impl From<irjson::PlanJsonError> for ProgramError {
    fn from(e: irjson::PlanJsonError) -> Self {
        ProgramError { message: e.message }
    }
}

fn invalid<T>(message: impl Into<String>) -> Result<T, ProgramError> {
    Err(ProgramError {
        message: message.into(),
    })
}

/// Serialize a program into the portable artifact: a self-describing,
/// versioned document every backend (and any external runtime) can load
/// without the compiler front-end.
pub fn serialize_program(prog: &TensorProgram) -> Bytes {
    let ops: Vec<Json> = prog.ops.iter().map(op_to_json).collect();
    let doc = Json::obj(vec![
        ("format", Json::str(ARTIFACT_FORMAT)),
        ("version", Json::I64(ARTIFACT_VERSION)),
        ("n_regs", Json::I64(prog.n_regs as i64)),
        ("output", Json::I64(prog.output as i64)),
        ("schema", irjson::schema_to_json(&prog.schema)),
        ("ops", Json::Arr(ops)),
    ]);
    Bytes::from(doc.to_string().into_bytes())
}

/// Load an artifact produced by [`serialize_program`].
pub fn deserialize_program(artifact: &Bytes) -> Result<TensorProgram, ProgramError> {
    let text = std::str::from_utf8(artifact).map_err(|_| ProgramError {
        message: "artifact is not utf-8".into(),
    })?;
    let doc = Json::parse(text)?;
    match doc.field("format")?.as_str() {
        Some(ARTIFACT_FORMAT) => {}
        other => return invalid(format!("unknown artifact format {other:?}")),
    }
    match doc.field("version")?.as_i64() {
        Some(ARTIFACT_VERSION) => {}
        other => {
            return invalid(format!(
                "unsupported artifact version {other:?} (loader supports {ARTIFACT_VERSION})"
            ))
        }
    }
    let n_regs = reg_field(&doc, "n_regs")?;
    let output = reg_field(&doc, "output")?;
    let schema = irjson::schema_from_json(doc.field("schema")?)?;
    let ops = doc
        .field("ops")?
        .as_arr()
        .ok_or(ProgramError {
            message: "ops must be an array".into(),
        })?
        .iter()
        .map(op_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    // Bound the register budget before allocating anything sized by it:
    // lowering emits exactly one register per op, so a larger claim is
    // corrupt (and must not drive an attacker-controlled allocation).
    if n_regs > ops.len() {
        return invalid(format!(
            "register budget {n_regs} exceeds op count {}",
            ops.len()
        ));
    }
    // Structural sanity: every read happens after its write.
    let mut written = vec![false; n_regs];
    for op in &ops {
        for s in op.srcs() {
            if s >= n_regs || !written[s] {
                return invalid(format!("op reads register r{s} before it is written"));
            }
        }
        let d = op.dst();
        if d >= n_regs {
            return invalid(format!("op writes out-of-range register r{d}"));
        }
        written[d] = true;
    }
    if output >= n_regs || !written[output] {
        return invalid("output register is never written");
    }
    Ok(TensorProgram {
        ops,
        n_regs,
        output,
        schema,
    })
}

fn reg_field(j: &Json, key: &str) -> Result<usize, ProgramError> {
    match j.field(key)?.as_i64() {
        Some(v) if v >= 0 => Ok(v as usize),
        other => invalid(format!(
            "field {key:?} must be a non-negative integer, got {other:?}"
        )),
    }
}

fn exprs_json(exprs: &[BoundExpr]) -> Json {
    Json::Arr(exprs.iter().map(irjson::expr_to_json).collect())
}

fn exprs_from(j: &Json) -> Result<Vec<BoundExpr>, ProgramError> {
    Ok(j.as_arr()
        .ok_or(ProgramError {
            message: "expected expression array".into(),
        })?
        .iter()
        .map(irjson::expr_from_json)
        .collect::<Result<Vec<_>, _>>()?)
}

fn on_json(on: &[(usize, usize)]) -> Json {
    Json::Arr(
        on.iter()
            .map(|&(l, r)| Json::arr([Json::I64(l as i64), Json::I64(r as i64)]))
            .collect(),
    )
}

fn on_from(j: &Json) -> Result<Vec<(usize, usize)>, ProgramError> {
    j.as_arr()
        .ok_or(ProgramError {
            message: "join keys must be an array".into(),
        })?
        .iter()
        .map(|pair| {
            match (
                pair.at(0).and_then(Json::as_i64),
                pair.at(1).and_then(Json::as_i64),
            ) {
                (Some(l), Some(r)) if l >= 0 && r >= 0 => Ok((l as usize, r as usize)),
                _ => invalid("join key pair invalid"),
            }
        })
        .collect()
}

fn residual_json(residual: &Option<BoundExpr>) -> Json {
    match residual {
        Some(e) => irjson::expr_to_json(e),
        None => Json::Null,
    }
}

fn residual_from(j: &Json) -> Result<Option<BoundExpr>, ProgramError> {
    match j {
        Json::Null => Ok(None),
        e => Ok(Some(irjson::expr_from_json(e)?)),
    }
}

fn op_to_json(op: &ProgOp) -> Json {
    let reg = |r: Reg| Json::I64(r as i64);
    match op {
        ProgOp::Scan {
            dst,
            table,
            projection,
        } => Json::obj(vec![
            ("op", Json::str("scan")),
            ("dst", reg(*dst)),
            ("table", Json::str(table.as_str())),
            (
                "projection",
                match projection {
                    Some(idx) => Json::Arr(idx.iter().map(|&i| Json::I64(i as i64)).collect()),
                    None => Json::Null,
                },
            ),
        ]),
        ProgOp::Filter {
            dst,
            src,
            conjuncts,
        } => Json::obj(vec![
            ("op", Json::str("filter")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            ("conjuncts", exprs_json(conjuncts)),
        ]),
        ProgOp::Project {
            dst,
            src,
            exprs,
            has_predict,
        } => Json::obj(vec![
            ("op", Json::str("project")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            ("exprs", exprs_json(exprs)),
            ("has_predict", Json::Bool(*has_predict)),
        ]),
        ProgOp::HashBuild { dst, src, keys } => Json::obj(vec![
            ("op", Json::str("hash_build")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            (
                "keys",
                Json::Arr(keys.iter().map(|&k| Json::I64(k as i64)).collect()),
            ),
        ]),
        ProgOp::HashProbe {
            dst,
            table,
            left,
            right,
            join_type,
            on,
            residual,
        } => Json::obj(vec![
            ("op", Json::str("hash_probe")),
            ("dst", reg(*dst)),
            ("table", reg(*table)),
            ("left", reg(*left)),
            ("right", reg(*right)),
            ("join_type", irjson::join_type_to_json(*join_type)),
            ("on", on_json(on)),
            ("residual", residual_json(residual)),
        ]),
        ProgOp::SortMergeJoin {
            dst,
            left,
            right,
            join_type,
            on,
            residual,
        } => Json::obj(vec![
            ("op", Json::str("sort_merge_join")),
            ("dst", reg(*dst)),
            ("left", reg(*left)),
            ("right", reg(*right)),
            ("join_type", irjson::join_type_to_json(*join_type)),
            ("on", on_json(on)),
            ("residual", residual_json(residual)),
        ]),
        ProgOp::CrossJoin { dst, left, right } => Json::obj(vec![
            ("op", Json::str("cross_join")),
            ("dst", reg(*dst)),
            ("left", reg(*left)),
            ("right", reg(*right)),
        ]),
        ProgOp::GroupedReduce {
            dst,
            src,
            strategy,
            group_by,
            aggs,
        } => Json::obj(vec![
            ("op", Json::str("grouped_reduce")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            ("strategy", irjson::agg_strategy_to_json(*strategy)),
            ("group_by", exprs_json(group_by)),
            (
                "aggs",
                Json::Arr(aggs.iter().map(irjson::agg_call_to_json).collect()),
            ),
        ]),
        ProgOp::Sort { dst, src, keys } => Json::obj(vec![
            ("op", Json::str("sort")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            (
                "keys",
                Json::Arr(keys.iter().map(irjson::sort_key_to_json).collect()),
            ),
        ]),
        ProgOp::Limit { dst, src, n } => Json::obj(vec![
            ("op", Json::str("limit")),
            ("dst", reg(*dst)),
            ("src", reg(*src)),
            ("n", Json::I64(*n as i64)),
        ]),
    }
}

fn op_from_json(j: &Json) -> Result<ProgOp, ProgramError> {
    let kind = j.field("op")?.as_str().unwrap_or_default().to_string();
    let dst = reg_field(j, "dst")?;
    match kind.as_str() {
        "scan" => Ok(ProgOp::Scan {
            dst,
            table: j.field("table")?.as_str().unwrap_or_default().to_string(),
            projection: match j.field("projection")? {
                Json::Null => None,
                arr => Some(
                    arr.as_arr()
                        .ok_or(ProgramError {
                            message: "projection must be an array".into(),
                        })?
                        .iter()
                        .map(|v| {
                            v.as_i64()
                                .filter(|&i| i >= 0)
                                .map(|i| i as usize)
                                .ok_or(ProgramError {
                                    message: "projection index invalid".into(),
                                })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                ),
            },
        }),
        "filter" => Ok(ProgOp::Filter {
            dst,
            src: reg_field(j, "src")?,
            conjuncts: exprs_from(j.field("conjuncts")?)?,
        }),
        "project" => Ok(ProgOp::Project {
            dst,
            src: reg_field(j, "src")?,
            exprs: exprs_from(j.field("exprs")?)?,
            has_predict: j.field("has_predict")?.as_bool().unwrap_or_default(),
        }),
        "hash_build" => Ok(ProgOp::HashBuild {
            dst,
            src: reg_field(j, "src")?,
            keys: j
                .field("keys")?
                .as_arr()
                .ok_or(ProgramError {
                    message: "keys must be an array".into(),
                })?
                .iter()
                .map(|v| {
                    v.as_i64()
                        .filter(|&i| i >= 0)
                        .map(|i| i as usize)
                        .ok_or(ProgramError {
                            message: "key index invalid".into(),
                        })
                })
                .collect::<Result<Vec<_>, _>>()?,
        }),
        "hash_probe" => Ok(ProgOp::HashProbe {
            dst,
            table: reg_field(j, "table")?,
            left: reg_field(j, "left")?,
            right: reg_field(j, "right")?,
            join_type: irjson::join_type_from_json(j.field("join_type")?)?,
            on: on_from(j.field("on")?)?,
            residual: residual_from(j.field("residual")?)?,
        }),
        "sort_merge_join" => Ok(ProgOp::SortMergeJoin {
            dst,
            left: reg_field(j, "left")?,
            right: reg_field(j, "right")?,
            join_type: irjson::join_type_from_json(j.field("join_type")?)?,
            on: on_from(j.field("on")?)?,
            residual: residual_from(j.field("residual")?)?,
        }),
        "cross_join" => Ok(ProgOp::CrossJoin {
            dst,
            left: reg_field(j, "left")?,
            right: reg_field(j, "right")?,
        }),
        "grouped_reduce" => Ok(ProgOp::GroupedReduce {
            dst,
            src: reg_field(j, "src")?,
            strategy: irjson::agg_strategy_from_json(j.field("strategy")?)?,
            group_by: exprs_from(j.field("group_by")?)?,
            aggs: j
                .field("aggs")?
                .as_arr()
                .ok_or(ProgramError {
                    message: "aggs must be an array".into(),
                })?
                .iter()
                .map(irjson::agg_call_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        }),
        "sort" => Ok(ProgOp::Sort {
            dst,
            src: reg_field(j, "src")?,
            keys: j
                .field("keys")?
                .as_arr()
                .ok_or(ProgramError {
                    message: "sort keys must be an array".into(),
                })?
                .iter()
                .map(irjson::sort_key_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        }),
        "limit" => Ok(ProgOp::Limit {
            dst,
            src: reg_field(j, "src")?,
            n: reg_field(j, "n")?,
        }),
        other => invalid(format!("unknown program op {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqp_ir::{compile_sql, Catalog, PhysicalOptions};

    fn catalog() -> Catalog {
        use tqp_data::{Field, LogicalType, Schema};
        let mut c = Catalog::new();
        c.register(
            "t",
            Schema::new(vec![
                Field::new("a", LogicalType::Int64),
                Field::new("b", LogicalType::Float64),
                Field::new("s", LogicalType::Str),
            ]),
            100,
        );
        c.register(
            "u",
            Schema::new(vec![
                Field::new("a", LogicalType::Int64),
                Field::new("x", LogicalType::Float64),
            ]),
            50,
        );
        c
    }

    fn program(sql: &str, opts: PhysicalOptions) -> TensorProgram {
        let plan = compile_sql(sql, &catalog(), &opts).unwrap();
        lower(&plan)
    }

    #[test]
    fn lowering_is_flat_and_topological() {
        let p = program(
            "select t.a, sum(u.x) from t, u where t.a = u.a and t.b > 1.0 \
             group by t.a order by t.a limit 5",
            PhysicalOptions::default(),
        );
        assert!(p.ops.len() >= 5, "{}", p.display());
        let mut written = vec![false; p.n_regs];
        for op in &p.ops {
            for s in op.srcs() {
                assert!(
                    written[s],
                    "register r{s} read before write:\n{}",
                    p.display()
                );
            }
            written[op.dst()] = true;
        }
        assert!(written[p.output]);
    }

    #[test]
    fn filters_split_into_conjuncts() {
        let p = program(
            "select a from t where a > 1 and b < 2.0 and s like 'x%'",
            PhysicalOptions::default(),
        );
        let conjuncts: Vec<usize> = p
            .ops
            .iter()
            .filter_map(|op| match op {
                ProgOp::Filter { conjuncts, .. } => Some(conjuncts.len()),
                _ => None,
            })
            .collect();
        // Pushdown may split filters across scans, but the total number of
        // conjuncts must be 3.
        assert_eq!(conjuncts.iter().sum::<usize>(), 3, "{}", p.display());
    }

    #[test]
    fn hash_joins_lower_to_build_plus_probe() {
        let opts = PhysicalOptions {
            join: tqp_ir::JoinStrategy::Hash,
            agg: tqp_ir::AggStrategy::Hash,
        };
        let p = program("select t.a from t, u where t.a = u.a", opts);
        let builds = p
            .ops
            .iter()
            .filter(|o| matches!(o, ProgOp::HashBuild { .. }))
            .count();
        let probes = p
            .ops
            .iter()
            .filter(|o| matches!(o, ProgOp::HashProbe { .. }))
            .count();
        assert_eq!((builds, probes), (1, 1), "{}", p.display());
        // Probe reads the build's output register.
        let build_dst = p
            .ops
            .iter()
            .find_map(|o| match o {
                ProgOp::HashBuild { dst, .. } => Some(*dst),
                _ => None,
            })
            .unwrap();
        assert!(p
            .ops
            .iter()
            .any(|o| matches!(o, ProgOp::HashProbe { table, .. } if *table == build_dst)));
    }

    #[test]
    fn artifact_roundtrips_exactly() {
        for opts in [
            PhysicalOptions::default(),
            PhysicalOptions {
                join: tqp_ir::JoinStrategy::Hash,
                agg: tqp_ir::AggStrategy::Hash,
            },
        ] {
            let p = program(
                "select t.a, count(*) as c, sum(t.b * 2.0 - 0.5) from t, u \
                 where t.a = u.a and t.s like 'PROMO%' and t.b between 1.0 and 9.5 \
                 group by t.a order by c desc, t.a limit 7",
                opts,
            );
            let bytes = serialize_program(&p);
            assert!(!bytes.is_empty());
            let back = deserialize_program(&bytes).unwrap();
            assert_eq!(back, p);
        }
    }

    #[test]
    fn artifact_is_versioned_and_self_describing() {
        let p = program("select a from t", PhysicalOptions::default());
        let bytes = serialize_program(&p);
        let doc = tqp_json::Json::parse(std::str::from_utf8(&bytes).unwrap()).unwrap();
        assert_eq!(doc.field("format").unwrap().as_str(), Some(ARTIFACT_FORMAT));
        assert_eq!(
            doc.field("version").unwrap().as_i64(),
            Some(ARTIFACT_VERSION)
        );
        // A future version must be rejected, not misread.
        let mut tampered = String::from_utf8(bytes.to_vec()).unwrap();
        tampered = tampered.replace("\"version\":1", "\"version\":999");
        assert!(deserialize_program(&Bytes::from(tampered.into_bytes())).is_err());
    }

    #[test]
    fn oversized_register_budget_rejected() {
        // A corrupt artifact must not drive an attacker-sized allocation.
        let p = program("select a from t", PhysicalOptions::default());
        let text = String::from_utf8(serialize_program(&p).to_vec()).unwrap();
        let tampered = text.replace(
            &format!("\"n_regs\":{}", p.n_regs),
            "\"n_regs\":4611686018427387904",
        );
        assert_ne!(text, tampered, "tamper point not found");
        assert!(deserialize_program(&Bytes::from(tampered.into_bytes())).is_err());
    }

    #[test]
    fn corrupt_register_flow_rejected() {
        let p = program("select a from t where b > 0.5", PhysicalOptions::default());
        let text = String::from_utf8(serialize_program(&p).to_vec()).unwrap();
        // Point the filter's src at an unwritten register.
        let tampered = text.replace("\"src\":0", "\"src\":7");
        assert!(deserialize_program(&Bytes::from(tampered.into_bytes())).is_err());
    }
}

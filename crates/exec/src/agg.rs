//! Tensor aggregation: sort-based (default) and hash-based strategies.
//!
//! Sort strategy (the tensor-native formulation, paper §2.2): multi-key
//! stable argsort → run-boundary detection → dense group ids via prefix sum
//! → segmented reductions. Hash strategy: FxHash group table with collision
//! chains → scatter reductions. `COUNT(DISTINCT x)` sorts `(keys…, x)` and
//! counts distinct runs per group.
//!
//! Empty-input semantics (shared with the row oracle): a global aggregate
//! yields one row of zeros; a grouped aggregate yields no rows.

use std::collections::HashMap;

use tqp_data::LogicalType;
use tqp_ir::expr::{AggCall, AggFunc, BoundExpr};
use tqp_ml::ModelRegistry;
use tqp_tensor::index::{mask_to_indices, take};
use tqp_tensor::reduce::{
    segmented_min_str, segmented_reduce, segmented_reduce_i64, sum_f64, sum_i64, AggFn,
};
use tqp_tensor::sort::{argsort_multi, Order, SortKey};
use tqp_tensor::unique::{group_ids, run_lengths, run_starts, Groups};
use tqp_tensor::{DType, Tensor};

use crate::batch::Batch;
use crate::expr::{eval, hash_rows};
use crate::join::FxBuild;

/// Aggregation strategy selector (mirrors `tqp_ir::AggStrategy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    Sort,
    Hash,
}

/// Execute an aggregation over a batch.
pub fn aggregate(
    input: &Batch,
    group_by: &[BoundExpr],
    aggs: &[AggCall],
    strategy: Strategy,
    models: &ModelRegistry,
) -> Batch {
    if group_by.is_empty() {
        return global_aggregate(input, aggs, models);
    }
    let keys: Vec<Tensor> = group_by
        .iter()
        .map(|g| {
            let (v, validity) = eval(g, input, models);
            assert!(
                validity.is_none(),
                "NULL group keys unsupported in the tensor engine"
            );
            v
        })
        .collect();
    match strategy {
        Strategy::Sort => sort_aggregate(input, &keys, aggs, models),
        Strategy::Hash => hash_aggregate(input, &keys, aggs, models),
    }
}

fn global_aggregate(input: &Batch, aggs: &[AggCall], models: &ModelRegistry) -> Batch {
    let columns = aggs
        .iter()
        .map(|call| match call.func {
            AggFunc::CountStar => Tensor::from_i64(vec![input.nrows() as i64]),
            _ => {
                let (vals, validity) = eval(call.arg.as_ref().expect("agg arg"), input, models);
                let (vals, n_valid) = apply_validity(vals, validity);
                match call.func {
                    AggFunc::Sum if call.ty == LogicalType::Int64 => {
                        Tensor::from_i64(vec![sum_i64(&vals)])
                    }
                    AggFunc::Sum => Tensor::from_f64(vec![sum_f64(&vals)]),
                    AggFunc::Avg => {
                        let s = sum_f64(&vals);
                        Tensor::from_f64(vec![if n_valid == 0 {
                            0.0
                        } else {
                            s / n_valid as f64
                        }])
                    }
                    AggFunc::Min | AggFunc::Max => global_minmax(&vals, call),
                    AggFunc::Count => Tensor::from_i64(vec![n_valid as i64]),
                    AggFunc::CountDistinct => Tensor::from_i64(vec![count_distinct_all(&vals)]),
                    AggFunc::CountStar => unreachable!(),
                }
            }
        })
        .collect();
    Batch::new(columns)
}

fn global_minmax(vals: &Tensor, call: &AggCall) -> Tensor {
    let min = call.func == AggFunc::Min;
    if vals.is_empty() {
        return default_minmax(call, 1);
    }
    if vals.dtype() == DType::U8 {
        let ids = Tensor::from_i64(vec![0; vals.nrows()]);
        return segmented_min_str(vals, &ids, 1, min);
    }
    if call.ty == LogicalType::Int64 || call.ty == LogicalType::Date {
        let ids = Tensor::from_i64(vec![0; vals.nrows()]);
        return segmented_reduce_i64(vals, &ids, 1, if min { AggFn::Min } else { AggFn::Max });
    }
    let v = if min {
        tqp_tensor::reduce::min_f64(vals).unwrap_or(0.0)
    } else {
        tqp_tensor::reduce::max_f64(vals).unwrap_or(0.0)
    };
    Tensor::from_f64(vec![v])
}

fn default_minmax(call: &AggCall, n: usize) -> Tensor {
    match call.ty {
        LogicalType::Int64 | LogicalType::Date => Tensor::from_i64(vec![0; n]),
        LogicalType::Str => Tensor::from_strings(&vec![""; n], 1),
        LogicalType::Bool => Tensor::from_bool(vec![false; n]),
        LogicalType::Float64 => Tensor::from_f64(vec![0.0; n]),
    }
}

fn count_distinct_all(vals: &Tensor) -> i64 {
    if vals.is_empty() {
        return 0;
    }
    let perm = tqp_tensor::sort::argsort(vals, Order::Asc);
    let sorted = take(vals, &perm);
    let starts = run_starts(&[&sorted]);
    tqp_tensor::index::count_true(&starts) as i64
}

/// Compact away invalid rows; returns the values and the valid count.
fn apply_validity(vals: Tensor, validity: Option<Tensor>) -> (Tensor, usize) {
    match validity {
        None => {
            let n = vals.nrows();
            (vals, n)
        }
        Some(mask) => {
            let idx = mask_to_indices(&mask);
            let n = idx.nrows();
            (take(&vals, &idx), n)
        }
    }
}

// ---------------------------------------------------------------------
// Sort strategy
// ---------------------------------------------------------------------

fn sort_aggregate(
    input: &Batch,
    keys: &[Tensor],
    aggs: &[AggCall],
    models: &ModelRegistry,
) -> Batch {
    let n = input.nrows();
    let sort_keys: Vec<SortKey> = keys.iter().map(|k| SortKey::asc(k.clone())).collect();
    let perm = argsort_multi(&sort_keys);
    let sorted_keys: Vec<Tensor> = keys.iter().map(|k| take(k, &perm)).collect();
    let key_refs: Vec<&Tensor> = sorted_keys.iter().collect();
    let groups = group_ids(&key_refs);

    let mut columns: Vec<Tensor> = sorted_keys
        .iter()
        .map(|k| take(k, &groups.firsts))
        .collect();
    for call in aggs {
        columns.push(one_agg_sorted(
            input,
            call,
            &perm,
            &groups,
            &sorted_keys,
            n,
            models,
        ));
    }
    Batch::new(columns)
}

fn one_agg_sorted(
    input: &Batch,
    call: &AggCall,
    perm: &Tensor,
    groups: &Groups,
    sorted_keys: &[Tensor],
    n: usize,
    models: &ModelRegistry,
) -> Tensor {
    let g = groups.num_groups;
    match call.func {
        AggFunc::CountStar => run_lengths(groups, n),
        AggFunc::CountDistinct => {
            let (vals, validity) = eval(call.arg.as_ref().unwrap(), input, models);
            let vals = take(&vals, perm);
            let validity = validity.map(|m| take(&m, perm));
            distinct_per_group(sorted_keys, &vals, validity, groups)
        }
        _ => {
            let (vals, validity) = eval(call.arg.as_ref().unwrap(), input, models);
            let vals = take(&vals, perm);
            let validity = validity.map(|m| take(&m, perm));
            let (vals, ids) = match validity {
                None => (vals, groups.ids.clone()),
                Some(mask) => {
                    let idx = mask_to_indices(&mask);
                    (take(&vals, &idx), take(&groups.ids, &idx))
                }
            };
            reduce_by_ids(&vals, &ids, g, call)
        }
    }
}

/// Segmented reduction dispatch with type- and emptiness-aware finalization.
fn reduce_by_ids(vals: &Tensor, ids: &Tensor, g: usize, call: &AggCall) -> Tensor {
    match call.func {
        AggFunc::Sum if call.ty == LogicalType::Int64 => {
            segmented_reduce_i64(vals, ids, g, AggFn::Sum)
        }
        AggFunc::Sum => segmented_reduce(vals, ids, g, AggFn::Sum),
        AggFunc::Avg => segmented_reduce(vals, ids, g, AggFn::Avg),
        AggFunc::Count => {
            segmented_reduce_i64(&Tensor::from_i64(vec![1; vals.nrows()]), ids, g, AggFn::Sum)
        }
        AggFunc::Min | AggFunc::Max => {
            let min = call.func == AggFunc::Min;
            if vals.dtype() == DType::U8 {
                return minmax_str_with_defaults(vals, ids, g, min, call);
            }
            // Fix groups whose members were all NULL to the shared default.
            let counts =
                segmented_reduce_i64(&Tensor::from_i64(vec![1; vals.nrows()]), ids, g, AggFn::Sum);
            if call.ty == LogicalType::Int64 || call.ty == LogicalType::Date {
                let r =
                    segmented_reduce_i64(vals, ids, g, if min { AggFn::Min } else { AggFn::Max });
                let fixed: Vec<i64> = r
                    .as_i64()
                    .iter()
                    .zip(counts.as_i64())
                    .map(|(&v, &c)| if c == 0 { 0 } else { v })
                    .collect();
                Tensor::from_i64(fixed)
            } else {
                let r = segmented_reduce(vals, ids, g, if min { AggFn::Min } else { AggFn::Max });
                let fixed: Vec<f64> = r
                    .as_f64()
                    .iter()
                    .zip(counts.as_i64())
                    .map(|(&v, &c)| if c == 0 { 0.0 } else { v })
                    .collect();
                Tensor::from_f64(fixed)
            }
        }
        AggFunc::CountStar | AggFunc::CountDistinct => unreachable!("handled by caller"),
    }
}

fn minmax_str_with_defaults(
    vals: &Tensor,
    ids: &Tensor,
    g: usize,
    min: bool,
    _call: &AggCall,
) -> Tensor {
    // String min/max groups are never empty in practice (no validity on
    // string aggregates in TPC-H); assert instead of patching.
    let mut seen = vec![false; g];
    for &i in ids.as_i64() {
        seen[i as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "empty group in string MIN/MAX");
    segmented_min_str(vals, ids, g, min)
}

/// Distinct `(keys, value)` runs per group — COUNT(DISTINCT x).
fn distinct_per_group(
    sorted_keys: &[Tensor],
    vals_sorted_by_keys: &Tensor,
    validity: Option<Tensor>,
    groups: &Groups,
) -> Tensor {
    // Re-sort within the key order by value (stable, so key order holds).
    let mut all_keys: Vec<SortKey> = sorted_keys
        .iter()
        .map(|k| SortKey::asc(k.clone()))
        .collect();
    all_keys.push(SortKey::asc(vals_sorted_by_keys.clone()));
    // Sorting by (keys..., val) from scratch: keys are already grouped, so a
    // stable multi-key sort reproduces group order with values ordered.
    let perm2 = argsort_multi(&all_keys);
    let vals2 = take(vals_sorted_by_keys, &perm2);
    let ids2 = take(&groups.ids, &perm2);
    let keep = validity.map(|m| mask_to_indices(&take(&m, &perm2)));
    let (vals2, ids2) = match keep {
        None => (vals2, ids2),
        Some(idx) => (take(&vals2, &idx), take(&ids2, &idx)),
    };
    // Runs over (group id, value).
    let starts = run_starts(&[&ids2, &vals2]);
    let ones = starts.cast(DType::I64).expect("bool->i64");
    tqp_tensor::index::scatter_add_i64(groups.num_groups, &ids2, &ones)
}

// ---------------------------------------------------------------------
// Hash strategy
// ---------------------------------------------------------------------

fn hash_aggregate(
    input: &Batch,
    keys: &[Tensor],
    aggs: &[AggCall],
    models: &ModelRegistry,
) -> Batch {
    let n = input.nrows();
    let key_refs: Vec<&Tensor> = keys.iter().collect();
    let hashes = hash_rows(&key_refs);
    let hv = hashes.as_i64();
    // hash → chain of (first_row, gid); verify on collision.
    let mut table: HashMap<i64, Vec<(u32, u32)>, FxBuild> =
        HashMap::with_capacity_and_hasher(n * 2, FxBuild);
    let mut gids = vec![0i64; n];
    let mut firsts: Vec<i64> = Vec::new();
    for i in 0..n {
        let chain = table.entry(hv[i]).or_default();
        let mut found = None;
        for &(first, gid) in chain.iter() {
            if rows_equal(keys, i, first as usize) {
                found = Some(gid);
                break;
            }
        }
        let gid = match found {
            Some(g) => g,
            None => {
                let g = firsts.len() as u32;
                chain.push((i as u32, g));
                firsts.push(i as i64);
                g
            }
        };
        gids[i] = gid as i64;
    }
    let g = firsts.len();
    let ids = Tensor::from_i64(gids);
    let firsts = Tensor::from_i64(firsts);

    let mut columns: Vec<Tensor> = keys.iter().map(|k| take(k, &firsts)).collect();
    for call in aggs {
        let col = match call.func {
            AggFunc::CountStar => {
                tqp_tensor::index::scatter_add_i64(g, &ids, &Tensor::from_i64(vec![1; n]))
            }
            AggFunc::CountDistinct => {
                let (vals, validity) = eval(call.arg.as_ref().unwrap(), input, models);
                // Sort by (gid, value) then count runs per gid.
                let perm = argsort_multi(&[SortKey::asc(ids.clone()), SortKey::asc(vals.clone())]);
                let ids_s = take(&ids, &perm);
                let vals_s = take(&vals, &perm);
                let validity_s = validity.map(|m| take(&m, &perm));
                let (ids_s, vals_s) = match validity_s {
                    None => (ids_s, vals_s),
                    Some(m) => {
                        let idx = mask_to_indices(&m);
                        (take(&ids_s, &idx), take(&vals_s, &idx))
                    }
                };
                let starts = run_starts(&[&ids_s, &vals_s]);
                let ones = starts.cast(DType::I64).expect("bool->i64");
                tqp_tensor::index::scatter_add_i64(g, &ids_s, &ones)
            }
            _ => {
                let (vals, validity) = eval(call.arg.as_ref().unwrap(), input, models);
                let (vals, ids2) = match validity {
                    None => (vals, ids.clone()),
                    Some(m) => {
                        let idx = mask_to_indices(&m);
                        (take(&vals, &idx), take(&ids, &idx))
                    }
                };
                reduce_by_ids(&vals, &ids2, g, call)
            }
        };
        columns.push(col);
    }
    Batch::new(columns)
}

fn rows_equal(keys: &[Tensor], i: usize, j: usize) -> bool {
    keys.iter().all(|k| match k.dtype() {
        DType::I64 => k.as_i64()[i] == k.as_i64()[j],
        DType::I32 => k.as_i32()[i] == k.as_i32()[j],
        DType::F64 => k.as_f64()[i].to_bits() == k.as_f64()[j].to_bits(),
        DType::Bool => k.as_bool()[i] == k.as_bool()[j],
        DType::U8 => k.str_row(i) == k.str_row(j),
        DType::F32 => k.as_f32()[i].to_bits() == k.as_f32()[j].to_bits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqp_ir::expr::BoundExpr as E;

    fn batch() -> Batch {
        Batch::new(vec![
            Tensor::from_strings(&["a", "b", "a", "b", "a"], 0),
            Tensor::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            Tensor::from_i64(vec![7, 7, 8, 8, 7]),
        ])
    }

    fn call(func: AggFunc, col: usize, ty: LogicalType) -> AggCall {
        let arg_ty = if col == 1 {
            LogicalType::Float64
        } else {
            LogicalType::Int64
        };
        AggCall {
            func,
            arg: Some(E::col(col, arg_ty)),
            ty,
        }
    }

    fn star() -> AggCall {
        AggCall {
            func: AggFunc::CountStar,
            arg: None,
            ty: LogicalType::Int64,
        }
    }

    fn run(strategy: Strategy) -> Batch {
        aggregate(
            &batch(),
            &[E::col(0, LogicalType::Str)],
            &[
                call(AggFunc::Sum, 1, LogicalType::Float64),
                star(),
                call(AggFunc::Min, 1, LogicalType::Float64),
                call(AggFunc::Max, 1, LogicalType::Float64),
                call(AggFunc::Avg, 1, LogicalType::Float64),
                call(AggFunc::CountDistinct, 2, LogicalType::Int64),
            ],
            strategy,
            &ModelRegistry::new(),
        )
    }

    fn group_of(out: &Batch, key: &str) -> Vec<f64> {
        for i in 0..out.nrows() {
            if out.columns[0].str_at(i) == key {
                return (1..out.ncols())
                    .map(|c| match out.columns[c].dtype() {
                        DType::F64 => out.columns[c].as_f64()[i],
                        DType::I64 => out.columns[c].as_i64()[i] as f64,
                        _ => panic!(),
                    })
                    .collect();
            }
        }
        panic!("group {key} missing");
    }

    #[test]
    fn sort_and_hash_agree() {
        for strat in [Strategy::Sort, Strategy::Hash] {
            let out = run(strat);
            assert_eq!(out.nrows(), 2, "{strat:?}");
            // a: vals 1,3,5; i64 7,8,7 → 2 distinct
            assert_eq!(group_of(&out, "a"), vec![9.0, 3.0, 1.0, 5.0, 3.0, 2.0]);
            // b: vals 2,4; i64 7,8 → 2 distinct
            assert_eq!(group_of(&out, "b"), vec![6.0, 2.0, 2.0, 4.0, 3.0, 2.0]);
        }
    }

    #[test]
    fn global_aggregates() {
        let out = aggregate(
            &batch(),
            &[],
            &[
                call(AggFunc::Sum, 1, LogicalType::Float64),
                star(),
                call(AggFunc::CountDistinct, 2, LogicalType::Int64),
            ],
            Strategy::Sort,
            &ModelRegistry::new(),
        );
        assert_eq!(out.nrows(), 1);
        assert_eq!(out.columns[0].as_f64(), &[15.0]);
        assert_eq!(out.columns[1].as_i64(), &[5]);
        assert_eq!(out.columns[2].as_i64(), &[2]);
    }

    #[test]
    fn global_empty_input_defaults() {
        let empty = Batch::new(vec![
            Tensor::from_strings(&[], 1),
            Tensor::from_f64(vec![]),
            Tensor::from_i64(vec![]),
        ]);
        let out = aggregate(
            &empty,
            &[],
            &[
                call(AggFunc::Sum, 1, LogicalType::Float64),
                star(),
                call(AggFunc::Min, 1, LogicalType::Float64),
                call(AggFunc::Avg, 1, LogicalType::Float64),
            ],
            Strategy::Sort,
            &ModelRegistry::new(),
        );
        assert_eq!(out.nrows(), 1);
        assert_eq!(out.columns[0].as_f64(), &[0.0]);
        assert_eq!(out.columns[1].as_i64(), &[0]);
        assert_eq!(out.columns[2].as_f64(), &[0.0]);
        assert_eq!(out.columns[3].as_f64(), &[0.0]);
    }

    #[test]
    fn grouped_empty_input_no_rows() {
        let empty = Batch::new(vec![
            Tensor::from_strings(&[], 1),
            Tensor::from_f64(vec![]),
            Tensor::from_i64(vec![]),
        ]);
        let out = aggregate(
            &empty,
            &[E::col(0, LogicalType::Str)],
            &[star()],
            Strategy::Sort,
            &ModelRegistry::new(),
        );
        assert_eq!(out.nrows(), 0);
    }

    #[test]
    fn validity_skipped_in_count_and_sum() {
        // Simulates a left-join output: 2 valid + 1 invalid value.
        let b = Batch::with_validity(
            vec![
                Tensor::from_i64(vec![1, 1, 1]),
                Tensor::from_f64(vec![10.0, 99.0, 20.0]),
            ],
            vec![None, Some(Tensor::from_bool(vec![true, false, true]))],
        );
        for strat in [Strategy::Sort, Strategy::Hash] {
            let out = aggregate(
                &b,
                &[E::col(0, LogicalType::Int64)],
                &[
                    AggCall {
                        func: AggFunc::Count,
                        arg: Some(E::col(1, LogicalType::Float64)),
                        ty: LogicalType::Int64,
                    },
                    AggCall {
                        func: AggFunc::Sum,
                        arg: Some(E::col(1, LogicalType::Float64)),
                        ty: LogicalType::Float64,
                    },
                    star(),
                ],
                strat,
                &ModelRegistry::new(),
            );
            assert_eq!(out.columns[1].as_i64(), &[2], "{strat:?}");
            assert_eq!(out.columns[2].as_f64(), &[30.0]);
            assert_eq!(out.columns[3].as_i64(), &[3]);
        }
    }

    #[test]
    fn string_minmax_grouped() {
        let b = Batch::new(vec![
            Tensor::from_i64(vec![1, 1, 2]),
            Tensor::from_strings(&["pear", "apple", "kiwi"], 0),
        ]);
        let out = aggregate(
            &b,
            &[E::col(0, LogicalType::Int64)],
            &[AggCall {
                func: AggFunc::Min,
                arg: Some(E::col(1, LogicalType::Str)),
                ty: LogicalType::Str,
            }],
            Strategy::Sort,
            &ModelRegistry::new(),
        );
        assert_eq!(out.columns[1].str_at(0), "apple");
        assert_eq!(out.columns[1].str_at(1), "kiwi");
    }
}

//! Tensor aggregation: sort-based (default) and hash-based strategies,
//! plus a **partitioned parallel** execution mode.
//!
//! Sort strategy (the tensor-native formulation, paper §2.2): multi-key
//! stable argsort → run-boundary detection → dense group ids via prefix sum
//! → segmented reductions. Hash strategy: FxHash group table with collision
//! chains → scatter reductions. `COUNT(DISTINCT x)` sorts `(keys…, x)` and
//! counts distinct runs per group.
//!
//! Group keys and aggregate arguments arrive as one **compiled
//! [`ReduceExprs`] bundle** ([`crate::program`]): a shared
//! [`crate::exprprog::ExprProgram`] whose outputs are the key columns
//! followed by the argument columns. Evaluation is a single straight-line
//! kernel pass per batch (or per morsel), so a subterm shared by several
//! aggregates (Q1's `l_extendedprice * (1 - l_discount)`) is computed
//! once — there is no per-call expression-tree walk anymore.
//!
//! ## Partitioned parallel aggregation
//!
//! [`aggregate_par`] splits the input into **fixed-size morsels**
//! ([`par_morsel_rows`], *independent of the worker count*), computes a
//! hash-grouped partial state per morsel ([`partial_aggregate`]), and folds
//! the partials in ascending morsel order ([`merge_partials`]).
//!
//! **Determinism contract**: the partial-merge tree — and therefore every
//! float rounding decision in SUM/AVG — is a pure function of the input
//! rows and the (fixed) morsel geometry. Worker threads only *schedule*
//! morsels; they never change which partials exist or the order they merge
//! in. Consequently SUM/AVG/COUNT/MIN/MAX results are **bit-identical at
//! every worker count**, which the differential suites assert at
//! `workers ∈ {1, 4}`. (`COUNT(DISTINCT)` keeps the sequential path: its
//! state is a value *set*, not a mergeable scalar.)
//!
//! Empty-input semantics (shared with the row oracle): a global aggregate
//! yields one row of zeros; a grouped aggregate yields no rows.

use std::collections::HashMap;

use tqp_data::LogicalType;
use tqp_ir::expr::AggFunc;
use tqp_ml::ModelRegistry;
use tqp_tensor::index::{concat, mask_to_indices, scatter_add_i64, take};
use tqp_tensor::reduce::{
    segmented_min_str, segmented_min_str_or_filler, segmented_reduce, segmented_reduce_i64,
    sum_f64, sum_i64, AggFn,
};
use tqp_tensor::sort::{argsort_multi, argsort_multi_par, Order, SortKey};
use tqp_tensor::unique::{group_ids, run_lengths, run_starts, Groups};
use tqp_tensor::{DType, Tensor};

use crate::batch::Batch;
use crate::expr::{hash_rows, Evaled};
use crate::exprfuse;
use crate::join::FxBuild;
use crate::program::{CompiledAgg, ReduceExprs};

/// Aggregation strategy selector (mirrors `tqp_ir::AggStrategy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    Sort,
    Hash,
}

/// Rows per aggregation morsel on the partitioned parallel path. Fixed —
/// **never derived from the worker count** — so the partial-merge tree (and
/// float rounding) depends only on the input. Override with
/// `TQP_AGG_MORSEL_ROWS` (read once per process; the parity suites shrink
/// it to exercise many-morsel merges on small test data).
pub fn par_morsel_rows() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("TQP_AGG_MORSEL_ROWS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&v| v >= 64)
            .unwrap_or(16 * 1024)
    })
}

/// Minimum input rows before the partitioned path engages (two morsels).
pub fn par_min_rows() -> usize {
    2 * par_morsel_rows()
}

/// True when every aggregate has a mergeable partial state.
/// `COUNT(DISTINCT)` does not (its state is a value set), so it pins the
/// whole `GroupedReduce` to the sequential path.
pub fn parallel_eligible(aggs: &[CompiledAgg]) -> bool {
    !aggs.iter().any(|a| a.func == AggFunc::CountDistinct)
}

/// Evaluate the reduce bundle over a batch: key columns (validity
/// asserted absent) and per-call argument columns.
fn eval_reduce(
    input: &Batch,
    reduce: &ReduceExprs,
    models: &ModelRegistry,
    fuse: bool,
) -> (Vec<Tensor>, Vec<Option<Evaled>>) {
    let outs = exprfuse::eval_all(&reduce.exprs, input, models, fuse);
    let keys: Vec<Tensor> = outs[..reduce.n_keys]
        .iter()
        .map(|(v, validity)| {
            assert!(
                validity.is_none(),
                "NULL group keys unsupported in the tensor engine"
            );
            v.clone()
        })
        .collect();
    let args: Vec<Option<Evaled>> = reduce
        .aggs
        .iter()
        .map(|call| call.arg.map(|slot| outs[slot].clone()))
        .collect();
    (keys, args)
}

/// Execute an aggregation over a batch, sequentially (the metered/GpuSim
/// path, where modeled time must not depend on host threads).
pub fn aggregate(
    input: &Batch,
    reduce: &ReduceExprs,
    strategy: Strategy,
    models: &ModelRegistry,
    fuse: bool,
    flat: bool,
) -> Batch {
    aggregate_seq(input, reduce, strategy, models, 1, fuse, flat)
}

/// Execute an aggregation with the partitioned parallel path when eligible
/// (input ≥ [`par_min_rows`], no `COUNT(DISTINCT)`); otherwise sequential
/// with `workers` threading only the internal argsort.
///
/// Path selection depends on the input and program alone — never on
/// `workers` — so results are bit-identical at every worker count.
pub fn aggregate_par(
    input: &Batch,
    reduce: &ReduceExprs,
    strategy: Strategy,
    models: &ModelRegistry,
    workers: usize,
    fuse: bool,
    flat: bool,
) -> Batch {
    let workers = workers.max(1);
    let n = input.nrows();
    if !parallel_eligible(&reduce.aggs) || n < par_min_rows() {
        return aggregate_seq(input, reduce, strategy, models, workers, fuse, flat);
    }
    let morsel_rows = par_morsel_rows();
    let n_morsels = n.div_ceil(morsel_rows);
    let partials = map_morsels(n_morsels, workers, |m| {
        // Morsel boundary: deadline/cancellation check per partial.
        crate::sched::check_cancelled();
        let lo = m * morsel_rows;
        let hi = ((m + 1) * morsel_rows).min(n);
        partial_aggregate(&input.slice_rows(lo, hi), reduce, models, fuse, flat)
    });
    merge_partials(
        partials,
        reduce.n_keys,
        &reduce.aggs,
        strategy,
        workers,
        flat,
    )
}

/// Run `f(m)` for every morsel index in `0..n_morsels`, scheduling
/// contiguous blocks of morsels across up to `workers` threads. Results
/// return in morsel order. This is *scheduling only*: the set of calls and
/// the result order never depend on `workers` (the determinism contract's
/// scheduling half, shared by [`aggregate_par`] and the VM's fused
/// segment+aggregation route).
pub fn map_morsels<T: Send>(
    n_morsels: usize,
    workers: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let threads = workers.min(n_morsels).max(1);
    if threads <= 1 {
        return (0..n_morsels).map(f).collect();
    }
    // Same contiguous block geometry as the scoped-thread era, but the
    // blocks are tasks on the shared pool scheduler (the process-wide
    // morsel scheduler concurrent queries submit to) instead of freshly
    // spawned threads. Block shape depends only on (n_morsels, workers),
    // never on pool occupancy, so result order — and thus the partial
    // merge order — is unchanged.
    let per_thread = n_morsels.div_ceil(threads);
    let n_blocks = n_morsels.div_ceil(per_thread);
    let blocks: Vec<Vec<T>> = crate::sched::map_tasks(n_blocks, workers, |b| {
        let lo = b * per_thread;
        let hi = ((b + 1) * per_thread).min(n_morsels);
        (lo..hi).map(&f).collect()
    });
    blocks.into_iter().flatten().collect()
}

fn aggregate_seq(
    input: &Batch,
    reduce: &ReduceExprs,
    strategy: Strategy,
    models: &ModelRegistry,
    workers: usize,
    fuse: bool,
    flat: bool,
) -> Batch {
    let (keys, args) = eval_reduce(input, reduce, models, fuse);
    if reduce.n_keys == 0 {
        return global_aggregate(input.nrows(), &reduce.aggs, &args);
    }
    match strategy {
        Strategy::Sort => sort_aggregate(&keys, &reduce.aggs, &args, input.nrows(), workers),
        Strategy::Hash => hash_aggregate(&keys, &reduce.aggs, &args, input.nrows(), flat),
    }
}

fn global_aggregate(n_rows: usize, aggs: &[CompiledAgg], args: &[Option<Evaled>]) -> Batch {
    let columns = aggs
        .iter()
        .zip(args)
        .map(|(call, arg)| match call.func {
            AggFunc::CountStar => Tensor::from_i64(vec![n_rows as i64]),
            _ => {
                let (vals, validity) = arg.clone().expect("agg arg");
                let (vals, n_valid) = apply_validity(vals, validity);
                match call.func {
                    AggFunc::Sum if call.ty == LogicalType::Int64 => {
                        Tensor::from_i64(vec![sum_i64(&vals)])
                    }
                    AggFunc::Sum => Tensor::from_f64(vec![sum_f64(&vals)]),
                    AggFunc::Avg => {
                        let s = sum_f64(&vals);
                        Tensor::from_f64(vec![if n_valid == 0 {
                            0.0
                        } else {
                            s / n_valid as f64
                        }])
                    }
                    AggFunc::Min | AggFunc::Max => global_minmax(&vals, call),
                    AggFunc::Count => Tensor::from_i64(vec![n_valid as i64]),
                    AggFunc::CountDistinct => Tensor::from_i64(vec![count_distinct_all(&vals)]),
                    AggFunc::CountStar => unreachable!(),
                }
            }
        })
        .collect();
    Batch::new(columns)
}

fn global_minmax(vals: &Tensor, call: &CompiledAgg) -> Tensor {
    let min = call.func == AggFunc::Min;
    if vals.is_empty() {
        return default_minmax(call, 1);
    }
    if vals.dtype() == DType::U8 {
        let ids = Tensor::from_i64(vec![0; vals.nrows()]);
        return segmented_min_str(vals, &ids, 1, min);
    }
    if call.ty == LogicalType::Int64 || call.ty == LogicalType::Date {
        let ids = Tensor::from_i64(vec![0; vals.nrows()]);
        return segmented_reduce_i64(vals, &ids, 1, if min { AggFn::Min } else { AggFn::Max });
    }
    let v = if min {
        tqp_tensor::reduce::min_f64(vals).unwrap_or(0.0)
    } else {
        tqp_tensor::reduce::max_f64(vals).unwrap_or(0.0)
    };
    Tensor::from_f64(vec![v])
}

/// The one-row zero defaults a global aggregate produces over empty input
/// (mirrors [`global_aggregate`] on a zero-row batch).
fn global_empty_defaults(aggs: &[CompiledAgg]) -> Batch {
    let columns = aggs
        .iter()
        .map(|call| match call.func {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct => {
                Tensor::from_i64(vec![0])
            }
            AggFunc::Sum if call.ty == LogicalType::Int64 => Tensor::from_i64(vec![0]),
            AggFunc::Sum | AggFunc::Avg => Tensor::from_f64(vec![0.0]),
            AggFunc::Min | AggFunc::Max => default_minmax(call, 1),
        })
        .collect();
    Batch::new(columns)
}

fn default_minmax(call: &CompiledAgg, n: usize) -> Tensor {
    match call.ty {
        LogicalType::Int64 | LogicalType::Date => Tensor::from_i64(vec![0; n]),
        LogicalType::Str => Tensor::from_strings(&vec![""; n], 1),
        LogicalType::Bool => Tensor::from_bool(vec![false; n]),
        LogicalType::Float64 => Tensor::from_f64(vec![0.0; n]),
    }
}

fn count_distinct_all(vals: &Tensor) -> i64 {
    if vals.is_empty() {
        return 0;
    }
    let perm = tqp_tensor::sort::argsort(vals, Order::Asc);
    let sorted = take(vals, &perm);
    let starts = run_starts(&[&sorted]);
    tqp_tensor::index::count_true(&starts) as i64
}

/// Compact away invalid rows; returns the values and the valid count.
fn apply_validity(vals: Tensor, validity: Option<Tensor>) -> (Tensor, usize) {
    match validity {
        None => {
            let n = vals.nrows();
            (vals, n)
        }
        Some(mask) => {
            let idx = mask_to_indices(&mask);
            let n = idx.nrows();
            (take(&vals, &idx), n)
        }
    }
}

// ---------------------------------------------------------------------
// Partitioned parallel path: per-morsel partials + ordered merge
// ---------------------------------------------------------------------

/// Mergeable partial aggregation state for one morsel: the morsel's group
/// keys (one row per local group, first-appearance order) and one
/// accumulator column per aggregate call.
pub struct AggPartial {
    /// Group-key columns materialized at local group firsts.
    keys: Vec<Tensor>,
    /// One partial per aggregate call, aligned with `keys` rows.
    cols: Vec<Partial>,
    /// Local group count (needed when there are no key columns).
    groups: usize,
}

/// One aggregate's per-local-group accumulator.
struct Partial {
    /// SUM/COUNT/MIN/MAX accumulator (dtype follows the aggregate). Empty
    /// valid sets hold the reduction identity (0, ±∞, `i64::MAX/MIN`).
    acc: Tensor,
    /// Valid-row count per local group — the merge uses it to finalize AVG
    /// and to reset all-NULL MIN/MAX groups to the shared default.
    counts: Option<Tensor>,
}

/// Compute the partial aggregation state of one morsel. The compiled
/// reduce program (group keys, aggregate arguments) evaluates on the
/// morsel slice, so this step parallelizes the expression work too.
pub fn partial_aggregate(
    morsel: &Batch,
    reduce: &ReduceExprs,
    models: &ModelRegistry,
    fuse: bool,
    flat: bool,
) -> AggPartial {
    let n = morsel.nrows();
    let (keys, args) = eval_reduce(morsel, reduce, models, fuse);
    let (ids, firsts) = hash_group_rows(&keys, n, flat);
    let g = firsts.nrows();
    let key_cols: Vec<Tensor> = keys.iter().map(|k| take(k, &firsts)).collect();
    let cols = reduce
        .aggs
        .iter()
        .zip(&args)
        .map(|(call, arg)| one_partial(call, arg, &ids, g))
        .collect();
    AggPartial {
        keys: key_cols,
        cols,
        groups: g,
    }
}

fn ones_i64(n: usize) -> Tensor {
    Tensor::from_i64(vec![1; n])
}

fn one_partial(call: &CompiledAgg, arg: &Option<Evaled>, ids: &Tensor, g: usize) -> Partial {
    if call.func == AggFunc::CountStar {
        return Partial {
            acc: scatter_add_i64(g, ids, &ones_i64(ids.nrows())),
            counts: None,
        };
    }
    let (vals, validity) = arg.clone().expect("agg arg");
    // Compact away invalid rows; `vids` keeps values aligned to groups.
    let (vals, vids) = match validity {
        None => (vals, ids.clone()),
        Some(mask) => {
            let idx = mask_to_indices(&mask);
            (take(&vals, &idx), take(ids, &idx))
        }
    };
    // Valid counts, only where the merge consumes them: AVG finalization
    // and the all-NULL-group reset of MIN/MAX. (COUNT *is* the count; SUM
    // merges by re-summing accumulators alone.)
    let valid_counts = || scatter_add_i64(g, &vids, &ones_i64(vids.nrows()));
    let (acc, counts) = match call.func {
        AggFunc::Sum if call.ty == LogicalType::Int64 => {
            (segmented_reduce_i64(&vals, &vids, g, AggFn::Sum), None)
        }
        AggFunc::Sum => (segmented_reduce(&vals, &vids, g, AggFn::Sum), None),
        AggFunc::Avg => (
            segmented_reduce(&vals, &vids, g, AggFn::Sum),
            Some(valid_counts()),
        ),
        AggFunc::Count => (valid_counts(), None),
        AggFunc::Min | AggFunc::Max => {
            let min = call.func == AggFunc::Min;
            let acc = if vals.dtype() == DType::U8 {
                // A local group whose valid set is empty (all rows NULL in
                // this morsel) yields an all-zero filler row; the merge
                // excludes filler rows via the zero valid count.
                segmented_min_str_or_filler(&vals, &vids, g, min)
            } else if call.ty == LogicalType::Int64 || call.ty == LogicalType::Date {
                segmented_reduce_i64(&vals, &vids, g, if min { AggFn::Min } else { AggFn::Max })
            } else {
                segmented_reduce(&vals, &vids, g, if min { AggFn::Min } else { AggFn::Max })
            };
            (acc, Some(valid_counts()))
        }
        AggFunc::CountStar | AggFunc::CountDistinct => {
            unreachable!("not eligible for partial aggregation")
        }
    };
    Partial { acc, counts }
}

/// Fold per-morsel partials into the final aggregate batch.
///
/// The partials arrive — and are concatenated — in **ascending morsel
/// order**; global group ids assign in first-encounter order over that
/// concatenation, and every segmented reduction folds accumulator rows in
/// the same order. This fixed fold order is the determinism contract: float
/// SUM/AVG results depend only on the morsel geometry, not on which worker
/// computed which partial.
///
/// Output group order matches the sequential strategies: `Hash` keeps
/// global first-appearance order, `Sort` sorts groups by their keys.
pub fn merge_partials(
    partials: Vec<AggPartial>,
    n_group_cols: usize,
    aggs: &[CompiledAgg],
    strategy: Strategy,
    workers: usize,
    flat: bool,
) -> Batch {
    let total: usize = partials.iter().map(|p| p.groups).sum();
    // A global aggregate whose every morsel came up empty (e.g. a fused
    // filter that matched nothing) must still yield the engine's one row
    // of zeros — the same empty-input semantics as the sequential path.
    if n_group_cols == 0 && total == 0 {
        return global_empty_defaults(aggs);
    }
    let merged_keys: Vec<Tensor> = (0..n_group_cols)
        .map(|c| {
            let parts: Vec<&Tensor> = partials.iter().map(|p| &p.keys[c]).collect();
            concat(&parts)
        })
        .collect();
    let (ids, firsts) = hash_group_rows(&merged_keys, total, flat);
    let g = firsts.nrows();
    let mut columns: Vec<Tensor> = merged_keys.iter().map(|k| take(k, &firsts)).collect();
    for (a, call) in aggs.iter().enumerate() {
        let accs: Vec<&Tensor> = partials.iter().map(|p| &p.cols[a].acc).collect();
        let acc = concat(&accs);
        let counts = if partials.iter().all(|p| p.cols[a].counts.is_some()) {
            let cs: Vec<&Tensor> = partials
                .iter()
                .map(|p| p.cols[a].counts.as_ref().expect("checked"))
                .collect();
            Some(concat(&cs))
        } else {
            None
        };
        columns.push(merge_one(
            call,
            &acc,
            counts.as_ref(),
            &ids,
            g,
            n_group_cols == 0,
        ));
    }
    let out = Batch::new(columns);
    if strategy == Strategy::Sort && n_group_cols > 0 {
        let sort_keys: Vec<SortKey> = out.columns[..n_group_cols]
            .iter()
            .map(|k| SortKey::asc(k.clone()))
            .collect();
        let perm = argsort_multi_par(&sort_keys, workers);
        return out.take(&perm);
    }
    out
}

/// Combine one aggregate's concatenated partial accumulators by global
/// group id. Reductions fold in concatenation (= morsel) order.
fn merge_one(
    call: &CompiledAgg,
    acc: &Tensor,
    counts: Option<&Tensor>,
    ids: &Tensor,
    g: usize,
    global: bool,
) -> Tensor {
    match call.func {
        AggFunc::CountStar | AggFunc::Count => segmented_reduce_i64(acc, ids, g, AggFn::Sum),
        AggFunc::Sum if call.ty == LogicalType::Int64 => {
            segmented_reduce_i64(acc, ids, g, AggFn::Sum)
        }
        AggFunc::Sum => segmented_reduce(acc, ids, g, AggFn::Sum),
        AggFunc::Avg => {
            let sums = segmented_reduce(acc, ids, g, AggFn::Sum);
            let cnts =
                segmented_reduce_i64(counts.expect("AVG partial counts"), ids, g, AggFn::Sum);
            let out: Vec<f64> = sums
                .as_f64()
                .iter()
                .zip(cnts.as_i64())
                .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                .collect();
            Tensor::from_f64(out)
        }
        AggFunc::Min | AggFunc::Max => {
            let min = call.func == AggFunc::Min;
            if acc.dtype() == DType::U8 {
                // Exclude the filler rows of all-NULL local groups (their
                // valid count is zero); a group with no survivors at all
                // panics inside segmented_min_str — matching the
                // sequential path's "empty group in string MIN/MAX".
                let cnts = counts.expect("MIN/MAX partial counts").as_i64();
                let keep =
                    mask_to_indices(&Tensor::from_bool(cnts.iter().map(|&c| c > 0).collect()));
                // A *global* aggregate over an entirely-NULL column keeps
                // no accumulator rows at all; the sequential path
                // ([`global_minmax`] on empty input) yields the shared
                // default row, so match it instead of panicking. Grouped
                // all-NULL groups still panic on both paths.
                if global && keep.is_empty() {
                    return default_minmax(call, 1);
                }
                return segmented_min_str(&take(acc, &keep), &take(ids, &keep), g, min);
            }
            // Accumulators hold the reduction identity for all-NULL local
            // groups; a zero *total* count resets to the shared default.
            let cnts =
                segmented_reduce_i64(counts.expect("MIN/MAX partial counts"), ids, g, AggFn::Sum);
            if call.ty == LogicalType::Int64 || call.ty == LogicalType::Date {
                let r =
                    segmented_reduce_i64(acc, ids, g, if min { AggFn::Min } else { AggFn::Max });
                let fixed: Vec<i64> = r
                    .as_i64()
                    .iter()
                    .zip(cnts.as_i64())
                    .map(|(&v, &c)| if c == 0 { 0 } else { v })
                    .collect();
                Tensor::from_i64(fixed)
            } else {
                let r = segmented_reduce(acc, ids, g, if min { AggFn::Min } else { AggFn::Max });
                let fixed: Vec<f64> = r
                    .as_f64()
                    .iter()
                    .zip(cnts.as_i64())
                    .map(|(&v, &c)| if c == 0 { 0.0 } else { v })
                    .collect();
                Tensor::from_f64(fixed)
            }
        }
        AggFunc::CountDistinct => unreachable!("not eligible for partial aggregation"),
    }
}

/// Hash-group rows by key equality (collision-verified). Returns dense
/// group ids in first-appearance order plus one representative row per
/// group. Zero key columns means a single global group (the ungrouped
/// aggregate case).
///
/// Two interchangeable implementations behind `flat` (see
/// [`crate::join`]'s module docs for the rollout story): the default
/// hashes the key columns **once, blockwise**
/// ([`tqp_tensor::hash::hash_columns`]) and groups through the flat
/// open-addressing table of [`tqp_tensor::hash::group_rows_by_hash`];
/// `flat = false` keeps the legacy `HashMap` collision-chain path as a
/// differential oracle. Both assign gids in first-appearance order over a
/// sequential row scan and verify collisions through [`rows_equal`], so
/// group numbering — and therefore every aggregate output — is identical
/// whichever path runs.
fn hash_group_rows(keys: &[Tensor], n: usize, flat: bool) -> (Tensor, Tensor) {
    if keys.is_empty() {
        let firsts = if n == 0 { vec![] } else { vec![0] };
        return (Tensor::from_i64(vec![0; n]), Tensor::from_i64(firsts));
    }
    let key_refs: Vec<&Tensor> = keys.iter().collect();
    if flat {
        let hashes = tqp_tensor::hash::hash_columns(&key_refs);
        let (gids, firsts) =
            tqp_tensor::hash::group_rows_by_hash(&hashes, |i, j| rows_equal(keys, i, j));
        return (Tensor::from_i64(gids), Tensor::from_i64(firsts));
    }
    let hashes = hash_rows(&key_refs);
    let hv = hashes.as_i64();
    // hash → chain of (first_row, gid); verify on collision.
    let mut table: HashMap<i64, Vec<(u32, u32)>, FxBuild> =
        HashMap::with_capacity_and_hasher(n, FxBuild);
    let mut gids = vec![0i64; n];
    let mut firsts: Vec<i64> = Vec::new();
    for i in 0..n {
        let chain = table.entry(hv[i]).or_default();
        let mut found = None;
        for &(first, gid) in chain.iter() {
            if rows_equal(keys, i, first as usize) {
                found = Some(gid);
                break;
            }
        }
        let gid = match found {
            Some(g) => g,
            None => {
                let g = firsts.len() as u32;
                chain.push((i as u32, g));
                firsts.push(i as i64);
                g
            }
        };
        gids[i] = gid as i64;
    }
    (Tensor::from_i64(gids), Tensor::from_i64(firsts))
}

// ---------------------------------------------------------------------
// Sort strategy
// ---------------------------------------------------------------------

fn sort_aggregate(
    keys: &[Tensor],
    aggs: &[CompiledAgg],
    args: &[Option<Evaled>],
    n: usize,
    workers: usize,
) -> Batch {
    let sort_keys: Vec<SortKey> = keys.iter().map(|k| SortKey::asc(k.clone())).collect();
    let perm = argsort_multi_par(&sort_keys, workers);
    let sorted_keys: Vec<Tensor> = keys.iter().map(|k| take(k, &perm)).collect();
    let key_refs: Vec<&Tensor> = sorted_keys.iter().collect();
    let groups = group_ids(&key_refs);

    let mut columns: Vec<Tensor> = sorted_keys
        .iter()
        .map(|k| take(k, &groups.firsts))
        .collect();
    for (call, arg) in aggs.iter().zip(args) {
        columns.push(one_agg_sorted(call, arg, &perm, &groups, &sorted_keys, n));
    }
    Batch::new(columns)
}

fn one_agg_sorted(
    call: &CompiledAgg,
    arg: &Option<Evaled>,
    perm: &Tensor,
    groups: &Groups,
    sorted_keys: &[Tensor],
    n: usize,
) -> Tensor {
    let g = groups.num_groups;
    match call.func {
        AggFunc::CountStar => run_lengths(groups, n),
        AggFunc::CountDistinct => {
            let (vals, validity) = arg.clone().expect("agg arg");
            let vals = take(&vals, perm);
            let validity = validity.map(|m| take(&m, perm));
            distinct_per_group(sorted_keys, &vals, validity, groups)
        }
        _ => {
            let (vals, validity) = arg.clone().expect("agg arg");
            let vals = take(&vals, perm);
            let validity = validity.map(|m| take(&m, perm));
            let (vals, ids) = match validity {
                None => (vals, groups.ids.clone()),
                Some(mask) => {
                    let idx = mask_to_indices(&mask);
                    (take(&vals, &idx), take(&groups.ids, &idx))
                }
            };
            reduce_by_ids(&vals, &ids, g, call)
        }
    }
}

/// Segmented reduction dispatch with type- and emptiness-aware finalization.
fn reduce_by_ids(vals: &Tensor, ids: &Tensor, g: usize, call: &CompiledAgg) -> Tensor {
    match call.func {
        AggFunc::Sum if call.ty == LogicalType::Int64 => {
            segmented_reduce_i64(vals, ids, g, AggFn::Sum)
        }
        AggFunc::Sum => segmented_reduce(vals, ids, g, AggFn::Sum),
        AggFunc::Avg => segmented_reduce(vals, ids, g, AggFn::Avg),
        AggFunc::Count => {
            segmented_reduce_i64(&Tensor::from_i64(vec![1; vals.nrows()]), ids, g, AggFn::Sum)
        }
        AggFunc::Min | AggFunc::Max => {
            let min = call.func == AggFunc::Min;
            if vals.dtype() == DType::U8 {
                return minmax_str_with_defaults(vals, ids, g, min);
            }
            // Fix groups whose members were all NULL to the shared default.
            let counts =
                segmented_reduce_i64(&Tensor::from_i64(vec![1; vals.nrows()]), ids, g, AggFn::Sum);
            if call.ty == LogicalType::Int64 || call.ty == LogicalType::Date {
                let r =
                    segmented_reduce_i64(vals, ids, g, if min { AggFn::Min } else { AggFn::Max });
                let fixed: Vec<i64> = r
                    .as_i64()
                    .iter()
                    .zip(counts.as_i64())
                    .map(|(&v, &c)| if c == 0 { 0 } else { v })
                    .collect();
                Tensor::from_i64(fixed)
            } else {
                let r = segmented_reduce(vals, ids, g, if min { AggFn::Min } else { AggFn::Max });
                let fixed: Vec<f64> = r
                    .as_f64()
                    .iter()
                    .zip(counts.as_i64())
                    .map(|(&v, &c)| if c == 0 { 0.0 } else { v })
                    .collect();
                Tensor::from_f64(fixed)
            }
        }
        AggFunc::CountStar | AggFunc::CountDistinct => unreachable!("handled by caller"),
    }
}

fn minmax_str_with_defaults(vals: &Tensor, ids: &Tensor, g: usize, min: bool) -> Tensor {
    // String min/max groups are never empty in practice (no validity on
    // string aggregates in TPC-H); assert instead of patching.
    let mut seen = vec![false; g];
    for &i in ids.as_i64() {
        seen[i as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "empty group in string MIN/MAX");
    segmented_min_str(vals, ids, g, min)
}

/// Distinct `(keys, value)` runs per group — COUNT(DISTINCT x).
fn distinct_per_group(
    sorted_keys: &[Tensor],
    vals_sorted_by_keys: &Tensor,
    validity: Option<Tensor>,
    groups: &Groups,
) -> Tensor {
    // Re-sort within the key order by value (stable, so key order holds).
    let mut all_keys: Vec<SortKey> = sorted_keys
        .iter()
        .map(|k| SortKey::asc(k.clone()))
        .collect();
    all_keys.push(SortKey::asc(vals_sorted_by_keys.clone()));
    // Sorting by (keys..., val) from scratch: keys are already grouped, so a
    // stable multi-key sort reproduces group order with values ordered.
    let perm2 = argsort_multi(&all_keys);
    let vals2 = take(vals_sorted_by_keys, &perm2);
    let ids2 = take(&groups.ids, &perm2);
    let keep = validity.map(|m| mask_to_indices(&take(&m, &perm2)));
    let (vals2, ids2) = match keep {
        None => (vals2, ids2),
        Some(idx) => (take(&vals2, &idx), take(&ids2, &idx)),
    };
    // Runs over (group id, value).
    let starts = run_starts(&[&ids2, &vals2]);
    let ones = starts.cast(DType::I64).expect("bool->i64");
    tqp_tensor::index::scatter_add_i64(groups.num_groups, &ids2, &ones)
}

// ---------------------------------------------------------------------
// Hash strategy
// ---------------------------------------------------------------------

fn hash_aggregate(
    keys: &[Tensor],
    aggs: &[CompiledAgg],
    args: &[Option<Evaled>],
    n: usize,
    flat: bool,
) -> Batch {
    let (ids, firsts) = hash_group_rows(keys, n, flat);
    let g = firsts.nrows();

    let mut columns: Vec<Tensor> = keys.iter().map(|k| take(k, &firsts)).collect();
    for (call, arg) in aggs.iter().zip(args) {
        let col = match call.func {
            AggFunc::CountStar => scatter_add_i64(g, &ids, &ones_i64(n)),
            AggFunc::CountDistinct => {
                let (vals, validity) = arg.clone().expect("agg arg");
                // Sort by (gid, value) then count runs per gid.
                let perm = argsort_multi(&[SortKey::asc(ids.clone()), SortKey::asc(vals.clone())]);
                let ids_s = take(&ids, &perm);
                let vals_s = take(&vals, &perm);
                let validity_s = validity.map(|m| take(&m, &perm));
                let (ids_s, vals_s) = match validity_s {
                    None => (ids_s, vals_s),
                    Some(m) => {
                        let idx = mask_to_indices(&m);
                        (take(&ids_s, &idx), take(&vals_s, &idx))
                    }
                };
                let starts = run_starts(&[&ids_s, &vals_s]);
                let ones = starts.cast(DType::I64).expect("bool->i64");
                tqp_tensor::index::scatter_add_i64(g, &ids_s, &ones)
            }
            _ => {
                let (vals, validity) = arg.clone().expect("agg arg");
                let (vals, ids2) = match validity {
                    None => (vals, ids.clone()),
                    Some(m) => {
                        let idx = mask_to_indices(&m);
                        (take(&vals, &idx), take(&ids, &idx))
                    }
                };
                reduce_by_ids(&vals, &ids2, g, call)
            }
        };
        columns.push(col);
    }
    Batch::new(columns)
}

fn rows_equal(keys: &[Tensor], i: usize, j: usize) -> bool {
    keys.iter().all(|k| match k.dtype() {
        DType::I64 => k.as_i64()[i] == k.as_i64()[j],
        DType::I32 => k.as_i32()[i] == k.as_i32()[j],
        DType::F64 => k.as_f64()[i].to_bits() == k.as_f64()[j].to_bits(),
        DType::Bool => k.as_bool()[i] == k.as_bool()[j],
        DType::U8 => k.str_row(i) == k.str_row(j),
        DType::F32 => k.as_f32()[i].to_bits() == k.as_f32()[j].to_bits(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqp_ir::expr::{AggCall, BoundExpr as E};

    fn batch() -> Batch {
        Batch::new(vec![
            Tensor::from_strings(&["a", "b", "a", "b", "a"], 0),
            Tensor::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            Tensor::from_i64(vec![7, 7, 8, 8, 7]),
        ])
    }

    fn call(func: AggFunc, col: usize, ty: LogicalType) -> AggCall {
        let arg_ty = if col == 1 {
            LogicalType::Float64
        } else {
            LogicalType::Int64
        };
        AggCall {
            func,
            arg: Some(E::col(col, arg_ty)),
            ty,
        }
    }

    fn star() -> AggCall {
        AggCall {
            func: AggFunc::CountStar,
            arg: None,
            ty: LogicalType::Int64,
        }
    }

    fn reduce_of(group_by: &[E], aggs: &[AggCall]) -> ReduceExprs {
        ReduceExprs::compile(group_by, aggs)
    }

    fn run(strategy: Strategy) -> Batch {
        aggregate(
            &batch(),
            &reduce_of(
                &[E::col(0, LogicalType::Str)],
                &[
                    call(AggFunc::Sum, 1, LogicalType::Float64),
                    star(),
                    call(AggFunc::Min, 1, LogicalType::Float64),
                    call(AggFunc::Max, 1, LogicalType::Float64),
                    call(AggFunc::Avg, 1, LogicalType::Float64),
                    call(AggFunc::CountDistinct, 2, LogicalType::Int64),
                ],
            ),
            strategy,
            &ModelRegistry::new(),
            true,
            true,
        )
    }

    fn group_of(out: &Batch, key: &str) -> Vec<f64> {
        for i in 0..out.nrows() {
            if out.columns[0].str_at(i) == key {
                return (1..out.ncols())
                    .map(|c| match out.columns[c].dtype() {
                        DType::F64 => out.columns[c].as_f64()[i],
                        DType::I64 => out.columns[c].as_i64()[i] as f64,
                        _ => panic!(),
                    })
                    .collect();
            }
        }
        panic!("group {key} missing");
    }

    #[test]
    fn sort_and_hash_agree() {
        for strat in [Strategy::Sort, Strategy::Hash] {
            let out = run(strat);
            assert_eq!(out.nrows(), 2, "{strat:?}");
            // a: vals 1,3,5; i64 7,8,7 → 2 distinct
            assert_eq!(group_of(&out, "a"), vec![9.0, 3.0, 1.0, 5.0, 3.0, 2.0]);
            // b: vals 2,4; i64 7,8 → 2 distinct
            assert_eq!(group_of(&out, "b"), vec![6.0, 2.0, 2.0, 4.0, 3.0, 2.0]);
        }
    }

    #[test]
    fn shared_subterms_compile_once_across_aggregates() {
        // SUM(v * 2) and AVG(v * 2) share the argument subterm; the
        // compiled bundle computes it once (CSE across agg inputs).
        let shared = E::Binary {
            op: tqp_ir::expr::BinOp::Mul,
            left: Box::new(E::col(1, LogicalType::Float64)),
            right: Box::new(E::lit_f64(2.0)),
            ty: LogicalType::Float64,
        };
        let reduce = reduce_of(
            &[E::col(0, LogicalType::Str)],
            &[
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(shared.clone()),
                    ty: LogicalType::Float64,
                },
                AggCall {
                    func: AggFunc::Avg,
                    arg: Some(shared.clone()),
                    ty: LogicalType::Float64,
                },
            ],
        );
        // Both arg slots resolve to the same output register.
        assert_eq!(
            reduce.exprs.outputs[reduce.aggs[0].arg.unwrap()],
            reduce.exprs.outputs[reduce.aggs[1].arg.unwrap()]
        );
        let out = aggregate(
            &batch(),
            &reduce,
            Strategy::Sort,
            &ModelRegistry::new(),
            true,
            true,
        );
        assert_eq!(group_of(&out, "a"), vec![18.0, 6.0]);
    }

    #[test]
    fn global_aggregates() {
        let out = aggregate(
            &batch(),
            &reduce_of(
                &[],
                &[
                    call(AggFunc::Sum, 1, LogicalType::Float64),
                    star(),
                    call(AggFunc::CountDistinct, 2, LogicalType::Int64),
                ],
            ),
            Strategy::Sort,
            &ModelRegistry::new(),
            true,
            true,
        );
        assert_eq!(out.nrows(), 1);
        assert_eq!(out.columns[0].as_f64(), &[15.0]);
        assert_eq!(out.columns[1].as_i64(), &[5]);
        assert_eq!(out.columns[2].as_i64(), &[2]);
    }

    #[test]
    fn global_empty_input_defaults() {
        let empty = Batch::new(vec![
            Tensor::from_strings(&[], 1),
            Tensor::from_f64(vec![]),
            Tensor::from_i64(vec![]),
        ]);
        let out = aggregate(
            &empty,
            &reduce_of(
                &[],
                &[
                    call(AggFunc::Sum, 1, LogicalType::Float64),
                    star(),
                    call(AggFunc::Min, 1, LogicalType::Float64),
                    call(AggFunc::Avg, 1, LogicalType::Float64),
                ],
            ),
            Strategy::Sort,
            &ModelRegistry::new(),
            true,
            true,
        );
        assert_eq!(out.nrows(), 1);
        assert_eq!(out.columns[0].as_f64(), &[0.0]);
        assert_eq!(out.columns[1].as_i64(), &[0]);
        assert_eq!(out.columns[2].as_f64(), &[0.0]);
        assert_eq!(out.columns[3].as_f64(), &[0.0]);
    }

    #[test]
    fn grouped_empty_input_no_rows() {
        let empty = Batch::new(vec![
            Tensor::from_strings(&[], 1),
            Tensor::from_f64(vec![]),
            Tensor::from_i64(vec![]),
        ]);
        let out = aggregate(
            &empty,
            &reduce_of(&[E::col(0, LogicalType::Str)], &[star()]),
            Strategy::Sort,
            &ModelRegistry::new(),
            true,
            true,
        );
        assert_eq!(out.nrows(), 0);
    }

    #[test]
    fn validity_skipped_in_count_and_sum() {
        // Simulates a left-join output: 2 valid + 1 invalid value.
        let b = Batch::with_validity(
            vec![
                Tensor::from_i64(vec![1, 1, 1]),
                Tensor::from_f64(vec![10.0, 99.0, 20.0]),
            ],
            vec![None, Some(Tensor::from_bool(vec![true, false, true]))],
        );
        for strat in [Strategy::Sort, Strategy::Hash] {
            let out = aggregate(
                &b,
                &reduce_of(
                    &[E::col(0, LogicalType::Int64)],
                    &[
                        AggCall {
                            func: AggFunc::Count,
                            arg: Some(E::col(1, LogicalType::Float64)),
                            ty: LogicalType::Int64,
                        },
                        AggCall {
                            func: AggFunc::Sum,
                            arg: Some(E::col(1, LogicalType::Float64)),
                            ty: LogicalType::Float64,
                        },
                        star(),
                    ],
                ),
                strat,
                &ModelRegistry::new(),
                true,
                true,
            );
            assert_eq!(out.columns[1].as_i64(), &[2], "{strat:?}");
            assert_eq!(out.columns[2].as_f64(), &[30.0]);
            assert_eq!(out.columns[3].as_i64(), &[3]);
        }
    }

    /// Adversarial float magnitudes: values whose sum is exquisitely
    /// sensitive to association order. Locks in the deterministic
    /// partial-merge contract — SUM/AVG are bit-identical at every worker
    /// count because morsel geometry and merge order never change.
    #[test]
    fn parallel_float_sum_bit_identical_across_worker_counts() {
        let n = par_min_rows() * 2 + 4321;
        let vals: Vec<f64> = (0..n)
            .map(|i| match i % 4 {
                0 => 1e18,
                1 => 1.0,
                2 => -1e18,
                _ => 0.1 + (i % 997) as f64 * 1e-7,
            })
            .collect();
        let grp: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
        let b = Batch::new(vec![Tensor::from_i64(grp), Tensor::from_f64(vals)]);
        let reduce = reduce_of(
            &[E::col(0, LogicalType::Int64)],
            &[
                call(AggFunc::Sum, 1, LogicalType::Float64),
                call(AggFunc::Avg, 1, LogicalType::Float64),
                call(AggFunc::Min, 1, LogicalType::Float64),
                call(AggFunc::Max, 1, LogicalType::Float64),
                star(),
            ],
        );
        let models = ModelRegistry::new();
        for strat in [Strategy::Sort, Strategy::Hash] {
            let one = aggregate_par(&b, &reduce, strat, &models, 1, true, true);
            for workers in [2, 5, 8] {
                let many = aggregate_par(&b, &reduce, strat, &models, workers, true, true);
                assert_eq!(one.nrows(), many.nrows(), "{strat:?}");
                for c in 0..one.ncols() {
                    match one.columns[c].dtype() {
                        DType::F64 => {
                            let x: Vec<u64> = one.columns[c]
                                .as_f64()
                                .iter()
                                .map(|v| v.to_bits())
                                .collect();
                            let y: Vec<u64> = many.columns[c]
                                .as_f64()
                                .iter()
                                .map(|v| v.to_bits())
                                .collect();
                            assert_eq!(x, y, "{strat:?} col {c} workers {workers}: float bits");
                        }
                        _ => assert_eq!(
                            one.columns[c].as_i64(),
                            many.columns[c].as_i64(),
                            "{strat:?} col {c} workers {workers}"
                        ),
                    }
                }
            }
            // The sequential path must agree exactly on everything
            // association-insensitive: the group set, MIN, MAX, and
            // COUNT(*). SUM/AVG are deliberately excluded here — with
            // these magnitudes the value genuinely depends on association
            // order (that is what makes the input adversarial); their
            // seq-vs-par agreement is asserted on benign values in
            // `parallel_grouped_matches_sequential`.
            let seq = aggregate(&b, &reduce, strat, &models, true, true);
            assert_eq!(seq.nrows(), one.nrows(), "{strat:?}");
            assert_eq!(
                seq.columns[0].as_i64(),
                one.columns[0].as_i64(),
                "{strat:?} keys"
            );
            for c in [3, 4] {
                let s: Vec<u64> = seq.columns[c]
                    .as_f64()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let p: Vec<u64> = one.columns[c]
                    .as_f64()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                assert_eq!(s, p, "{strat:?} col {c}: seq-vs-par MIN/MAX bits");
            }
            assert_eq!(
                seq.columns[5].as_i64(),
                one.columns[5].as_i64(),
                "{strat:?} count"
            );
        }
    }

    /// The partitioned path agrees with the sequential strategies on exact
    /// (integer/count) results, group sets, and output order, including
    /// validity-masked inputs (the left-join NULL case).
    #[test]
    fn parallel_grouped_matches_sequential() {
        let n = par_min_rows() + 999;
        let grp: Vec<i64> = (0..n).map(|i| ((i * 7) % 5) as i64).collect();
        let vals: Vec<f64> = (0..n).map(|i| (i % 89) as f64).collect();
        let ints: Vec<i64> = (0..n).map(|i| (i % 13) as i64).collect();
        let valid: Vec<bool> = (0..n).map(|i| i % 11 != 0).collect();
        let b = Batch::with_validity(
            vec![
                Tensor::from_i64(grp),
                Tensor::from_f64(vals),
                Tensor::from_i64(ints),
            ],
            vec![None, Some(Tensor::from_bool(valid)), None],
        );
        let reduce = reduce_of(
            &[E::col(0, LogicalType::Int64)],
            &[
                star(),
                AggCall {
                    func: AggFunc::Count,
                    arg: Some(E::col(1, LogicalType::Float64)),
                    ty: LogicalType::Int64,
                },
                call(AggFunc::Sum, 2, LogicalType::Int64),
                call(AggFunc::Min, 2, LogicalType::Int64),
                call(AggFunc::Max, 2, LogicalType::Int64),
            ],
        );
        let models = ModelRegistry::new();
        for strat in [Strategy::Sort, Strategy::Hash] {
            let seq = aggregate(&b, &reduce, strat, &models, true, true);
            let par = aggregate_par(&b, &reduce, strat, &models, 4, true, true);
            assert_eq!(seq.nrows(), par.nrows(), "{strat:?}");
            for c in 0..seq.ncols() {
                assert_eq!(
                    seq.columns[c].as_i64(),
                    par.columns[c].as_i64(),
                    "{strat:?} col {c}"
                );
            }
        }
    }

    /// Global (ungrouped) aggregates take the same partitioned path.
    #[test]
    fn parallel_global_bit_identical_across_worker_counts() {
        let n = par_min_rows() + 17;
        let vals: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 1e15 } else { -1e15 + 0.5 })
            .collect();
        let b = Batch::new(vec![Tensor::from_i64(vec![0; n]), Tensor::from_f64(vals)]);
        let reduce = reduce_of(
            &[],
            &[
                call(AggFunc::Sum, 1, LogicalType::Float64),
                call(AggFunc::Avg, 1, LogicalType::Float64),
                star(),
            ],
        );
        let models = ModelRegistry::new();
        let one = aggregate_par(&b, &reduce, Strategy::Sort, &models, 1, true, true);
        let many = aggregate_par(&b, &reduce, Strategy::Sort, &models, 6, true, true);
        assert_eq!(one.nrows(), 1);
        assert_eq!(
            one.columns[0].as_f64()[0].to_bits(),
            many.columns[0].as_f64()[0].to_bits()
        );
        assert_eq!(
            one.columns[1].as_f64()[0].to_bits(),
            many.columns[1].as_f64()[0].to_bits()
        );
        assert_eq!(one.columns[2].as_i64(), many.columns[2].as_i64());
    }

    /// A global MIN/MAX over an entirely-NULL string column (e.g. after a
    /// left join where no probe row matched) must return the sequential
    /// path's default row on the partitioned path too, not panic — the
    /// same query must not crash or succeed depending on whether the row
    /// count crosses the partitioned threshold.
    #[test]
    fn parallel_global_all_null_string_minmax_matches_sequential() {
        let n = par_min_rows() + 7;
        let strs: Vec<&str> = vec!["x"; n];
        let b = Batch::with_validity(
            vec![Tensor::from_strings(&strs, 0)],
            vec![Some(Tensor::from_bool(vec![false; n]))],
        );
        let reduce = reduce_of(
            &[],
            &[
                AggCall {
                    func: AggFunc::Min,
                    arg: Some(E::col(0, LogicalType::Str)),
                    ty: LogicalType::Str,
                },
                AggCall {
                    func: AggFunc::Max,
                    arg: Some(E::col(0, LogicalType::Str)),
                    ty: LogicalType::Str,
                },
                star(),
            ],
        );
        let models = ModelRegistry::new();
        let seq = aggregate(&b, &reduce, Strategy::Hash, &models, true, true);
        for workers in [1usize, 4] {
            let par = aggregate_par(&b, &reduce, Strategy::Hash, &models, workers, true, true);
            assert_eq!(seq.nrows(), par.nrows(), "workers {workers}");
            assert_eq!(seq.columns[0].str_at(0), par.columns[0].str_at(0));
            assert_eq!(seq.columns[1].str_at(0), par.columns[1].str_at(0));
            assert_eq!(seq.columns[2].as_i64(), par.columns[2].as_i64());
        }
    }

    /// Nullable string aggregate arguments (the left-join NULL-padding
    /// case) must work on the partitioned path exactly as they do
    /// sequentially: COUNT skips NULLs, MIN/MAX reduce over the valid
    /// subset — even when a whole *morsel*'s slice of a group is NULL.
    #[test]
    fn parallel_nullable_string_aggregates_match_sequential() {
        let n = par_min_rows() + 123;
        let words = ["pear", "apple", "kiwi", "zed"];
        let grp: Vec<i64> = (0..n).map(|i| (i % 3) as i64).collect();
        let strs: Vec<String> = (0..n).map(|i| words[i % 4].to_string()).collect();
        // Group 2 is NULL everywhere except one early row, so entire
        // morsels of it are all-NULL (the filler-row merge case).
        let valid: Vec<bool> = (0..n).map(|i| i % 3 != 2 || i == 2).collect();
        let b = Batch::with_validity(
            vec![Tensor::from_i64(grp), {
                let refs: Vec<&str> = strs.iter().map(|s| s.as_str()).collect();
                Tensor::from_strings(&refs, 0)
            }],
            vec![None, Some(Tensor::from_bool(valid))],
        );
        let reduce = reduce_of(
            &[E::col(0, LogicalType::Int64)],
            &[
                AggCall {
                    func: AggFunc::Count,
                    arg: Some(E::col(1, LogicalType::Str)),
                    ty: LogicalType::Int64,
                },
                AggCall {
                    func: AggFunc::Min,
                    arg: Some(E::col(1, LogicalType::Str)),
                    ty: LogicalType::Str,
                },
                AggCall {
                    func: AggFunc::Max,
                    arg: Some(E::col(1, LogicalType::Str)),
                    ty: LogicalType::Str,
                },
            ],
        );
        let models = ModelRegistry::new();
        for strat in [Strategy::Sort, Strategy::Hash] {
            let seq = aggregate(&b, &reduce, strat, &models, true, true);
            for workers in [1usize, 4] {
                let par = aggregate_par(&b, &reduce, strat, &models, workers, true, true);
                assert_eq!(seq.nrows(), par.nrows(), "{strat:?}");
                assert_eq!(seq.columns[1].as_i64(), par.columns[1].as_i64());
                for r in 0..seq.nrows() {
                    assert_eq!(seq.columns[2].str_at(r), par.columns[2].str_at(r));
                    assert_eq!(seq.columns[3].str_at(r), par.columns[3].str_at(r));
                }
            }
        }
    }

    #[test]
    fn string_minmax_grouped() {
        let b = Batch::new(vec![
            Tensor::from_i64(vec![1, 1, 2]),
            Tensor::from_strings(&["pear", "apple", "kiwi"], 0),
        ]);
        let out = aggregate(
            &b,
            &reduce_of(
                &[E::col(0, LogicalType::Int64)],
                &[AggCall {
                    func: AggFunc::Min,
                    arg: Some(E::col(1, LogicalType::Str)),
                    ty: LogicalType::Str,
                }],
            ),
            Strategy::Sort,
            &ModelRegistry::new(),
            true,
            true,
        );
        assert_eq!(out.columns[1].str_at(0), "apple");
        assert_eq!(out.columns[1].str_at(1), "kiwi");
    }
}

//! Tensor join algorithms (the paper's "novel algorithms mapping relational
//! operators into tensor programs").
//!
//! * **Sort-merge** (default, tensor-native): stable-argsort the build side,
//!   probe with two `searchsorted` calls to get each probe key's match run
//!   `[lo, hi)`, expand runs into aligned index tensors with
//!   `repeat_interleave`/`cumsum`/`arange` arithmetic, then gather. No data-
//!   dependent control flow — every step is a dense kernel.
//! * **Hash**: two interchangeable build tables behind one probe contract.
//!   The default **flat** path hashes each side exactly once with the
//!   blockwise kernels in [`tqp_tensor::hash`] and builds a
//!   [`FlatRowTable`] — a power-of-two directory over contiguous row/key
//!   arenas, filled by a counting pass (no per-key `Vec` allocations, no
//!   second hash on insert). The legacy **map** path
//!   (`HashMap<i64, Vec<u32>>` collision chains, which re-hash the
//!   combined key through FxHash on every insert and lookup) is kept as a
//!   differential oracle behind `ExecConfig::flat_hash = false`. Both emit
//!   probe pairs in (probe row asc, build row asc) order and verify true
//!   key equality on hashed keys, so flat on/off is bitwise identical.
//!
//! Multi-column keys reduce to the single-key case by joining on a 64-bit
//! combined row hash and verifying true key equality on the expanded pairs
//! (collision-safe). Inner/left/semi/anti all derive from the pair lists;
//! residual predicates (Q13's `NOT LIKE`, Q21's `<>` correlations) are
//! evaluated over the gathered pair batch.

use std::collections::HashMap;

use tqp_ir::physical::JoinStrategy;
use tqp_ir::plan::JoinType;
use tqp_ml::ModelRegistry;
use tqp_tensor::hash::{self, FlatRowTable};
use tqp_tensor::index::{
    arange, exclusive_cumsum, mask_to_indices, repeat_interleave, searchsorted, take, Side,
};
use tqp_tensor::ops::{self, BinOp as TB};
use tqp_tensor::sort::{argsort, Order};
use tqp_tensor::{DType, Tensor};

use crate::batch::Batch;
use crate::expr::{hash_rows, keys_equal};
use crate::exprprog::{self, ExprProgram};

/// Execute a join between two batches (single-threaded entry point; the
/// program VM calls the build/probe halves directly).
#[allow(clippy::too_many_arguments)]
pub fn join(
    left: &Batch,
    right: &Batch,
    join_type: JoinType,
    strategy: JoinStrategy,
    on: &[(usize, usize)],
    residual: Option<&ExprProgram>,
    models: &ModelRegistry,
) -> Batch {
    match strategy {
        JoinStrategy::SortMerge => sort_merge_join(left, right, join_type, on, residual, models),
        JoinStrategy::Hash => {
            let keys: Vec<usize> = on.iter().map(|&(_, r)| r).collect();
            let table = build_table(right, &keys);
            probe_table(&table, left, right, join_type, on, residual, models, 1)
        }
    }
}

/// The tensor-native sort-merge join: one fused pairs+assembly op.
pub fn sort_merge_join(
    left: &Batch,
    right: &Batch,
    join_type: JoinType,
    on: &[(usize, usize)],
    residual: Option<&ExprProgram>,
    models: &ModelRegistry,
) -> Batch {
    assert!(!on.is_empty(), "tensor joins require at least one equi key");
    let lkeys: Vec<&Tensor> = on.iter().map(|&(l, _)| &left.columns[l]).collect();
    let rkeys: Vec<&Tensor> = on.iter().map(|&(_, r)| &right.columns[r]).collect();
    // Reduce to one I64 key column; hashed keys require verification.
    let (lkey, rkey, need_verify) = make_keys(&lkeys, &rkeys);
    let (left_idx, right_idx) = smj_pairs(&lkey, &rkey);
    finish_join(
        left,
        right,
        join_type,
        left_idx,
        right_idx,
        need_verify,
        &lkeys,
        &rkeys,
        residual,
        models,
    )
}

/// The build side of a hash join (the program's `HashBuild` op): a
/// row-index table over the build (right) input's key columns. Multi-key
/// and non-integer keys are reduced to a 64-bit row hash; the probe then
/// verifies true key equality on the expanded pairs (collision-safe).
///
/// Large builds construct **radix-partitioned**: `2^bits` disjoint tables,
/// each owning the keys whose mixed high bits select it, built by
/// independent workers. Each worker scans the key vector in row order and
/// keeps only its own partition, so every key's row-index bucket is filled
/// in ascending row order — **exactly** the bucket a sequential build
/// produces. Probe output is therefore identical whatever the partition
/// count, which is why it may follow the worker knob freely.
pub struct JoinTable {
    /// One table when built sequentially, `2^bits` radix partitions
    /// otherwise.
    parts: Parts,
    /// log2 of the partition count (0 = unpartitioned).
    bits: u32,
    /// True when keys were hashed (probe must verify equality).
    hashed: bool,
}

/// The two interchangeable build-table representations (see module docs).
enum Parts {
    /// Legacy collision-chain maps — the differential oracle.
    Map(Vec<HashMap<i64, Vec<u32>, FxBuild>>),
    /// Flat arena tables over a precomputed blockwise hash column.
    Flat(Vec<FlatRowTable>),
}

/// Fibonacci-mix the key and keep the top `bits` bits: cheap, and robust to
/// the low-bit regularity of surrogate keys (sequential ints, strided ids).
#[inline]
fn radix_of(k: i64, bits: u32) -> usize {
    (((k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> (64 - bits)) as usize
}

impl JoinTable {
    /// Number of distinct build keys.
    pub fn len(&self) -> usize {
        match &self.parts {
            Parts::Map(ms) => ms.iter().map(|m| m.len()).sum(),
            Parts::Flat(ts) => ts.iter().map(|t| t.len()).sum(),
        }
    }

    /// True when no build rows were inserted.
    pub fn is_empty(&self) -> bool {
        match &self.parts {
            Parts::Map(ms) => ms.iter().all(|m| m.is_empty()),
            Parts::Flat(ts) => ts.iter().all(|t| t.is_empty()),
        }
    }

    /// True when this table uses the flat arena representation.
    pub fn is_flat(&self) -> bool {
        matches!(self.parts, Parts::Flat(_))
    }
}

/// Build the hash table over `keys` of the build-side batch, sequentially,
/// on the default (flat) path.
pub fn build_table(build: &Batch, keys: &[usize]) -> JoinTable {
    build_table_par(build, keys, 1, true, None)
}

/// Minimum build rows before the radix-partitioned parallel build pays for
/// its extra per-worker key scans.
const PAR_BUILD_MIN_ROWS: usize = 32 * 1024;

/// Maximum radix bits (16 partitions): beyond this the redundant key scans
/// per worker outweigh insert parallelism.
const MAX_RADIX_BITS: u32 = 4;

/// Build the hash table, radix-partitioned across up to `workers` threads
/// when the build side is large enough. The table's *content* is identical
/// to [`build_table`] at any worker count (see [`JoinTable`]).
///
/// `flat` selects the representation (flat arena vs legacy map oracle);
/// `distinct` is an optional distinct-key estimate (the catalog's KMV
/// sketch, threaded through the plan) used to size the flat directory —
/// without it the directory assumes all-distinct keys, the same
/// over-allocation the map path used to bake in as `rows * 2`.
pub fn build_table_par(
    build: &Batch,
    keys: &[usize],
    workers: usize,
    flat: bool,
    distinct: Option<u64>,
) -> JoinTable {
    assert!(
        !keys.is_empty(),
        "tensor joins require at least one equi key"
    );
    let rkeys: Vec<&Tensor> = keys.iter().map(|&k| &build.columns[k]).collect();
    let hashed =
        !(rkeys.len() == 1 && rkeys[0].dtype() == DType::I64 && rkeys[0].shape().len() == 1);
    if flat {
        return build_flat(&rkeys, hashed, workers, distinct);
    }
    let rkey = if hashed {
        hash_rows(&rkeys)
    } else {
        rkeys[0].clone()
    };
    let rk = rkey.as_i64();

    if workers <= 1 || rk.len() < PAR_BUILD_MIN_ROWS {
        let mut map: HashMap<i64, Vec<u32>, FxBuild> =
            HashMap::with_capacity_and_hasher(rk.len(), FxBuild);
        for (i, &k) in rk.iter().enumerate() {
            map.entry(k).or_default().push(i as u32);
        }
        return JoinTable {
            parts: Parts::Map(vec![map]),
            bits: 0,
            hashed,
        };
    }

    let bits = (workers.next_power_of_two().trailing_zeros()).clamp(1, MAX_RADIX_BITS);
    let p = 1usize << bits;
    let n = rk.len();

    // Phase 1 — one scan total: each worker bins a contiguous row range
    // into per-partition (key, row) vectors, in row order.
    let threads = workers.min(n);
    let chunk = n.div_ceil(threads);
    /// One (key, row) vector per radix partition, per phase-1 worker.
    type RadixBins = Vec<Vec<(i64, u32)>>;
    let rk_ref = &rk;
    let bins: Vec<RadixBins> = crate::sched::map_tasks(threads, workers, |t| {
        // Partition boundary: deadline/cancellation check per build task.
        crate::sched::check_cancelled();
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        let mut local: Vec<Vec<(i64, u32)>> = vec![Vec::new(); p];
        for (i, &k) in rk_ref[lo..hi].iter().enumerate() {
            local[radix_of(k, bits)].push((k, (lo + i) as u32));
        }
        local
    });

    // Phase 2 — one map per partition, draining the workers' bins in
    // worker order. Worker ranges are contiguous and ascending, so each
    // key's bucket fills in exactly the sequential build's row order.
    let bins_ref = &bins;
    let parts: Vec<HashMap<i64, Vec<u32>, FxBuild>> = crate::sched::map_tasks(p, workers, |pi| {
        let cap: usize = bins_ref.iter().map(|b| b[pi].len()).sum();
        let mut map: HashMap<i64, Vec<u32>, FxBuild> =
            HashMap::with_capacity_and_hasher(cap, FxBuild);
        for b in bins_ref {
            for &(k, i) in &b[pi] {
                map.entry(k).or_default().push(i);
            }
        }
        map
    });
    JoinTable {
        parts: Parts::Map(parts),
        bits,
        hashed,
    }
}

/// Reduce key columns to one `(keys, hashes)` pair for the flat path,
/// hashing the side exactly once, blockwise. Single bare-I64 keys stay raw
/// (probe compares true values); everything else joins on the combined row
/// hash and verifies equality on the expanded pairs.
fn flat_keys(cols: &[&Tensor], hashed: bool) -> (Vec<i64>, Vec<u64>) {
    if hashed {
        let h = hash::hash_columns(cols);
        let k = h.iter().map(|&x| x as i64).collect();
        (k, h)
    } else {
        let k = cols[0].as_i64().to_vec();
        let h = hash::hash_i64(&k);
        (k, h)
    }
}

/// The flat-arena build: hash once, then counting-pass table construction
/// (sequential, or radix-partitioned on the hash's top bits — the same
/// partition a mixed single-I64 key selects under [`radix_of`], since
/// `mix64` leaves the top 32 bits of the Fibonacci product unchanged).
fn build_flat(rkeys: &[&Tensor], hashed: bool, workers: usize, distinct: Option<u64>) -> JoinTable {
    let (kvec, hvec) = flat_keys(rkeys, hashed);
    let n = kvec.len();

    if workers <= 1 || n < PAR_BUILD_MIN_ROWS {
        return JoinTable {
            parts: Parts::Flat(vec![FlatRowTable::build(&kvec, &hvec, distinct)]),
            bits: 0,
            hashed,
        };
    }

    let bits = (workers.next_power_of_two().trailing_zeros()).clamp(1, MAX_RADIX_BITS);
    let p = 1usize << bits;

    // Phase 1 — contiguous worker ranges bin (key, row, hash) triples per
    // partition, in row order (same shape as the map path's phase 1, plus
    // the hash so partitions never re-hash).
    let threads = workers.min(n);
    let chunk = n.div_ceil(threads);
    /// Per-partition (keys, rows, hashes) columns, per phase-1 worker.
    type FlatBins = Vec<(Vec<i64>, Vec<u32>, Vec<u64>)>;
    let (kref, href) = (&kvec, &hvec);
    let bins: Vec<FlatBins> = crate::sched::map_tasks(threads, workers, |t| {
        // Partition boundary: deadline/cancellation check per build task.
        crate::sched::check_cancelled();
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        let mut local: FlatBins = vec![(Vec::new(), Vec::new(), Vec::new()); p];
        for i in lo..hi {
            let pi = (href[i] >> (64 - bits)) as usize;
            local[pi].0.push(kref[i]);
            local[pi].1.push(i as u32);
            local[pi].2.push(href[i]);
        }
        local
    });

    // Phase 2 — one flat table per partition over the workers' bins in
    // worker order; ranges are contiguous and ascending, so every bucket
    // fills in ascending global row order. The distinct estimate splits
    // evenly across partitions (the mixed top bits spread keys uniformly).
    let part_hint = distinct.map(|d| (d >> bits).max(1));
    let bins_ref = &bins;
    let parts: Vec<FlatRowTable> = crate::sched::map_tasks(p, workers, |pi| {
        let cap: usize = bins_ref.iter().map(|b| b[pi].0.len()).sum();
        let mut ks = Vec::with_capacity(cap);
        let mut rs = Vec::with_capacity(cap);
        let mut hs = Vec::with_capacity(cap);
        for b in bins_ref {
            ks.extend_from_slice(&b[pi].0);
            rs.extend_from_slice(&b[pi].1);
            hs.extend_from_slice(&b[pi].2);
        }
        FlatRowTable::build_with_rows(&ks, &rs, &hs, part_hint)
    });
    JoinTable {
        parts: Parts::Flat(parts),
        bits,
        hashed,
    }
}

/// Probe a [`JoinTable`] with the left side's keys and assemble the join
/// output (the program's `HashProbe` op). With `workers > 1` the probe
/// loop runs partition-parallel over contiguous chunks of the probe side;
/// chunk results are concatenated in order, so the output is identical to
/// the single-threaded probe.
#[allow(clippy::too_many_arguments)]
pub fn probe_table(
    table: &JoinTable,
    left: &Batch,
    right: &Batch,
    join_type: JoinType,
    on: &[(usize, usize)],
    residual: Option<&ExprProgram>,
    models: &ModelRegistry,
    workers: usize,
) -> Batch {
    assert!(!on.is_empty(), "tensor joins require at least one equi key");
    let lkeys: Vec<&Tensor> = on.iter().map(|&(l, _)| &left.columns[l]).collect();
    let rkeys: Vec<&Tensor> = on.iter().map(|&(_, r)| &right.columns[r]).collect();
    if !table.hashed {
        assert!(
            lkeys.len() == 1 && lkeys[0].dtype() == DType::I64,
            "probe keys must match build keys (plan bug)"
        );
    }
    let (left_idx, right_idx) = match &table.parts {
        Parts::Map(maps) => {
            let lkey = if table.hashed {
                hash_rows(&lkeys)
            } else {
                lkeys[0].clone()
            };
            probe_pairs_map(maps, table.bits, lkey.as_i64(), workers)
        }
        Parts::Flat(parts) => {
            // Hash the probe side exactly once, blockwise.
            let (lk, lh) = flat_keys(&lkeys, table.hashed);
            probe_pairs_flat(parts, table.bits, &lk, &lh, workers)
        }
    };
    finish_join(
        left,
        right,
        join_type,
        left_idx,
        right_idx,
        table.hashed,
        &lkeys,
        &rkeys,
        residual,
        models,
    )
}

/// Pair verification + residual filtering + join-type assembly, shared by
/// both join algorithms.
#[allow(clippy::too_many_arguments)]
fn finish_join(
    left: &Batch,
    right: &Batch,
    join_type: JoinType,
    mut left_idx: Tensor,
    mut right_idx: Tensor,
    need_verify: bool,
    lkeys: &[&Tensor],
    rkeys: &[&Tensor],
    residual: Option<&ExprProgram>,
    models: &ModelRegistry,
) -> Batch {
    // Verification + residual masking over the expanded pairs.
    let mut mask: Option<Tensor> = None;
    if need_verify {
        let lg: Vec<Tensor> = lkeys.iter().map(|k| take(k, &left_idx)).collect();
        let rg: Vec<Tensor> = rkeys.iter().map(|k| take(k, &right_idx)).collect();
        mask = Some(keys_equal(&lg, &rg));
    }
    if let Some(res) = residual {
        let pair_batch = left.take(&left_idx).hcat(right.take(&right_idx));
        let m = exprprog::eval_mask(res, &pair_batch, models);
        mask = Some(match mask {
            Some(prev) => ops::and(&prev, &m),
            None => m,
        });
    }
    if let Some(m) = mask {
        let keep = mask_to_indices(&m);
        left_idx = take(&left_idx, &keep);
        right_idx = take(&right_idx, &keep);
    }

    match join_type {
        JoinType::Inner => left.take(&left_idx).hcat(right.take(&right_idx)),
        JoinType::Semi | JoinType::Anti => {
            let matched = matched_mask(left.nrows(), &left_idx);
            let want = if join_type == JoinType::Semi {
                matched
            } else {
                ops::not(&matched)
            };
            left.take(&mask_to_indices(&want))
        }
        JoinType::Left => {
            let matched = matched_mask(left.nrows(), &left_idx);
            let unmatched = mask_to_indices(&ops::not(&matched));
            let matched_out = left.take(&left_idx).hcat(right.take(&right_idx));
            let null_right = null_batch(right, unmatched.nrows());
            let unmatched_out = left.take(&unmatched).hcat(null_right);
            vcat(matched_out, unmatched_out)
        }
    }
}

/// Cartesian product (only reached for single-row scalar-subquery sides).
pub fn cross_join(left: &Batch, right: &Batch) -> Batch {
    let (ln, rn) = (left.nrows(), right.nrows());
    let left_idx = repeat_interleave(&Tensor::from_i64(vec![rn as i64; ln]));
    let mut ridx = Vec::with_capacity(ln * rn);
    for _ in 0..ln {
        for j in 0..rn as i64 {
            ridx.push(j);
        }
    }
    left.take(&left_idx)
        .hcat(right.take(&Tensor::from_i64(ridx)))
}

/// Build single-I64 key tensors from (possibly multi-column, possibly
/// non-integer) key sets. Returns `(lkey, rkey, needs_verification)`.
fn make_keys(lkeys: &[&Tensor], rkeys: &[&Tensor]) -> (Tensor, Tensor, bool) {
    if lkeys.len() == 1
        && lkeys[0].dtype() == DType::I64
        && rkeys[0].dtype() == DType::I64
        && lkeys[0].shape().len() == 1
    {
        return (lkeys[0].clone(), rkeys[0].clone(), false);
    }
    (hash_rows(lkeys), hash_rows(rkeys), true)
}

/// Sort-merge pair expansion.
fn smj_pairs(lkey: &Tensor, rkey: &Tensor) -> (Tensor, Tensor) {
    if lkey.is_empty() || rkey.is_empty() {
        return (Tensor::from_i64(vec![]), Tensor::from_i64(vec![]));
    }
    let perm_r = argsort(rkey, Order::Asc);
    let sorted = take(rkey, &perm_r);
    let lo = searchsorted(&sorted, lkey, Side::Left);
    let hi = searchsorted(&sorted, lkey, Side::Right);
    let counts = ops::binary(TB::Sub, &hi, &lo);
    let total: i64 = counts.as_i64().iter().sum();
    if total == 0 {
        return (Tensor::from_i64(vec![]), Tensor::from_i64(vec![]));
    }
    let left_idx = repeat_interleave(&counts);
    let offsets = exclusive_cumsum(&counts);
    let k = arange(0, total);
    let within = ops::binary(TB::Sub, &k, &take(&offsets, &left_idx));
    let right_sorted_pos = ops::binary(TB::Add, &take(&lo, &left_idx), &within);
    let right_idx = take(&perm_r, &right_sorted_pos);
    (left_idx, right_idx)
}

/// Minimum probe rows per worker before chunking pays for itself.
const PAR_PROBE_THRESHOLD: usize = 16 * 1024;

/// Shared probe-chunking harness: pairs are emitted in probe-row order;
/// parallel chunks concatenate in order, keeping the output bit-identical
/// to a sequential probe. `chunk_fn(lo, hi)` expands probe rows
/// `[lo, hi)` into absolute pair lists.
fn collect_pairs(
    n: usize,
    workers: usize,
    chunk_fn: &(dyn Fn(usize, usize) -> (Vec<i64>, Vec<i64>) + Sync),
) -> (Tensor, Tensor) {
    if workers <= 1 || n < PAR_PROBE_THRESHOLD * 2 {
        let (li, ri) = chunk_fn(0, n);
        return (Tensor::from_i64(li), Tensor::from_i64(ri));
    }

    let n_chunks = workers.min(n / PAR_PROBE_THRESHOLD).max(1);
    let chunk_len = n.div_ceil(n_chunks);
    let partials: Vec<(Vec<i64>, Vec<i64>)> = crate::sched::map_tasks(n_chunks, workers, |c| {
        // Probe-chunk boundary: deadline/cancellation check per chunk.
        crate::sched::check_cancelled();
        chunk_fn(c * chunk_len, ((c + 1) * chunk_len).min(n))
    });
    let total: usize = partials.iter().map(|p| p.0.len()).sum();
    let mut li = Vec::with_capacity(total);
    let mut ri = Vec::with_capacity(total);
    for part in partials {
        li.extend(part.0);
        ri.extend(part.1);
    }
    (Tensor::from_i64(li), Tensor::from_i64(ri))
}

/// Probe-side pair expansion over a legacy map table.
fn probe_pairs_map(
    maps: &[HashMap<i64, Vec<u32>, FxBuild>],
    bits: u32,
    lk: &[i64],
    workers: usize,
) -> (Tensor, Tensor) {
    let get = |k: i64| -> Option<&Vec<u32>> {
        let p = if bits == 0 { 0 } else { radix_of(k, bits) };
        maps[p].get(&k)
    };
    collect_pairs(lk.len(), workers, &|lo, hi| {
        // Pre-size from build-bucket cardinality: one counting pass over
        // the buckets, then exact-capacity fills — no growth reallocations
        // in the inner expansion loop.
        let chunk = &lk[lo..hi];
        let total: usize = chunk.iter().map(|&k| get(k).map_or(0, |m| m.len())).sum();
        let mut li = Vec::with_capacity(total);
        let mut ri = Vec::with_capacity(total);
        for (i, &k) in chunk.iter().enumerate() {
            if let Some(matches) = get(k) {
                for &j in matches {
                    li.push((lo + i) as i64);
                    ri.push(j as i64);
                }
            }
        }
        (li, ri)
    })
}

/// Probe rows per two-phase block. The range pass is a tight loop of
/// independent directory lookups, so its cache misses overlap instead of
/// serializing behind the key-compare chain; the scan pass then walks
/// bucket runs whose `starts` lines are already hot. (A whole-chunk count
/// pass and a fused lookup+scan loop both measured slower: the former
/// pays two cold directory sweeps, the latter one dependent-load chain
/// per row.)
const PROBE_BLOCK_ROWS: usize = 1024;

/// Probe-side pair expansion over flat arena tables: partition by the
/// hash's top bits, bucket by its masked low bits, then per
/// [`PROBE_BLOCK_ROWS`] block gather every row's bucket `[start, end)`
/// range into a stack array before scanning the contiguous key runs and
/// emitting pairs.
fn probe_pairs_flat(
    parts: &[FlatRowTable],
    bits: u32,
    lk: &[i64],
    lh: &[u64],
    workers: usize,
) -> (Tensor, Tensor) {
    let part_of = |h: u64| -> usize {
        if bits == 0 {
            0
        } else {
            (h >> (64 - bits)) as usize
        }
    };
    collect_pairs(lk.len(), workers, &|lo, hi| {
        // At least one pair per probe row is the common inner-join case;
        // reserve for it up front, let rare high-fanout blocks grow.
        let mut li = Vec::with_capacity(hi - lo);
        let mut ri = Vec::with_capacity(hi - lo);
        let mut ranges = [(0u32, 0u32, 0u32); PROBE_BLOCK_ROWS];
        let mut b = lo;
        while b < hi {
            let e = (b + PROBE_BLOCK_ROWS).min(hi);
            for (slot, i) in (b..e).enumerate() {
                let p = part_of(lh[i]);
                let (s, t) = parts[p].bucket_range(lh[i]);
                ranges[slot] = (p as u32, s, t);
            }
            for (slot, i) in (b..e).enumerate() {
                let (p, s, t) = ranges[slot];
                let (bkeys, brows) = parts[p as usize].entries(s, t);
                let k = lk[i];
                for (bk, &r) in bkeys.iter().zip(brows) {
                    if *bk == k {
                        li.push(i as i64);
                        ri.push(r as i64);
                    }
                }
            }
            b = e;
        }
        (li, ri)
    })
}

/// `matched[i] = true` iff left row i appears in the pair list.
fn matched_mask(n: usize, left_idx: &Tensor) -> Tensor {
    let mut mask = vec![false; n];
    for &i in left_idx.as_i64() {
        mask[i as usize] = true;
    }
    Tensor::from_bool(mask)
}

/// An all-NULL batch shaped like `proto` with `n` rows.
fn null_batch(proto: &Batch, n: usize) -> Batch {
    let columns: Vec<Tensor> = proto
        .columns
        .iter()
        .map(|c| {
            if c.shape().len() == 2 {
                Tensor::from_u8_matrix(vec![0; n * c.row_width()], n, c.row_width())
            } else {
                Tensor::zeros(c.dtype(), n)
            }
        })
        .collect();
    let validity = vec![Some(Tensor::from_bool(vec![false; n])); proto.ncols()];
    Batch::with_validity(columns, validity)
}

/// Vertical concatenation of two batches (validity-aware).
fn vcat(a: Batch, b: Batch) -> Batch {
    Batch::vcat(a, b)
}

/// FxHash (the rustc hasher): tiny and fast for integer keys.
#[derive(Clone, Copy, Default)]
pub struct FxBuild;

impl std::hash::BuildHasher for FxBuild {
    type Hasher = FxHasher;
    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

/// See [`FxBuild`].
pub struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(cols: Vec<Tensor>) -> Batch {
        Batch::new(cols)
    }

    fn left() -> Batch {
        b(vec![
            Tensor::from_i64(vec![1, 2, 3, 4]),
            Tensor::from_f64(vec![10.0, 20.0, 30.0, 40.0]),
        ])
    }

    fn right() -> Batch {
        b(vec![
            Tensor::from_i64(vec![2, 3, 3, 9]),
            Tensor::from_strings(&["x", "y", "z", "w"], 0),
        ])
    }

    fn run(jt: JoinType, strat: JoinStrategy) -> Batch {
        join(
            &left(),
            &right(),
            jt,
            strat,
            &[(0, 0)],
            None,
            &ModelRegistry::new(),
        )
    }

    fn sorted_i64(t: &Tensor) -> Vec<i64> {
        let mut v = t.to_i64_vec();
        v.sort_unstable();
        v
    }

    #[test]
    fn inner_join_both_strategies_agree() {
        for strat in [JoinStrategy::SortMerge, JoinStrategy::Hash] {
            let out = run(JoinType::Inner, strat);
            assert_eq!(out.nrows(), 3, "{strat:?}");
            assert_eq!(sorted_i64(&out.columns[0]), vec![2, 3, 3]);
            assert_eq!(out.ncols(), 4);
        }
    }

    #[test]
    fn semi_and_anti() {
        for strat in [JoinStrategy::SortMerge, JoinStrategy::Hash] {
            let semi = run(JoinType::Semi, strat);
            assert_eq!(sorted_i64(&semi.columns[0]), vec![2, 3]);
            let anti = run(JoinType::Anti, strat);
            assert_eq!(sorted_i64(&anti.columns[0]), vec![1, 4]);
        }
    }

    #[test]
    fn left_join_null_extends() {
        let out = run(JoinType::Left, JoinStrategy::SortMerge);
        assert_eq!(out.nrows(), 5); // 3 matches + 2 unmatched
        let validity = out.validity[2].as_ref().expect("right side nullable");
        let invalid = validity.as_bool().iter().filter(|&&v| !v).count();
        assert_eq!(invalid, 2);
    }

    #[test]
    fn residual_filters_pairs() {
        use tqp_data::LogicalType;
        use tqp_ir::expr::{BinOp, BoundExpr as E};
        // Join where right string column != "y".
        let res = crate::exprprog::compile_expr(&E::Binary {
            op: BinOp::NotEq,
            left: Box::new(E::col(3, LogicalType::Str)),
            right: Box::new(E::lit_str("y")),
            ty: LogicalType::Bool,
        });
        let out = join(
            &left(),
            &right(),
            JoinType::Inner,
            JoinStrategy::SortMerge,
            &[(0, 0)],
            Some(&res),
            &ModelRegistry::new(),
        );
        assert_eq!(out.nrows(), 2); // (2,x) and (3,z); (3,y) filtered
    }

    #[test]
    fn multi_key_hash_verified() {
        let l = b(vec![
            Tensor::from_i64(vec![1, 1, 2]),
            Tensor::from_i64(vec![10, 20, 10]),
        ]);
        let r = b(vec![
            Tensor::from_i64(vec![1, 2]),
            Tensor::from_i64(vec![10, 10]),
        ]);
        for strat in [JoinStrategy::SortMerge, JoinStrategy::Hash] {
            let out = join(
                &l,
                &r,
                JoinType::Inner,
                strat,
                &[(0, 0), (1, 1)],
                None,
                &ModelRegistry::new(),
            );
            assert_eq!(out.nrows(), 2, "{strat:?}"); // (1,10) and (2,10)
        }
    }

    #[test]
    fn empty_sides() {
        let empty = b(vec![Tensor::from_i64(vec![]), Tensor::from_f64(vec![])]);
        let out = join(
            &empty,
            &right(),
            JoinType::Inner,
            JoinStrategy::SortMerge,
            &[(0, 0)],
            None,
            &ModelRegistry::new(),
        );
        assert_eq!(out.nrows(), 0);
        let out = join(
            &left(),
            &empty,
            JoinType::Anti,
            JoinStrategy::SortMerge,
            &[(0, 0)],
            None,
            &ModelRegistry::new(),
        );
        assert_eq!(out.nrows(), 4); // nothing matches → all survive anti
    }

    #[test]
    fn cross_join_product() {
        let l = b(vec![Tensor::from_i64(vec![1, 2])]);
        let r = b(vec![Tensor::from_f64(vec![0.5])]);
        let out = cross_join(&l, &r);
        assert_eq!(out.nrows(), 2);
        assert_eq!(out.columns[1].as_f64(), &[0.5, 0.5]);
    }

    /// Parallel radix-partitioned build must produce byte-identical probe
    /// output to the sequential build, at any worker count.
    #[test]
    fn parallel_build_identical_probe_output() {
        let n = PAR_BUILD_MIN_ROWS + 1357;
        // Duplicate-heavy keys so per-key buckets have >1 row (bucket row
        // order is the property under test).
        let bkeys: Vec<i64> = (0..n as i64).map(|i| i % 4096).collect();
        let bvals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let build = b(vec![Tensor::from_i64(bkeys), Tensor::from_f64(bvals)]);
        let probe = b(vec![Tensor::from_i64(
            (0..8192i64).map(|i| i * 3 % 5000).collect(),
        )]);
        let models = ModelRegistry::new();
        // Golden output: sequential legacy-map build.
        let seq_table = build_table_par(&build, &[0], 1, false, None);
        let seq = probe_table(
            &seq_table,
            &probe,
            &build,
            JoinType::Inner,
            &[(0, 0)],
            None,
            &models,
            1,
        );
        // Every representation × worker count must reproduce it bitwise.
        for flat in [false, true] {
            for workers in [1, 2, 4, 8] {
                let par_table = build_table_par(&build, &[0], workers, flat, None);
                assert_eq!(par_table.len(), seq_table.len());
                assert_eq!(par_table.is_empty(), seq_table.is_empty());
                assert_eq!(par_table.is_flat(), flat);
                let par = probe_table(
                    &par_table,
                    &probe,
                    &build,
                    JoinType::Inner,
                    &[(0, 0)],
                    None,
                    &models,
                    workers,
                );
                assert_eq!(seq.nrows(), par.nrows(), "flat={flat} workers={workers}");
                for c in 0..seq.ncols() {
                    match seq.columns[c].dtype() {
                        DType::F64 => assert_eq!(seq.columns[c].as_f64(), par.columns[c].as_f64()),
                        _ => assert_eq!(seq.columns[c].as_i64(), par.columns[c].as_i64()),
                    }
                }
            }
        }
    }

    /// Hashed (multi-key) builds partition on the row hash; the probe must
    /// still verify and return the same pairs.
    #[test]
    fn parallel_build_hashed_keys_verified() {
        let n = PAR_BUILD_MIN_ROWS + 64;
        let k1: Vec<i64> = (0..n as i64).map(|i| i % 100).collect();
        let k2: Vec<i64> = (0..n as i64).map(|i| i % 7).collect();
        let build = b(vec![Tensor::from_i64(k1), Tensor::from_i64(k2)]);
        let probe = b(vec![
            Tensor::from_i64((0..500i64).collect()),
            Tensor::from_i64((0..500i64).map(|i| i % 7).collect()),
        ]);
        let models = ModelRegistry::new();
        let on = [(0usize, 0usize), (1usize, 1usize)];
        let seq = probe_table(
            &build_table_par(&build, &[0, 1], 1, false, None),
            &probe,
            &build,
            JoinType::Inner,
            &on,
            None,
            &models,
            1,
        );
        for flat in [false, true] {
            let par = probe_table(
                &build_table_par(&build, &[0, 1], 4, flat, None),
                &probe,
                &build,
                JoinType::Inner,
                &on,
                None,
                &models,
                4,
            );
            assert_eq!(seq.nrows(), par.nrows(), "flat={flat}");
            for c in 0..seq.ncols() {
                assert_eq!(seq.columns[c].as_i64(), par.columns[c].as_i64(), "col {c}");
            }
        }
    }

    /// The distinct hint only sizes the flat directory; wildly wrong hints
    /// must not change the join output.
    #[test]
    fn distinct_hint_is_output_invariant() {
        let build = b(vec![
            Tensor::from_i64((0..5000i64).map(|i| i % 37).collect()),
            Tensor::from_f64((0..5000).map(|i| i as f64).collect()),
        ]);
        let probe = b(vec![Tensor::from_i64((0..100i64).collect())]);
        let models = ModelRegistry::new();
        let golden = probe_table(
            &build_table_par(&build, &[0], 1, true, None),
            &probe,
            &build,
            JoinType::Inner,
            &[(0, 0)],
            None,
            &models,
            1,
        );
        for hint in [Some(1u64), Some(37), Some(1 << 40)] {
            let t = build_table_par(&build, &[0], 1, true, hint);
            assert_eq!(t.len(), 37);
            let out = probe_table(
                &t,
                &probe,
                &build,
                JoinType::Inner,
                &[(0, 0)],
                None,
                &models,
                1,
            );
            assert_eq!(out.nrows(), golden.nrows(), "hint={hint:?}");
            assert_eq!(out.columns[0].as_i64(), golden.columns[0].as_i64());
            assert_eq!(out.columns[1].as_i64(), golden.columns[1].as_i64());
            assert_eq!(out.columns[2].as_f64(), golden.columns[2].as_f64());
        }
    }

    #[test]
    fn string_keys_join_via_hash_path() {
        let l = b(vec![Tensor::from_strings(&["a", "b", "c"], 0)]);
        let r = b(vec![Tensor::from_strings(&["b", "c", "d"], 0)]);
        let out = join(
            &l,
            &r,
            JoinType::Semi,
            JoinStrategy::SortMerge,
            &[(0, 0)],
            None,
            &ModelRegistry::new(),
        );
        assert_eq!(out.nrows(), 2);
    }
}

//! **The kernel-specialization layer**: lowering [`ExprProgram`]s onto the
//! fused, type-monomorphized kernels in [`tqp_tensor::kernels`].
//!
//! This sits between expression lowering and execution. When a compiled
//! expression program matches the fusible shapes — conjunct chains of
//! `CompareConst`/`InList`/`IsNull`/`Like` producing one filter mask,
//! arithmetic chains like `l_extendedprice * (1 - l_discount) * (1 + l_tax)`,
//! `Coerce`+`Binary` aggregate-input pipelines — [`try_fuse`] compiles it
//! into a [`FusedKernel`] whose execution is a single chunked pass with no
//! intermediate register tensors (see the `kernels` module docs for the
//! loop shape). Programs containing `CASE`, scalar functions, `PREDICT`,
//! NULL constants, or string-typed intermediate registers fall back to the
//! generic executor — **silently and per call site**, so fusion is purely
//! an optimization and never a correctness surface.
//!
//! **The fingerprint cache.** Compiled kernels are cached process-wide,
//! keyed by the program's *shape fingerprint*: a hash over every
//! structural feature (op kinds, registers, comparison operators, types,
//! negation flags, output list) that **masks constant values**. A prepared
//! statement re-bound to new parameter values therefore hits the same
//! cache entry — the kernel skeleton is reused and only the per-execution
//! [`ConstPool`] is re-extracted from the live (bound) program, which is a
//! few scalar copies. Unfusible shapes are negatively cached so the bail
//! decision is also paid once. Collisions are handled exactly: entries
//! store their canonical shape bytes and compare them on lookup.
//!
//! **Why the oracle paths stay.** The tree interpreter (`crate::expr`),
//! the unfused compiled path (`fuse_exprs: false`), and the Wasm scalar
//! walk survive unchanged as differential oracles: every fused inner loop
//! must reproduce their results *bitwise* (the proptest suite and the
//! differential fuzzer pin this), which is what makes an aggressive fused
//! fast path safe to evolve.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use tqp_data::LogicalType;
use tqp_ir::expr::BinOp;
use tqp_ml::ModelRegistry;
use tqp_tensor::kernels::{
    ColInput, ConstPool, FusedKernel, KConjunct, KOp, KOut, KOutValue, KSrc,
};
use tqp_tensor::ops::{self, BinOp as TB};
use tqp_tensor::{DType, Scalar, Tensor};

use crate::batch::Batch;
use crate::expr::{to_cmp, Evaled};
use crate::exprprog::{self, EReg, ExprOp, ExprProgram};

// ---------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------

static OPS_FUSED: AtomicU64 = AtomicU64::new(0);
static KERNELS_HIT: AtomicU64 = AtomicU64::new(0);

/// Process-wide fusion counters (monotonic; snapshot via [`stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExprStats {
    /// Expression ops covered by a fused kernel at specialization time
    /// (counted once per unique program shape).
    pub ops_fused: u64,
    /// Executions served by a cached fused kernel.
    pub kernels_hit: u64,
}

/// Snapshot the fusion counters.
pub fn stats() -> ExprStats {
    ExprStats {
        ops_fused: OPS_FUSED.load(Ordering::Relaxed),
        kernels_hit: KERNELS_HIT.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------

/// Evaluate all conjuncts of a filter program into one AND-folded mask
/// (validity folded in: NULL = drop). Takes the fused kernel when the
/// program specializes and `fuse` is on; otherwise the generic
/// [`exprprog::eval_conjuncts_eager`]. Results are bitwise identical
/// either way.
pub fn conjunct_mask(
    prog: &ExprProgram,
    batch: &Batch,
    models: &ModelRegistry,
    fuse: bool,
) -> Tensor {
    if fuse {
        if let Some(mask) = fused_mask(prog, batch) {
            return mask;
        }
    }
    exprprog::eval_conjuncts_eager(prog, batch, models)
}

/// Fused-only variant of [`conjunct_mask`]: `Some` iff the program
/// specializes (bitwise-identical to the generic fold). `None` lets the
/// caller pick its own fallback (the Fused backend's adaptive
/// selection-vector stepping rather than the eager fold).
pub fn try_conjunct_mask(
    prog: &ExprProgram,
    batch: &Batch,
    _models: &ModelRegistry,
) -> Option<Tensor> {
    fused_mask(prog, batch)
}

/// Evaluate every output of a program (projections, aggregate inputs,
/// sort keys). Fused when possible, identical results always.
pub fn eval_all(
    prog: &ExprProgram,
    batch: &Batch,
    models: &ModelRegistry,
    fuse: bool,
) -> Vec<Evaled> {
    if fuse {
        if let Some(outs) = fused_outputs(prog, batch) {
            return outs;
        }
    }
    exprprog::eval_all(prog, batch, models)
}

// ---------------------------------------------------------------------
// Skeletons and the fingerprint cache
// ---------------------------------------------------------------------

/// Evaluation mode a kernel was specialized for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Filter: one AND-folded mask over all outputs.
    Mask,
    /// Projection/agg-input/sort-key: every output materialized.
    Outputs,
}

/// Where to fetch one constant-pool entry from the live program: the op
/// index plus the expected shape. Extraction happens per execution, after
/// parameter binding, so re-binds never recompile.
#[derive(Debug, Clone, Copy)]
enum ConstSpec {
    /// `CompareConst`/`LoadConst` integer → `i64s`.
    I64(usize),
    /// Float (or numeric compared against an f64 register) → `f64s`.
    F64(usize),
    /// Bool constant → `bools`.
    Bool(usize),
    /// String needle of a `CompareConst` → `strs`.
    Str(usize),
    /// All-integer `InList` members → `i64_lists`.
    I64List(usize),
    /// All-numeric `InList` members (f64 register) → `f64_lists`.
    F64List(usize),
    /// All-string `InList` members → `str_lists`.
    StrList(usize),
    /// Pre-compiled LIKE pattern → `likes`.
    Like(usize),
}

/// A compiled kernel plus the batch-binding metadata: which batch columns
/// feed which kernel channels, where constants come from, and which
/// columns' validity each output inherits.
pub struct Skeleton {
    kernel: FusedKernel,
    /// `(batch column, expected dtype)` per kernel column channel.
    cols: Vec<(usize, DType)>,
    /// Batch column per validity channel.
    vchans: Vec<usize>,
    const_specs: Vec<ConstSpec>,
    /// Validity-source batch columns per output (outputs mode).
    out_vcols: Vec<Vec<usize>>,
}

type Shelf = Vec<(Vec<u8>, Option<Arc<Skeleton>>)>;

fn cache() -> &'static RwLock<HashMap<u64, Shelf>> {
    static CACHE: OnceLock<RwLock<HashMap<u64, Shelf>>> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fetch (or compile and cache) the skeleton for a program shape.
/// `None` = the shape is unfusible (negatively cached).
fn skeleton_for(prog: &ExprProgram, mode: Mode) -> Option<Arc<Skeleton>> {
    let shape = shape_bytes(prog, mode);
    let h = fnv(&shape);
    if let Some(shelf) = cache().read().expect("fuse cache poisoned").get(&h) {
        for (bytes, skel) in shelf {
            if bytes == &shape {
                if skel.is_some() {
                    KERNELS_HIT.fetch_add(1, Ordering::Relaxed);
                }
                return skel.clone();
            }
        }
    }
    let compiled = try_fuse(prog, mode).map(Arc::new);
    if compiled.is_some() {
        OPS_FUSED.fetch_add(prog.ops.len() as u64, Ordering::Relaxed);
        KERNELS_HIT.fetch_add(1, Ordering::Relaxed);
    }
    let mut w = cache().write().expect("fuse cache poisoned");
    let shelf = w.entry(h).or_default();
    if !shelf.iter().any(|(b, _)| b == &shape) {
        shelf.push((shape, compiled.clone()));
    }
    compiled
}

/// Canonical shape encoding with constant **values** masked out (kinds,
/// types, operators, registers, and flags all kept): the fingerprint key
/// that lets prepared-statement re-binds share one kernel.
fn shape_bytes(prog: &ExprProgram, mode: Mode) -> Vec<u8> {
    let mut out = Vec::with_capacity(prog.ops.len() * 6 + prog.outputs.len() * 3 + 1);
    let push_reg = |out: &mut Vec<u8>, r: EReg| out.extend_from_slice(&(r as u32).to_le_bytes());
    let ty_byte = |ty: LogicalType| -> u8 {
        match ty {
            LogicalType::Bool => 0,
            LogicalType::Int64 => 1,
            LogicalType::Float64 => 2,
            LogicalType::Str => 3,
            LogicalType::Date => 4,
        }
    };
    let kind_byte = |s: &Scalar| -> u8 {
        match s {
            Scalar::Null => 0,
            Scalar::Bool(_) => 1,
            Scalar::I32(_) => 2,
            Scalar::I64(_) => 3,
            Scalar::F32(_) => 4,
            Scalar::F64(_) => 5,
            Scalar::Str(_) => 6,
        }
    };
    out.push(match mode {
        Mode::Mask => 0xA0,
        Mode::Outputs => 0xA1,
    });
    for op in &prog.ops {
        match op {
            ExprOp::LoadColumn { index, ty } => {
                out.push(1);
                push_reg(&mut out, *index);
                out.push(ty_byte(*ty));
            }
            ExprOp::LoadConst { value, ty } => {
                out.push(2);
                out.push(kind_byte(value));
                out.push(ty_byte(*ty));
            }
            ExprOp::Binary { op, lhs, rhs, ty } => {
                out.push(3);
                out.push(*op as u8);
                push_reg(&mut out, *lhs);
                push_reg(&mut out, *rhs);
                out.push(ty_byte(*ty));
            }
            ExprOp::CompareConst { op, src, value } => {
                out.push(4);
                out.push(*op as u8);
                push_reg(&mut out, *src);
                out.push(kind_byte(value));
            }
            ExprOp::Not { src } => {
                out.push(5);
                push_reg(&mut out, *src);
            }
            ExprOp::Neg { src } => {
                out.push(6);
                push_reg(&mut out, *src);
            }
            ExprOp::Coerce { src, ty } => {
                out.push(7);
                push_reg(&mut out, *src);
                out.push(ty_byte(*ty));
            }
            ExprOp::Select {
                cond,
                on_true,
                on_false,
                ty,
            } => {
                out.push(8);
                push_reg(&mut out, *cond);
                push_reg(&mut out, *on_true);
                push_reg(&mut out, *on_false);
                out.push(ty_byte(*ty));
            }
            ExprOp::Like { src, negated, .. } => {
                // The compiled pattern is a per-execution constant; only
                // the op identity is shape.
                out.push(9);
                push_reg(&mut out, *src);
                out.push(*negated as u8);
            }
            ExprOp::InList { src, list, negated } => {
                out.push(10);
                push_reg(&mut out, *src);
                out.push(*negated as u8);
                // Member *kinds* are shape (they pick the kernel class);
                // member values and count are constants.
                out.push(list.iter().fold(0u8, |acc, s| acc | (1 << kind_byte(s))));
            }
            ExprOp::IsNull { src, negated } => {
                out.push(11);
                push_reg(&mut out, *src);
                out.push(*negated as u8);
            }
            ExprOp::Func { func, src, .. } => {
                out.push(12);
                out.push(format!("{func:?}").len() as u8);
                push_reg(&mut out, *src);
            }
            ExprOp::ModelApply { args, .. } => {
                out.push(13);
                out.push(args.len() as u8);
            }
        }
    }
    out.push(0xFE);
    for (&r, ty) in prog.outputs.iter().zip(&prog.out_tys) {
        push_reg(&mut out, r);
        out.push(ty_byte(*ty));
    }
    out
}

// ---------------------------------------------------------------------
// The fusion pass
// ---------------------------------------------------------------------

/// Class-tracked value of one expression register during lowering.
#[derive(Clone, Copy)]
enum RV {
    I64(KSrc),
    F64(KSrc),
    Bool(KSrc),
    /// A bare string column (channel index) — consumable only by string
    /// predicates and passthrough outputs.
    Str(usize),
}

/// Lowering state for [`try_fuse`].
#[derive(Default)]
struct Fuser {
    kops: Vec<KOp>,
    cols: Vec<(usize, DType)>,
    vchans: Vec<usize>,
    const_specs: Vec<ConstSpec>,
    n_i64: usize,
    n_f64: usize,
    n_bool: usize,
    n_strs: usize,
    n_i64_lists: usize,
    n_f64_lists: usize,
    n_str_lists: usize,
    n_likes: usize,
    n_const_i64: usize,
    n_const_f64: usize,
    n_const_bool: usize,
}

impl Fuser {
    fn channel(&mut self, col: usize, dt: DType) -> Option<usize> {
        if let Some(i) = self.cols.iter().position(|&(c, _)| c == col) {
            // A column read at two dtypes cannot happen (dtype is keyed
            // by the column), but keep the check exact.
            return (self.cols[i].1 == dt).then_some(i);
        }
        self.cols.push((col, dt));
        Some(self.cols.len() - 1)
    }

    fn vchannel(&mut self, col: usize) -> usize {
        if let Some(i) = self.vchans.iter().position(|&c| c == col) {
            return i;
        }
        self.vchans.push(col);
        self.vchans.len() - 1
    }

    fn i64_slot(&mut self) -> usize {
        self.n_i64 += 1;
        self.n_i64 - 1
    }
    fn f64_slot(&mut self) -> usize {
        self.n_f64 += 1;
        self.n_f64 - 1
    }
    fn bool_slot(&mut self) -> usize {
        self.n_bool += 1;
        self.n_bool - 1
    }

    /// Ensure a numeric register is f64, inserting the widening cast the
    /// generic path's `promote` would perform.
    fn widen_f64(&mut self, rv: RV) -> Option<KSrc> {
        match rv {
            RV::F64(s) => Some(s),
            RV::I64(s) => {
                let dst = self.f64_slot();
                self.kops.push(KOp::CastI64F64 { dst, src: s });
                Some(KSrc::Buf(dst))
            }
            _ => None,
        }
    }
}

/// Union of two sorted validity-source column lists.
fn vunion(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = a.to_vec();
    for &c in b {
        if !out.contains(&c) {
            out.push(c);
        }
    }
    out.sort_unstable();
    out
}

/// Attempt to specialize `prog` into a fused kernel. `None` = some op (or
/// type combination) is outside the fusible subset; callers fall back to
/// the generic executor.
fn try_fuse(prog: &ExprProgram, mode: Mode) -> Option<Skeleton> {
    if prog.ops.is_empty() || prog.outputs.is_empty() {
        return None;
    }
    let mut f = Fuser::default();
    let mut rvs: Vec<RV> = Vec::with_capacity(prog.ops.len());
    // Validity-source batch columns per register (sorted).
    let mut vcols: Vec<Vec<usize>> = Vec::with_capacity(prog.ops.len());
    // Kernel-op count after lowering each expression op (for conjunct
    // cut mapping: expression cuts are in expression-op indices).
    let mut ends: Vec<usize> = Vec::with_capacity(prog.ops.len());

    for (i, op) in prog.ops.iter().enumerate() {
        let (rv, vc) = lower_op(&mut f, op, i, &rvs, &vcols)?;
        rvs.push(rv);
        vcols.push(vc);
        ends.push(f.kops.len());
    }

    let mut conjuncts = Vec::new();
    let mut outs = Vec::new();
    let mut out_vcols = Vec::new();
    match mode {
        Mode::Mask => {
            let cuts = prog.output_cuts();
            for (k, &r) in prog.outputs.iter().enumerate() {
                let vchans: Vec<usize> = vcols[r].iter().map(|&c| f.vchannel(c)).collect();
                let (reg, col) = match rvs[r] {
                    RV::Bool(KSrc::Buf(s)) => (Some(s), None),
                    RV::Bool(KSrc::Col(ch)) => (None, Some(ch)),
                    _ => return None, // non-bool conjunct cannot be a filter
                };
                conjuncts.push(KConjunct {
                    end: ends[cuts[k] - 1],
                    reg,
                    col,
                    vchans,
                });
            }
        }
        Mode::Outputs => {
            for &r in &prog.outputs {
                let spec = match rvs[r] {
                    RV::I64(KSrc::Buf(s)) => KOut::I64(s),
                    RV::F64(KSrc::Buf(s)) => KOut::F64(s),
                    RV::Bool(KSrc::Buf(s)) => KOut::Bool(s),
                    RV::I64(KSrc::Col(ch)) | RV::F64(KSrc::Col(ch)) | RV::Bool(KSrc::Col(ch)) => {
                        KOut::Col(ch)
                    }
                    RV::Str(ch) => KOut::Col(ch),
                };
                outs.push(spec);
                out_vcols.push(vcols[r].clone());
            }
        }
    }

    Some(Skeleton {
        kernel: FusedKernel {
            ops: f.kops,
            n_i64: f.n_i64,
            n_f64: f.n_f64,
            n_bool: f.n_bool,
            conjuncts,
            outs,
        },
        cols: f.cols,
        vchans: f.vchans,
        const_specs: f.const_specs,
        out_vcols,
    })
}

/// Expected tensor dtype of a logical column type.
fn col_dtype(ty: LogicalType) -> DType {
    match ty {
        LogicalType::Bool => DType::Bool,
        LogicalType::Int64 | LogicalType::Date => DType::I64,
        LogicalType::Float64 => DType::F64,
        LogicalType::Str => DType::U8,
    }
}

/// Lower one expression op; `None` bails the whole program out of fusion.
fn lower_op(
    f: &mut Fuser,
    op: &ExprOp,
    i: usize,
    rvs: &[RV],
    vcols: &[Vec<usize>],
) -> Option<(RV, Vec<usize>)> {
    let cmp_of = |op: BinOp| to_cmp(op);
    match op {
        ExprOp::LoadColumn { index, ty } => {
            let dt = col_dtype(*ty);
            let ch = f.channel(*index, dt)?;
            let rv = match dt {
                DType::I64 => RV::I64(KSrc::Col(ch)),
                DType::F64 => RV::F64(KSrc::Col(ch)),
                DType::Bool => RV::Bool(KSrc::Col(ch)),
                DType::U8 => RV::Str(ch),
                _ => return None,
            };
            Some((rv, vec![*index]))
        }
        ExprOp::LoadConst { value, ty } => {
            if value.is_null() {
                return None; // all-invalid register: generic path only
            }
            let rv = match (ty, value) {
                (LogicalType::Int64 | LogicalType::Date, s)
                    if s.dtype().map(|d| d.is_int()) == Some(true) =>
                {
                    let dst = f.i64_slot();
                    let c = f.n_const_i64;
                    f.n_const_i64 += 1;
                    f.const_specs.push(ConstSpec::I64(i));
                    f.kops.push(KOp::ConstI64 { dst, c });
                    RV::I64(KSrc::Buf(dst))
                }
                (LogicalType::Float64, s) if s.dtype().map(|d| d.is_numeric()) == Some(true) => {
                    let dst = f.f64_slot();
                    let c = f.n_const_f64;
                    f.n_const_f64 += 1;
                    f.const_specs.push(ConstSpec::F64(i));
                    f.kops.push(KOp::ConstF64 { dst, c });
                    RV::F64(KSrc::Buf(dst))
                }
                (LogicalType::Bool, Scalar::Bool(_)) => {
                    let dst = f.bool_slot();
                    let c = f.n_const_bool;
                    f.n_const_bool += 1;
                    f.const_specs.push(ConstSpec::Bool(i));
                    f.kops.push(KOp::ConstBool { dst, c });
                    RV::Bool(KSrc::Buf(dst))
                }
                _ => return None, // string/mistyped constants: generic path
            };
            Some((rv, vec![]))
        }
        ExprOp::Binary { op, lhs, rhs, .. } => {
            let vc = vunion(&vcols[*lhs], &vcols[*rhs]);
            match op {
                BinOp::And | BinOp::Or => {
                    let (RV::Bool(a), RV::Bool(b)) = (rvs[*lhs], rvs[*rhs]) else {
                        return None;
                    };
                    let dst = f.bool_slot();
                    f.kops.push(match op {
                        BinOp::And => KOp::And { dst, a, b },
                        _ => KOp::Or { dst, a, b },
                    });
                    Some((RV::Bool(KSrc::Buf(dst)), vc))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    let tb = match op {
                        BinOp::Add => TB::Add,
                        BinOp::Sub => TB::Sub,
                        BinOp::Mul => TB::Mul,
                        BinOp::Div => TB::Div,
                        _ => TB::Mod,
                    };
                    match (rvs[*lhs], rvs[*rhs]) {
                        (RV::I64(a), RV::I64(b)) => {
                            let dst = f.i64_slot();
                            f.kops.push(KOp::ArithI64 { dst, op: tb, a, b });
                            Some((RV::I64(KSrc::Buf(dst)), vc))
                        }
                        (la @ (RV::I64(_) | RV::F64(_)), lb @ (RV::I64(_) | RV::F64(_))) => {
                            let a = f.widen_f64(la)?;
                            let b = f.widen_f64(lb)?;
                            let dst = f.f64_slot();
                            f.kops.push(KOp::ArithF64 { dst, op: tb, a, b });
                            Some((RV::F64(KSrc::Buf(dst)), vc))
                        }
                        _ => None, // bool/string arithmetic: generic path
                    }
                }
                cmp => {
                    let c = cmp_of(*cmp)?;
                    match (rvs[*lhs], rvs[*rhs]) {
                        (RV::I64(a), RV::I64(b)) => {
                            let dst = f.bool_slot();
                            f.kops.push(KOp::CmpI64 { dst, op: c, a, b });
                            Some((RV::Bool(KSrc::Buf(dst)), vc))
                        }
                        (RV::Bool(a), RV::Bool(b)) => {
                            let dst = f.bool_slot();
                            f.kops.push(KOp::CmpBool { dst, op: c, a, b });
                            Some((RV::Bool(KSrc::Buf(dst)), vc))
                        }
                        (la @ (RV::I64(_) | RV::F64(_)), lb @ (RV::I64(_) | RV::F64(_))) => {
                            let a = f.widen_f64(la)?;
                            let b = f.widen_f64(lb)?;
                            let dst = f.bool_slot();
                            f.kops.push(KOp::CmpF64 { dst, op: c, a, b });
                            Some((RV::Bool(KSrc::Buf(dst)), vc))
                        }
                        _ => None, // string × string compare: generic path
                    }
                }
            }
        }
        ExprOp::CompareConst { op, src, value } => {
            let c = cmp_of(*op)?;
            let vc = vcols[*src].clone();
            let dst = f.bool_slot();
            match (rvs[*src], value) {
                (RV::I64(s), v) if v.dtype().map(|d| d.is_int()) == Some(true) => {
                    let ci = f.n_const_i64;
                    f.n_const_i64 += 1;
                    f.const_specs.push(ConstSpec::I64(i));
                    f.kops.push(KOp::CmpConstI64 {
                        dst,
                        op: c,
                        src: s,
                        c: ci,
                    });
                }
                (RV::F64(s), v) if v.dtype().map(|d| d.is_numeric()) == Some(true) => {
                    let ci = f.n_const_f64;
                    f.n_const_f64 += 1;
                    f.const_specs.push(ConstSpec::F64(i));
                    f.kops.push(KOp::CmpConstF64 {
                        dst,
                        op: c,
                        src: s,
                        c: ci,
                    });
                }
                (rv @ RV::I64(_), v) if v.dtype() == Some(DType::F64) => {
                    // The generic fallback promotes the column to f64 and
                    // compares against the broadcast float.
                    let s = f.widen_f64(rv)?;
                    let ci = f.n_const_f64;
                    f.n_const_f64 += 1;
                    f.const_specs.push(ConstSpec::F64(i));
                    f.kops.push(KOp::CmpConstF64 {
                        dst,
                        op: c,
                        src: s,
                        c: ci,
                    });
                }
                (RV::Bool(s), Scalar::Bool(_)) => {
                    let ci = f.n_const_bool;
                    f.n_const_bool += 1;
                    f.const_specs.push(ConstSpec::Bool(i));
                    f.kops.push(KOp::CmpConstBool {
                        dst,
                        op: c,
                        src: s,
                        c: ci,
                    });
                }
                (RV::Str(col), Scalar::Str(_)) => {
                    let ci = f.n_strs;
                    f.n_strs += 1;
                    f.const_specs.push(ConstSpec::Str(i));
                    f.kops.push(KOp::CmpStrConst {
                        dst,
                        col,
                        op: c,
                        c: ci,
                    });
                }
                _ => return None,
            }
            Some((RV::Bool(KSrc::Buf(dst)), vc))
        }
        ExprOp::Not { src } => {
            let RV::Bool(s) = rvs[*src] else { return None };
            let dst = f.bool_slot();
            f.kops.push(KOp::Not { dst, src: s });
            Some((RV::Bool(KSrc::Buf(dst)), vcols[*src].clone()))
        }
        ExprOp::Neg { src } => match rvs[*src] {
            RV::I64(s) => {
                let dst = f.i64_slot();
                f.kops.push(KOp::NegI64 { dst, src: s });
                Some((RV::I64(KSrc::Buf(dst)), vcols[*src].clone()))
            }
            RV::F64(s) => {
                let dst = f.f64_slot();
                f.kops.push(KOp::NegF64 { dst, src: s });
                Some((RV::F64(KSrc::Buf(dst)), vcols[*src].clone()))
            }
            _ => None,
        },
        ExprOp::Coerce { src, ty } => {
            let vc = vcols[*src].clone();
            match (rvs[*src], ty) {
                (rv @ RV::F64(_), LogicalType::Float64) => Some((rv, vc)),
                (rv @ RV::I64(_), LogicalType::Float64) => {
                    let s = f.widen_f64(rv)?;
                    Some((RV::F64(s), vc))
                }
                (rv @ RV::I64(_), LogicalType::Int64 | LogicalType::Date) => Some((rv, vc)),
                (rv @ RV::Str(_), LogicalType::Int64) => Some((rv, vc)), // coerce skips U8
                (rv @ RV::Bool(_), LogicalType::Bool) => Some((rv, vc)),
                (rv @ RV::Str(_), LogicalType::Str) => Some((rv, vc)),
                _ => None, // narrowing casts: generic path
            }
        }
        ExprOp::Like { src, negated, .. } => {
            let RV::Str(col) = rvs[*src] else { return None };
            let dst = f.bool_slot();
            let c = f.n_likes;
            f.n_likes += 1;
            f.const_specs.push(ConstSpec::Like(i));
            f.kops.push(KOp::LikeStr {
                dst,
                col,
                c,
                negated: *negated,
            });
            Some((RV::Bool(KSrc::Buf(dst)), vcols[*src].clone()))
        }
        ExprOp::InList { src, list, negated } => {
            let vc = vcols[*src].clone();
            let dst = f.bool_slot();
            match rvs[*src] {
                RV::I64(s)
                    if list
                        .iter()
                        .all(|v| v.dtype().map(|d| d.is_int()) == Some(true)) =>
                {
                    let c = f.n_i64_lists;
                    f.n_i64_lists += 1;
                    f.const_specs.push(ConstSpec::I64List(i));
                    f.kops.push(KOp::InListI64 {
                        dst,
                        src: s,
                        c,
                        negated: *negated,
                    });
                }
                RV::F64(s)
                    if list
                        .iter()
                        .all(|v| v.dtype().map(|d| d.is_numeric()) == Some(true)) =>
                {
                    let c = f.n_f64_lists;
                    f.n_f64_lists += 1;
                    f.const_specs.push(ConstSpec::F64List(i));
                    f.kops.push(KOp::InListF64 {
                        dst,
                        src: s,
                        c,
                        negated: *negated,
                    });
                }
                RV::Str(col) if list.iter().all(|v| matches!(v, Scalar::Str(_))) => {
                    let c = f.n_str_lists;
                    f.n_str_lists += 1;
                    f.const_specs.push(ConstSpec::StrList(i));
                    f.kops.push(KOp::InListStr {
                        dst,
                        col,
                        c,
                        negated: *negated,
                    });
                }
                _ => return None, // mixed-kind lists: generic promotion rules
            }
            Some((RV::Bool(KSrc::Buf(dst)), vc))
        }
        ExprOp::IsNull { src, negated } => {
            let vchans: Vec<usize> = vcols[*src].iter().map(|&c| f.vchannel(c)).collect();
            let dst = f.bool_slot();
            f.kops.push(KOp::IsNull {
                dst,
                vchans,
                negated: *negated,
            });
            // IS NULL's own result is always valid.
            Some((RV::Bool(KSrc::Buf(dst)), vec![]))
        }
        // CASE, scalar functions, and PREDICT keep the generic executor.
        ExprOp::Select { .. } | ExprOp::Func { .. } | ExprOp::ModelApply { .. } => None,
    }
}

// ---------------------------------------------------------------------
// Per-execution binding
// ---------------------------------------------------------------------

/// Extract the constant pools from the live (parameter-bound) program.
/// `None` = a constant's kind no longer matches the compiled shape (can
/// only happen through exotic re-binding; callers fall back).
fn extract_consts(prog: &ExprProgram, specs: &[ConstSpec]) -> Option<ConstPool> {
    let mut pool = ConstPool::default();
    for spec in specs {
        match *spec {
            ConstSpec::I64(op) => match &prog.ops[op] {
                ExprOp::LoadConst { value, .. } | ExprOp::CompareConst { value, .. }
                    if value.dtype().map(|d| d.is_int()) == Some(true) =>
                {
                    pool.i64s.push(value.as_i64())
                }
                _ => return None,
            },
            ConstSpec::F64(op) => match &prog.ops[op] {
                ExprOp::LoadConst { value, .. } | ExprOp::CompareConst { value, .. }
                    if value.dtype().map(|d| d.is_numeric()) == Some(true) =>
                {
                    pool.f64s.push(value.as_f64())
                }
                _ => return None,
            },
            ConstSpec::Bool(op) => match &prog.ops[op] {
                ExprOp::LoadConst {
                    value: Scalar::Bool(b),
                    ..
                }
                | ExprOp::CompareConst {
                    value: Scalar::Bool(b),
                    ..
                } => pool.bools.push(*b),
                _ => return None,
            },
            ConstSpec::Str(op) => match &prog.ops[op] {
                ExprOp::CompareConst {
                    value: Scalar::Str(s),
                    ..
                } => pool.strs.push(s.as_bytes().to_vec()),
                _ => return None,
            },
            ConstSpec::I64List(op) => match &prog.ops[op] {
                ExprOp::InList { list, .. }
                    if list
                        .iter()
                        .all(|v| v.dtype().map(|d| d.is_int()) == Some(true)) =>
                {
                    pool.i64_lists
                        .push(list.iter().map(|v| v.as_i64()).collect())
                }
                _ => return None,
            },
            ConstSpec::F64List(op) => match &prog.ops[op] {
                ExprOp::InList { list, .. }
                    if list
                        .iter()
                        .all(|v| v.dtype().map(|d| d.is_numeric()) == Some(true)) =>
                {
                    pool.f64_lists
                        .push(list.iter().map(|v| v.as_f64()).collect())
                }
                _ => return None,
            },
            ConstSpec::StrList(op) => match &prog.ops[op] {
                ExprOp::InList { list, .. } if list.iter().all(|v| matches!(v, Scalar::Str(_))) => {
                    pool.str_lists.push(
                        list.iter()
                            .map(|v| v.as_str().as_bytes().to_vec())
                            .collect(),
                    )
                }
                _ => return None,
            },
            ConstSpec::Like(op) => match &prog.ops[op] {
                ExprOp::Like { compiled, .. } => pool.likes.push(compiled.clone()),
                _ => return None,
            },
        }
    }
    Some(pool)
}

/// Kernel input views bound from a batch: the typed column slices plus
/// the runtime validity channels, in skeleton order.
type BoundInputs<'a> = (Vec<ColInput<'a>>, Vec<Option<&'a [bool]>>);

/// Bind a skeleton to a batch: dtype-check the columns and build the
/// kernel input views. `None` = the batch's physical types don't match
/// the compiled expectation (e.g. model-produced `f32` columns).
fn bind_inputs<'a>(skel: &Skeleton, batch: &'a Batch) -> Option<BoundInputs<'a>> {
    let mut cols = Vec::with_capacity(skel.cols.len());
    for &(c, dt) in &skel.cols {
        let t = batch.columns.get(c)?;
        if t.dtype() != dt {
            return None;
        }
        cols.push(match dt {
            DType::I64 => ColInput::I64(t.as_i64()),
            DType::F64 => ColInput::F64(t.as_f64()),
            DType::Bool => ColInput::Bool(t.as_bool()),
            DType::U8 => ColInput::Str {
                data: t.as_u8(),
                width: t.row_width(),
            },
            _ => return None,
        });
    }
    let vals: Vec<Option<&[bool]>> = skel
        .vchans
        .iter()
        .map(|&c| batch.validity[c].as_ref().map(|t| t.as_bool()))
        .collect();
    Some((cols, vals))
}

/// Fused filter-mask evaluation; `None` falls back to the generic path.
fn fused_mask(prog: &ExprProgram, batch: &Batch) -> Option<Tensor> {
    let skel = skeleton_for(prog, Mode::Mask)?;
    let consts = extract_consts(prog, &skel.const_specs)?;
    let (cols, vals) = bind_inputs(&skel, batch)?;
    Some(Tensor::from_bool(skel.kernel.run_mask(
        &cols,
        &vals,
        &consts,
        batch.nrows(),
    )))
}

/// Fused all-outputs evaluation; `None` falls back to the generic path.
fn fused_outputs(prog: &ExprProgram, batch: &Batch) -> Option<Vec<Evaled>> {
    let skel = skeleton_for(prog, Mode::Outputs)?;
    let consts = extract_consts(prog, &skel.const_specs)?;
    let (cols, vals) = bind_inputs(&skel, batch)?;
    let raw = skel
        .kernel
        .run_outputs(&cols, &vals, &consts, batch.nrows());
    let mut outs = Vec::with_capacity(raw.len());
    for (k, v) in raw.into_iter().enumerate() {
        let value = match v {
            KOutValue::I64(v) => Tensor::from_i64(v),
            KOutValue::F64(v) => Tensor::from_f64(v),
            KOutValue::Bool(v) => Tensor::from_bool(v),
            KOutValue::Col(ch) => batch.columns[skel.cols[ch].0].clone(),
        };
        // Assemble validity from the statically-known source columns,
        // reproducing `merge_validity` exactly: no sources present ⇒
        // `None`, one ⇒ that tensor, several ⇒ bitwise AND.
        let present: Vec<&Tensor> = skel.out_vcols[k]
            .iter()
            .filter_map(|&c| batch.validity[c].as_ref())
            .collect();
        let validity = match present.len() {
            0 => None,
            1 => Some(present[0].clone()),
            _ => {
                let mut acc = ops::and(present[0], present[1]);
                for t in &present[2..] {
                    acc = ops::and(&acc, t);
                }
                Some(acc)
            }
        };
        outs.push((value, validity));
    }
    Some(outs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tqp_data::LogicalType as LT;

    fn batch() -> Batch {
        let n = 2500usize;
        let qty = Tensor::from_i64((0..n as i64).map(|i| i % 50).collect());
        let price = Tensor::from_f64((0..n).map(|i| 900.0 + i as f64).collect());
        let disc = Tensor::from_f64((0..n).map(|i| (i % 11) as f64 / 100.0).collect());
        let flag = Tensor::from_bool((0..n).map(|i| i % 3 == 0).collect());
        let nv = Tensor::from_i64((0..n as i64).collect());
        let nv_val = Tensor::from_bool((0..n).map(|i| i % 4 != 2).collect());
        Batch::with_validity(
            vec![qty, price, disc, flag, nv],
            vec![None, None, None, None, Some(nv_val)],
        )
    }

    fn col(i: usize, ty: LT) -> ExprOp {
        ExprOp::LoadColumn { index: i, ty }
    }

    #[test]
    fn fused_mask_matches_eager_fold() {
        let prog = ExprProgram {
            ops: vec![
                col(0, LT::Int64),
                ExprOp::CompareConst {
                    op: BinOp::Lt,
                    src: 0,
                    value: Scalar::I64(24),
                },
                col(2, LT::Float64),
                ExprOp::CompareConst {
                    op: BinOp::GtEq,
                    src: 2,
                    value: Scalar::F64(0.05),
                },
                col(4, LT::Int64),
                ExprOp::CompareConst {
                    op: BinOp::Gt,
                    src: 4,
                    value: Scalar::I64(100),
                },
            ],
            outputs: vec![1, 3, 5],
            out_tys: vec![LT::Bool, LT::Bool, LT::Bool],
            params: vec![],
        };
        let b = batch();
        let models = ModelRegistry::new();
        let fused = conjunct_mask(&prog, &b, &models, true);
        let eager = exprprog::eval_conjuncts_eager(&prog, &b, &models);
        assert_eq!(fused.as_bool(), eager.as_bool());
    }

    #[test]
    fn fused_outputs_match_generic_eval_all_bitwise() {
        // price * (1 - disc) + qty, plus a passthrough and a nullable col.
        let prog = ExprProgram {
            ops: vec![
                col(1, LT::Float64),
                ExprOp::LoadConst {
                    value: Scalar::F64(1.0),
                    ty: LT::Float64,
                },
                col(2, LT::Float64),
                ExprOp::Binary {
                    op: BinOp::Sub,
                    lhs: 1,
                    rhs: 2,
                    ty: LT::Float64,
                },
                ExprOp::Binary {
                    op: BinOp::Mul,
                    lhs: 0,
                    rhs: 3,
                    ty: LT::Float64,
                },
                col(0, LT::Int64),
                ExprOp::Binary {
                    op: BinOp::Add,
                    lhs: 4,
                    rhs: 5,
                    ty: LT::Float64,
                },
                col(4, LT::Int64),
                ExprOp::Binary {
                    op: BinOp::Add,
                    lhs: 7,
                    rhs: 5,
                    ty: LT::Int64,
                },
            ],
            outputs: vec![6, 0, 8],
            out_tys: vec![LT::Float64, LT::Float64, LT::Int64],
            params: vec![],
        };
        let b = batch();
        let models = ModelRegistry::new();
        let fused = eval_all(&prog, &b, &models, true);
        let generic = exprprog::eval_all(&prog, &b, &models);
        assert_eq!(fused.len(), generic.len());
        for (k, ((fv, fval), (gv, gval))) in fused.iter().zip(&generic).enumerate() {
            match fv.dtype() {
                DType::F64 => assert!(
                    fv.as_f64()
                        .iter()
                        .zip(gv.as_f64())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "output {k} values diverge"
                ),
                _ => assert_eq!(
                    format!("{fv:?}"),
                    format!("{gv:?}"),
                    "output {k} values diverge"
                ),
            }
            match (fval, gval) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_eq!(a.as_bool(), b.as_bool(), "output {k} validity"),
                other => panic!("output {k} validity structure diverges: {other:?}"),
            }
        }
    }

    #[test]
    fn unfusible_program_falls_back() {
        // CASE (Select) is outside the fusible subset.
        let prog = ExprProgram {
            ops: vec![
                col(3, LT::Bool),
                ExprOp::LoadConst {
                    value: Scalar::I64(1),
                    ty: LT::Int64,
                },
                ExprOp::LoadConst {
                    value: Scalar::I64(2),
                    ty: LT::Int64,
                },
                ExprOp::Select {
                    cond: 0,
                    on_true: 1,
                    on_false: 2,
                    ty: LT::Int64,
                },
            ],
            outputs: vec![3],
            out_tys: vec![LT::Int64],
            params: vec![],
        };
        let b = batch();
        let models = ModelRegistry::new();
        let fused = eval_all(&prog, &b, &models, true);
        let generic = exprprog::eval_all(&prog, &b, &models);
        assert_eq!(fused[0].0.as_i64(), generic[0].0.as_i64());
    }

    #[test]
    fn fingerprint_masks_constant_values_but_not_kinds() {
        let mk = |v: Scalar| ExprProgram {
            ops: vec![
                col(0, LT::Int64),
                ExprOp::CompareConst {
                    op: BinOp::Lt,
                    src: 0,
                    value: v,
                },
            ],
            outputs: vec![1],
            out_tys: vec![LT::Bool],
            params: vec![],
        };
        let a = shape_bytes(&mk(Scalar::I64(24)), Mode::Mask);
        let b = shape_bytes(&mk(Scalar::I64(7000)), Mode::Mask);
        let c = shape_bytes(&mk(Scalar::F64(24.0)), Mode::Mask);
        assert_eq!(a, b, "same shape across constant values");
        assert_ne!(a, c, "constant kind is part of the shape");
    }

    #[test]
    fn rebound_constants_reuse_the_cached_kernel() {
        let mk = |cut: i64| ExprProgram {
            ops: vec![
                col(0, LT::Int64),
                ExprOp::CompareConst {
                    op: BinOp::Lt,
                    src: 0,
                    value: Scalar::I64(cut),
                },
            ],
            outputs: vec![1],
            out_tys: vec![LT::Bool],
            params: vec![],
        };
        let b = batch();
        let models = ModelRegistry::new();
        let m1 = conjunct_mask(&mk(24), &b, &models, true);
        let before = stats();
        let m2 = conjunct_mask(&mk(40), &b, &models, true);
        let after = stats();
        assert_eq!(after.ops_fused, before.ops_fused, "no recompilation");
        assert!(after.kernels_hit > before.kernels_hit, "cache hit counted");
        let qty = b.columns[0].as_i64();
        for (i, &q) in qty.iter().enumerate() {
            assert_eq!(m1.as_bool()[i], q < 24);
            assert_eq!(m2.as_bool()[i], q < 40);
        }
    }
}

//! The simulated-GPU cost model.
//!
//! No GPU exists in this environment (reproduction substitution, see
//! DESIGN.md): kernels execute on the CPU for *correctness*, while the
//! meter accumulates *modeled* device time per operator from an analytical
//! roofline: `kernels × launch_latency + bytes_touched / memory_bandwidth`,
//! plus PCIe transfer terms that depend on the placement strategy:
//!
//! * [`GpuStrategy::Resident`] (TQP): operands live on the device for the
//!   whole query — transfers are not charged per operator (the paper's warm
//!   configuration);
//! * [`GpuStrategy::PerOpTransfer`] (BlazingSQL-sim): every operator pays
//!   H2D for its inputs and D2H for its outputs — reproducing *why* TQP
//!   beats per-operator GPU engines by >4× (§1) mechanistically rather than
//!   by fiat.
//!
//! Default parameters approximate the paper's NVIDIA P100: ~550 GB/s
//! effective HBM2 bandwidth, 5 µs kernel launch, ~12 GB/s effective PCIe.

use crate::GpuStrategy;

/// Analytical device parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Effective device memory bandwidth, bytes/second.
    pub mem_bw: f64,
    /// Kernel launch latency, seconds.
    pub launch: f64,
    /// Effective host↔device bandwidth, bytes/second.
    pub pcie_bw: f64,
    /// Per-operator framework overhead (eager-mode dispatch + sync),
    /// seconds. PyTorch eager on GPU pays this regardless of tensor size —
    /// it is why tiny queries do not benefit from the device.
    pub op_overhead: f64,
    /// HBM passes per operator: eager execution materializes boolean masks,
    /// gathers, and other intermediates, so each relational operator touches
    /// its data several times.
    pub passes: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            mem_bw: 550e9,
            launch: 5e-6,
            pcie_bw: 12e9,
            op_overhead: 250e-6,
            passes: 4.0,
        }
    }
}

/// Accumulates modeled device time across a query.
#[derive(Debug)]
pub struct DeviceMeter {
    model: CostModel,
    strategy: GpuStrategy,
    enabled: bool,
    total_s: f64,
}

impl DeviceMeter {
    /// A meter; disabled meters cost nothing and report zero.
    pub fn new(enabled: bool, strategy: GpuStrategy) -> DeviceMeter {
        DeviceMeter {
            model: CostModel::default(),
            strategy,
            enabled,
            total_s: 0.0,
        }
    }

    /// Charge one operator: `kernels` launches touching `in_bytes` +
    /// `out_bytes` of device memory.
    pub fn op(&mut self, kernels: u32, in_bytes: usize, out_bytes: usize) {
        if !self.enabled {
            return;
        }
        let bytes = (in_bytes + out_bytes) as f64 * self.model.passes;
        let mut t =
            self.model.op_overhead + kernels as f64 * self.model.launch + bytes / self.model.mem_bw;
        if self.strategy == GpuStrategy::PerOpTransfer {
            t += (in_bytes as f64 + out_bytes as f64) / self.model.pcie_bw;
        }
        self.total_s += t;
    }

    /// Modeled total, microseconds.
    pub fn total_us(&self) -> u64 {
        (self.total_s * 1e6).round() as u64
    }

    /// Whether this meter is accumulating.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// Rough kernel-launch counts per operator family (used by the meter; the
/// exact constants only shift the launch-latency term, which matters for
/// small inputs — precisely the regime where real GPUs lose to CPUs).
pub fn kernel_count(op: &str, n_exprs: usize) -> u32 {
    match op {
        "Scan" => 1,
        "Filter" => (2 + n_exprs) as u32,
        "Project" => n_exprs.max(1) as u32,
        "Join" => 10,
        "CrossJoin" => 3,
        "Aggregate" => (6 + n_exprs) as u32,
        "Sort" => (2 * n_exprs.max(1)) as u32,
        "Limit" => 1,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_meter_reports_zero() {
        let mut m = DeviceMeter::new(false, GpuStrategy::Resident);
        m.op(10, 1 << 30, 1 << 30);
        assert_eq!(m.total_us(), 0);
        assert!(!m.is_enabled());
    }

    #[test]
    fn bandwidth_term_scales_with_bytes() {
        // Subtract the fixed per-op overhead to observe the bandwidth term.
        let fixed = {
            let mut m = DeviceMeter::new(true, GpuStrategy::Resident);
            m.op(1, 0, 0);
            m.total_us()
        };
        let mut small = DeviceMeter::new(true, GpuStrategy::Resident);
        small.op(1, 1 << 20, 0);
        let mut big = DeviceMeter::new(true, GpuStrategy::Resident);
        big.op(1, 1 << 30, 0);
        let small_bw = small.total_us() - fixed;
        let big_bw = big.total_us() - fixed;
        assert!(big_bw > small_bw * 100, "{big_bw} vs {small_bw}");
        // Dispatch overhead dominates tiny ops (why small queries don't
        // benefit from the device).
        assert!(fixed > small_bw);
    }

    #[test]
    fn per_op_transfer_much_slower() {
        let bytes = 1 << 28; // 256 MB
        let mut resident = DeviceMeter::new(true, GpuStrategy::Resident);
        resident.op(5, bytes, bytes);
        let mut transfer = DeviceMeter::new(true, GpuStrategy::PerOpTransfer);
        transfer.op(5, bytes, bytes);
        // PCIe is ~45x slower than HBM: the gap must be large.
        assert!(transfer.total_us() > resident.total_us() * 4);
    }

    #[test]
    fn launch_latency_dominates_tiny_ops() {
        let mut m = DeviceMeter::new(true, GpuStrategy::Resident);
        m.op(10, 64, 64); // tiny tensors
                          // 10 launches à 5us = 50us; bandwidth term is negligible.
        assert!(m.total_us() >= 50);
    }

    #[test]
    fn kernel_counts_reasonable() {
        assert_eq!(kernel_count("Scan", 0), 1);
        assert!(kernel_count("Join", 0) > kernel_count("Filter", 1));
    }
}

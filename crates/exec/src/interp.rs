//! The vectorized plan interpreter: Eager and Fused backends.
//!
//! Eager mode maps every physical operator to its tensor program and
//! materializes each intermediate (PyTorch-eager semantics). Fused mode
//! (the TorchScript analog) additionally:
//!
//! * evaluates filter conjuncts over *selection vectors* — after each
//!   conjunct the batch is compacted, so later (often more expensive, e.g.
//!   `LIKE`) predicates run on the surviving fraction only;
//! * that same compaction fuses the filter with its downstream gather — no
//!   full-width boolean materialization per conjunct.
//!
//! Every operator reports wall time/rows/bytes to the profiler (Figure 2's
//! breakdown) and charges the [`DeviceMeter`] (simulated-GPU accounting).

use tqp_data::{DataFrame, LogicalType};
use tqp_ir::physical::{AggStrategy, PhysicalPlan};
use tqp_ml::ModelRegistry;
use tqp_profile::Profiler;
use tqp_tensor::index::{arange, mask_to_indices};
use tqp_tensor::sort::{argsort_multi, Order, SortKey as TSortKey};
use tqp_tensor::{DType, Tensor};

use crate::agg;
use crate::batch::Batch;
use crate::device::{kernel_count, DeviceMeter};
use crate::expr::{eval, eval_mask};
use crate::join;
use crate::{Device, ExecConfig, Storage};

/// Interpreter context for one execution.
pub struct Interp<'a> {
    storage: &'a Storage,
    models: &'a ModelRegistry,
    profiler: &'a Profiler,
    meter: DeviceMeter,
    fused: bool,
}

impl<'a> Interp<'a> {
    /// Build a context; `fused` selects the TorchScript-analog mode.
    pub fn new(
        storage: &'a Storage,
        models: &'a ModelRegistry,
        profiler: &'a Profiler,
        cfg: ExecConfig,
        fused: bool,
    ) -> Interp<'a> {
        let meter = DeviceMeter::new(cfg.device == Device::GpuSim, cfg.gpu_strategy);
        Interp { storage, models, profiler, meter, fused }
    }

    /// Consume the context, returning the device meter.
    pub fn into_meter(self) -> DeviceMeter {
        self.meter
    }

    /// Execute a plan to a materialized frame.
    pub fn execute(&mut self, plan: &PhysicalPlan) -> DataFrame {
        let batch = self.exec(plan);
        batch_to_frame(&batch, plan)
    }

    /// Execute a plan to a batch (the operator-plan walk).
    pub fn exec(&mut self, plan: &PhysicalPlan) -> Batch {
        match plan {
            PhysicalPlan::Scan { table, projection, .. } => {
                let start = self.profiler.now_us();
                let t0 = std::time::Instant::now();
                let tt = self
                    .storage
                    .get(table)
                    .unwrap_or_else(|| panic!("table {table} not ingested"));
                let tensors: Vec<Tensor> = match projection {
                    Some(p) => p.iter().map(|&i| tt.tensors[i].clone()).collect(),
                    None => tt.tensors.clone(),
                };
                let out = Batch::new(tensors);
                self.meter.op(kernel_count("Scan", 0), 0, out.nbytes());
                self.span(&format!("Scan({table})"), start, t0, &out);
                out
            }
            PhysicalPlan::Filter { input, predicate } => {
                let child = self.exec(input);
                let start = self.profiler.now_us();
                let t0 = std::time::Instant::now();
                let in_bytes = child.nbytes();
                let out = if self.fused {
                    self.filter_fused(&child, predicate)
                } else {
                    let mask = eval_mask(predicate, &child, self.models);
                    child.take(&mask_to_indices(&mask))
                };
                self.meter.op(kernel_count("Filter", 3), in_bytes, out.nbytes());
                self.span("Filter", start, t0, &out);
                out
            }
            PhysicalPlan::Project { input, exprs, .. } => {
                let child = self.exec(input);
                let start = self.profiler.now_us();
                let t0 = std::time::Instant::now();
                let in_bytes = child.nbytes();
                let mut columns = Vec::with_capacity(exprs.len());
                let mut validity = Vec::with_capacity(exprs.len());
                let has_ml = exprs.iter().any(contains_predict);
                for e in exprs {
                    let (v, val) = eval(e, &child, self.models);
                    columns.push(v);
                    validity.push(val);
                }
                let out = Batch::with_validity(columns, validity);
                self.meter.op(kernel_count("Project", exprs.len()), in_bytes, out.nbytes());
                let name = if has_ml { "Project+Predict" } else { "Project" };
                self.span(name, start, t0, &out);
                out
            }
            PhysicalPlan::Join { left, right, join_type, strategy, on, residual } => {
                let l = self.exec(left);
                let r = self.exec(right);
                let start = self.profiler.now_us();
                let t0 = std::time::Instant::now();
                let in_bytes = l.nbytes() + r.nbytes();
                let out = join::join(&l, &r, *join_type, *strategy, on, residual.as_ref(), self.models);
                self.meter.op(kernel_count("Join", on.len()), in_bytes, out.nbytes());
                self.span(&format!("{strategy:?}Join({join_type:?})"), start, t0, &out);
                out
            }
            PhysicalPlan::CrossJoin { left, right } => {
                let l = self.exec(left);
                let r = self.exec(right);
                let start = self.profiler.now_us();
                let t0 = std::time::Instant::now();
                let in_bytes = l.nbytes() + r.nbytes();
                let out = join::cross_join(&l, &r);
                self.meter.op(kernel_count("CrossJoin", 0), in_bytes, out.nbytes());
                self.span("CrossJoin", start, t0, &out);
                out
            }
            PhysicalPlan::Aggregate { input, strategy, group_by, aggs, .. } => {
                let child = self.exec(input);
                let start = self.profiler.now_us();
                let t0 = std::time::Instant::now();
                let in_bytes = child.nbytes();
                let strat = match strategy {
                    AggStrategy::Sort => agg::Strategy::Sort,
                    AggStrategy::Hash => agg::Strategy::Hash,
                };
                let out = agg::aggregate(&child, group_by, aggs, strat, self.models);
                self.meter.op(kernel_count("Aggregate", aggs.len()), in_bytes, out.nbytes());
                self.span(&format!("{strategy:?}Aggregate"), start, t0, &out);
                out
            }
            PhysicalPlan::Sort { input, keys } => {
                let child = self.exec(input);
                let start = self.profiler.now_us();
                let t0 = std::time::Instant::now();
                let in_bytes = child.nbytes();
                let tensor_keys: Vec<TSortKey> = keys
                    .iter()
                    .map(|k| {
                        let (v, val) = eval(&k.expr, &child, self.models);
                        assert!(val.is_none(), "NULL sort keys unsupported");
                        TSortKey {
                            values: v,
                            order: if k.desc { Order::Desc } else { Order::Asc },
                        }
                    })
                    .collect();
                let perm = argsort_multi(&tensor_keys);
                let out = child.take(&perm);
                self.meter.op(kernel_count("Sort", keys.len()), in_bytes, out.nbytes());
                self.span("Sort", start, t0, &out);
                out
            }
            PhysicalPlan::Limit { input, n } => {
                let child = self.exec(input);
                let start = self.profiler.now_us();
                let t0 = std::time::Instant::now();
                let k = (*n).min(child.nrows());
                let out = child.take(&arange(0, k as i64));
                self.meter.op(kernel_count("Limit", 0), 0, out.nbytes());
                self.span("Limit", start, t0, &out);
                out
            }
        }
    }

    /// Adaptive fused filter: evaluate conjuncts sequentially, switching to
    /// selection vectors (compact the batch, evaluate the rest on survivors)
    /// as soon as the accumulated mask turns selective. Unselective prefixes
    /// stay in mask-AND form to avoid gather costs — this is the dynamic
    /// fusion decision a JIT makes with runtime feedback.
    fn filter_fused(&self, child: &Batch, predicate: &tqp_ir::BoundExpr) -> Batch {
        let mut conjuncts = Vec::new();
        split_and(predicate.clone(), &mut conjuncts);
        let mut it = conjuncts.into_iter();
        let mut acc: Option<Tensor> = None;
        let mut current = child.clone();
        let mut compacted = false;
        for c in it.by_ref() {
            if current.nrows() == 0 {
                return current;
            }
            let mask = eval_mask(&c, &current, self.models);
            let mask = match acc.take() {
                Some(prev) => tqp_tensor::ops::and(&prev, &mask),
                None => mask,
            };
            let kept = tqp_tensor::index::count_true(&mask);
            if compacted || kept * 16 < current.nrows() {
                // Very selective: compact now, stream the rest over the
                // survivors (later LIKE-style conjuncts run on a fraction).
                current = current.take(&mask_to_indices(&mask));
                compacted = true;
            } else {
                acc = Some(mask);
            }
        }
        match acc {
            Some(mask) => current.take(&mask_to_indices(&mask)),
            None => current,
        }
    }

    fn span(&self, name: &str, start: u64, t0: std::time::Instant, out: &Batch) {
        self.profiler.record(
            name,
            "relational",
            start,
            t0.elapsed().as_micros() as u64,
            out.nrows() as u64,
            out.nbytes() as u64,
        );
    }
}

fn split_and(e: tqp_ir::BoundExpr, out: &mut Vec<tqp_ir::BoundExpr>) {
    use tqp_ir::expr::BinOp;
    use tqp_ir::BoundExpr as E;
    match e {
        E::Binary { op: BinOp::And, left, right, .. } => {
            split_and(*left, out);
            split_and(*right, out);
        }
        other => out.push(other),
    }
}

fn contains_predict(e: &tqp_ir::BoundExpr) -> bool {
    let mut found = false;
    e.visit(&mut |n| {
        if matches!(n, tqp_ir::BoundExpr::Predict { .. }) {
            found = true;
        }
    });
    found
}

/// Materialize a batch into a typed frame using the plan's output schema.
pub fn batch_to_frame(batch: &Batch, plan: &PhysicalPlan) -> DataFrame {
    let schema = tqp_ir::physical::dedup_names(&plan.schema());
    assert_eq!(schema.len(), batch.ncols(), "schema/batch arity mismatch");
    for v in &batch.validity {
        if let Some(mask) = v {
            assert!(
                mask.as_bool().iter().all(|&b| b),
                "NULL leaked into the final output (must be consumed by aggregates)"
            );
        }
    }
    let fields: Vec<tqp_data::Field> =
        schema.iter().map(|c| tqp_data::Field::new(c.name.clone(), c.ty)).collect();
    let columns = fields
        .iter()
        .zip(&batch.columns)
        .map(|(f, t)| tensor_to_column(t, f.ty))
        .collect();
    DataFrame::new(tqp_data::Schema::new(fields), columns)
}

fn tensor_to_column(t: &Tensor, ty: LogicalType) -> tqp_data::Column {
    use tqp_data::Column;
    match ty {
        LogicalType::Bool => Column::from_bool(t.as_bool().to_vec()),
        LogicalType::Int64 => Column::from_i64(t.cast(DType::I64).expect("i64 out").to_i64_vec()),
        LogicalType::Float64 => {
            Column::from_f64(t.cast(DType::F64).expect("f64 out").to_f64_vec())
        }
        LogicalType::Date => Column::from_date_ns(t.cast(DType::I64).expect("date out").to_i64_vec()),
        LogicalType::Str => {
            Column::from_str((0..t.nrows()).map(|i| t.str_at(i)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tqp_data::frame::df;
    use tqp_data::Column;
    use tqp_ir::{compile_sql, Catalog, PhysicalOptions};

    fn setup() -> (Storage, Catalog) {
        let t = df(vec![
            ("id", Column::from_i64(vec![1, 2, 3, 4])),
            ("grp", Column::from_str(vec!["a".into(), "b".into(), "a".into(), "b".into()])),
            ("v", Column::from_f64(vec![10.0, 20.0, 30.0, 40.0])),
        ]);
        let mut catalog = Catalog::new();
        catalog.register("t", t.schema().clone(), t.nrows());
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), t);
        (crate::ingest_tables(&tables), catalog)
    }

    fn run(sql: &str, fused: bool) -> DataFrame {
        let (storage, catalog) = setup();
        let plan = compile_sql(sql, &catalog, &PhysicalOptions::default()).unwrap();
        let models = ModelRegistry::new();
        let profiler = Profiler::disabled();
        let mut cx = Interp::new(&storage, &models, &profiler, ExecConfig::default(), fused);
        cx.execute(&plan)
    }

    #[test]
    fn filter_project_eager_and_fused_agree() {
        for fused in [false, true] {
            let out = run("select id, v * 2 as vv from t where v > 15.0 and id < 4 order by id", fused);
            assert_eq!(out.nrows(), 2, "fused={fused}");
            assert_eq!(out.column(1).get(0).as_f64(), 40.0);
        }
    }

    #[test]
    fn group_by_on_tensors() {
        let out = run("select grp, sum(v) as s, count(*) as c from t group by grp order by grp", false);
        assert_eq!(out.nrows(), 2);
        assert_eq!(out.column(1).get(0).as_f64(), 40.0);
        assert_eq!(out.column(2).get(1).as_i64(), 2);
    }

    #[test]
    fn profiler_records_operators() {
        let (storage, catalog) = setup();
        let plan =
            compile_sql("select grp, sum(v) from t group by grp", &catalog, &PhysicalOptions::default())
                .unwrap();
        let models = ModelRegistry::new();
        let profiler = Profiler::new();
        let mut cx = Interp::new(&storage, &models, &profiler, ExecConfig::default(), false);
        let _ = cx.execute(&plan);
        let names: Vec<String> = profiler.aggregate().into_iter().map(|s| s.name).collect();
        assert!(names.iter().any(|n| n.starts_with("Scan")));
        assert!(names.iter().any(|n| n.contains("Aggregate")));
    }

    #[test]
    fn gpu_meter_accumulates() {
        let (storage, catalog) = setup();
        let plan = compile_sql("select id from t where v > 0.0", &catalog, &PhysicalOptions::default())
            .unwrap();
        let models = ModelRegistry::new();
        let profiler = Profiler::disabled();
        let cfg = ExecConfig { device: Device::GpuSim, ..Default::default() };
        let mut cx = Interp::new(&storage, &models, &profiler, cfg, false);
        let _ = cx.execute(&plan);
        assert!(cx.into_meter().total_us() > 0);
    }
}
